"""Resilience: FIAT accuracy and time-to-validation under injected faults.

The paper evaluates FIAT on a clean testbed; a production deployment
(ROADMAP north star) must keep its guarantees when the home network and
the proxy's components misbehave.  This bench sweeps two fault axes with
the seeded `repro.faults` subsystem:

* **proof-loss rate** (0 → 50 %): the app's acknowledgement-driven
  retransmission must recover nearly all manual-event authorizations,
  paying with time-to-validation (extra RTOs);
* **validation-service outage duration**: the proxy must fail closed for
  manual events while the service is down (no unauthenticated manual
  traffic), emit health alerts, and recover automatically once the
  circuit breaker's probe succeeds.

Run with ``pytest -s`` to see the tables.
"""

import numpy as np

from repro.core import FiatConfig, FiatSystem
from repro.faults import FaultPlan, OutageWindow
from repro.obs import Observability, write_bench_snapshot

from benchmarks._helpers import bench_out_path, print_table

#: Rule devices need no ML training: system construction stays cheap and
#: the event classifier is exact, isolating the fault axes under study.
DEVICES = ["SP10", "WP3"]


def _fresh_system(obs=None, **config_kwargs):
    config = FiatConfig(bootstrap_s=0.0, obs=obs, **config_kwargs)
    return FiatSystem(DEVICES, config=config, seed=0)


def _manual_decisions(system):
    return [
        d for d in system.proxy.decisions if d.event_id and "-manual-" in d.event_id
    ]


def _authorized(decisions):
    return sum(not d.blocked for d in decisions)


def test_resilience_proof_loss_sweep(benchmark):
    """Accuracy + time-to-validation as a function of proof-loss rate."""
    loss_rates = [0.0, 0.1, 0.3, 0.5]
    systems = {}

    def run(loss, obs=None):
        system = _fresh_system(obs=obs)
        system.run_accuracy(
            n_manual=40, n_non_manual=20, n_attacks=10,
            faults=FaultPlan(seed=7, loss_rate=loss),
        )
        return system

    for loss in loss_rates:
        if loss == 0.3:
            # The anchor run carries a full Observability handle: its
            # registry backs the BENCH_resilience.json snapshot, and the
            # determinism assertion below doubles as the obs-on vs
            # obs-off byte-identity check under an active fault plan.
            systems[loss] = benchmark.pedantic(
                lambda: run(0.3, obs=Observability()), rounds=1, iterations=1
            )
        else:
            systems[loss] = run(loss)

    baseline = _authorized(_manual_decisions(systems[0.0]))
    rows = []
    for loss in loss_rates:
        system = systems[loss]
        manual = _manual_decisions(system)
        ttv = [r.time_to_validation_ms for r in system.auth_reports
               if r.time_to_validation_ms is not None]
        attempts = [r.n_attempts for r in system.auth_reports]
        rows.append(
            (
                f"{loss:.0%}",
                f"{_authorized(manual)}/{len(manual)}",
                f"{_authorized(manual) / baseline:.1%}" if baseline else "n/a",
                f"{np.mean(attempts):.2f}",
                f"{np.mean(ttv):.0f}",
                f"{np.percentile(ttv, 95):.0f}",
            )
        )
    print_table(
        "Resilience — retransmission vs proof loss "
        "(ack-driven, exponential backoff + jitter)",
        ("loss", "manual authorized", "vs lossless", "mean attempts",
         "ttv mean ms", "ttv p95 ms"),
        rows,
    )

    # Acceptance: 30 % loss recovers >= 95 % of the lossless authorizations.
    recovered = _authorized(_manual_decisions(systems[0.3]))
    assert recovered >= 0.95 * baseline
    # Retransmission is doing the work: attempts and latency grow with loss.
    mean_attempts = {
        loss: np.mean([r.n_attempts for r in systems[loss].auth_reports])
        for loss in loss_rates
    }
    assert mean_attempts[0.0] == 1.0
    assert mean_attempts[0.1] < mean_attempts[0.3] < mean_attempts[0.5]
    # Determinism: an identical plan reproduces byte-identical decisions
    # (and, since the anchor run was instrumented, observability on/off
    # provably does not perturb them).
    assert run(0.3).proxy.decision_log() == systems[0.3].proxy.decision_log()

    anchor = systems[0.3]
    snapshot = anchor.metrics_snapshot()
    ttv_03 = [r.time_to_validation_ms for r in anchor.auth_reports
              if r.time_to_validation_ms is not None]
    manual_03 = _manual_decisions(anchor)
    write_bench_snapshot(
        bench_out_path("BENCH_resilience.json"),
        "resilience_proof_loss",
        {
            "loss_rate": 0.3,
            "manual_authorized": _authorized(manual_03),
            "manual_total": len(manual_03),
            "recovered_vs_lossless": (
                _authorized(manual_03) / baseline if baseline else None
            ),
            "mean_attempts": float(np.mean([r.n_attempts for r in anchor.auth_reports])),
            "ttv_p95_ms": float(np.percentile(ttv_03, 95)) if ttv_03 else None,
            "proof_attempts_total": snapshot.counter_total("proof_attempts_total"),
            "proofs_acked_total": snapshot.counter_total("proofs_acked_total"),
        },
        snapshot=snapshot,
    )


def test_resilience_validation_outage_sweep(benchmark):
    """Degraded-mode proxy vs validation-service outage duration."""
    outage_start = 200.0
    durations = [60.0, 180.0, 360.0]
    recovery_s = 20.0

    def run(duration):
        system = _fresh_system(breaker_recovery_s=recovery_s)
        plan = FaultPlan(
            seed=1,
            outages=(OutageWindow("validation", outage_start, outage_start + duration),),
        )
        system.run_accuracy(n_manual=40, n_non_manual=10, n_attacks=0, faults=plan)
        return system

    systems = {}
    for duration in durations:
        if duration == 180.0:
            systems[duration] = benchmark.pedantic(
                lambda: run(180.0), rounds=1, iterations=1
            )
        else:
            systems[duration] = run(duration)

    rows = []
    for duration in durations:
        system = systems[duration]
        end = outage_start + duration
        manual = _manual_decisions(system)
        during = [d for d in manual if outage_start <= d.start < end]
        after = [d for d in manual if d.start >= end + recovery_s * 2]
        health = [a for a in system.proxy.alerts if a.kind == "health"]
        recovered_alerts = [a for a in health if "recovered" in a.reason]
        recovery_at = min((a.timestamp for a in recovered_alerts), default=float("nan"))
        rows.append(
            (
                f"{duration:.0f}s",
                f"{sum(d.blocked for d in during)}/{len(during)}",
                f"{_authorized(after)}/{len(after)}",
                len(health),
                f"{recovery_at - end:.1f}s" if recovered_alerts else "n/a",
            )
        )
        # Fail-closed: every manual event during the outage is dropped and
        # marked degraded; traffic recovers automatically afterwards.
        assert during and all(d.blocked for d in during)
        assert all(d.degraded == "validation-outage:fail-closed" for d in during)
        assert after and all(not d.blocked for d in after)
        assert any("circuit opened" in a.reason for a in health)
        assert recovered_alerts
        # Degraded drops are health events, not brute-force evidence.
        for device in DEVICES:
            assert not system.proxy.is_locked(device)

    print_table(
        "Resilience — validation-service outage (fail-closed + breaker probes, "
        f"recovery timeout {recovery_s:.0f}s)",
        ("outage", "blocked during", "authorized after", "health alerts",
         "recovery lag"),
        rows,
    )
