"""Calibration tests: the synthetic corpora hit their statistical targets."""

import numpy as np
import pytest

from repro.datasets import SyntheticDeviceSpec, generate_device_trace
from repro.net import DnsTable, FlowDefinition, Trace, TrafficClass
from repro.predictability import analyze_trace, label_predictable


def _render(spec, duration=1200.0, seed=0):
    rng = np.random.default_rng(seed)
    dns = DnsTable()
    packets = generate_device_trace(spec, duration, dns, "10.0.0.2", rng)
    return Trace(packets, dns=dns)


class TestSpecTargets:
    def test_noise_fraction_approximates_target(self):
        spec = SyntheticDeviceSpec(
            name="d",
            n_flows=6,
            period_range=(5.0, 60.0),
            unpredictable_fraction=0.3,
            reconnect_s=600.0,
        )
        trace = _render(spec, duration=2400.0)
        noise = sum(p.traffic_class is TrafficClass.MANUAL for p in trace)
        assert noise / len(trace) == pytest.approx(0.3, abs=0.07)

    def test_zero_noise_device_fully_predictable(self):
        spec = SyntheticDeviceSpec(
            name="d",
            n_flows=4,
            period_range=(5.0, 30.0),
            unpredictable_fraction=0.0,
            reconnect_s=1e9,
        )
        trace = _render(spec)
        labels = label_predictable(trace)
        assert sum(labels) / len(labels) > 0.98

    def test_flow_count_respected(self):
        spec = SyntheticDeviceSpec(
            name="d",
            n_flows=5,
            period_range=(10.0, 30.0),
            unpredictable_fraction=0.0,
            reconnect_s=1e9,
        )
        trace = _render(spec)
        from repro.net.flows import portless_key

        buckets = {portless_key(p, trace.dns) for p in trace}
        assert len(buckets) == 5

    def test_reconnects_hurt_classic_only(self):
        spec = SyntheticDeviceSpec(
            name="d",
            n_flows=4,
            period_range=(20.0, 60.0),
            unpredictable_fraction=0.0,
            reconnect_s=120.0,  # frequent reconnects
        )
        trace = _render(spec, duration=1800.0)
        portless = np.mean(label_predictable(trace, FlowDefinition.PORTLESS))
        classic = np.mean(label_predictable(trace, FlowDefinition.CLASSIC))
        assert portless > classic + 0.1

    def test_dns_registered_for_all_endpoints(self):
        spec = SyntheticDeviceSpec(
            name="d",
            n_flows=4,
            period_range=(10.0, 30.0),
            unpredictable_fraction=0.2,
            reconnect_s=600.0,
        )
        trace = _render(spec)
        resolved = sum(1 for p in trace if trace.dns.domain_for(p.remote_ip))
        assert resolved == len(trace)
