"""Device behaviour profiles for the 10-device testbed (paper Table 1).

Each :class:`DeviceProfile` describes, per device model, the three
traffic sources the paper measures:

* **control** — periodic keep-alive / telemetry flows (highly
  predictable: fixed sizes to fixed endpoints at a constant pace), plus
  a device-specific rate of *unpredictable control events* (e.g. the
  Nest thermostat's motion-sensor wakeups, which fire with drifting
  intervals and account for its outlier 90.7 % control predictability);
* **automated** — routine firings: a repetitive burst (predictable
  within/across automations, ~90 %) plus a short unpredictable
  notification event.  Simple plugs (SP10, WP3) emit *only* the 2
  notification packets, which is why Fig 2 reports 0 % automated
  predictability for them;
* **manual** — human-triggered events: an unpredictable head of up to
  ``n_command`` packets (the minimum needed for the command to execute,
  §3.3: 1 for SP10/WP3 up to 41 for WyzeCam), optionally followed by a
  constant-rate stream (cameras: video at fixed size/rate, which is why
  camera manual traffic is 60-65 % predictable) or a short repetitive
  tail.

Class signal structure.  Every per-packet attribute is an effectively
*binary* marker with a class-dependent probability: packet direction,
TCP vs UDP, PSH-data vs bare-ACK flags, TLS record present or not,
relay-port vs API-port endpoint, large-frame vs small-frame size mode,
burst vs idle inter-arrival gap.  No single marker identifies a class —
each shifts the odds — so classification requires aggregating weak
evidence across the first-N-packet features, the regime the paper's
Table 4 documents (top permutation importance only 0.07, destination-IP
octets exactly zero) and in which Nearest-Centroid and Bernoulli-NB
models excel (Table 2).  Manual traffic is additionally *multimodal*
(``manual_variants``: the several commands per device of Table 1),
starving local neighbourhood methods on the scarce manual class.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..net.packet import TLS_1_2, TLS_NONE

__all__ = [
    "PeriodicFlow",
    "EventTemplate",
    "BurstSpec",
    "StreamSpec",
    "DeviceProfile",
    "TESTBED",
    "profile_for",
    "BOSE_SOUNDTOUCH",
]


@dataclass(frozen=True)
class PeriodicFlow:
    """A predictable control flow: fixed-size packets at a fixed period."""

    service: str
    period_s: float
    size_out: int = 0
    size_in: int = 0
    protocol: str = "tcp"
    tls: int = TLS_1_2
    jitter_s: float = 0.04  # well below the IAT quantisation resolution
    phase_s: float = 0.0


@dataclass(frozen=True)
class EventTemplate:
    """Binary-marker distributions for one class of unpredictable events.

    Every ``*_prob`` attribute is the probability of the "high" value of
    a two-valued per-packet marker (see module docstring).
    """

    n_packets: Tuple[int, int] = (2, 7)
    #: fixed first-packet size (plug / thermostat notification rule)
    first_size: Optional[int] = None
    first_inbound_prob: float = 0.5
    inbound_prob: float = 0.5
    tcp_prob: float = 0.9
    first_udp_prob: float = 0.0  # WyzeCam manual events open with UDP (STUN)
    tls_prob: float = 0.9  # P(TLS record present) among TCP packets
    psh_prob: float = 0.5  # P(PSH|ACK) vs bare ACK
    #: services the event's packets hit; ``service_high`` is drawn with
    #: ``port_high_prob``, else ``service_low`` (relay vs API port marker)
    service_high: str = "relay"
    service_low: str = "api"
    port_high_prob: float = 0.3
    #: size modes: (mean, std) of the large and small frame populations
    size_big_prob: float = 0.4
    size_big: Tuple[float, float] = (900.0, 90.0)
    size_small: Tuple[float, float] = (180.0, 45.0)
    #: inter-arrival modes: burst (uniform range) vs idle (uniform range)
    iat_fast_prob: float = 0.5
    iat_fast: Tuple[float, float] = (0.05, 0.25)
    iat_slow: Tuple[float, float] = (0.6, 3.0)

    def services(self) -> Tuple[str, str]:
        """The two endpoints this template's packets may hit."""
        return (self.service_high, self.service_low)


@dataclass(frozen=True)
class BurstSpec:
    """A repetitive, predictable packet burst (same size, constant IAT)."""

    size: int
    n_packets: int
    iat_s: float
    service: str = "api"
    inbound: bool = True


@dataclass(frozen=True)
class StreamSpec:
    """Constant-rate media stream (camera video during a manual session)."""

    rate_pps: float = 6.0
    size: int = 1100
    duration_range_s: Tuple[float, float] = (4.0, 8.0)
    service: str = "stream"


@dataclass(frozen=True)
class DeviceProfile:
    """Full behaviour profile of one testbed device."""

    name: str
    vendor: str
    model: str
    device_class: str
    control_flows: Tuple[PeriodicFlow, ...]
    control_noise: EventTemplate
    control_noise_per_hour: float
    automated: EventTemplate
    automated_burst: Optional[BurstSpec]
    manual: EventTemplate
    manual_stream: Optional[StreamSpec] = None
    manual_tail: Optional[BurstSpec] = None
    #: Alternative manual actions (Table 1 lists several commands per
    #: device).  Rendering picks uniformly among
    #: ``(manual, *manual_variants)``, making the manual class multimodal.
    manual_variants: Tuple[EventTemplate, ...] = ()
    n_command: int = 5
    confusion: float = 0.04
    simple_rule_size: Optional[int] = None  # manual first-packet size rule

    @property
    def uses_simple_rules(self) -> bool:
        """Whether manual events are identified by a packet-size rule."""
        return self.simple_rule_size is not None

    def manual_templates(self) -> Tuple[EventTemplate, ...]:
        """All manual action templates (primary + variants)."""
        return (self.manual, *self.manual_variants)


# ---------------------------------------------------------------------------
# Shared class-conditional marker profiles
# ---------------------------------------------------------------------------

#: Unpredictable control events: device-initiated, often plain TCP/UDP,
#: small frames at a lazy pace on telemetry/API endpoints.
_CONTROL_BASE = EventTemplate(
    n_packets=(2, 7),
    first_inbound_prob=0.04,
    inbound_prob=0.12,
    tcp_prob=0.6,
    tls_prob=0.35,
    psh_prob=0.12,
    service_high="push",
    service_low="telemetry",
    port_high_prob=0.02,
    size_big_prob=0.06,
    iat_fast_prob=0.1,
)

#: Automated notification events: cloud-push initiated, TLS, data frames.
_AUTOMATED_BASE = EventTemplate(
    n_packets=(2, 8),
    first_inbound_prob=0.96,
    inbound_prob=0.85,
    tcp_prob=0.98,
    tls_prob=0.98,
    psh_prob=0.88,
    service_high="relay",
    service_low="push",
    port_high_prob=0.15,
    size_big_prob=0.28,
    iat_fast_prob=0.45,
)

#: Manual command events: relay-heavy, mixed direction, large frames in
#: tight bursts.
_MANUAL_BASE = EventTemplate(
    n_packets=(3, 9),
    first_inbound_prob=0.95,
    inbound_prob=0.3,
    tcp_prob=0.72,
    tls_prob=0.96,
    psh_prob=0.3,
    service_high="relay",
    service_low="api",
    port_high_prob=0.88,
    size_big_prob=0.88,
    iat_fast_prob=0.93,
)

#: Manual action variants (Table 1's secondary commands): the same
#: marker family with shifted odds — multimodality within the class.
def _manual_variants_for(base: EventTemplate) -> Tuple[EventTemplate, ...]:
    return (
        replace(base, port_high_prob=0.75, size_big_prob=0.75, iat_fast_prob=0.85),
        replace(base, inbound_prob=0.5, psh_prob=0.45),
    )


# ---------------------------------------------------------------------------
# Device families
# ---------------------------------------------------------------------------

def _speaker_flows(vendor: str) -> Tuple[PeriodicFlow, ...]:
    return (
        PeriodicFlow("api", period_s=20.0, size_out=145, size_in=97),
        PeriodicFlow("telemetry", period_s=60.0, size_out=310),
        PeriodicFlow("push", period_s=30.0, size_in=121),
        PeriodicFlow("ntp", period_s=120.0, size_out=76, size_in=76, protocol="udp", tls=TLS_NONE),
    )


def _speaker_profile(
    name: str, vendor: str, model: str, n_command: int, confusion: float
) -> DeviceProfile:
    return DeviceProfile(
        name=name,
        vendor=vendor,
        model=model,
        device_class="speaker",
        control_flows=_speaker_flows(vendor),
        control_noise=_CONTROL_BASE,
        control_noise_per_hour=1.2,
        automated=_AUTOMATED_BASE,
        automated_burst=BurstSpec(size=540, n_packets=36, iat_s=0.5, service="push"),
        manual=_MANUAL_BASE,
        manual_tail=BurstSpec(size=480, n_packets=4, iat_s=1.0, service="relay"),
        manual_variants=_manual_variants_for(_MANUAL_BASE),
        n_command=n_command,
        confusion=confusion,
    )


def _camera_flows() -> Tuple[PeriodicFlow, ...]:
    return (
        PeriodicFlow("api", period_s=15.0, size_out=132, size_in=88),
        PeriodicFlow("keepalive", period_s=25.0, size_out=66, protocol="udp", tls=TLS_NONE),
        PeriodicFlow("telemetry", period_s=90.0, size_out=412),
    )


def _camera_profile(name: str, vendor: str, model: str, confusion: float) -> DeviceProfile:
    manual = replace(
        _MANUAL_BASE,
        n_packets=(8, 16),
        first_udp_prob=0.85 if vendor == "wyze" else 0.0,
        size_big=(1050.0, 110.0),
    )
    return DeviceProfile(
        name=name,
        vendor=vendor,
        model=model,
        device_class="camera",
        control_flows=_camera_flows(),
        control_noise=replace(_CONTROL_BASE, n_packets=(2, 4)),
        control_noise_per_hour=0.8,
        automated=_AUTOMATED_BASE,
        automated_burst=BurstSpec(size=820, n_packets=36, iat_s=0.25, service="upload", inbound=False),
        # watch live video: the unpredictable head, then the predictable
        # constant-rate stream sized so ~60-65 % of manual traffic is
        # stream (Fig 2's camera observation)
        manual=manual,
        manual_stream=StreamSpec(rate_pps=6.0, size=1100, duration_range_s=(4.0, 8.0)),
        manual_variants=_manual_variants_for(manual),
        n_command=41 if vendor == "wyze" else 20,
        confusion=confusion,
    )


def _plug_flows() -> Tuple[PeriodicFlow, ...]:
    return (
        PeriodicFlow("api", period_s=30.0, size_out=102, size_in=102),
        PeriodicFlow("telemetry", period_s=180.0, size_out=221),
    )


def _plug_profile(name: str, vendor: str, model: str, notify_size: int) -> DeviceProfile:
    return DeviceProfile(
        name=name,
        vendor=vendor,
        model=model,
        device_class="plug",
        control_flows=_plug_flows(),
        control_noise=replace(_CONTROL_BASE, n_packets=(2, 2), size_small=(140.0, 25.0)),
        control_noise_per_hour=0.3,
        # Plugs: only 2 notification packets per command (Fig 2: the
        # automated/manual categories are fully unpredictable), with the
        # paper's distinctive first-packet sizes enabling simple rules.
        automated=replace(
            _AUTOMATED_BASE, n_packets=(2, 2), first_size=notify_size - 37,
            size_small=(170.0, 30.0), size_big_prob=0.1,
        ),
        automated_burst=None,
        manual=replace(
            _MANUAL_BASE, n_packets=(2, 2), first_size=notify_size,
            size_small=(200.0, 30.0), size_big_prob=0.1,
        ),
        n_command=1,
        confusion=0.0,
        simple_rule_size=notify_size,
    )


def _thermostat_profile(name: str) -> DeviceProfile:
    return DeviceProfile(
        name=name,
        vendor="nest",
        model="Nest-E",
        device_class="thermostat",
        control_flows=(
            PeriodicFlow("api", period_s=25.0, size_out=156, size_in=104),
            PeriodicFlow("telemetry", period_s=45.0, size_out=287),
            PeriodicFlow("weather", period_s=150.0, size_in=640),
        ),
        # Motion-sensor wakeups: frequent events whose intervals drift by
        # seconds; responsible for Nest's outlier 90.7 % control
        # predictability in Fig 2.
        control_noise=replace(_CONTROL_BASE, n_packets=(4, 10)),
        control_noise_per_hour=5.0,
        automated=replace(
            _AUTOMATED_BASE, n_packets=(2, 3), first_size=230,
            size_small=(210.0, 35.0), size_big_prob=0.15,
        ),
        automated_burst=BurstSpec(size=364, n_packets=22, iat_s=0.8, service="api"),
        manual=replace(
            _MANUAL_BASE, n_packets=(2, 3), first_size=267,
            size_small=(240.0, 35.0), size_big_prob=0.15,
        ),
        n_command=2,
        confusion=0.0,
        simple_rule_size=267,
    )


def _vacuum_profile() -> DeviceProfile:
    return DeviceProfile(
        name="E4",
        vendor="roborock",
        model="E4 Mop Robot",
        device_class="vacuum",
        control_flows=(
            PeriodicFlow("api", period_s=40.0, size_out=188, size_in=112),
            PeriodicFlow("telemetry", period_s=120.0, size_out=356),
        ),
        control_noise=_CONTROL_BASE,
        control_noise_per_hour=0.8,
        automated=_AUTOMATED_BASE,
        automated_burst=BurstSpec(size=488, n_packets=26, iat_s=0.6, service="api"),
        manual=replace(_MANUAL_BASE, n_packets=(5, 10)),
        manual_variants=_manual_variants_for(replace(_MANUAL_BASE, n_packets=(2, 5))),
        n_command=8,
        # The E4 is the least-used device (8 interactions in IL): its
        # small training set plus "complex" app interactions give it the
        # worst Table 6 numbers, modelled as elevated template confusion.
        confusion=0.07,
    )


#: The ten testbed devices of Table 1, keyed by name.
TESTBED: Dict[str, DeviceProfile] = {
    profile.name: profile
    for profile in (
        _speaker_profile("EchoDot4", "amazon", "Echo Dot 4", n_command=10, confusion=0.02),
        _speaker_profile("HomeMini", "google", "Home Mini", n_command=15, confusion=0.02),
        _camera_profile("WyzeCam", "wyze", "WyzeCam", confusion=0.015),
        _plug_profile("SP10", "teckin", "SP10", notify_size=235),
        _speaker_profile("Home", "google", "Google Home", n_command=30, confusion=0.055),
        _thermostat_profile("Nest-E"),
        _speaker_profile("EchoDot3", "amazon", "Echo Dot 3", n_command=10, confusion=0.015),
        _vacuum_profile(),
        _camera_profile("Blink", "amazon", "Blink Camera", confusion=0.02),
        _plug_profile("WP3", "gosund", "WP3", notify_size=239),
    )
}


def profile_for(name: str) -> DeviceProfile:
    """Look up a testbed profile by device name."""
    try:
        return TESTBED[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(TESTBED)}"
        ) from None


#: Bose SoundTouch 10 profile used only for Fig 1(a): 8 periodic flows,
#: no routines or manual interactions (as observed in YourThings).
BOSE_SOUNDTOUCH = DeviceProfile(
    name="BoseSoundTouch",
    vendor="bose",
    model="SoundTouch 10",
    device_class="speaker",
    control_flows=(
        PeriodicFlow("api", period_s=10.0, size_out=139),
        PeriodicFlow("api", period_s=10.0, size_in=97),
        PeriodicFlow("push", period_s=20.0, size_in=121),
        PeriodicFlow("push", period_s=20.0, size_out=88),
        PeriodicFlow("telemetry", period_s=30.0, size_out=412),
        PeriodicFlow("ntp", period_s=64.0, size_out=76, size_in=76, protocol="udp", tls=TLS_NONE),
        PeriodicFlow("discovery", period_s=45.0, size_out=212, protocol="udp", tls=TLS_NONE),
        PeriodicFlow("cdn", period_s=90.0, size_in=534),
    ),
    control_noise=replace(_CONTROL_BASE, n_packets=(1, 2)),
    control_noise_per_hour=0.2,
    automated=_AUTOMATED_BASE,
    automated_burst=None,
    manual=_MANUAL_BASE,
    n_command=5,
)
