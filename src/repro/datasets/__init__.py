"""Synthetic stand-ins for the public datasets analysed in §2."""

from .inspector import generate_inspector, inspector_device_predictability
from .moniotr import generate_moniotr_active, generate_moniotr_idle
from .synthetic import SyntheticDeviceSpec, generate_corpus, generate_device_trace
from .yourthings import generate_yourthings

__all__ = [
    "SyntheticDeviceSpec",
    "generate_corpus",
    "generate_device_trace",
    "generate_yourthings",
    "generate_moniotr_idle",
    "generate_moniotr_active",
    "generate_inspector",
    "inspector_device_predictability",
]
