"""Unit tests for the keystore, pairing and replay protection."""

import pytest

from repro.crypto import (
    KeystoreError,
    ReplayCache,
    SecureKeystore,
    SignedMessage,
    pair,
    payload_digest,
)


class TestKeystore:
    def test_sign_verify_roundtrip(self):
        store = SecureKeystore("phone")
        store.generate_key("k1")
        message = store.sign("k1", b"hello")
        assert store.verify(message)

    def test_tampered_payload_fails(self):
        store = SecureKeystore("phone")
        store.generate_key("k1")
        message = store.sign("k1", b"hello")
        forged = SignedMessage(payload=b"evil", signature=message.signature, key_alias="k1")
        assert not store.verify(forged)

    def test_unknown_alias_verifies_false(self):
        store = SecureKeystore("proxy")
        message = SignedMessage(payload=b"x", signature="00" * 32, key_alias="ghost")
        assert not store.verify(message)

    def test_sign_unknown_alias_raises(self):
        with pytest.raises(KeystoreError):
            SecureKeystore("p").sign("nope", b"x")

    def test_short_key_rejected(self):
        with pytest.raises(KeystoreError):
            SecureKeystore("p").install_key("k", b"short")

    def test_wire_roundtrip(self):
        store = SecureKeystore("phone")
        store.generate_key("k1")
        message = store.sign("k1", b"payload-bytes")
        assert SignedMessage.from_wire(message.to_wire()) == message

    def test_no_public_key_access(self):
        store = SecureKeystore("phone")
        store.generate_key("k1")
        public = [name for name in dir(store) if not name.startswith("_")]
        assert "keys" not in public  # TEE contract: no key extraction API


class TestPairing:
    def test_paired_stores_interoperate(self):
        phone, proxy = pair("phone", "proxy")
        message = phone.sign("fiat-pairing", b"proof")
        assert proxy.verify(message)

    def test_foreign_device_rejected(self):
        phone, proxy = pair("phone", "proxy")
        attacker, _ = pair("attacker-phone", "attacker-proxy")
        message = attacker.sign("fiat-pairing", b"proof")
        assert not proxy.verify(message)

    def test_payload_digest_stable(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest({"b": 2, "a": 1})
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})


class TestReplayCache:
    def test_fresh_then_replay(self):
        cache = ReplayCache(window_seconds=60.0)
        assert cache.check_and_register("n1", now=0.0)
        assert not cache.check_and_register("n1", now=10.0)
        assert cache.n_replays_detected == 1

    def test_expired_identifier_accepted_again(self):
        cache = ReplayCache(window_seconds=60.0)
        cache.check_and_register("n1", now=0.0)
        assert cache.check_and_register("n1", now=120.0)

    def test_eviction_bounds_memory(self):
        cache = ReplayCache(window_seconds=1e9, max_entries=10)
        for i in range(50):
            cache.check_and_register(f"n{i}", now=float(i))
        assert len(cache) <= 11

    def test_clear(self):
        cache = ReplayCache()
        cache.check_and_register("n1", now=0.0)
        cache.clear()
        assert cache.check_and_register("n1", now=1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ReplayCache(window_seconds=0)
        with pytest.raises(ValueError):
            ReplayCache(max_entries=0)


class TestReplayCacheBoundaries:
    """Exact-boundary behaviour of the time window and the entry cap."""

    def test_reobservation_exactly_at_window_is_replay(self):
        cache = ReplayCache(window_seconds=60.0)
        cache.check_and_register("n1", now=0.0)
        # age == window_seconds: still inside the closed window
        assert not cache.check_and_register("n1", now=60.0)

    def test_reobservation_just_past_window_is_fresh(self):
        cache = ReplayCache(window_seconds=60.0)
        cache.check_and_register("n1", now=0.0)
        assert cache.check_and_register("n1", now=60.0 + 1e-6)

    def test_eviction_requires_age_strictly_beyond_window(self):
        cache = ReplayCache(window_seconds=60.0)
        cache.check_and_register("n1", now=0.0)
        cache.check_and_register("n2", now=60.0)  # n1 age == window: kept
        assert len(cache) == 2
        cache.check_and_register("n3", now=61.0)  # now n1 is evicted
        assert len(cache) == 2

    def test_max_entries_overflow_evicts_oldest_first(self):
        cache = ReplayCache(window_seconds=1e9, max_entries=3)
        for i in range(5):
            cache.check_and_register(f"n{i}", now=float(i))
        # oldest identifiers fell out; the newest are replay-protected
        assert cache.check_and_register("n0", now=5.0)  # evicted => fresh again
        assert not cache.check_and_register("n4", now=5.0)

    def test_reregistered_evicted_nonce_restarts_its_window(self):
        cache = ReplayCache(window_seconds=50.0)
        cache.check_and_register("n1", now=0.0)
        assert cache.check_and_register("n1", now=100.0)  # expired, fresh again
        assert not cache.check_and_register("n1", now=120.0)  # new window active
        assert cache.n_replays_detected == 1

    def test_replay_does_not_refresh_recency_order(self):
        """A detected replay leaves the original registration untouched.

        The attacker cannot keep an identifier hot by replaying it: the
        eviction order is set by first registration only, so under cap
        pressure the oldest original is still evicted first.
        """
        cache = ReplayCache(window_seconds=1e9, max_entries=2)
        cache.check_and_register("a", now=0.0)
        cache.check_and_register("b", now=1.0)
        assert not cache.check_and_register("a", now=2.0)  # replay: no refresh
        cache.check_and_register("c", now=3.0)  # overflow evicts "a" (oldest)
        assert cache.check_and_register("a", now=4.0)  # evicted => fresh again


class TestReplayCacheEvictionRegressions:
    """Regressions for the exceed-by-one and stale-behind-fresh-head bugs."""

    def test_cap_holds_immediately_after_every_insert(self):
        cache = ReplayCache(window_seconds=1e9, max_entries=3)
        for i in range(10):
            cache.check_and_register(f"n{i}", now=float(i))
            # The bound must hold *within* the call, not merely at the
            # start of the next one: an exceed-by-one cache is unbounded
            # for a caller that never registers again.
            assert len(cache) <= 3

    def test_stale_entry_behind_fresh_head_is_evicted(self):
        """Clock regression must not shield expired entries.

        Under a clock-skew fault an entry can be *inserted* with a later
        timestamp than an entry registered after it.  Time-based eviction
        that stops scanning at the first fresh entry (insertion order)
        would then keep the stale one alive forever.
        """
        cache = ReplayCache(window_seconds=60.0)
        cache.check_and_register("fresh", now=100.0)
        cache.check_and_register("old", now=0.0)  # clock regressed
        # now=90: "old" is 90s past its registration (> window) while the
        # insertion-order head "fresh" is not expired.
        cache.check_and_register("other", now=90.0)
        assert len(cache) == 2  # "old" gone despite sitting behind "fresh"
        assert cache.check_and_register("old", now=90.0)  # fresh again

    def test_expired_entries_do_not_consume_cap(self):
        cache = ReplayCache(window_seconds=10.0, max_entries=2)
        cache.check_and_register("a", now=0.0)
        cache.check_and_register("b", now=1.0)
        # both expired by now=50: the cap has room without evicting "c"
        cache.check_and_register("c", now=50.0)
        cache.check_and_register("d", now=51.0)
        assert len(cache) == 2
        assert not cache.check_and_register("c", now=52.0)
        assert not cache.check_and_register("d", now=52.0)
