"""Tests for the ``repro.obs`` metrics registry and snapshot algebra."""

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_MS,
    CounterView,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    NULL_OBS,
    Observability,
)


class TestCounters:
    def test_inc_and_total(self):
        registry = MetricsRegistry()
        registry.inc("packets_total", action="allow")
        registry.inc("packets_total", action="allow")
        registry.inc("packets_total", 3, action="drop")
        assert registry.get_counter("packets_total", action="allow") == 2
        assert registry.get_counter("packets_total", action="drop") == 3
        assert registry.counter_total("packets_total") == 5

    def test_unlabelled_and_labelled_series_coexist(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", device="SP10")
        assert registry.get_counter("hits") == 1
        assert registry.counter_total("hits") == 2

    def test_set_counter_is_absolute(self):
        registry = MetricsRegistry()
        registry.set_counter("n", 10)
        registry.set_counter("n", 7)
        assert registry.get_counter("n") == 7

    def test_unseen_counter_reads_zero(self):
        assert MetricsRegistry().get_counter("never") == 0.0


class TestGauges:
    def test_set_get(self):
        registry = MetricsRegistry()
        registry.set_gauge("breaker_state", 2, component="validation")
        assert registry.get_gauge("breaker_state", component="validation") == 2
        registry.set_gauge("breaker_state", 0, component="validation")
        assert registry.get_gauge("breaker_state", component="validation") == 0
        assert registry.get_gauge("breaker_state", default=-1, component="ml") == -1


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        h = Histogram((1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
        assert h.min == 0.5 and h.max == 500.0
        assert h.mean == pytest.approx(555.5 / 4)
        assert h.counts == [1, 1, 1, 1]  # one per bucket incl. +Inf

    def test_percentile_single_observation_is_exact(self):
        h = Histogram()
        h.observe(0.042)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert h.percentile(q) == pytest.approx(0.042)

    def test_percentile_monotone_and_clamped(self):
        h = Histogram((1.0, 2.0, 4.0, 8.0))
        for v in (0.5, 1.5, 3.0, 6.0, 7.0, 12.0):
            h.observe(v)
        p50, p95 = h.percentile(0.5), h.percentile(0.95)
        assert h.min <= p50 <= p95 <= h.max

    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))

    def test_registry_pins_boundaries_per_name(self):
        registry = MetricsRegistry()
        registry.observe("lat_ms", 3.0, boundaries=(1.0, 10.0), device="a")
        # later label sets of the same name reuse the established
        # boundaries so the series stay merge-compatible
        registry.observe("lat_ms", 3.0, boundaries=(5.0, 50.0), device="b")
        assert registry.get_histogram("lat_ms", device="b").boundaries == (1.0, 10.0)

    def test_default_boundaries(self):
        registry = MetricsRegistry()
        registry.observe("lat_ms", 3.0)
        assert registry.get_histogram("lat_ms").boundaries == DEFAULT_LATENCY_BUCKETS_MS


class TestLabelCardinalityCap:
    def test_overflow_folds_into_reserved_series(self):
        registry = MetricsRegistry(max_label_sets=2)
        registry.inc("c", key="a")
        registry.inc("c", key="b")
        registry.inc("c", key="c")  # beyond the cap
        registry.inc("c", key="d")
        registry.inc("c", key="a")  # existing series still addressable
        assert registry.get_counter("c", key="a") == 2
        assert registry.get_counter("c", _overflow="true") == 2
        assert registry.n_label_overflows == 2
        assert registry.counter_total("c") == 5

    def test_cap_applies_per_metric_name(self):
        registry = MetricsRegistry(max_label_sets=1)
        registry.inc("x", k="1")
        registry.inc("y", k="1")
        assert registry.n_label_overflows == 0

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_label_sets=0)


class TestSnapshot:
    def _populated(self):
        registry = MetricsRegistry()
        registry.inc("packets_total", 7, action="allow")
        registry.set_gauge("breaker_state", 1, component="ml")
        registry.observe("lat_ms", 0.02)
        registry.observe("lat_ms", 0.08)
        return registry

    def test_json_round_trip(self):
        snapshot = self._populated().snapshot()
        restored = MetricsSnapshot.from_json(snapshot.to_json())
        assert restored.to_json() == snapshot.to_json()
        assert restored.counter_total("packets_total") == 7
        assert restored.histogram("lat_ms").count == 2

    def test_snapshot_is_frozen_copy(self):
        registry = self._populated()
        snapshot = registry.snapshot()
        registry.inc("packets_total", 100, action="allow")
        registry.observe("lat_ms", 0.5)
        assert snapshot.counter_total("packets_total") == 7
        assert snapshot.histogram("lat_ms").count == 2

    def test_delta(self):
        registry = self._populated()
        before = registry.snapshot()
        registry.inc("packets_total", 3, action="allow")
        registry.observe("lat_ms", 0.04)
        registry.set_gauge("breaker_state", 2, component="ml")
        interval = registry.snapshot().delta(before)
        assert interval.counter_total("packets_total") == 3
        assert interval.histogram("lat_ms").count == 1
        # gauges are instantaneous: the later value is kept
        assert interval.gauges["breaker_state"]["component=ml"] == 2

    def test_merge_adds_counters_and_histograms(self):
        a = self._populated().snapshot()
        b = self._populated().snapshot()
        merged = a.merge(b)
        assert merged.counter_total("packets_total") == 14
        h = merged.histogram("lat_ms")
        assert h.count == 4
        assert h.sum == pytest.approx(0.2)

    def test_merge_disjoint_series_pass_through(self):
        a = MetricsRegistry()
        a.inc("only_a")
        b = MetricsRegistry()
        b.inc("only_b", 5)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.counter_total("only_a") == 1
        assert merged.counter_total("only_b") == 5

    def test_render_prometheus(self):
        text = self._populated().snapshot().render_prometheus()
        assert "# TYPE packets_total counter" in text
        assert 'packets_total{action="allow"} 7' in text
        assert 'breaker_state{component="ml"} 1' in text
        assert "lat_ms_count 2" in text
        assert 'le="+Inf"' in text

    def test_empty(self):
        assert MetricsRegistry().snapshot().empty
        assert not self._populated().snapshot().empty


class TestCounterView:
    def test_dict_surface(self):
        registry = MetricsRegistry()
        view = CounterView(registry, "health_total", initial=("a", "b"))
        assert view.as_dict() == {"a": 0, "b": 0}
        view["a"] += 1
        view["a"] += 1
        view["c"] = 5
        assert view["a"] == 2
        assert view == {"a": 2, "b": 0, "c": 5}
        assert "c" in view and "z" not in view
        assert sorted(view.keys()) == ["a", "b", "c"]
        assert view.get("z", 9) == 9

    def test_writes_land_in_registry(self):
        registry = MetricsRegistry()
        view = CounterView(registry, "health_total")
        view["classifier_errors"] = 3
        assert registry.get_counter("health_total", kind="classifier_errors") == 3
        # and registry-side writes are visible through the view
        registry.inc("health_total", kind="classifier_errors")
        assert view["classifier_errors"] == 4


class TestObservabilityHandle:
    def test_disabled_handle_is_inert(self):
        obs = Observability(enabled=False)
        obs.inc("c")
        obs.gauge("g", 1)
        obs.observe("h", 1.0)
        with obs.timer("t"):
            pass
        assert obs.mint_trace("proof") == ""
        assert obs.snapshot().empty

    def test_null_obs_shared_and_disabled(self):
        assert NULL_OBS.enabled is False
        NULL_OBS.inc("c")
        assert NULL_OBS.snapshot().empty

    def test_enabled_handle_records(self):
        obs = Observability()
        obs.inc("c", device="SP10")
        with obs.timer("t_ms"):
            pass
        snapshot = obs.snapshot()
        assert snapshot.counter_total("c") == 1
        assert snapshot.histogram("t_ms").count == 1

    def test_trace_ids_deterministic_and_distinct(self):
        a = Observability(trace_seed=1)
        b = Observability(trace_seed=1)
        first = a.mint_trace("proof")
        assert first == b.mint_trace("proof")
        assert first.startswith("proof-")
        assert a.mint_trace("proof") != first
        assert Observability(trace_seed=2).mint_trace("proof") != first
