"""Cross-location end-to-end coverage (§3.3 'Location', §4.3)."""

import numpy as np
import pytest

from repro.core import FiatConfig, FiatSystem
from repro.core.classifier import train_event_classifier
from repro.features import event_labels
from repro.ml import f1_score
from repro.testbed import (
    CloudDirectory,
    Household,
    HouseholdConfig,
    Location,
    generate_labeled_events,
    profile_for,
)


class TestLocationAddressing:
    def test_domains_follow_location(self):
        cloud = CloudDirectory(seed=1)
        for location, suffix in (
            (Location.US, ".com"),
            (Location.JP, ".co.jp"),
            (Location.DE, ".de"),
        ):
            endpoint = cloud.endpoint("google", "api", location)
            assert endpoint.domain.endswith(suffix)

    def test_household_at_vpn_location(self):
        config = HouseholdConfig(duration_s=600.0, seed=4, location=Location.DE)
        result = Household(["EchoDot4"], config).simulate()
        domains = {
            result.cloud.dns.domain_for(p.remote_ip)
            for p in result.trace
        }
        domains.discard(None)
        assert domains and all(d.endswith(".de") for d in domains)

    def test_ip_prefixes_differ_by_location(self):
        cloud = CloudDirectory(seed=1)
        us = cloud.endpoint("wyze", "api", Location.US)
        jp = cloud.endpoint("wyze", "api", Location.JP)
        us_prefixes = {ip.split(".")[0] for ip in us.ips}
        jp_prefixes = {ip.split(".")[0] for ip in jp.ips}
        assert us_prefixes.isdisjoint(jp_prefixes)


class TestCrossLocationDeployment:
    def test_fiat_system_at_de_location(self):
        """The full Table-6 pipeline works at a VPN location."""
        system = FiatSystem(
            ["SP10", "EchoDot4"],
            config=FiatConfig(bootstrap_s=0.0),
            location=Location.DE,
            seed=9,
            n_training_events=120,
        )
        results = system.run_accuracy(n_manual=10, n_non_manual=20, n_attacks=10)
        assert results["SP10"].manual_recall == 1.0
        assert results["EchoDot4"].manual_recall > 0.7

    def test_model_trained_us_deployed_jp(self):
        """§4.3's transfer, exercised through the deployed classifier."""
        profile = profile_for("WyzeCam")
        us_events = generate_labeled_events(
            profile, location=Location.US, n_manual=50, n_automated=80,
            n_control=80, seed=30,
        )
        classifier = train_event_classifier(profile, us_events)
        jp_events = generate_labeled_events(
            profile, location=Location.JP, n_manual=40, n_automated=60,
            n_control=60, seed=31,
        )
        truth = event_labels(jp_events)
        predictions = np.array(
            [classifier.classify_packets(e.first_n(5)) for e in jp_events]
        )
        assert f1_score(truth, predictions, "manual") > 0.75
