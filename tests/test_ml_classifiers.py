"""Behavioural tests shared across all nine Table-2 classifiers."""

import numpy as np
import pytest

from repro.ml import (
    AdaBoostClassifier,
    BernoulliNB,
    DecisionTreeClassifier,
    GaussianNB,
    KNeighborsClassifier,
    LinearSVC,
    MLPClassifier,
    NearestCentroidClassifier,
    RandomForestClassifier,
)

ALL_MODELS = [
    pytest.param(lambda: NearestCentroidClassifier("euclidean"), id="ncc-euclidean"),
    pytest.param(lambda: NearestCentroidClassifier("manhattan"), id="ncc-manhattan"),
    pytest.param(lambda: NearestCentroidClassifier("chebyshev"), id="ncc-chebyshev"),
    pytest.param(lambda: KNeighborsClassifier(n_neighbors=3), id="knn"),
    pytest.param(lambda: BernoulliNB(), id="bernoulli-nb"),
    pytest.param(lambda: GaussianNB(), id="gaussian-nb"),
    pytest.param(lambda: DecisionTreeClassifier(max_depth=4), id="decision-tree"),
    pytest.param(lambda: RandomForestClassifier(n_estimators=15, seed=0), id="random-forest"),
    pytest.param(lambda: AdaBoostClassifier(n_estimators=15, seed=0), id="adaboost"),
    pytest.param(lambda: LinearSVC(n_epochs=20, seed=0), id="linear-svc"),
    pytest.param(
        lambda: MLPClassifier(hidden_layer_sizes=(16,), n_epochs=120, seed=0), id="mlp"
    ),
]


def _blobs(n=40, centers=((-2.0, -2.0), (2.0, 2.0)), seed=0):
    rng = np.random.default_rng(seed)
    X, y = [], []
    for label, center in enumerate(centers):
        X.append(rng.normal(loc=center, scale=0.6, size=(n, len(center))))
        y.extend([label] * n)
    return np.vstack(X), np.asarray(y)


@pytest.mark.parametrize("make_model", ALL_MODELS)
class TestAllClassifiers:
    def test_fit_predict_separable(self, make_model):
        X, y = _blobs()
        model = make_model().fit(X, y)
        assert model.score(X, y) > 0.9

    def test_generalises_to_fresh_samples(self, make_model):
        X, y = _blobs(seed=0)
        X_test, y_test = _blobs(seed=99)
        model = make_model().fit(X, y)
        assert model.score(X_test, y_test) > 0.85

    def test_three_classes(self, make_model):
        # Centers chosen so the default binarisation threshold (0) still
        # separates all three classes for BernoulliNB.
        X, y = _blobs(centers=((-3, -3), (3, -3), (-3, 3)))
        model = make_model().fit(X, y)
        assert model.score(X, y) > 0.85
        assert set(model.predict(X)) <= {0, 1, 2}

    def test_string_labels(self, make_model):
        X, y = _blobs()
        labels = np.where(y == 0, "cat", "dog")
        model = make_model().fit(X, labels)
        assert set(model.predict(X)) <= {"cat", "dog"}

    def test_predict_before_fit_raises(self, make_model):
        with pytest.raises(RuntimeError):
            make_model().predict([[0.0, 0.0]])


@pytest.mark.parametrize(
    "make_model",
    [p for p in ALL_MODELS if p.id not in ("linear-svc",)],
)
class TestProbabilities:
    def test_predict_proba_rows_sum_to_one(self, make_model):
        X, y = _blobs()
        model = make_model().fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (len(X), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0.0)

    def test_argmax_matches_predict(self, make_model):
        X, y = _blobs()
        model = make_model().fit(X, y)
        proba = model.predict_proba(X)
        hard = model.predict(X)
        assert np.mean(model.classes_[np.argmax(proba, axis=1)] == hard) > 0.95
