"""Table 6: FIAT end-to-end accuracy over the 10-device testbed.

Runs the §6 experiment: 50 scripted manual operations per device (with
genuine human motion and signed proofs), 120 non-manual unpredictable
events, and 50 account-compromise attacks (30 % of which run spyware
that forwards still-phone sensor proofs).  Reports, per device: event
classifier precision/recall (manual and non-manual), the aggregated
humanness-validation precision/recall, and the empirical FP/FN columns,
next to the Appendix-A closed-form rates computed from the measured
recalls.

Paper shape: rule devices (SP10, WP3, Nest-E) plus the cameras are
perfect; the remaining devices show a few percent FP and FN, with the
least-trained device (E4, and the complex speakers here) worst; human
validation ~0.99/0.93 (human) and ~0.94/0.98 (non-human).
"""

from repro.core import FiatConfig, FiatSystem, Recalls, table6_error_columns
from repro.testbed import TESTBED

from benchmarks._helpers import print_table

RULE_DEVICES = {"SP10", "WP3", "Nest-E"}


def test_table6_fiat_accuracy(benchmark):
    system = FiatSystem(
        list(TESTBED),
        config=FiatConfig(bootstrap_s=0.0),
        seed=0,
        n_training_events=240,
    )

    results = benchmark.pedantic(
        lambda: system.run_accuracy(n_manual=50, n_non_manual=120, n_attacks=50),
        rounds=1,
        iterations=1,
    )
    human = system.human_validation_rates()

    rows = []
    for device, row in results.items():
        analytic = table6_error_columns(
            Recalls(
                manual=row.manual_recall,
                non_manual=row.non_manual_recall,
                human=human["human_recall"],
                non_human=human["non_human_recall"],
            )
        )
        rows.append(
            (
                device,
                f"{row.manual_precision:.2f}/{row.manual_recall:.2f}",
                f"{row.non_manual_precision:.2f}/{row.non_manual_recall:.2f}",
                f"{row.fp_non_manual_blocked * 100:.1f}%",
                f"{row.fp_manual_blocked * 100:.1f}%",
                f"{row.false_negative * 100:.1f}%",
                f"{analytic['false_negative'] * 100:.1f}%",
            )
        )
    print_table(
        "Table 6 — FIAT accuracy "
        "(paper: zero FP/FN for half the devices, <= 5.72 % for the rest)",
        (
            "device",
            "manual P/R",
            "non-manual P/R",
            "FP non-manual blocked",
            "FP manual blocked",
            "FN empirical",
            "FN Appendix-A",
        ),
        rows,
    )
    print(
        "humanness validation (paper 0.992/0.934 human, 0.938/0.982 non-human): "
        f"{human['human_precision']:.3f}/{human['human_recall']:.3f} human, "
        f"{human['non_human_precision']:.3f}/{human['non_human_recall']:.3f} non-human"
    )

    # Rule devices classify perfectly (paper: 100/100).
    for device in RULE_DEVICES:
        assert results[device].manual_precision == 1.0, device
        assert results[device].manual_recall == 1.0, device

    # Every device: high recall, bounded errors.
    for device, row in results.items():
        assert row.manual_recall > 0.8, device
        assert row.non_manual_recall > 0.9, device
        assert row.fp_non_manual_blocked < 0.08, device
        assert row.fp_manual_blocked < 0.12, device
        assert row.false_negative < 0.2, device

    # At least some devices reach the paper's "zero errors" band.
    zero_fn = [d for d, r in results.items() if r.false_negative <= 0.02]
    assert len(zero_fn) >= 3

    # Humanness validation lands in the paper's band.
    assert human["human_recall"] > 0.85
    assert human["non_human_recall"] > 0.9
