"""Predictability engine: the paper's §2.1 bucket heuristic and analyses."""

from .aggregation import WindowRecord, aggregate_trace, windowed_predictability
from .analyzer import (
    DevicePredictability,
    PredictabilityReport,
    analyze_trace,
    cdf,
    max_predictable_intervals,
)
from .buckets import DEFAULT_RESOLUTION, BucketPredictor, label_predictable, quantize_iat

__all__ = [
    "BucketPredictor",
    "label_predictable",
    "quantize_iat",
    "DEFAULT_RESOLUTION",
    "DevicePredictability",
    "PredictabilityReport",
    "analyze_trace",
    "max_predictable_intervals",
    "cdf",
    "WindowRecord",
    "aggregate_trace",
    "windowed_predictability",
]
