"""Population-level aggregation: many :class:`HomeResult` → one report.

The fleet report answers the questions one home cannot: how accuracy is
*distributed* across a population (percentiles, not a single Table-6
row), what the per-traffic-class confusion totals look like fleet-wide,
how alerts roll up, and what the merged metrics registry of all shards
says.  Merging rides on :meth:`repro.obs.MetricsSnapshot.merge` — the
fleet is the first real consumer of the sharded-deployment contract the
registry was designed around.

Determinism contract: :func:`aggregate` folds results strictly in spec
order, so the report is a pure function of ``(spec, per-home results)``
— byte-identical whether the homes ran serially, on 2 workers or on 32.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..obs import MetricsSnapshot
from .spec import FleetSpec
from .worker import HomeResult

__all__ = ["FleetReport", "aggregate", "percentile"]

#: Per-device accuracy fields summarised across the population.
POPULATION_FIELDS = (
    "manual_precision",
    "manual_recall",
    "non_manual_precision",
    "non_manual_recall",
    "fp_manual_blocked",
    "fp_non_manual_blocked",
    "false_negative",
)

#: Quantiles reported per population field.
PERCENTILES = (0.1, 0.5, 0.9)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of a sequence (deterministic, pure).

    Matches ``numpy.percentile``'s default ``linear`` method but stays
    in plain Python floats so the report bytes never depend on numpy
    version or dtype promotion rules.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be within [0, 1], got {q}")
    if not values:
        return 0.0
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    within = rank - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * within


@dataclass
class FleetReport:
    """The population report: per-home rows plus fleet-level rollups."""

    name: str
    seed: int
    n_homes: int
    n_ok: int
    n_failed: int
    #: one :class:`HomeResult` encoding per home, in spec order
    homes: List[Dict[str, object]] = field(default_factory=list)
    #: accuracy distribution per field: ``{"p10":…, "p50":…, "p90":…, "mean":…, "n":…}``
    population: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: fleet-wide per-ground-truth-class decision tallies
    class_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: alert tallies by kind across all homes
    alerts: Dict[str, int] = field(default_factory=dict)
    #: merged deterministic :class:`MetricsSnapshot` of every ok shard
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every home completed."""
        return self.n_failed == 0

    @property
    def failed_homes(self) -> List[str]:
        """IDs of homes that did not complete, in spec order."""
        return [str(h["home_id"]) for h in self.homes if h["status"] != "ok"]

    def snapshot(self) -> MetricsSnapshot:
        """Rehydrate the merged fleet metrics snapshot."""
        return MetricsSnapshot(
            counters=dict(self.metrics.get("counters", {})),
            gauges=dict(self.metrics.get("gauges", {})),
            histograms=dict(self.metrics.get("histograms", {})),
        )

    def to_json(self, indent: int = 2) -> str:
        """Canonical JSON encoding — the fleet determinism artifact.

        Sorted keys and a fixed field set: two runs of the same spec
        must produce byte-identical files regardless of backend or
        ``--jobs``, and CI diffs exactly these bytes.
        """
        return json.dumps(
            {
                "name": self.name,
                "seed": self.seed,
                "n_homes": self.n_homes,
                "n_ok": self.n_ok,
                "n_failed": self.n_failed,
                "homes": self.homes,
                "population": self.population,
                "class_counts": self.class_counts,
                "alerts": self.alerts,
                "metrics": self.metrics,
            },
            indent=indent,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FleetReport":
        """Inverse of :meth:`to_json`."""
        data = json.loads(text)
        return cls(
            name=str(data["name"]),
            seed=int(data["seed"]),
            n_homes=int(data["n_homes"]),
            n_ok=int(data["n_ok"]),
            n_failed=int(data["n_failed"]),
            homes=list(data.get("homes", [])),
            population=dict(data.get("population", {})),
            class_counts=dict(data.get("class_counts", {})),
            alerts=dict(data.get("alerts", {})),
            metrics=dict(data.get("metrics", {})),
        )

    def render(self, top: int = 8) -> str:
        """Human-readable digest (the CLI's stdout view)."""
        lines = [
            f"fleet {self.name!r} (seed {self.seed}): "
            f"{self.n_ok}/{self.n_homes} homes ok"
        ]
        if self.n_failed:
            lines.append(f"  failed: {', '.join(self.failed_homes)}")
        if self.population:
            lines.append(f"  {'accuracy field':24s} {'p10':>7s} {'p50':>7s} {'p90':>7s} {'mean':>7s}")
            for name in POPULATION_FIELDS:
                stats = self.population.get(name)
                if stats:
                    lines.append(
                        f"  {name:24s} {stats['p10']:7.3f} {stats['p50']:7.3f} "
                        f"{stats['p90']:7.3f} {stats['mean']:7.3f}"
                    )
        if self.class_counts:
            for cls_name in sorted(self.class_counts):
                tally = self.class_counts[cls_name]
                lines.append(
                    f"  {cls_name:10s} {tally['events']:6d} events, "
                    f"{tally['blocked']:6d} blocked"
                )
        if self.alerts:
            rollup = ", ".join(f"{k}={v}" for k, v in sorted(self.alerts.items()))
            lines.append(f"  alerts: {rollup}")
        rows = [
            (str(h["home_id"]), str(h["status"]), h)
            for h in self.homes
        ]
        for home_id, status, home in rows[:top]:
            detail = (
                f"{len(home.get('devices', {}))} devices, "
                f"{home.get('n_decisions', 0)} decisions"
                if status == "ok"
                else str(home.get("error", ""))
            )
            lines.append(f"  {home_id:12s} {status:7s} {detail}")
        if len(rows) > top:
            lines.append(f"  ... {len(rows) - top} more homes (see the JSON report)")
        return "\n".join(lines)


def aggregate(spec: FleetSpec, results: Sequence[HomeResult]) -> FleetReport:
    """Fold per-home results (in spec order) into one :class:`FleetReport`."""
    if len(results) != len(spec.homes):
        raise ValueError(
            f"expected {len(spec.homes)} results for fleet {spec.name!r}, "
            f"got {len(results)}"
        )
    for home, result in zip(spec.homes, results):
        if home.home_id != result.home_id:
            raise ValueError(
                f"result order mismatch: spec {home.home_id!r} vs "
                f"result {result.home_id!r}"
            )

    ok = [r for r in results if r.ok]
    samples: Dict[str, List[float]] = {name: [] for name in POPULATION_FIELDS}
    class_counts: Dict[str, Dict[str, int]] = {}
    alerts: Dict[str, int] = {}
    merged = MetricsSnapshot()
    for result in ok:
        for row in result.devices.values():
            for name in POPULATION_FIELDS:
                samples[name].append(float(row[name]))
        for cls_name, tally in result.class_counts.items():
            target = class_counts.setdefault(cls_name, {"events": 0, "blocked": 0})
            target["events"] += int(tally["events"])
            target["blocked"] += int(tally["blocked"])
        for kind, count in result.alerts.items():
            alerts[kind] = alerts.get(kind, 0) + int(count)
        merged = merged.merge(result.snapshot())

    population: Dict[str, Dict[str, float]] = {}
    for name, values in samples.items():
        if not values:
            continue
        stats = {f"p{int(q * 100)}": percentile(values, q) for q in PERCENTILES}
        stats["mean"] = sum(values) / len(values)
        stats["n"] = float(len(values))
        population[name] = stats

    return FleetReport(
        name=spec.name,
        seed=spec.seed,
        n_homes=len(spec.homes),
        n_ok=len(ok),
        n_failed=len(results) - len(ok),
        homes=[result.to_dict() for result in results],
        population=population,
        class_counts=class_counts,
        alerts=alerts,
        metrics={
            "counters": merged.counters,
            "gauges": merged.gauges,
            "histograms": merged.histograms,
        },
    )
