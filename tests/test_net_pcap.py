"""Unit tests for pcap interoperability."""

import struct

import pytest

from repro.net import Trace
from repro.net.pcap import PCAP_MAGIC, read_pcap, write_pcap
from tests.conftest import make_packet


@pytest.fixture
def sample_trace():
    return Trace(
        [
            make_packet(timestamp=1.5, size=235, protocol="tcp", tcp_flags=24),
            make_packet(timestamp=2.25, size=76, protocol="udp", dst_port=123),
            make_packet(timestamp=3.0, size=1400),
        ]
    )


class TestRoundtrip:
    def test_write_read_counts(self, sample_trace, tmp_path):
        path = str(tmp_path / "t.pcap")
        assert write_pcap(sample_trace, path) == 3
        loaded = read_pcap(path)
        assert len(loaded) == 3

    def test_fields_preserved(self, sample_trace, tmp_path):
        path = str(tmp_path / "t.pcap")
        write_pcap(sample_trace, path)
        loaded = read_pcap(path)
        for original, restored in zip(sample_trace, loaded):
            assert restored.timestamp == pytest.approx(original.timestamp, abs=1e-5)
            assert restored.size == original.size
            assert restored.src_ip == original.src_ip
            assert restored.dst_ip == original.dst_ip
            assert restored.src_port == original.src_port
            assert restored.dst_port == original.dst_port
            assert restored.protocol == original.protocol

    def test_tcp_flags_preserved(self, sample_trace, tmp_path):
        path = str(tmp_path / "t.pcap")
        write_pcap(sample_trace, path)
        loaded = read_pcap(path)
        assert loaded[0].tcp_flags == 24

    def test_direction_recovered(self, sample_trace, tmp_path):
        path = str(tmp_path / "t.pcap")
        write_pcap(sample_trace, path)
        loaded = read_pcap(path)
        from repro.net import Direction

        assert all(p.direction is Direction.OUTBOUND for p in loaded)

    def test_tiny_packet_padded(self, tmp_path):
        trace = Trace([make_packet(size=10)])  # below minimum headers
        path = str(tmp_path / "tiny.pcap")
        write_pcap(trace, path)
        loaded = read_pcap(path)
        assert loaded[0].size >= 40


class TestFormat:
    def test_magic_written(self, sample_trace, tmp_path):
        path = str(tmp_path / "t.pcap")
        write_pcap(sample_trace, path)
        with open(path, "rb") as handle:
            magic = struct.unpack("<I", handle.read(4))[0]
        assert magic == PCAP_MAGIC

    def test_not_pcap_rejected(self, tmp_path):
        path = str(tmp_path / "junk.bin")
        with open(path, "wb") as handle:
            handle.write(b"0" * 64)
        with pytest.raises(ValueError, match="not a pcap"):
            read_pcap(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = str(tmp_path / "short.pcap")
        with open(path, "wb") as handle:
            handle.write(struct.pack("<I", PCAP_MAGIC))
        with pytest.raises(ValueError, match="truncated"):
            read_pcap(path)

    def test_truncated_record_rejected(self, sample_trace, tmp_path):
        path = str(tmp_path / "t.pcap")
        write_pcap(sample_trace, path)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[:-10])
        with pytest.raises(ValueError, match="truncated"):
            read_pcap(path)

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.pcap")
        assert write_pcap(Trace([]), path) == 0
        assert len(read_pcap(path)) == 0


class TestWithSimulator:
    def test_household_trace_roundtrips(self, small_household_result, tmp_path):
        trace = small_household_result.trace
        subset = Trace(list(trace)[:200])
        path = str(tmp_path / "home.pcap")
        write_pcap(subset, path)
        loaded = read_pcap(path)
        assert len(loaded) == len(subset)
        # predictability analysis still works on the reloaded capture
        from repro.predictability import label_predictable

        labels = label_predictable(loaded)
        assert len(labels) == len(loaded)
