"""Humanness validation (paper §5.4, "Human Input Validation").

FIAT adopts zkSENSE's approach: an ML classifier over 48 features of the
accelerometer and gyroscope decides whether a *human* was physically
interacting with the phone.  The paper uses the best model from that
study — a **9-layer decision tree** — reporting ~0.95 recall there and
0.934 / 0.982 (human / non-human) in its own Table 6.

:class:`HumannessValidator` packages dataset generation, training and
validation; the ambiguity mix (a fraction of low-intensity human
windows) reproduces the imperfect recall that drives FIAT's FP-M / FN
rates in the Appendix-A model.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..features.sensor_features import sensor_features, windows_to_matrix
from ..ml.metrics import precision_recall_f1
from ..ml.tree import DecisionTreeClassifier
from .motion import MotionKind, synthesize_window

__all__ = ["generate_humanness_dataset", "HumannessValidator"]

#: Label strings used by the validator's classifier.
HUMAN_LABEL = "human"
NON_HUMAN_LABEL = "non_human"


def generate_humanness_dataset(
    n_per_class: int = 200,
    ambiguous_fraction: float = 0.15,
    duration_s: float = 1.0,
    seed: Optional[int] = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a labelled 48-feature humanness dataset.

    ``ambiguous_fraction`` of the human windows use very low touch
    intensity (a barely-moving phone), producing the borderline samples
    that keep the validator's recall below 1 — as in the paper.
    """
    rng = np.random.default_rng(seed)
    windows = []
    labels = []
    for i in range(n_per_class):
        ambiguous = (i / max(1, n_per_class)) < ambiguous_fraction
        intensity = rng.uniform(0.02, 0.12) if ambiguous else rng.uniform(0.5, 1.5)
        windows.append(
            synthesize_window(MotionKind.HUMAN, duration_s, intensity=intensity, rng=rng)
        )
        labels.append(HUMAN_LABEL)
    for _ in range(n_per_class):
        windows.append(synthesize_window(MotionKind.NON_HUMAN, duration_s, rng=rng))
        labels.append(NON_HUMAN_LABEL)
    return windows_to_matrix(windows), np.asarray(labels)


class HumannessValidator:
    """Decision-tree humanness detector over 48 motion features.

    Parameters
    ----------
    max_depth:
        Tree depth; the paper uses the 9-layer tree found best by
        zkSENSE.
    n_train_per_class / ambiguous_fraction / seed:
        Training-data generation knobs (see
        :func:`generate_humanness_dataset`).
    """

    def __init__(
        self,
        max_depth: int = 9,
        n_train_per_class: int = 300,
        ambiguous_fraction: float = 0.15,
        seed: Optional[int] = 0,
    ) -> None:
        self.max_depth = max_depth
        self.n_train_per_class = n_train_per_class
        self.ambiguous_fraction = ambiguous_fraction
        self.seed = seed
        self._tree: Optional[DecisionTreeClassifier] = None

    def fit(self) -> "HumannessValidator":
        """Train on a freshly generated labelled dataset."""
        X, y = generate_humanness_dataset(
            n_per_class=self.n_train_per_class,
            ambiguous_fraction=self.ambiguous_fraction,
            seed=self.seed,
        )
        self._tree = DecisionTreeClassifier(max_depth=self.max_depth, seed=self.seed)
        self._tree.fit(X, y)
        return self

    def _ensure_fitted(self) -> DecisionTreeClassifier:
        if self._tree is None:
            self.fit()
        assert self._tree is not None
        return self._tree

    def is_human(self, window: np.ndarray) -> bool:
        """Validate one raw sensor window ``(n_samples, 6)``."""
        tree = self._ensure_fitted()
        features = sensor_features(window).reshape(1, -1)
        return tree.predict(features)[0] == HUMAN_LABEL

    def is_human_features(self, features: np.ndarray) -> bool:
        """Validate a pre-extracted 48-feature vector.

        This is the form FIAT uses in deployment: the *app* extracts the
        features and the *proxy* runs the classifier, so raw sensor data
        never leaves the phone unprocessed.
        """
        tree = self._ensure_fitted()
        return tree.predict(np.asarray(features).reshape(1, -1))[0] == HUMAN_LABEL

    def evaluate(
        self, n_per_class: int = 200, seed: Optional[int] = 1
    ) -> Tuple[Tuple[float, float], Tuple[float, float]]:
        """Precision/recall on held-out windows.

        Returns ``((precision_human, recall_human),
        (precision_non_human, recall_non_human))`` — the middle columns
        of Table 6.
        """
        tree = self._ensure_fitted()
        X, y = generate_humanness_dataset(
            n_per_class=n_per_class,
            ambiguous_fraction=self.ambiguous_fraction,
            seed=seed,
        )
        predictions = tree.predict(X)
        human_p, human_r, _ = precision_recall_f1(y, predictions, HUMAN_LABEL)
        non_p, non_r, _ = precision_recall_f1(y, predictions, NON_HUMAN_LABEL)
        return (human_p, human_r), (non_p, non_r)
