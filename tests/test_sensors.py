"""Unit tests for motion synthesis and humanness validation."""

import numpy as np
import pytest

from repro.sensors import (
    GRAVITY,
    SAMPLE_RATE_HZ,
    HumannessValidator,
    MotionKind,
    generate_humanness_dataset,
    synthesize_window,
)


class TestMotionSynthesis:
    def test_window_shape(self, rng):
        window = synthesize_window(MotionKind.HUMAN, duration_s=1.0, rng=rng)
        assert window.shape == (SAMPLE_RATE_HZ, 6)

    def test_gravity_on_z(self, rng):
        window = synthesize_window(MotionKind.NON_HUMAN, rng=rng)
        assert window[:, 2].mean() == pytest.approx(GRAVITY, abs=0.1)

    def test_still_phone_is_quiet(self, rng):
        window = synthesize_window(MotionKind.NON_HUMAN, rng=rng)
        assert window[:, 3:6].std() < 0.02  # gyro nearly silent

    def test_human_motion_is_loud(self, rng):
        human = synthesize_window(MotionKind.HUMAN, intensity=1.0, rng=rng)
        still = synthesize_window(MotionKind.NON_HUMAN, rng=rng)
        assert human[:, 3:6].std() > 3 * still[:, 3:6].std()

    def test_intensity_scales_motion(self, rng):
        gentle = synthesize_window(MotionKind.HUMAN, intensity=0.05, rng=rng)
        strong = synthesize_window(MotionKind.HUMAN, intensity=2.0, rng=rng)
        # compare x/y accelerometer jitter (z carries constant gravity)
        assert strong[:, 0:2].std() > gentle[:, 0:2].std()

    def test_minimum_length(self, rng):
        window = synthesize_window(MotionKind.HUMAN, duration_s=0.001, rng=rng)
        assert window.shape[0] >= 8

    def test_deterministic_with_seed(self):
        a = synthesize_window(MotionKind.HUMAN, rng=np.random.default_rng(5))
        b = synthesize_window(MotionKind.HUMAN, rng=np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestHumannessDataset:
    def test_shape_and_labels(self):
        X, y = generate_humanness_dataset(n_per_class=10, seed=0)
        assert X.shape == (20, 48)
        assert sorted(set(y)) == ["human", "non_human"]

    def test_deterministic(self):
        X1, _ = generate_humanness_dataset(n_per_class=5, seed=3)
        X2, _ = generate_humanness_dataset(n_per_class=5, seed=3)
        assert np.array_equal(X1, X2)


class TestHumannessValidator:
    @pytest.fixture(scope="class")
    def validator(self):
        return HumannessValidator(n_train_per_class=150, seed=0).fit()

    def test_detects_clear_human(self, validator, rng):
        hits = sum(
            validator.is_human(synthesize_window(MotionKind.HUMAN, intensity=1.2, rng=rng))
            for _ in range(30)
        )
        assert hits >= 28

    def test_rejects_still_phone(self, validator, rng):
        rejections = sum(
            not validator.is_human(synthesize_window(MotionKind.NON_HUMAN, rng=rng))
            for _ in range(30)
        )
        assert rejections >= 26

    def test_feature_level_api(self, validator, rng):
        from repro.features import sensor_features

        window = synthesize_window(MotionKind.HUMAN, intensity=1.2, rng=rng)
        assert validator.is_human_features(sensor_features(window))

    def test_evaluation_recall_paper_band(self, validator):
        (hp, hr), (np_, nr) = validator.evaluate(n_per_class=150, seed=9)
        # Paper Table 6: human 0.992/0.934, non-human 0.938/0.982.
        assert hr > 0.85
        assert nr > 0.9
        assert hp > 0.9 and np_ > 0.85

    def test_lazy_fit(self, rng):
        validator = HumannessValidator(n_train_per_class=60, seed=1)
        window = synthesize_window(MotionKind.NON_HUMAN, rng=rng)
        assert validator.is_human(window) in (True, False)  # fits on demand
