"""Shared fixtures for the FIAT reproduction test suite."""

import numpy as np
import pytest

from repro.net import Direction, Packet, Trace
from repro.testbed import Household, HouseholdConfig, generate_labeled_events


@pytest.fixture
def rng():
    """A deterministic RNG for tests."""
    return np.random.default_rng(1234)


def make_packet(
    timestamp=0.0,
    size=100,
    src_ip="192.168.1.10",
    dst_ip="172.1.2.3",
    src_port=40000,
    dst_port=443,
    protocol="tcp",
    direction=Direction.OUTBOUND,
    device="dev",
    **kwargs,
):
    """Packet factory with sensible defaults."""
    return Packet(
        timestamp=timestamp,
        size=size,
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        protocol=protocol,
        direction=direction,
        device=device,
        **kwargs,
    )


@pytest.fixture
def periodic_trace():
    """A trace with one perfectly periodic flow (10 packets, 10 s apart)."""
    return Trace([make_packet(timestamp=float(t)) for t in range(0, 100, 10)])


@pytest.fixture(scope="session")
def small_household_result():
    """One short simulated household (cached for the whole session)."""
    config = HouseholdConfig(duration_s=1800.0, seed=7)
    return Household(["EchoDot4", "SP10", "WyzeCam"], config).simulate()


@pytest.fixture(scope="session")
def echodot_events():
    """Labelled unpredictable events for the EchoDot4 (session cached)."""
    return generate_labeled_events(
        "EchoDot4", n_manual=40, n_automated=60, n_control=60, seed=5
    )
