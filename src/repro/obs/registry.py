"""Shared metrics registry: counters, gauges and fixed-bucket histograms.

Every FIAT component reports into one :class:`MetricsRegistry`, handed
around via the :class:`~repro.obs.handle.Observability` handle on
:class:`~repro.core.config.FiatConfig`.  The registry is deliberately
zero-dependency and synchronous: metric updates are plain dict
operations on the hot path (no locks, no background threads), matching
the single-threaded simulator while keeping the data model compatible
with a sharded deployment — snapshots of independent registries
:meth:`merge <MetricsSnapshot.merge>` into one, and
:meth:`delta <MetricsSnapshot.delta>` turns two snapshots of a live
registry into an interval view.

Labels follow the Prometheus model (a metric name plus a small set of
``key=value`` pairs); per-name label cardinality is capped so a buggy
caller labelling by packet nonce cannot grow the registry without
bound — overflowing label sets collapse into a reserved ``_overflow``
series and are counted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "CounterView",
]

#: Default histogram boundaries for latency metrics, in milliseconds.
#: Spans 1 µs .. 1 s: the bucket heuristic and rule lookups live at the
#: bottom, ML inference and crypto in the middle, transport at the top.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
)

#: Reserved label set absorbing series beyond the cardinality cap.
_OVERFLOW_KEY: Tuple[Tuple[str, str], ...] = (("_overflow", "true"),)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_label_key(key: LabelKey) -> str:
    return ",".join(f"{k}={v}" for k, v in key)


def _parse_label_key(text: str) -> LabelKey:
    if not text:
        return ()
    pairs = []
    for part in text.split(","):
        k, _, v = part.partition("=")
        pairs.append((k, v))
    return tuple(pairs)


class Histogram:
    """A fixed-boundary histogram with sum/count/min/max sidecars.

    Boundaries are upper bucket edges (an implicit ``+Inf`` bucket
    catches the tail).  Percentiles are estimated by linear
    interpolation inside the bucket containing the requested rank,
    clamped by the observed ``min``/``max`` so single-observation
    histograms report exact values.
    """

    __slots__ = ("boundaries", "counts", "sum", "count", "min", "max")

    def __init__(self, boundaries: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS) -> None:
        if list(boundaries) != sorted(boundaries) or len(set(boundaries)) != len(boundaries):
            raise ValueError("histogram boundaries must be strictly increasing")
        self.boundaries = tuple(float(b) for b in boundaries)
        self.counts: List[int] = [0] * (len(self.boundaries) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        lo, hi = 0, len(self.boundaries)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.boundaries[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be within [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.boundaries[i - 1] if i > 0 else min(self.min, self.boundaries[0])
                upper = self.boundaries[i] if i < len(self.boundaries) else self.max
                lower = max(lower, self.min)
                upper = min(upper, self.max)
                if upper <= lower:
                    return lower
                within = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * within
            cumulative += bucket_count
        return self.max

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable state."""
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Histogram":
        """Inverse of :meth:`to_dict`."""
        histogram = cls(tuple(data["boundaries"]))  # type: ignore[arg-type]
        histogram.counts = [int(c) for c in data["counts"]]  # type: ignore[union-attr]
        histogram.sum = float(data["sum"])  # type: ignore[arg-type]
        histogram.count = int(data["count"])  # type: ignore[arg-type]
        histogram.min = float("inf") if data.get("min") is None else float(data["min"])  # type: ignore[arg-type]
        histogram.max = float("-inf") if data.get("max") is None else float(data["max"])  # type: ignore[arg-type]
        return histogram


class MetricsRegistry:
    """Label-aware counters, gauges and histograms behind one handle."""

    def __init__(self, max_label_sets: int = 64) -> None:
        if max_label_sets < 1:
            raise ValueError("max_label_sets must be >= 1")
        self.max_label_sets = max_label_sets
        self._counters: Dict[str, Dict[LabelKey, float]] = {}
        self._gauges: Dict[str, Dict[LabelKey, float]] = {}
        self._histograms: Dict[str, Dict[LabelKey, Histogram]] = {}
        self._histogram_boundaries: Dict[str, Tuple[float, ...]] = {}
        #: label sets collapsed into ``_overflow`` by the cardinality cap
        self.n_label_overflows = 0

    # -- label handling ----------------------------------------------------------

    def _slot(self, series: Dict[LabelKey, object], key: LabelKey) -> LabelKey:
        if key in series or len(series) < self.max_label_sets:
            return key
        self.n_label_overflows += 1
        return _OVERFLOW_KEY

    # -- counters ----------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        """Add ``value`` (default 1) to a counter series."""
        series = self._counters.setdefault(name, {})
        key = self._slot(series, _label_key(labels))
        series[key] = series.get(key, 0.0) + value

    def set_counter(self, name: str, value: float, **labels: object) -> None:
        """Set a counter series to an absolute value (view support)."""
        series = self._counters.setdefault(name, {})
        key = self._slot(series, _label_key(labels))
        series[key] = float(value)

    def get_counter(self, name: str, **labels: object) -> float:
        """Current value of a counter series (0 when unseen)."""
        return self._counters.get(name, {}).get(_label_key(labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter over all its label sets."""
        return sum(self._counters.get(name, {}).values())

    # -- gauges ------------------------------------------------------------------

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set a gauge series to ``value``."""
        series = self._gauges.setdefault(name, {})
        key = self._slot(series, _label_key(labels))
        series[key] = float(value)

    def get_gauge(self, name: str, default: float = 0.0, **labels: object) -> float:
        """Current value of a gauge series."""
        return self._gauges.get(name, {}).get(_label_key(labels), default)

    # -- histograms --------------------------------------------------------------

    def observe(
        self,
        name: str,
        value: float,
        boundaries: Optional[Tuple[float, ...]] = None,
        **labels: object,
    ) -> None:
        """Record one observation into a histogram series.

        ``boundaries`` is honoured on the first observation of a metric
        name; later calls reuse the established boundaries so all label
        sets of one name stay merge-compatible.
        """
        series = self._histograms.setdefault(name, {})
        key = self._slot(series, _label_key(labels))
        histogram = series.get(key)
        if histogram is None:
            bounds = self._histogram_boundaries.setdefault(
                name, boundaries if boundaries is not None else DEFAULT_LATENCY_BUCKETS_MS
            )
            histogram = series[key] = Histogram(bounds)
        histogram.observe(value)

    def get_histogram(self, name: str, **labels: object) -> Optional[Histogram]:
        """The histogram of one series, or ``None`` when unseen."""
        return self._histograms.get(name, {}).get(_label_key(labels))

    # -- iteration / export ------------------------------------------------------

    def counters(self) -> Iterator[Tuple[str, LabelKey, float]]:
        """Iterate ``(name, label_key, value)`` over all counter series."""
        for name, series in sorted(self._counters.items()):
            for key, value in sorted(series.items()):
                yield name, key, value

    def snapshot(self) -> "MetricsSnapshot":
        """A deep, JSON-serialisable copy of the current state."""
        return MetricsSnapshot(
            counters={
                name: {_render_label_key(k): v for k, v in series.items()}
                for name, series in self._counters.items()
            },
            gauges={
                name: {_render_label_key(k): v for k, v in series.items()}
                for name, series in self._gauges.items()
            },
            histograms={
                name: {_render_label_key(k): h.to_dict() for k, h in series.items()}
                for name, series in self._histograms.items()
            },
        )

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the current state."""
        return self.snapshot().render_prometheus()


def _labels_text(key_text: str) -> str:
    key = _parse_label_key(key_text)
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


@dataclass
class MetricsSnapshot:
    """A frozen, serialisable view of a registry at one instant.

    Label keys are canonical ``k=v,k2=v2`` strings (sorted by key), so
    snapshots survive JSON round-trips unchanged and two snapshots of
    the same registry compare equal series-by-series.
    """

    counters: Dict[str, Dict[str, float]] = field(default_factory=dict)
    gauges: Dict[str, Dict[str, float]] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, Dict[str, object]]] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        """Whether the snapshot carries no series at all."""
        return not (self.counters or self.gauges or self.histograms)

    def counter_total(self, name: str) -> float:
        """Sum of one counter over all its label sets."""
        return sum(self.counters.get(name, {}).values())

    def histogram(self, name: str, labels: str = "") -> Optional[Histogram]:
        """Rehydrate one histogram series (``None`` when unseen)."""
        data = self.histograms.get(name, {}).get(labels)
        return Histogram.from_dict(data) if data is not None else None

    # -- serialisation -----------------------------------------------------------

    def to_json(self) -> str:
        """Canonical JSON encoding."""
        return json.dumps(
            {"counters": self.counters, "gauges": self.gauges, "histograms": self.histograms},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "MetricsSnapshot":
        """Inverse of :meth:`to_json`."""
        data = json.loads(text)
        return cls(
            counters=data.get("counters", {}),
            gauges=data.get("gauges", {}),
            histograms=data.get("histograms", {}),
        )

    # -- algebra -----------------------------------------------------------------

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """The interval view ``self - earlier`` (counters and histograms).

        Gauges are instantaneous, so the later value is kept.  Series
        absent from ``earlier`` pass through unchanged.
        """
        counters = {
            name: {
                key: value - earlier.counters.get(name, {}).get(key, 0.0)
                for key, value in series.items()
            }
            for name, series in self.counters.items()
        }
        histograms: Dict[str, Dict[str, Dict[str, object]]] = {}
        for name, series in self.histograms.items():
            histograms[name] = {}
            for key, data in series.items():
                before = earlier.histograms.get(name, {}).get(key)
                if before is None or list(before["boundaries"]) != list(data["boundaries"]):
                    histograms[name][key] = dict(data)
                    continue
                counts = [int(a) - int(b) for a, b in zip(data["counts"], before["counts"])]
                histograms[name][key] = {
                    "boundaries": list(data["boundaries"]),
                    "counts": counts,
                    "sum": float(data["sum"]) - float(before["sum"]),
                    "count": int(data["count"]) - int(before["count"]),
                    # interval min/max are not recoverable from totals
                    "min": data.get("min"),
                    "max": data.get("max"),
                }
        return MetricsSnapshot(
            counters=counters,
            gauges={name: dict(series) for name, series in self.gauges.items()},
            histograms=histograms,
        )

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two shards: counters and histograms add, gauges take
        ``other``'s value on conflict (last writer wins)."""
        counters = {name: dict(series) for name, series in self.counters.items()}
        for name, series in other.counters.items():
            target = counters.setdefault(name, {})
            for key, value in series.items():
                target[key] = target.get(key, 0.0) + value
        gauges = {name: dict(series) for name, series in self.gauges.items()}
        for name, series in other.gauges.items():
            gauges.setdefault(name, {}).update(series)
        histograms = {
            name: {key: dict(data) for key, data in series.items()}
            for name, series in self.histograms.items()
        }
        for name, series in other.histograms.items():
            target = histograms.setdefault(name, {})
            for key, data in series.items():
                mine = target.get(key)
                if mine is None or list(mine["boundaries"]) != list(data["boundaries"]):
                    target[key] = dict(data)
                    continue
                merged = Histogram.from_dict(mine)
                theirs = Histogram.from_dict(data)
                merged.counts = [a + b for a, b in zip(merged.counts, theirs.counts)]
                merged.sum += theirs.sum
                merged.count += theirs.count
                merged.min = min(merged.min, theirs.min)
                merged.max = max(merged.max, theirs.max)
                target[key] = merged.to_dict()
        return MetricsSnapshot(counters=counters, gauges=gauges, histograms=histograms)

    # -- rendering ---------------------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self.counters):
            lines.append(f"# TYPE {name} counter")
            for key, value in sorted(self.counters[name].items()):
                lines.append(f"{name}{_labels_text(key)} {value:g}")
        for name in sorted(self.gauges):
            lines.append(f"# TYPE {name} gauge")
            for key, value in sorted(self.gauges[name].items()):
                lines.append(f"{name}{_labels_text(key)} {value:g}")
        for name in sorted(self.histograms):
            lines.append(f"# TYPE {name} histogram")
            for key, data in sorted(self.histograms[name].items()):
                base = _parse_label_key(key)
                cumulative = 0
                for boundary, count in zip(
                    list(data["boundaries"]) + ["+Inf"], data["counts"]
                ):
                    cumulative += int(count)
                    le = boundary if boundary == "+Inf" else f"{float(boundary):g}"
                    label = _render_label_key(base + (("le", str(le)),))
                    lines.append(f"{name}_bucket{_labels_text(label)} {cumulative}")
                lines.append(f"{name}_sum{_labels_text(key)} {float(data['sum']):g}")
                lines.append(f"{name}_count{_labels_text(key)} {int(data['count'])}")
        return "\n".join(lines) + ("\n" if lines else "")


class CounterView:
    """A dict-like read/write view over one labelled counter family.

    Backs :attr:`repro.core.proxy.FiatProxy.health`: the proxy migrated
    its ad-hoc health dict onto the registry, but PR-1 consumers keep
    indexing ``proxy.health["classifier_errors"]`` — this view preserves
    that surface (including ``+=`` via ``__getitem__``/``__setitem__``)
    while every read and write goes through the registry.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        metric: str,
        label: str = "kind",
        initial: Tuple[str, ...] = (),
    ) -> None:
        self._registry = registry
        self._metric = metric
        self._label = label
        self._keys: List[str] = list(initial)
        for key in initial:
            registry.set_counter(metric, 0.0, **{label: key})

    def _known(self) -> List[str]:
        seen = dict.fromkeys(self._keys)
        for name, key, _ in self._registry.counters():
            if name == self._metric:
                labels = dict(key)
                if self._label in labels:
                    seen.setdefault(labels[self._label])
        return list(seen)

    def __getitem__(self, key: str) -> int:
        value = self._registry.get_counter(self._metric, **{self._label: key})
        return int(value) if float(value).is_integer() else value  # type: ignore[return-value]

    def __setitem__(self, key: str, value: float) -> None:
        if key not in self._keys:
            self._keys.append(key)
        self._registry.set_counter(self._metric, value, **{self._label: key})

    def __contains__(self, key: object) -> bool:
        return key in self._known()

    def __iter__(self) -> Iterator[str]:
        return iter(self._known())

    def __len__(self) -> int:
        return len(self._known())

    def keys(self) -> List[str]:
        """Known counter keys (declared plus observed)."""
        return self._known()

    def values(self) -> List[int]:
        """Counter values in :meth:`keys` order."""
        return [self[k] for k in self._known()]

    def items(self) -> List[Tuple[str, int]]:
        """``(key, value)`` pairs in :meth:`keys` order."""
        return [(k, self[k]) for k in self._known()]

    def get(self, key: str, default: Optional[int] = None):
        """Mapping-style ``get``."""
        return self[key] if key in self else default

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict copy of the current values."""
        return dict(self.items())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CounterView):
            return self.as_dict() == other.as_dict()
        if isinstance(other, Mapping):
            return self.as_dict() == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"CounterView({self.as_dict()!r})"
