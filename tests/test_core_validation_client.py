"""Unit tests for the validation service and the client app."""

import numpy as np
import pytest

from repro.core import FiatApp, HumanValidationService
from repro.crypto import pair
from repro.quic import LAN_PATH, Transport
from repro.sensors import HumannessValidator
from repro.testbed import Phone


@pytest.fixture(scope="module")
def stack():
    phone_ks, proxy_ks = pair("phone", "proxy")
    app = FiatApp(
        keystore=phone_ks,
        key_alias="fiat-pairing",
        device_id="phone-1",
        path=LAN_PATH,
        transport=Transport.QUIC_0RTT,
        seed=0,
    )
    service = HumanValidationService(
        proxy_ks, validator=HumannessValidator(n_train_per_class=150, seed=0).fit()
    )
    return app, service, Phone(seed=0)


class TestClientApp:
    def test_attempt_components(self, stack):
        app, _, phone = stack
        interaction = phone.interact("Nest-E", 10.0, human=True, intensity=1.0)
        attempt = app.authenticate(interaction, now=10.0)
        for key in ("app_detection", "sensor_sampling", "secure_storage", "transport",
                    "ml_validation"):
            assert attempt.components[key] > 0.0

    def test_time_to_validation_excludes_sampling(self, stack):
        app, _, phone = stack
        interaction = phone.interact("Nest-E", 10.0, human=True)
        attempt = app.authenticate(interaction, now=10.0)
        total = attempt.time_to_validation_ms
        assert total < sum(attempt.components.values())
        assert total == pytest.approx(
            attempt.components["app_detection"]
            + attempt.components["secure_storage"]
            + attempt.components["transport"]
        )


class TestValidationService:
    def test_human_proof_registers(self, stack):
        app, service, phone = stack
        interaction = phone.interact("Nest-E", 20.0, human=True, intensity=1.2)
        attempt = app.authenticate(interaction, now=20.0)
        recorded = service.ingest(attempt.wire, now=20.1)
        assert recorded is not None and recorded.human
        assert service.has_recent_human(interaction.app_package, now=25.0)

    def test_non_human_proof_does_not_authorize(self, stack):
        app, service, phone = stack
        interaction = phone.interact("SP10", 40.0, human=False)
        attempt = app.authenticate(interaction, now=40.0)
        recorded = service.ingest(attempt.wire, now=40.1)
        assert recorded is not None and not recorded.human
        assert not service.has_recent_human(interaction.app_package, now=41.0)

    def test_validity_window_expires(self, stack):
        app, service, phone = stack
        interaction = phone.interact("E4", 100.0, human=True, intensity=1.2)
        attempt = app.authenticate(interaction, now=100.0)
        service.ingest(attempt.wire, now=100.1)
        assert service.has_recent_human(interaction.app_package, now=120.0)
        assert not service.has_recent_human(interaction.app_package, now=100.1 + 61.0)

    def test_wrong_app_not_authorized(self, stack):
        app, service, phone = stack
        interaction = phone.interact("Blink", 200.0, human=True, intensity=1.2)
        attempt = app.authenticate(interaction, now=200.0)
        service.ingest(attempt.wire, now=200.1)
        assert not service.has_recent_human("com.other.app", now=201.0)

    def test_channel_rejection_counted(self, stack):
        _, service, _ = stack
        before = service.n_rejected_channel
        assert service.ingest(b"garbage", now=0.0) is None
        assert service.n_rejected_channel == before + 1

    def test_prune(self, stack):
        app, service, phone = stack
        interaction = phone.interact("WP3", 300.0, human=True, intensity=1.2)
        attempt = app.authenticate(interaction, now=300.0)
        service.ingest(attempt.wire, now=300.1)
        service.prune(now=1000.0)
        assert not service.has_recent_human(interaction.app_package, now=1000.0)
