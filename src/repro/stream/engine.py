"""Streaming proxy engine: windowed, vectorized packet processing.

:class:`StreamingEngine` sits in front of a
:class:`~repro.core.proxy.FiatProxy` and replaces its per-packet scalar
hot path with a buffered one: packets are *fed* (cheap — a memoised
flow-key intern and two list appends) and processed in windows, where
the dominant costs collapse into NumPy batch operations — IAT
quantisation and rule matching over the whole window at once
(:mod:`repro.stream.binmatch`), bulk bootstrap learning
(:meth:`~repro.predictability.buckets.BucketPredictor.observe_batch`)
and one ML predict call per device per window for the unpredictable
events decided inside it (:mod:`repro.stream.batch`).

**Equivalence contract.**  At every *barrier* — any proxy operation that
reads or mutates decision-relevant state (``flush``, ``snapshot``,
``unlock``, ``receive_auth``, ``decision_log``, …) — the proxy's state
is exactly what the scalar path would have produced from the same call
sequence, and the decision log is byte-identical.  The engine earns
this by construction:

* flow keys are interned at **feed time**, so DNS-dependent PortLess
  resolution happens at the same sequence point as the scalar path
  (a DNS-table mutation between feeds force-flushes the buffer);
* within a window, rule hits and event-path misses are separated by a
  precomputed vector match that replays the scalar per-bucket
  ``last_seen`` chains; misses then run through the *scalar* event
  machinery in order, so grouping, classification breakers, humanness
  checks, alerts and lockouts fire exactly as before;
* anything the vector path cannot replicate exactly — configured rule
  refresh, pre-start packets, active lockouts, a lockout triggered
  mid-window, non-monotonic timestamps across the bootstrap boundary,
  pathological bin ranges — falls back to the scalar
  :meth:`~repro.core.proxy.FiatProxy.process` for (the rest of) the
  window.

Batched classification feeds the decision as a *hint*: the breaker
bookkeeping in ``_classify_manual`` still runs per event at decide
time, only the model inference itself is hoisted into the batch call.
"""

from __future__ import annotations

from itertools import islice
from operator import attrgetter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.classifier import EventClassifier
from ..core.proxy import PRE_START_TOLERANCE_S, FiatProxy
from ..core.rules import RuleTable
from ..net.packet import Direction, Packet
from .batch import classify_events_batch
from .binmatch import (
    PAIR_SHIFT,
    KeyInterner,
    chain_prev,
    codes_safe,
    first_last_per_kid,
    neighbor_any,
    quantize_iat_array,
)

__all__ = ["StreamingEngine"]

#: C-level attribute extractors for the bulk feed loop.
_TS = attrgetter("timestamp")
_RAW_CLASSIC = attrgetter("src_ip", "dst_ip", "src_port", "dst_port", "protocol", "size")
_RAW_PORTLESS_SUB = attrgetter("src_ip", "dst_ip", "protocol", "size")


class StreamingEngine:
    """Windowed vectorized front-end for a :class:`FiatProxy`.

    Parameters
    ----------
    proxy:
        The proxy to drive.  The engine reaches into its internals by
        design — it *is* the proxy's alternative hot path, attached via
        :meth:`FiatProxy.attach_engine`.
    window:
        Packets buffered before a vectorized flush.  Any window size
        (including 1) produces the same decision log; larger windows
        amortise better.
    """

    def __init__(self, proxy: FiatProxy, window: int = 1024) -> None:
        self.proxy = proxy
        self.window = max(1, int(window))
        dns = proxy._predictor.dns
        self._dns = dns
        self._dns_version = dns.version if dns is not None else 0
        self._interner = KeyInterner(proxy.config.flow_definition, dns)
        self._classic = self._interner._classic
        self._packets: List[Packet] = []
        self._kids: List[int] = []
        self._ts: List[float] = []
        # Direction-split PortLess memos for the bulk feed loop: keyed
        # by a C-built (src_ip, dst_ip, protocol, size) subtuple, so a
        # memo probe never hashes the Direction enum (whose Python-level
        # __hash__ would run once per packet).  Pure caches over the
        # interner — invalidated together with its memo on DNS change.
        self._memo_out: Dict[Tuple, int] = {}
        self._memo_in: Dict[Tuple, int] = {}
        #: rule-code cache, keyed on (table identity, mutation counter)
        self._cached_rules: Optional[RuleTable] = None
        self._cached_mutations = -1
        self._rule_kids = np.empty(0, dtype=np.int64)
        self._rule_codes = np.empty(0, dtype=np.int64)
        self._cache_safe = True

    # -- feeding ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Packets buffered and not yet processed."""
        return len(self._packets)

    def feed(self, packet: Packet) -> None:
        """Buffer one packet, flushing a full window."""
        dns = self._dns
        if dns is not None and dns.version != self._dns_version:
            # Keys are resolved at feed time; packets already buffered
            # were keyed under the old table and must be processed
            # before any state derived from the new one.
            if self._packets:
                self.flush_pending()
            self._dns_version = dns.version
            self._interner.check_dns()
            self._memo_out.clear()
            self._memo_in.clear()
        # Raw memo key built inline (see KeyInterner.raw) — this is the
        # per-packet hot path and a method call per packet shows up.
        if self._classic:
            rk = (
                packet.src_ip,
                packet.dst_ip,
                packet.src_port,
                packet.dst_port,
                packet.protocol,
                packet.size,
            )
        else:
            rk = (
                packet.src_ip,
                packet.dst_ip,
                packet.direction is Direction.OUTBOUND,
                packet.protocol,
                packet.size,
            )
        interner = self._interner
        kid = interner.memo.get(rk)
        if kid is None:
            kid = interner.intern_slow(packet, rk)
        packets = self._packets
        packets.append(packet)
        self._kids.append(kid)
        self._ts.append(packet.timestamp)
        if len(packets) >= self.window:
            self.flush_pending()

    def feed_many(self, stream: Iterable[Packet]) -> None:
        """Feed a packet iterable through a tight bulk loop.

        Semantically ``for p in stream: self.feed(p)``, but chunked:
        up-to-a-window slices are pulled with :func:`itertools.islice`
        and appended to the buffers with C-speed ``extend``s, leaving
        only the flow-key intern in the per-packet Python loop.  The DNS
        version check runs once per chunk instead of once per packet —
        equivalent, because nothing reachable from a window flush
        mutates the DNS table, so the version can only change *between*
        engine calls.
        """
        stream = iter(stream)
        classic = self._classic
        outbound = Direction.OUTBOUND
        window = self.window
        dns = self._dns
        interner = self._interner
        intern_slow = interner.intern_slow
        raw_classic = _RAW_CLASSIC
        raw_sub = _RAW_PORTLESS_SUB
        ts_get = _TS
        while True:
            if dns is not None and dns.version != self._dns_version:
                if self._packets:
                    self.flush_pending()
                self._dns_version = dns.version
                interner.check_dns()
                self._memo_out.clear()
                self._memo_in.clear()
            packets = self._packets
            chunk = list(islice(stream, window - len(packets)))
            if not chunk:
                return
            kids: List[int] = []
            append_kid = kids.append
            if classic:
                # The classic raw key has no enum fields: probe the
                # interner's memo directly with the C-built tuple.
                memo_get = interner.memo.get
                for packet in chunk:
                    rk = raw_classic(packet)
                    kid = memo_get(rk)
                    if kid is None:
                        kid = intern_slow(packet, rk)
                    append_kid(kid)
            else:
                memo_out = self._memo_out
                memo_in = self._memo_in
                for packet in chunk:
                    sub = raw_sub(packet)
                    if packet.direction is outbound:
                        kid = memo_out.get(sub)
                        if kid is None:
                            kid = intern_slow(
                                packet, (sub[0], sub[1], True, sub[2], sub[3])
                            )
                            memo_out[sub] = kid
                    else:
                        kid = memo_in.get(sub)
                        if kid is None:
                            kid = intern_slow(
                                packet, (sub[0], sub[1], False, sub[2], sub[3])
                            )
                            memo_in[sub] = kid
                    append_kid(kid)
            packets.extend(chunk)
            self._kids.extend(kids)
            self._ts.extend(map(ts_get, chunk))
            if len(packets) >= window:
                self.flush_pending()

    def flush_pending(self) -> None:
        """Process everything buffered (the proxy's barrier hook)."""
        while self._packets:
            packets = self._packets
            kids = self._kids
            ts = self._ts
            self._packets = []
            self._kids = []
            self._ts = []
            self._flush_window(packets, kids, ts)

    # -- window processing --------------------------------------------------------

    def _run_exact(self, packets: Sequence[Packet]) -> None:
        """Scalar-process a span the vector path cannot handle."""
        process = self.proxy.process
        for packet in packets:
            process(packet)

    def _exact_span(
        self,
        packets: Sequence[Packet],
        learned: Optional[np.ndarray],
        start: int,
    ) -> None:
        """Scalar-process ``packets[start:]``, skipping already-learned ones.

        Bulk-learned bootstrap packets were already observed *and*
        tallied at learn time — in the scalar path they return straight
        out of the learn branch, so replaying them through
        :meth:`FiatProxy.process` would double-observe and double-count.
        """
        process = self.proxy.process
        for j in range(start, len(packets)):
            if learned is None or not learned[j]:
                process(packets[j])

    def _flush_window(
        self, packets: List[Packet], kids: List[int], ts_list: List[float]
    ) -> None:
        proxy = self.proxy
        if proxy.config.rule_refresh_s is not None:
            # Refresh mode re-learns and mutates rules per packet —
            # inherently sequential; the engine degrades to exact mode.
            self._run_exact(packets)
            return
        n = len(packets)
        ts = np.asarray(ts_list, dtype=np.float64)
        if float(ts.min()) < proxy._start_time - PRE_START_TOLERANCE_S:
            self._run_exact(packets)
            return
        if proxy._locked:
            self._run_exact(packets)
            return
        kids_arr = np.asarray(kids, dtype=np.int64)
        keys = self._interner.keys
        boot_end = proxy._bootstrap_end
        learned: Optional[np.ndarray] = None

        if proxy._rules is None:
            if float(ts.max()) < boot_end:
                # Entirely inside the bootstrap window: bulk learn.
                proxy._predictor.observe_batch(
                    packets, kids=kids_arr, timestamps=ts, keys=keys
                )
                proxy.n_allowed += n
                return
            # Crossing the bootstrap boundary: the scalar path freezes
            # rules at the first post-bootstrap packet, so the learn
            # prefix must be exact — requires monotonic timestamps.
            if np.any(np.diff(ts) < 0):
                self._run_exact(packets)
                return
            split = int(np.searchsorted(ts, boot_end, side="left"))
            if split:
                proxy._predictor.observe_batch(
                    packets[:split],
                    kids=kids_arr[:split],
                    timestamps=ts[:split],
                    keys=keys,
                )
                proxy.n_allowed += split
            proxy._rules = RuleTable.from_predictor(proxy._predictor)
            proxy._next_refresh = None
            if split == n:
                return
            match_idx = np.arange(split, n, dtype=np.int64)
            if split:
                learned = np.zeros(n, dtype=bool)
                learned[:split] = True
        else:
            # Stragglers stamped inside the bootstrap window still take
            # the scalar learn branch (timestamp check, not state check).
            learn_mask = ts < boot_end
            if learn_mask.any():
                learn_idx = np.nonzero(learn_mask)[0]
                proxy._predictor.observe_batch(
                    [packets[int(i)] for i in learn_idx],
                    kids=kids_arr[learn_idx],
                    timestamps=ts[learn_idx],
                    keys=keys,
                )
                proxy.n_allowed += len(learn_idx)
                learned = learn_mask
                match_idx = np.nonzero(~learn_mask)[0]
            else:
                match_idx = np.arange(n, dtype=np.int64)

        if len(match_idx) == 0:
            return
        self._match_span(packets, kids_arr, ts, match_idx, learned)

    def _match_span(
        self,
        packets: List[Packet],
        kids_arr: np.ndarray,
        ts: np.ndarray,
        match_idx: np.ndarray,
        learned: Optional[np.ndarray],
    ) -> None:
        """Vector rule matching + scalar miss walk for the match subset."""
        proxy = self.proxy
        rules = proxy._rules
        assert rules is not None
        k = kids_arr[match_idx]
        t = ts[match_idx]

        ok = self._ensure_rule_cache(rules)
        if ok:
            # Per-bucket IAT chains, carried in from the live table's
            # last-seen map — exactly the scalar ``matches`` sequence.
            _, prev_ts = chain_prev(k, t)
            firsts = np.nonzero(np.isnan(prev_ts))[0]
            if len(firsts):
                keys = self._interner.keys
                last_seen_get = rules._last_seen.get
                prev_ts[firsts] = [
                    _none_to_nan(last_seen_get(keys[int(k[i])])) for i in firsts
                ]
            no_last = np.isnan(prev_ts)
            bins = quantize_iat_array(t - prev_ts, rules.resolution)
            if not codes_safe(k, bins, rules.neighbor_bins):
                ok = False
        if not ok:
            self._exact_span(packets, learned, 0)
            return

        in_rules = _sorted_member(self._rule_kids, k)
        hit = in_rules & (
            no_last | neighbor_any(self._rule_codes, k, bins, rules.neighbor_bins)
        )
        miss_pos = np.nonzero(~hit)[0]
        if len(miss_pos) == 0:
            self._apply_bulk(rules, k, t, hit, len(k))
            return

        hints = self._precompute_hints(packets, match_idx, miss_pos)
        obs = proxy._obs
        locked_at: Optional[int] = None
        for j in miss_pos.tolist():
            packet = packets[int(match_idx[j])]
            proxy._process_unpredictable(
                packet, packet.timestamp, packet.device, obs, hints.get(j)
            )
            if proxy._locked:
                # A lockout invalidates every precomputed match after
                # this point (locked devices drop before rule lookup):
                # book the prefix, go exact for the rest of the window.
                locked_at = j
                break
        if locked_at is None:
            self._apply_bulk(rules, k, t, hit, len(k))
        else:
            self._apply_bulk(rules, k, t, hit, locked_at + 1)
            self._exact_span(packets, learned, int(match_idx[locked_at]) + 1)

    def _apply_bulk(
        self,
        rules: RuleTable,
        k: np.ndarray,
        t: np.ndarray,
        hit: np.ndarray,
        upto: int,
    ) -> None:
        """Book hit/miss counters and last-seen/last-hit maps for ``[:upto]``.

        Misses' event-path effects were applied by the walk; this adds
        the rule-table bookkeeping the scalar ``matches`` call would
        have done per packet, collapsed to one write per bucket.
        """
        if upto == 0:
            return
        k = k[:upto]
        t = t[:upto]
        hit = hit[:upto]
        n_hits = int(hit.sum())
        rules.n_hits += n_hits
        rules.n_misses += len(k) - n_hits
        self.proxy.n_allowed += n_hits
        keys = self._interner.keys
        _bulk_last(rules._last_seen, keys, k, t)
        if n_hits:
            _bulk_last(rules._last_hit, keys, k[hit], t[hit])

    # -- batched classification hints ---------------------------------------------

    def _precompute_hints(
        self,
        packets: List[Packet],
        match_idx: np.ndarray,
        miss_pos: np.ndarray,
    ) -> Dict[int, bool]:
        """Predict per-miss classification outcomes, one model call per device.

        Simulates the event grouping the miss walk is about to perform
        (seeded from the proxy's open events) to find the packets that
        will complete a decision prefix, then classifies all prefixes of
        a device in one batched predict.  Only plain, model-backed
        :class:`EventClassifier` instances are eligible — wrapped
        (fault-injected) or rule classifiers classify inline, preserving
        their scalar call sequence exactly.
        """
        proxy = self.proxy
        if not any(
            type(c) is EventClassifier and c.model is not None
            for c in proxy.classifiers.values()
        ):
            # Rule-only (or wrapped/faulted) classifiers everywhere:
            # nothing to batch, skip the per-miss grouping simulation.
            return {}
        gap = proxy.config.event_gap_s
        by_device: Dict[str, List[Tuple[int, Packet]]] = {}
        for j in miss_pos.tolist():
            packet = packets[int(match_idx[j])]
            by_device.setdefault(packet.device, []).append((j, packet))

        hints: Dict[int, bool] = {}
        for device, items in by_device.items():
            classifier = proxy.classifiers.get(device)
            if type(classifier) is not EventClassifier or classifier.model is None:
                continue
            prefix_n = proxy._decision_prefix(device)
            open_event = proxy._open.get(device)
            if open_event is not None and open_event.packets:
                sim_packets: Optional[List[Packet]] = list(open_event.packets)
                sim_decided = open_event.decided
                last = open_event.last_time
            else:
                sim_packets = None
                sim_decided = False
                last = 0.0
            candidates: List[Tuple[int, List[Packet]]] = []
            for j, packet in items:
                if sim_packets is None or packet.timestamp - last > gap:
                    sim_packets = [packet]
                    sim_decided = False
                else:
                    sim_packets.append(packet)
                last = packet.timestamp
                if not sim_decided and len(sim_packets) >= prefix_n:
                    sim_decided = True
                    candidates.append((j, sim_packets[:prefix_n]))
            if not candidates:
                continue
            labels = classify_events_batch(
                classifier, [prefix for _, prefix in candidates]
            )
            for (j, _), label in zip(candidates, labels):
                hints[j] = label == "manual"
        return hints

    # -- rule-code cache ------------------------------------------------------------

    def _ensure_rule_cache(self, rules: RuleTable) -> bool:
        """(Re)build the sorted rule pair-code arrays; False = go exact.

        Valid as long as the same table object has seen no mutations
        (``merge``/``expire``/``add_rule`` bump a counter; ``restore``
        swaps the object).  Rule keys are interned once — ids are stable
        — so packets of never-ruled flows simply miss the sorted arrays.
        """
        if rules is self._cached_rules and rules._mutations == self._cached_mutations:
            return self._cache_safe
        interner = self._interner
        kid_list: List[int] = []
        codes: List[int] = []
        safe = True
        limit = PAIR_SHIFT - rules.neighbor_bins
        for key, bins in rules._rules.items():
            kid = interner.intern_key(key)
            kid_list.append(kid)
            for b in bins:
                if b < 0 or b >= limit:
                    safe = False
                codes.append(kid * PAIR_SHIFT + b)
        self._cached_rules = rules
        self._cached_mutations = rules._mutations
        self._cache_safe = safe
        if safe:
            self._rule_kids = np.unique(np.asarray(kid_list, dtype=np.int64))
            self._rule_codes = np.unique(np.asarray(codes, dtype=np.int64))
        return safe


def _none_to_nan(value: Optional[float]) -> float:
    return np.nan if value is None else value


def _bulk_last(
    target: Dict[Tuple, float], keys: List[Tuple], k: np.ndarray, t: np.ndarray
) -> None:
    """``target[key] = last t of key``, new keys in first-occurrence order.

    The scalar path assigns per packet, so a dict's key order is the
    order buckets were *first* written, while the stored value is the
    *last* timestamp — both must be reproduced for serialised state
    (snapshots) to stay byte-identical.
    """
    uniq, first, last = first_last_per_kid(k)
    order = np.argsort(first, kind="stable")
    uniq_o = uniq[order].tolist()
    vals = t[last[order]].tolist()
    for kid, v in zip(uniq_o, vals):
        target[keys[kid]] = v


def _sorted_member(sorted_values: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Membership of each target in a sorted unique int array."""
    if len(sorted_values) == 0:
        return np.zeros(len(targets), dtype=bool)
    pos = np.searchsorted(sorted_values, targets)
    pos_clipped = np.minimum(pos, len(sorted_values) - 1)
    return (pos < len(sorted_values)) & (sorted_values[pos_clipped] == targets)
