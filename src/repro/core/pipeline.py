"""End-to-end FIAT system wiring and the §6 accuracy experiment.

:class:`FiatSystem` assembles the full deployment: pairing (phone TEE +
proxy enclave keys), the client app, per-device event classifiers
(simple rules or BernoulliNB trained on labelled events), the humanness
validation service, and the IoT proxy.  :meth:`FiatSystem.run_accuracy`
then reproduces the Table-6 experiment: scripted manual operations with
genuine human motion, non-manual (control/automated) events, and
account-compromise attacks that ship spyware-captured (still-phone)
sensor proofs — the strongest attacker the threat model admits short of
the §7 piggyback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..crypto.keystore import pair
from ..events.grouping import UnpredictableEvent
from ..faults import FaultPlan, FaultyLink, FlakyClassifier, FlakyValidationService
from ..net.packet import TrafficClass
from ..obs import MetricsSnapshot
from ..quic.transport import Transport
from ..testbed.cloud import CloudDirectory, Location
from ..testbed.devices import DeviceProfile, profile_for
from ..testbed.household import generate_labeled_events, render_event
from ..testbed.phone import APP_PACKAGES, Phone
from ..sensors.humanness import HumannessValidator
from ..util import spawn_seed
from .classifier import train_event_classifier
from .client import FiatApp, ReliableAuthReport, RetryPolicy
from .config import FiatConfig
from .latency import LAN_SCENARIO, Scenario
from .proxy import FiatProxy
from .validation import HumanValidationService

if TYPE_CHECKING:  # pragma: no cover - avoids a module-level import cycle
    from ..recovery import ChaosReport, RecoveryManager

__all__ = ["DeviceAccuracy", "FiatSystem"]

_KEY_ALIAS = "fiat-pairing"


@dataclass
class DeviceAccuracy:
    """Table-6 row: empirical accuracy of FIAT for one device."""

    device: str
    #: event classifier precision/recall on manual and non-manual events
    manual_precision: float
    manual_recall: float
    non_manual_precision: float
    non_manual_recall: float
    #: FIAT end-to-end error rates (fractions)
    fp_non_manual_blocked: float
    fp_manual_blocked: float
    false_negative: float
    n_manual: int = 0
    n_non_manual: int = 0
    n_attacks: int = 0


class FiatSystem:
    """A complete FIAT deployment over the simulated testbed."""

    def __init__(
        self,
        devices: Sequence[Union[str, DeviceProfile]],
        config: Optional[FiatConfig] = None,
        location: Location = Location.US,
        scenario: Scenario = LAN_SCENARIO,
        transport: Transport = Transport.QUIC_0RTT,
        seed: int = 0,
        n_training_events: int = 120,
    ) -> None:
        self.config = config or FiatConfig(bootstrap_s=0.0)
        self.location = location
        self.profiles: List[DeviceProfile] = [
            profile_for(d) if isinstance(d, str) else d for d in devices
        ]
        self.obs = self.config.observability
        # Component seeds are hash-derived (never ``seed + k`` offsets):
        # systems built from adjacent seeds — fleet homes — must not
        # share any RNG stream across components.
        self.cloud = CloudDirectory(seed=spawn_seed(seed, "cloud"))
        self._rng = np.random.default_rng(spawn_seed(seed, "system"))
        self.phone = Phone(seed=spawn_seed(seed, "phone"))

        # Pairing: the shared key lives in both TEEs, never on the wire.
        # The proxy-side keystore is kept so a cold restart can rebuild
        # the stack around the *same* key — pairing survives a process
        # death (the key lives in the enclave, not in proxy memory).
        phone_keystore, proxy_keystore = pair(
            "phone", "iot-proxy", alias=_KEY_ALIAS, obs=self.obs
        )
        self._proxy_keystore = proxy_keystore
        self.app = FiatApp(
            keystore=phone_keystore,
            key_alias=_KEY_ALIAS,
            device_id="galaxy-s10",
            path=scenario.auth_path,
            transport=transport,
            seed=spawn_seed(seed, "app"),
            obs=self.obs,
        )
        self.validation = HumanValidationService(
            proxy_keystore,
            validator=HumannessValidator(seed=spawn_seed(seed, "validator")).fit(),
            validity_s=self.config.human_validity_s,
            freshness_s=self.config.channel_freshness_s,
            max_interactions=self.config.max_validated_interactions,
            obs=self.obs,
        )

        # Per-device classifiers, trained as deployed (§6 footnote 2).
        self.classifiers = {}
        for profile in self.profiles:
            training = None
            if not profile.uses_simple_rules:
                training = generate_labeled_events(
                    profile,
                    location=location,
                    n_manual=n_training_events // 2,
                    n_automated=n_training_events,
                    n_control=n_training_events,
                    seed=spawn_seed(seed, "training", profile.name),
                    cloud=self.cloud,
                )
            self.classifiers[profile.name] = train_event_classifier(
                profile, training, first_n=self.config.first_n_packets, obs=self.obs
            )

        self.proxy = FiatProxy(
            config=self.config,
            dns=self.cloud.dns,
            classifiers=self.classifiers,
            validation=self.validation,
            app_for_device=dict(APP_PACKAGES),
            start_time=0.0,
        )
        self._attach_streaming(self.proxy)
        #: humanness-validation confusion accumulated during experiments
        self.human_confusion = {"tp": 0, "fn": 0, "tn": 0, "fp": 0}
        #: fault injection (installed by :meth:`install_faults`)
        self._fault_plan: Optional[FaultPlan] = None
        self._fault_link: Optional[FaultyLink] = None
        self._sensor_rng: Optional[np.random.Generator] = None
        self._last_registered = None
        #: per-proof delivery reports when running under a fault plan
        self.auth_reports: List[ReliableAuthReport] = []
        #: crash-safe durability (installed by :meth:`enable_recovery`)
        self.recovery: "Optional[RecoveryManager]" = None

    # -- fault injection -------------------------------------------------------------

    def install_faults(self, plan: FaultPlan) -> None:
        """Route the deployment through a fault plan.

        Wraps the auth channel in a :class:`~repro.faults.FaultyLink`,
        the per-device classifiers and the validation service in outage
        injectors, and seeds the sensor-dropout stream.  Proof delivery
        switches to the app's acknowledgement-driven retransmission.
        """
        self._fault_plan = plan
        self._fault_link = FaultyLink(plan)
        self._sensor_rng = plan.stream("sensor")
        self.proxy.validation = FlakyValidationService(self.validation, plan)
        self.proxy.classifiers = {
            name: FlakyClassifier(classifier, plan)
            for name, classifier in self.classifiers.items()
        }

    def _deliver_wire(self, wire: bytes, arrive_at: float) -> bool:
        """Deliver one proof copy to the proxy; ``True`` = registered.

        A replay rejection also counts as registered — it means an
        earlier copy of the same proof already landed, so the sender's
        retransmission loop can stop (the ack for the original was
        lost, not the proof).
        """
        assert self._fault_link is not None
        receiver_now = self._fault_link.receiver_clock(arrive_at)
        before = len(self.validation.receiver.rejections)
        result = self._receive_auth(wire, receiver_now)
        if result is not None:
            self._last_registered = result
            return True
        return "replay" in self.validation.receiver.rejections[before:]

    # -- crash-safe durability (repro.recovery) --------------------------------------

    def build_stack(self) -> Tuple[FiatProxy, HumanValidationService]:
        """Build a fresh proxy + validation pair around the durable parts.

        The pairing key (TEE), the trained humanness validator and the
        trained per-device classifiers (on-disk models) are shared with
        the existing stack — a process death does not lose them.  Only
        the volatile security state is fresh; it is exactly what the
        :class:`~repro.recovery.RecoveryManager` journal restores.
        """
        validation = HumanValidationService(
            self._proxy_keystore,
            validator=self.validation.validator,
            validity_s=self.config.human_validity_s,
            freshness_s=self.config.channel_freshness_s,
            max_interactions=self.config.max_validated_interactions,
            obs=self.obs,
        )
        proxy = FiatProxy(
            config=self.config,
            dns=self.cloud.dns,
            classifiers=self.classifiers,
            validation=validation,
            app_for_device=dict(APP_PACKAGES),
            start_time=0.0,
        )
        self._attach_streaming(proxy)
        return proxy, validation

    def _attach_streaming(self, proxy: FiatProxy) -> None:
        """Attach the vectorized streaming engine when configured."""
        if self.config.streaming:
            from ..stream.engine import StreamingEngine

            proxy.attach_engine(StreamingEngine(proxy, window=self.config.stream_window))

    def cold_restart(self) -> Tuple[FiatProxy, HumanValidationService]:
        """Swap in a freshly built stack (a supervised process restart).

        Returns the new ``(proxy, validation)`` pair; fault injectors
        installed by :meth:`install_faults` are *not* re-applied — the
        caller restores state and re-installs what the experiment needs.
        """
        self.proxy, self.validation = self.build_stack()
        return self.proxy, self.validation

    def enable_recovery(self, state_dir: str, now: float = 0.0) -> "RecoveryManager":
        """Journal this deployment's security state into ``state_dir``.

        Every packet, proof wire and unlock fed through the system's
        input helpers is write-ahead journaled, with periodic snapshots
        per ``config.snapshot_interval_s``.  Returns the manager (also
        kept as ``self.recovery``); after a crash,
        ``self.recovery.recover()`` rebuilds the stack via
        :meth:`build_stack` and replays the journal.
        """
        from ..recovery import RecoveryManager

        manager = RecoveryManager(
            state_dir,
            self.build_stack,
            snapshot_interval_s=self.config.snapshot_interval_s,
            fsync=self.config.journal_fsync,
            reconcile=self.config.recovery_reconcile,
            obs=self.obs,
        )
        manager.start(self.proxy, self.validation, now=now)
        self.recovery = manager
        return manager

    def chaos_sweep(self, n_trials: int = 50, seed: int = 0, **kwargs) -> "ChaosReport":
        """Run the crash/chaos sweep over this deployment.

        Delegates to :func:`repro.recovery.chaos.chaos_sweep` (see there
        for the invariants checked and the knobs accepted).
        """
        from ..recovery import chaos_sweep

        return chaos_sweep(self, n_trials=n_trials, seed=seed, **kwargs)

    def _process(self, packet) -> Optional[bool]:
        """Feed one packet to the proxy, journaling it first when enabled.

        Returns the forwarding verdict, or ``None`` when a streaming
        engine deferred it to the next window flush.
        """
        if self.recovery is not None:
            self.recovery.journal_packet(packet)
        allowed = self.proxy.ingest(packet)
        if self.recovery is not None:
            self.recovery.maybe_checkpoint(packet.timestamp)
        return allowed

    def _receive_auth(self, wire: bytes, now: float):
        """Feed one proof wire to the proxy, journaling it first when enabled."""
        if self.recovery is not None:
            self.recovery.journal_auth(wire, now)
        return self.proxy.receive_auth(wire, now)

    def _unlock(self, device: str, now: float) -> None:
        """Re-authorize a device, journaling the action first when enabled."""
        if self.recovery is not None:
            self.recovery.journal_unlock(device, now)
        self.proxy.unlock(device)

    # -- experiment building blocks ------------------------------------------------

    def _event_packets(
        self, profile: DeviceProfile, traffic_class: TrafficClass, start: float, seed: int
    ):
        rng = np.random.default_rng(seed)
        templates = {
            TrafficClass.MANUAL: profile.manual_templates(),
            TrafficClass.ATTACK: profile.manual_templates(),
            TrafficClass.AUTOMATED: (profile.automated,),
            TrafficClass.CONTROL: (profile.control_noise,),
        }[traffic_class]
        template = templates[int(rng.integers(0, len(templates)))]
        endpoints = {
            service: self.cloud.endpoint(profile.vendor, service, self.location)
            for service in template.services()
        }
        return render_event(
            profile,
            template,
            start,
            traffic_class,
            device_ip="192.168.1.10",
            endpoints=endpoints,
            rng=rng,
            event_id=f"{profile.name}-{traffic_class.value}-{start:.0f}",
        )

    def _send_proof(self, device: str, when: float, human: bool) -> None:
        # Sensor dropout: the sensor service died mid-capture, so a
        # genuine human interaction yields a still-phone window.
        if human and self._fault_plan is not None:
            plan = self._fault_plan
            dropped = plan.is_down("sensor", when)
            if self._sensor_rng is not None and plan.sensor_dropout_rate > 0.0:
                dropped = dropped or float(self._sensor_rng.random()) < plan.sensor_dropout_rate
            human = not dropped and human
        interaction = self.phone.interact(device, when, human=human)

        if self._fault_link is not None:
            self._last_registered = None
            report = self.app.authenticate_reliable(
                interaction,
                when,
                link=self._fault_link,
                deliver=self._deliver_wire,
                policy=RetryPolicy.from_config(self.config),
            )
            self.auth_reports.append(report)
            recorded = self._last_registered
        else:
            attempt = self.app.authenticate(interaction, when)
            self._receive_auth(
                attempt.wire, when + attempt.components["transport"] / 1000.0
            )
            recorded = (
                self.validation._interactions[-1] if self.validation._interactions else None
            )
        if recorded is not None:
            if human and recorded.human:
                self.human_confusion["tp"] += 1
            elif human and not recorded.human:
                self.human_confusion["fn"] += 1
            elif not human and not recorded.human:
                self.human_confusion["tn"] += 1
            else:
                self.human_confusion["fp"] += 1

    # -- the §6 accuracy experiment --------------------------------------------------

    def run_accuracy(
        self,
        n_manual: int = 50,
        n_non_manual: int = 120,
        n_attacks: int = 50,
        attack_with_proof: float = 0.3,
        seed: int = 100,
        faults: Optional[FaultPlan] = None,
    ) -> Dict[str, DeviceAccuracy]:
        """Run the Table-6 experiment for every device in the system.

        * ``n_manual`` user operations: a genuine human interaction (with
          its signed sensor proof, delivered ahead of the traffic — FIAT
          is faster, Table 7) followed by the manual IoT event;
        * ``n_non_manual`` unpredictable control/automated events with no
          proof in flight;
        * ``n_attacks`` account-compromise injections.  A fraction
          ``attack_with_proof`` of the attackers additionally run
          user-space spyware that forwards a *still-phone* sensor proof
          (they can read sensors but not fake them, §5.1) — these
          exercise the validator's non-human recall; the rest send no
          proof at all.

        ``faults`` installs a :class:`~repro.faults.FaultPlan` before the
        run (see :meth:`install_faults`): proofs then travel over the
        faulty link with acknowledgement-driven retransmission, and
        component outages exercise the proxy's circuit breakers and
        degraded-mode policies.  Identical seeds + identical plan
        reproduce a byte-identical ``proxy.decision_log()``.
        """
        if faults is not None:
            self.install_faults(faults)
        rng = np.random.default_rng(seed)
        results: Dict[str, DeviceAccuracy] = {}
        t = self.config.bootstrap_s + 10.0
        spacing = max(30.0, self.config.human_validity_s / 2.0 + 5.0)

        for profile in self.profiles:
            start_index = len(self.proxy.decisions)
            phases: List[tuple] = []
            for k in range(n_manual):
                phases.append(("manual", t))
                t += spacing
            for k in range(n_non_manual):
                cls = TrafficClass.AUTOMATED if k % 2 == 0 else TrafficClass.CONTROL
                phases.append((cls, t))
                t += spacing
            for k in range(n_attacks):
                phases.append(("attack", t))
                self._unlock(profile.name, t)  # isolate per-attempt outcome
                t += spacing

            for phase, when in phases:
                if phase == "manual":
                    self._send_proof(profile.name, when - 0.5, human=True)
                    packets = self._event_packets(
                        profile, TrafficClass.MANUAL, when, int(rng.integers(0, 2**31))
                    )
                elif phase == "attack":
                    if rng.random() < attack_with_proof:
                        self._send_proof(profile.name, when - 0.5, human=False)
                    packets = self._event_packets(
                        profile, TrafficClass.ATTACK, when, int(rng.integers(0, 2**31))
                    )
                else:
                    packets = self._event_packets(
                        profile, phase, when, int(rng.integers(0, 2**31))
                    )
                for packet in packets:
                    self._process(packet)
                self._unlock(profile.name, when)
            self.proxy.flush()

            decisions = self.proxy.decisions[start_index:]
            manual_dec = [d for d in decisions if d.event_id and "-manual-" in d.event_id]
            attack_dec = [d for d in decisions if d.event_id and "-attack-" in d.event_id]
            nonman_dec = [
                d
                for d in decisions
                if d.event_id and ("-automated-" in d.event_id or "-control-" in d.event_id)
            ]

            # Event-classifier confusion over legitimate events + attacks
            # (attacks are ground-truth manual-shaped).
            tp = sum(d.predicted_manual for d in manual_dec + attack_dec)
            fn = sum(not d.predicted_manual for d in manual_dec + attack_dec)
            fp = sum(d.predicted_manual for d in nonman_dec)
            tn = sum(not d.predicted_manual for d in nonman_dec)
            manual_precision = tp / (tp + fp) if tp + fp else 0.0
            manual_recall = tp / (tp + fn) if tp + fn else 0.0
            non_manual_precision = tn / (tn + fn) if tn + fn else 0.0
            non_manual_recall = tn / (tn + fp) if tn + fp else 0.0

            results[profile.name] = DeviceAccuracy(
                device=profile.name,
                manual_precision=manual_precision,
                manual_recall=manual_recall,
                non_manual_precision=non_manual_precision,
                non_manual_recall=non_manual_recall,
                fp_non_manual_blocked=(
                    sum(d.blocked for d in nonman_dec) / len(nonman_dec) if nonman_dec else 0.0
                ),
                fp_manual_blocked=(
                    sum(d.blocked for d in manual_dec) / len(manual_dec) if manual_dec else 0.0
                ),
                false_negative=(
                    sum(not d.blocked for d in attack_dec) / len(attack_dec)
                    if attack_dec
                    else 0.0
                ),
                n_manual=len(manual_dec),
                n_non_manual=len(nonman_dec),
                n_attacks=len(attack_dec),
            )
        return results

    def metrics_snapshot(self) -> MetricsSnapshot:
        """Snapshot of the whole deployment's metrics.

        With observability enabled this is the shared registry every
        component reports into; with it disabled only the proxy's
        private health counters exist.  Delegates to the proxy so the
        packet tallies are synced before the snapshot is cut.
        """
        return self.proxy.metrics_snapshot()

    def human_validation_rates(self) -> Dict[str, float]:
        """Precision/recall of humanness validation accumulated so far."""
        c = self.human_confusion
        return {
            "human_precision": c["tp"] / (c["tp"] + c["fp"]) if c["tp"] + c["fp"] else 0.0,
            "human_recall": c["tp"] / (c["tp"] + c["fn"]) if c["tp"] + c["fn"] else 0.0,
            "non_human_precision": c["tn"] / (c["tn"] + c["fn"]) if c["tn"] + c["fn"] else 0.0,
            "non_human_recall": c["tn"] / (c["tn"] + c["fp"]) if c["tn"] + c["fp"] else 0.0,
        }
