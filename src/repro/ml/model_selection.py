"""Dataset splitting and cross-validation.

Table 3's numbers are "the mean from five-fold cross-validation"; this
module provides :class:`StratifiedKFold`, :func:`train_test_split` and
:func:`cross_validate` with pluggable scoring so the benches can mirror
that protocol exactly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .base import Classifier, check_Xy, clone
from .metrics import accuracy_score, balanced_accuracy_score, f1_score

__all__ = ["StratifiedKFold", "train_test_split", "cross_validate", "cross_val_score"]


class StratifiedKFold:
    """K-fold splitter preserving per-class proportions in every fold.

    Samples of each class are dealt round-robin (after an optional
    shuffle) so each fold receives a near-equal share of every class.
    """

    def __init__(
        self, n_splits: int = 5, shuffle: bool = True, seed: Optional[int] = 0
    ) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, X: Any, y: Any) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs."""
        y = np.asarray(y)
        n = len(y)
        rng = np.random.default_rng(self.seed)
        fold_of = np.zeros(n, dtype=int)
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            if self.shuffle:
                rng.shuffle(members)
            for position, index in enumerate(members):
                fold_of[index] = position % self.n_splits
        for fold in range(self.n_splits):
            test = np.flatnonzero(fold_of == fold)
            train = np.flatnonzero(fold_of != fold)
            if len(test) == 0 or len(train) == 0:
                continue
            yield train, test


def train_test_split(
    X: Any,
    y: Any,
    test_size: float = 0.25,
    seed: Optional[int] = 0,
    stratify: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split ``(X, y)`` into train and test partitions.

    With ``stratify`` (default) each class contributes proportionally to
    the test set, with at least one test sample per class when possible.
    """
    X, y = check_Xy(X, y)
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    rng = np.random.default_rng(seed)
    test_mask = np.zeros(len(y), dtype=bool)
    if stratify:
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            rng.shuffle(members)
            n_test = max(1, int(round(len(members) * test_size))) if len(members) > 1 else 0
            test_mask[members[:n_test]] = True
    else:
        indices = rng.permutation(len(y))
        test_mask[indices[: max(1, int(round(len(y) * test_size)))]] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


_SCORERS: Dict[str, Callable[[Any, np.ndarray, np.ndarray], float]] = {}


def _scorer(name: str, func: Callable[..., float]) -> None:
    _SCORERS[name] = func


_scorer("accuracy", lambda est, X, y: accuracy_score(y, est.predict(X)))
_scorer("balanced_accuracy", lambda est, X, y: balanced_accuracy_score(y, est.predict(X)))


def _resolve_scorer(
    scoring: Any,
) -> Callable[[Classifier, np.ndarray, np.ndarray], float]:
    if callable(scoring):
        return scoring
    if isinstance(scoring, str):
        if scoring in _SCORERS:
            return _SCORERS[scoring]
        if scoring.startswith("f1:"):
            positive = scoring.split(":", 1)[1]
            return lambda est, X, y: f1_score(y, est.predict(X), positive)
        raise ValueError(f"unknown scoring {scoring!r}")
    raise TypeError("scoring must be a string or a callable")


def cross_validate(
    estimator: Classifier,
    X: Any,
    y: Any,
    n_splits: int = 5,
    scoring: Any = "balanced_accuracy",
    seed: Optional[int] = 0,
) -> Dict[str, Any]:
    """Stratified k-fold cross-validation.

    Returns ``{"scores": [...], "mean": float, "std": float}``; the
    estimator is cloned per fold so folds never share fitted state.
    ``scoring`` accepts ``"accuracy"``, ``"balanced_accuracy"``,
    ``"f1:<positive-label>"`` or a callable ``(estimator, X, y) -> float``.
    """
    X, y = check_Xy(X, y)
    score_func = _resolve_scorer(scoring)
    splitter = StratifiedKFold(n_splits=n_splits, shuffle=True, seed=seed)
    scores: List[float] = []
    for train_index, test_index in splitter.split(X, y):
        fold_estimator = clone(estimator)
        fold_estimator.fit(X[train_index], y[train_index])
        scores.append(float(score_func(fold_estimator, X[test_index], y[test_index])))
    if not scores:
        raise ValueError("cross-validation produced no usable folds")
    return {
        "scores": scores,
        "mean": float(np.mean(scores)),
        "std": float(np.std(scores)),
    }


def grid_search(
    estimator_factory: Callable[..., Classifier],
    param_grid: Dict[str, Sequence[Any]],
    X: Any,
    y: Any,
    n_splits: int = 5,
    scoring: Any = "balanced_accuracy",
    seed: Optional[int] = 0,
) -> Dict[str, Any]:
    """Exhaustive hyper-parameter search by cross-validation.

    Mirrors the paper's §4.1 protocol ("the best results among all the
    hyperparameters that we have experimented"): every combination of
    ``param_grid`` values is evaluated with stratified k-fold CV and the
    best mean score wins.

    Returns ``{"best_params", "best_score", "results"}`` where
    ``results`` lists ``(params, mean_score)`` for every combination.
    """
    names = list(param_grid)
    if not names:
        raise ValueError("param_grid must contain at least one parameter")

    combinations: List[Dict[str, Any]] = [{}]
    for name in names:
        values = list(param_grid[name])
        if not values:
            raise ValueError(f"parameter {name!r} has no candidate values")
        combinations = [
            {**combo, name: value} for combo in combinations for value in values
        ]

    results: List[Tuple[Dict[str, Any], float]] = []
    best_params: Optional[Dict[str, Any]] = None
    best_score = -np.inf
    for params in combinations:
        estimator = estimator_factory(**params)
        score = cross_validate(
            estimator, X, y, n_splits=n_splits, scoring=scoring, seed=seed
        )["mean"]
        results.append((params, score))
        if score > best_score:
            best_score = score
            best_params = params
    assert best_params is not None
    return {"best_params": best_params, "best_score": float(best_score), "results": results}


def cross_val_score(
    estimator: Classifier,
    X: Any,
    y: Any,
    n_splits: int = 5,
    scoring: Any = "balanced_accuracy",
    seed: Optional[int] = 0,
) -> List[float]:
    """Fold scores only (convenience wrapper over :func:`cross_validate`)."""
    return cross_validate(estimator, X, y, n_splits=n_splits, scoring=scoring, seed=seed)[
        "scores"
    ]
