"""Fleet scale-out: homes/sec as a function of worker processes.

The ROADMAP north star is a system serving millions of homes; the first
scale-out axis is shard-per-worker parallelism over independent
households (`repro.fleet`).  This bench runs one generated fleet
through the serial backend and through process pools of increasing
size, reporting homes/sec and the speedup over serial, and asserts the
backends agree byte-for-byte on the aggregate report (parallelism must
never buy throughput with determinism).

On a multi-core runner the process backend should clear ~1.5x serial at
``jobs=4``; on a single-core container it only has to stay correct (the
speedup assertion is gated on the visible CPU count).

Run with ``pytest -s`` to see the table.
"""

import json
import os
import time

from repro.fleet import FleetRunner, generate_fleet

from benchmarks._helpers import bench_out_path, print_table

#: Pool sizes swept (serial is the `jobs=1` reference).
JOB_COUNTS = [1, 2, 4]

#: Rule devices: no ML training, so the bench isolates orchestration
#: and serialisation overhead rather than classifier fitting.
N_HOMES = 12


def _fleet():
    return generate_fleet(
        N_HOMES, seed=11, name="bench-scaling",
        n_manual=4, n_non_manual=8, n_attacks=4,
    )


def test_fleet_scaling_throughput():
    """Homes/sec vs ``--jobs``, with cross-backend determinism asserted."""
    spec = _fleet()
    rows = []
    reports = {}
    timings = {}
    for jobs in JOB_COUNTS:
        backend = "serial" if jobs == 1 else "process"
        runner = FleetRunner(spec, jobs=jobs, backend=backend)
        t0 = time.perf_counter()
        report = runner.run()
        elapsed = time.perf_counter() - t0
        assert report.ok, f"jobs={jobs}: {report.failed_homes}"
        reports[jobs] = report.to_json()
        timings[jobs] = elapsed
        rows.append(
            (
                f"{backend}:{jobs}",
                f"{elapsed:.2f}s",
                f"{N_HOMES / elapsed:.2f}",
                f"{timings[1] / elapsed:.2f}x",
            )
        )

    print_table(
        "Fleet scaling (homes/sec vs jobs)",
        ["backend:jobs", "elapsed", "homes/sec", "speedup"],
        rows,
    )

    # Determinism across backends and pool sizes: identical bytes.
    for jobs in JOB_COUNTS[1:]:
        assert reports[jobs] == reports[1], f"jobs={jobs} diverged from serial"

    # Speedup only where the hardware can provide it (CI: 4-core runner).
    cores = os.cpu_count() or 1
    if cores >= 4:
        assert timings[1] / timings[4] > 1.5, (
            f"expected >1.5x at jobs=4 on {cores} cores, "
            f"got {timings[1] / timings[4]:.2f}x"
        )

    headline = {
        "n_homes": N_HOMES,
        "cores": cores,
        "homes_per_sec": {
            str(jobs): N_HOMES / elapsed for jobs, elapsed in timings.items()
        },
        "speedup": {str(jobs): timings[1] / timings[jobs] for jobs in JOB_COUNTS},
        "deterministic": True,
    }
    with open(bench_out_path("BENCH_fleet_scaling.json"), "w", encoding="utf-8") as fh:
        json.dump({"bench": "fleet_scaling", "headline": headline}, fh, indent=2)
