"""Bucket-based predictability heuristic (paper §2.1).

A packet is *predictable* when packets of the same size travel between
the same endpoints at a constant pace.  Concretely, every packet is
stored in a bucket identified by its flow key (Classic or PortLess, see
:mod:`repro.net.flows`); for each bucket the inter-arrival time (IAT)
between the last two packets is computed, and if that IAT matches any
previously computed IAT for the bucket, then **all** packets associated
with that IAT — previous and future — are considered predictable.

Two consumption modes are provided:

* :func:`label_predictable` — the offline, retroactive analysis used for
  the measurement study (§2, §3): returns a per-packet boolean mask.
* :class:`BucketPredictor` — an online learner used by the FIAT proxy:
  during the bootstrap window it records the recurring IATs of every
  bucket; afterwards :meth:`BucketPredictor.observe` reports whether an
  arriving packet matches a learned pattern.

IATs are quantised to a configurable resolution (default 0.25 s) so that
small scheduling jitter does not break a match, while genuinely drifting
timers — such as the Nest thermostat's motion-triggered wakeups, which
vary by several seconds — remain unpredictable, as observed in the paper.
"""

from __future__ import annotations

import math
from collections import defaultdict
from time import perf_counter
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from ..net.dns import DnsTable
from ..net.flows import FlowDefinition, decode_flow_key, encode_flow_key, flow_key
from ..net.packet import Packet
from ..net.trace import Trace
from ..obs import NULL_OBS, Observability

__all__ = ["BucketPredictor", "label_predictable", "quantize_iat"]

#: Default IAT quantisation resolution in seconds.
DEFAULT_RESOLUTION = 0.25

#: Version of the serialised state schema (see :meth:`BucketPredictor.to_state`).
_STATE_VERSION = 1


def quantize_iat(iat: float, resolution: float = DEFAULT_RESOLUTION) -> int:
    """Quantise an inter-arrival time into an integer bin.

    Bins are half-open intervals of width ``resolution``; negative IATs
    (possible only with unsorted input) are clamped to bin 0.
    """
    if iat <= 0:
        return 0
    return int(math.floor(iat / resolution + 0.5))


class _BucketState:
    """Per-bucket history: last arrival and IAT-bin occurrence counts."""

    __slots__ = ("last_timestamp", "iat_bins", "packet_bins")

    def __init__(self) -> None:
        self.last_timestamp: Optional[float] = None
        #: bin -> number of times this IAT bin was computed
        self.iat_bins: Dict[int, int] = {}
        #: per observed packet (after the first): (packet_index, bin)
        self.packet_bins: List[Tuple[int, int]] = []


class BucketPredictor:
    """Online predictability learner / matcher.

    Parameters
    ----------
    definition:
        Flow definition used for bucketing (PortLess by default, as
        deployed by FIAT).
    dns:
        DNS table for PortLess domain resolution.
    resolution:
        IAT quantisation resolution in seconds.
    neighbor_bins:
        A new IAT matches a learned one when its bin is within this many
        bins of a previously seen bin (0 = exact bin match).  One
        neighbour bin absorbs boundary jitter.
    obs:
        Optional :class:`~repro.obs.Observability` handle backing
        :meth:`timed_observe`, which feeds the
        ``bucket_lookup_latency_ms`` histogram.  :meth:`observe` itself
        is never timed: the lookup body is sub-microsecond, so even a
        per-call sampling check would dominate it — the caller (the FIAT
        proxy) decides when to route a call through the timed variant.
    """

    def __init__(
        self,
        definition: FlowDefinition = FlowDefinition.PORTLESS,
        dns: Optional[DnsTable] = None,
        resolution: float = DEFAULT_RESOLUTION,
        neighbor_bins: int = 1,
        obs: Optional[Observability] = None,
    ) -> None:
        self.definition = definition
        self.dns = dns
        self.resolution = resolution
        self.neighbor_bins = neighbor_bins
        self._obs = obs if obs is not None else NULL_OBS
        self._buckets: Dict[Tuple[Hashable, ...], _BucketState] = defaultdict(_BucketState)
        self._n_observed = 0

    # -- online interface ---------------------------------------------------------

    def key_for(self, packet: Packet) -> Tuple[Hashable, ...]:
        """Bucket key of a packet under this predictor's flow definition."""
        return flow_key(packet, self.definition, self.dns)

    def _bin_matches(self, state: _BucketState, iat_bin: int) -> bool:
        for delta in range(-self.neighbor_bins, self.neighbor_bins + 1):
            if state.iat_bins.get(iat_bin + delta, 0) > 0:
                return True
        return False

    def timed_observe(self, packet: Packet) -> bool:
        """:meth:`observe` one packet, feeding ``bucket_lookup_latency_ms``.

        Unconditionally timed — callers are expected to sample (the FIAT
        proxy routes at most one call per
        :data:`~repro.obs.TIMING_SAMPLE_INTERVAL_S` simulated seconds
        through here), because the lookup body is sub-microsecond and a
        per-call check here would cost more than the <10 %
        instrumentation budget allows.
        """
        t0 = perf_counter()
        matched = self.observe(packet)
        self._obs.observe("bucket_lookup_latency_ms", (perf_counter() - t0) * 1000.0)
        return matched

    def observe(self, packet: Packet) -> bool:
        """Feed one packet; return ``True`` when it matches a learned IAT.

        The first packet of a bucket is never predictable online (there is
        no IAT yet), and the second is predictable only if its IAT matches
        an IAT learned from earlier traffic.
        """
        state = self._buckets[self.key_for(packet)]
        self._n_observed += 1
        if state.last_timestamp is None:
            state.last_timestamp = packet.timestamp
            return False
        iat = packet.timestamp - state.last_timestamp
        state.last_timestamp = packet.timestamp
        iat_bin = quantize_iat(iat, self.resolution)
        matched = self._bin_matches(state, iat_bin)
        state.iat_bins[iat_bin] = state.iat_bins.get(iat_bin, 0) + 1
        state.packet_bins.append((self._n_observed - 1, iat_bin))
        return matched

    def learn_trace(self, trace: Iterable[Packet]) -> None:
        """Bulk-feed a (bootstrap) trace without collecting the results."""
        for packet in trace:
            self.observe(packet)

    # -- learned-state inspection ---------------------------------------------------

    @property
    def n_buckets(self) -> int:
        """Number of distinct flow buckets seen so far."""
        return len(self._buckets)

    def recurring_buckets(self) -> List[Tuple[Tuple[Hashable, ...], Set[int]]]:
        """Buckets with at least one IAT bin seen twice, with those bins.

        These are the flows the FIAT proxy converts into allow rules
        after the bootstrap window.
        """
        result = []
        for key, state in self._buckets.items():
            repeated = {b for b, count in state.iat_bins.items() if count >= 2}
            if repeated:
                result.append((key, repeated))
        return result

    def learned_bins(self, key: Tuple[Hashable, ...]) -> Set[int]:
        """All IAT bins ever computed for a bucket (empty if unseen)."""
        state = self._buckets.get(key)
        return set(state.iat_bins) if state else set()

    def last_seen(self, key: Tuple[Hashable, ...]) -> Optional[float]:
        """Timestamp of the bucket's most recent packet (None if unseen)."""
        state = self._buckets.get(key)
        return state.last_timestamp if state else None

    # -- durable state ------------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """Serialise the learned bucket tables (versioned, JSON-native).

        Bucket iteration order is preserved so a restored predictor
        freezes rules in the same order as an uninterrupted one.
        """
        buckets = []
        for key, state in self._buckets.items():
            buckets.append(
                [
                    encode_flow_key(key),
                    {
                        "last": state.last_timestamp,
                        "bins": {str(b): count for b, count in state.iat_bins.items()},
                        "packets": [[index, b] for index, b in state.packet_bins],
                    },
                ]
            )
        return {
            "v": _STATE_VERSION,
            "definition": self.definition.value,
            "resolution": self.resolution,
            "neighbor_bins": self.neighbor_bins,
            "n_observed": self._n_observed,
            "buckets": buckets,
        }

    @classmethod
    def from_state(
        cls,
        state: Dict[str, object],
        dns: Optional[DnsTable] = None,
        obs: Optional[Observability] = None,
    ) -> "BucketPredictor":
        """Rebuild a predictor from :meth:`to_state` output.

        ``dns`` and ``obs`` are process-local resources (the DNS table is
        rebuilt by the host, the observability handle belongs to the new
        process) and are therefore re-injected rather than serialised.
        """
        if state.get("v") != _STATE_VERSION:
            raise ValueError(f"unsupported BucketPredictor state version: {state.get('v')!r}")
        predictor = cls(
            definition=FlowDefinition(state["definition"]),
            dns=dns,
            resolution=float(state["resolution"]),
            neighbor_bins=int(state["neighbor_bins"]),
            obs=obs,
        )
        predictor._n_observed = int(state["n_observed"])
        for encoded_key, encoded in state["buckets"]:  # type: ignore[union-attr]
            bucket = _BucketState()
            last = encoded["last"]
            bucket.last_timestamp = None if last is None else float(last)
            bucket.iat_bins = {int(b): int(count) for b, count in encoded["bins"].items()}
            bucket.packet_bins = [(int(i), int(b)) for i, b in encoded["packets"]]
            predictor._buckets[decode_flow_key(encoded_key)] = bucket
        return predictor


def label_predictable(
    trace: Trace,
    definition: FlowDefinition = FlowDefinition.PORTLESS,
    dns: Optional[DnsTable] = None,
    resolution: float = DEFAULT_RESOLUTION,
    neighbor_bins: int = 1,
) -> List[bool]:
    """Offline, retroactive predictability labelling (paper §2.1).

    Returns one boolean per packet of ``trace`` (in timestamp order).
    A packet is predictable when the IAT bin linking it to the previous
    packet of its bucket occurs **at least twice** anywhere in the trace;
    both the earlier and later packets of a repeated IAT are marked, which
    realises the paper's "previous or future" retroactivity.  The first
    packet of a bucket is marked predictable when the bucket contains any
    repeated IAT involving its successor, i.e. when the flow itself is
    periodic from the start.
    """
    dns = dns if dns is not None else trace.dns
    labels = [False] * len(trace)

    # First pass: compute IAT bins per bucket.
    last_seen: Dict[Tuple[Hashable, ...], Tuple[int, float]] = {}
    bucket_packets: Dict[Tuple[Hashable, ...], List[int]] = defaultdict(list)
    packet_bin: Dict[int, Tuple[Tuple[Hashable, ...], int]] = {}
    bin_counts: Dict[Tuple[Hashable, ...], Dict[int, int]] = defaultdict(dict)

    packet_pos: Dict[int, int] = {}

    for index, packet in enumerate(trace):
        key = flow_key(packet, definition, dns)
        packet_pos[index] = len(bucket_packets[key])
        bucket_packets[key].append(index)
        if key in last_seen:
            prev_index, prev_time = last_seen[key]
            iat_bin = quantize_iat(packet.timestamp - prev_time, resolution)
            packet_bin[index] = (key, iat_bin)
            counts = bin_counts[key]
            counts[iat_bin] = counts.get(iat_bin, 0) + 1
        last_seen[key] = (index, packet.timestamp)

    # Second pass: a bin is "repeated" when, considering neighbour bins,
    # it was computed at least twice in its bucket.
    def repeated(key: Tuple[Hashable, ...], iat_bin: int) -> bool:
        counts = bin_counts[key]
        total = 0
        for delta in range(-neighbor_bins, neighbor_bins + 1):
            total += counts.get(iat_bin + delta, 0)
        return total >= 2

    for index, (key, iat_bin) in packet_bin.items():
        if repeated(key, iat_bin):
            labels[index] = True
            # The predecessor packet participates in the same IAT pair.
            position = packet_pos[index]
            if position > 0:
                labels[bucket_packets[key][position - 1]] = True

    return labels
