"""Figure 1(c): maximum intervals of predictable flows (YourThings).

The paper finds 80-90 % of predictable traffic recurs within 5 minutes
and the maximum interval is 10 minutes — from which FIAT's 20-minute
bootstrap window (2x the maximum) is derived.
"""

import numpy as np

from repro.net import FlowDefinition
from repro.predictability import max_predictable_intervals

from benchmarks._helpers import print_table


def test_fig1c_max_intervals(benchmark, yourthings_corpus):
    intervals = benchmark.pedantic(
        lambda: max_predictable_intervals(yourthings_corpus, FlowDefinition.PORTLESS),
        rounds=1,
        iterations=1,
    )
    values = np.asarray(sorted(v for v in intervals.values() if v > 0))
    assert len(values) > 0

    share_under_5min = float(np.mean(values <= 300.0))
    maximum = float(values.max())
    rows = [
        ("flows with predictable packets", len(values)),
        ("share recurring within 5 min", f"{share_under_5min:.2f}"),
        ("p90 interval (s)", f"{np.percentile(values, 90):.0f}"),
        ("maximum interval (s)", f"{maximum:.0f}"),
        ("implied bootstrap = 2 x max (s)", f"{2 * maximum:.0f}"),
    ]
    print_table(
        "Fig 1(c) — max intervals of predictable flows "
        "(paper: 80-90 % < 5 min, max 10 min -> 20 min bootstrap)",
        ("quantity", "value"),
        rows,
    )

    assert share_under_5min > 0.6
    # The maximum interval stays in the ~10-minute regime the paper
    # derives its 20-minute bootstrap from (tolerating generator jitter).
    assert maximum <= 1300.0
