"""Tests for the declarative scenario runner."""

import json

import pytest

from repro.scenarios import EXAMPLE_SCENARIO, run_scenario


@pytest.fixture(scope="module")
def example_report():
    return run_scenario(EXAMPLE_SCENARIO)


class TestExampleScenario:
    def test_user_commands_execute(self, example_report):
        assert example_report.user_commands_executed == 2

    def test_attacks_blocked(self, example_report):
        assert example_report.attacks_blocked == 2

    def test_outcomes_cover_timeline(self, example_report):
        assert len(example_report.outcomes) == len(EXAMPLE_SCENARIO["timeline"])

    def test_audit_verifies(self, example_report):
        assert example_report.audit is not None
        assert example_report.audit.verify()

    def test_user_report_devices(self, example_report):
        assert set(example_report.user_report) <= {"SP10", "EchoDot4"}
        assert "SP10" in example_report.user_report

    def test_alerts_for_attacks(self, example_report):
        assert any("SP10" in alert for alert in example_report.alerts)

    def test_json_serialisation(self, example_report):
        data = json.loads(example_report.to_json())
        assert data["name"] == "evening-attack"
        assert data["attacks_blocked"] == 2


class TestScenarioInput:
    def test_accepts_json_string(self):
        report = run_scenario(json.dumps(EXAMPLE_SCENARIO))
        assert report.name == "evening-attack"

    def test_missing_devices_rejected(self):
        with pytest.raises(ValueError, match="device"):
            run_scenario({"timeline": []})

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown action"):
            run_scenario(
                {"devices": ["SP10"], "timeline": [{"at": 0, "device": "SP10", "action": "dance"}]}
            )

    def test_unknown_attack_rejected(self):
        with pytest.raises(ValueError, match="unknown attack"):
            run_scenario(
                {
                    "devices": ["SP10"],
                    "timeline": [
                        {"at": 0, "device": "SP10", "action": "attack", "attack": "voodoo"}
                    ],
                }
            )

    def test_missing_at_rejected(self):
        with pytest.raises(ValueError, match="'at'"):
            run_scenario(
                {"devices": ["SP10"], "timeline": [{"device": "SP10", "action": "background"}]}
            )


class TestScenarioSemantics:
    def test_spyware_sync_attack_succeeds(self):
        report = run_scenario(
            {
                "devices": ["SP10"],
                "seed": 3,
                "timeline": [
                    {"at": 100.0, "action": "attack", "device": "SP10",
                     "attack": "spyware-sync"},
                ],
            }
        )
        # synchronized spyware rides the genuine human motion (§7)
        assert report.attacks_blocked == 0

    def test_interaction_rule_allows_device_command(self):
        # Without the DAG rule the attack-shaped traffic from another
        # device would be dropped; run_scenario wires the graph in.
        report = run_scenario(
            {
                "devices": ["SP10", "EchoDot4"],
                "interactions": [{"controller": "EchoDot4", "target": "SP10"}],
                "timeline": [
                    {"at": 100.0, "action": "user-command", "device": "SP10"},
                ],
            }
        )
        assert report.user_commands_executed == 1

    def test_background_control_event(self):
        report = run_scenario(
            {
                "devices": ["EchoDot4"],
                "timeline": [
                    {"at": 50.0, "action": "background", "device": "EchoDot4",
                     "class": "control"},
                ],
            }
        )
        assert len(report.outcomes) == 1

    def test_timeline_sorted_by_time(self):
        report = run_scenario(
            {
                "devices": ["SP10"],
                "timeline": [
                    {"at": 200.0, "action": "user-command", "device": "SP10"},
                    {"at": 100.0, "action": "user-command", "device": "SP10"},
                ],
            }
        )
        times = [o["at"] for o in report.outcomes]
        assert times == sorted(times)
