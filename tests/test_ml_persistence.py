"""Unit tests for model persistence (the §7 model-download format)."""

import json

import numpy as np
import pytest

from repro.ml import (
    BernoulliNB,
    DecisionTreeClassifier,
    KNeighborsClassifier,
    NearestCentroidClassifier,
    StandardScaler,
)
from repro.ml.persistence import MODEL_FORMAT_VERSION, load_model, save_model


def _data(seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(-2, 1, (40, 4)), rng.normal(2, 1, (40, 4))])
    y = np.array(["a"] * 40 + ["b"] * 40)
    return X, y


SUPPORTED = [
    pytest.param(lambda: BernoulliNB(alpha=0.7), id="bernoulli-nb"),
    pytest.param(lambda: NearestCentroidClassifier("manhattan"), id="nearest-centroid"),
    pytest.param(lambda: DecisionTreeClassifier(max_depth=4, seed=0), id="decision-tree"),
]


@pytest.mark.parametrize("make_model", SUPPORTED)
class TestRoundtrip:
    def test_predictions_identical(self, make_model):
        X, y = _data()
        model = make_model().fit(X, y)
        restored, _, _ = load_model(save_model(model))
        assert np.array_equal(model.predict(X), restored.predict(X))

    def test_params_preserved(self, make_model):
        X, y = _data()
        model = make_model().fit(X, y)
        restored, _, _ = load_model(save_model(model))
        assert restored.get_params() == model.get_params()

    def test_unfitted_rejected(self, make_model):
        with pytest.raises((ValueError, RuntimeError)):
            save_model(make_model())


class TestScalerAndMetadata:
    def test_scaler_roundtrip(self):
        X, y = _data()
        scaler = StandardScaler().fit(X)
        model = BernoulliNB().fit(scaler.transform(X), y)
        document = save_model(model, scaler, metadata={"device": "EchoDot4", "fw": "1.2"})
        restored, restored_scaler, metadata = load_model(document)
        assert metadata == {"device": "EchoDot4", "fw": "1.2"}
        assert np.allclose(restored_scaler.transform(X), scaler.transform(X))
        assert np.array_equal(
            restored.predict(restored_scaler.transform(X)),
            model.predict(scaler.transform(X)),
        )

    def test_document_is_plain_json(self):
        X, y = _data()
        model = NearestCentroidClassifier().fit(X, y)
        data = json.loads(save_model(model))
        assert data["fiat-model-version"] == MODEL_FORMAT_VERSION
        assert data["estimator"]["type"] == "nearest-centroid"

    def test_version_mismatch_rejected(self):
        X, y = _data()
        model = BernoulliNB().fit(X, y)
        document = save_model(model).replace(
            f'"fiat-model-version": {MODEL_FORMAT_VERSION}', '"fiat-model-version": 99'
        )
        with pytest.raises(ValueError, match="version"):
            load_model(document)

    def test_unsupported_model_rejected(self):
        X, y = _data()
        model = KNeighborsClassifier().fit(X, y)
        with pytest.raises(TypeError, match="unsupported"):
            save_model(model)


class TestDeployedClassifier:
    def test_event_classifier_model_roundtrips(self, echodot_events):
        """The actual deployed artefact (scaler + BernoulliNB) survives."""
        from repro.core import train_event_classifier
        from repro.features import event_features
        from repro.testbed import profile_for

        classifier = train_event_classifier(profile_for("EchoDot4"), echodot_events)
        document = save_model(classifier.model, classifier.scaler,
                              metadata={"device": "EchoDot4"})
        model, scaler, _ = load_model(document)
        event = echodot_events[0]
        features = scaler.transform(event_features(event, 5).reshape(1, -1))
        assert model.predict(features)[0] == classifier.classify_packets(
            event.first_n(5)
        )
