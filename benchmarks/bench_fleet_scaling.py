"""Fleet scale-out: homes/sec as a function of worker processes.

The ROADMAP north star is a system serving millions of homes; the first
scale-out axis is shard-per-worker parallelism over independent
households (`repro.fleet`).  This bench runs one generated fleet
through the serial backend and through process pools of increasing
size, reporting homes/sec and the speedup over serial, and asserts the
backends agree byte-for-byte on the aggregate report (parallelism must
never buy throughput with determinism).

On a multi-core runner the process backend should clear ~1.5x serial at
``jobs=4``; on a single-core container it only has to stay correct (the
speedup assertion is gated on the visible CPU count).

Run with ``pytest -s`` to see the table.
"""

import json
import os
import tempfile
import time
import tracemalloc

from repro.fleet import (
    FleetAggregator,
    FleetCheckpoint,
    FleetRunner,
    HomeResult,
    JsonlSpecStream,
    generate_fleet,
    iter_generate_fleet,
    write_spec_jsonl,
)

from benchmarks._helpers import bench_out_path, print_table

#: Pool sizes swept (serial is the `jobs=1` reference).
JOB_COUNTS = [1, 2, 4]

#: Rule devices: no ML training, so the bench isolates orchestration
#: and serialisation overhead rather than classifier fitting.
N_HOMES = 12


def _fleet():
    return generate_fleet(
        N_HOMES, seed=11, name="bench-scaling",
        n_manual=4, n_non_manual=8, n_attacks=4,
    )


def test_fleet_scaling_throughput():
    """Homes/sec vs ``--jobs``, with cross-backend determinism asserted."""
    spec = _fleet()
    rows = []
    reports = {}
    timings = {}
    for jobs in JOB_COUNTS:
        backend = "serial" if jobs == 1 else "process"
        runner = FleetRunner(spec, jobs=jobs, backend=backend)
        t0 = time.perf_counter()
        report = runner.run()
        elapsed = time.perf_counter() - t0
        assert report.ok, f"jobs={jobs}: {report.failed_homes}"
        reports[jobs] = report.to_json()
        timings[jobs] = elapsed
        rows.append(
            (
                f"{backend}:{jobs}",
                f"{elapsed:.2f}s",
                f"{N_HOMES / elapsed:.2f}",
                f"{timings[1] / elapsed:.2f}x",
            )
        )

    print_table(
        "Fleet scaling (homes/sec vs jobs)",
        ["backend:jobs", "elapsed", "homes/sec", "speedup"],
        rows,
    )

    # Determinism across backends and pool sizes: identical bytes.
    for jobs in JOB_COUNTS[1:]:
        assert reports[jobs] == reports[1], f"jobs={jobs} diverged from serial"

    # Speedup only where the hardware can provide it (CI: 4-core runner).
    cores = os.cpu_count() or 1
    if cores >= 4:
        assert timings[1] / timings[4] > 1.5, (
            f"expected >1.5x at jobs=4 on {cores} cores, "
            f"got {timings[1] / timings[4]:.2f}x"
        )

    headline = {
        "n_homes": N_HOMES,
        "cores": cores,
        "homes_per_sec": {
            str(jobs): N_HOMES / elapsed for jobs, elapsed in timings.items()
        },
        "speedup": {str(jobs): timings[1] / timings[jobs] for jobs in JOB_COUNTS},
        "deterministic": True,
    }
    with open(bench_out_path("BENCH_fleet_scaling.json"), "w", encoding="utf-8") as fh:
        json.dump({"bench": "fleet_scaling", "headline": headline}, fh, indent=2)


def test_fleet_checkpoint_overhead():
    """Durable-runs tax: homes/sec with vs without ``--state-dir``.

    Checkpointing journals every completed home (flushed, not fsynced)
    and compacts a snapshot every few homes; relative to ~1s of real
    work per home that must stay a small fraction of the run.  The
    bench asserts the checkpointed run stays within 1.5x of the plain
    one (generous, to absorb shared-runner timing noise) and, of
    course, byte-identical.
    """
    spec = _fleet()
    timings = {}
    reports = {}
    with tempfile.TemporaryDirectory() as tmp:
        for label, kwargs in (
            ("plain", {}),
            (
                "checkpointed",
                {"state_dir": os.path.join(tmp, "state"), "snapshot_every": 4},
            ),
        ):
            t0 = time.perf_counter()
            report = FleetRunner(spec, jobs=1, backend="serial", **kwargs).run()
            timings[label] = time.perf_counter() - t0
            reports[label] = report.to_json()
            assert report.ok

        # ...and a resume over the finished checkpoint re-runs nothing.
        t0 = time.perf_counter()
        resumed = FleetRunner(
            spec,
            jobs=1,
            backend="serial",
            state_dir=os.path.join(tmp, "state"),
            resume=True,
        ).run()
        timings["resume-noop"] = time.perf_counter() - t0

    overhead = timings["checkpointed"] / timings["plain"] - 1.0
    print_table(
        "Fleet checkpoint overhead (12 homes, serial)",
        ["mode", "elapsed", "homes/sec"],
        [
            (label, f"{elapsed:.2f}s", f"{N_HOMES / elapsed:.2f}")
            for label, elapsed in timings.items()
        ],
    )
    assert reports["checkpointed"] == reports["plain"]
    assert resumed.to_json() == reports["plain"]
    assert timings["checkpointed"] < timings["plain"] * 1.5, (
        f"checkpointing cost {overhead:.0%} — expected it in the noise"
    )
    assert timings["resume-noop"] < timings["plain"], "resume re-ran homes"

    headline = {
        "n_homes": N_HOMES,
        "homes_per_sec_plain": N_HOMES / timings["plain"],
        "homes_per_sec_checkpointed": N_HOMES / timings["checkpointed"],
        "checkpoint_overhead_pct": overhead * 100.0,
        "resume_noop_s": timings["resume-noop"],
        "byte_identical": True,
    }
    with open(
        bench_out_path("BENCH_fleet_checkpoint.json"), "w", encoding="utf-8"
    ) as fh:
        json.dump({"bench": "fleet_checkpoint", "headline": headline}, fh, indent=2)


def _synthetic_result(home_id, idx):
    """A JSON-shaped stand-in for one home's outcome (no simulation).

    The bounded-memory bench measures the *aggregation and durability*
    layers at population scale; real homes cost ~1s each, so 10k of
    them are simulated results, not simulated households.
    """
    base = (idx % 97) / 97.0
    row = {
        "manual_precision": base,
        "manual_recall": 1.0 - base,
        "non_manual_precision": 0.9 + base / 10.0,
        "non_manual_recall": 0.8 + base / 5.0,
        "fp_manual_blocked": float(idx % 3),
        "fp_non_manual_blocked": float(idx % 2),
        "false_negative": float(idx % 5),
    }
    return HomeResult(
        home_id=home_id,
        devices={"SP10": row},
        class_counts={"manual": {"events": 6, "blocked": idx % 2}},
        human_rates={"precision": base},
        alerts={"security": idx % 4},
        n_decisions=18,
        metrics={
            "counters": {"proxy_decisions_total": {"device=SP10": 18.0}},
            "gauges": {},
            "histograms": {},
        },
    )


def _streaming_fold(spec_path, state_dir, snapshot_every=512):
    """Fold every home of a JSONL spec through aggregator + checkpoint."""
    stream = JsonlSpecStream(spec_path)
    agg = FleetAggregator(stream.name, stream.seed)
    checkpoint = FleetCheckpoint(
        state_dir, name=stream.name, seed=stream.seed, spec_digest=stream.digest
    )
    checkpoint.start_fresh()
    for idx, home in enumerate(stream.iter_homes()):
        result = _synthetic_result(home.home_id, idx)
        agg.add(idx, result)
        checkpoint.record_home(idx, result.to_dict(), agg.epoch)
        if agg.epoch % snapshot_every == 0:
            checkpoint.compact(idx + 1, agg.to_state())
    checkpoint.compact(agg.epoch, agg.to_state())
    checkpoint.close()
    return agg.report(n_planned=stream.n_homes)


def test_fleet_bounded_memory_streaming():
    """Peak allocation of a 10k-home streaming run stays bounded.

    The whole durable pipeline — JSONL spec stream in, incremental
    aggregator, journaled checkpoint with rotating snapshots — must be
    O(1) in fleet size: reservoirs cap at 4096 samples per field, ok
    home rows at 256, journal epochs at the fallback window.  Doubling
    the fleet from 5k to 10k homes must therefore leave the allocation
    peak nearly flat (a linear pipeline would double it).
    """
    sizes = (5_000, 10_000)
    peaks = {}
    reports = {}
    with tempfile.TemporaryDirectory() as tmp:
        for n in sizes:
            spec_path = os.path.join(tmp, f"fleet-{n}.jsonl")
            write_spec_jsonl(
                spec_path,
                iter_generate_fleet(n, seed=5, n_manual=2, n_non_manual=3,
                                    n_attacks=1),
                name=f"bench-mem-{n}",
                seed=5,
                n_homes=n,
            )
            tracemalloc.start()
            t0 = time.perf_counter()
            reports[n] = _streaming_fold(spec_path, os.path.join(tmp, f"state-{n}"))
            elapsed = time.perf_counter() - t0
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            peaks[n] = peak / 1e6
            print(
                f"  {n} homes: peak {peaks[n]:.1f} MB, "
                f"{n / elapsed:.0f} folds/sec"
            )

    small, big = sizes
    assert reports[big].n_ok == big and reports[big].coverage["partial"] is False
    assert len(reports[big].homes) == 256  # ok-row retention cap held
    assert reports[big].coverage["ok_rows_dropped"] == big - 256
    # 2x the fleet, near-flat peak: well under the 2x a linear fold costs.
    assert peaks[big] < peaks[small] * 1.5, (
        f"peak grew {peaks[big] / peaks[small]:.2f}x from {small} to {big} homes"
    )

    headline = {
        "sizes": list(sizes),
        "peak_mb": {str(n): peaks[n] for n in sizes},
        "peak_growth_x": peaks[big] / peaks[small],
        "bounded": True,
    }
    with open(
        bench_out_path("BENCH_fleet_bounded_memory.json"), "w", encoding="utf-8"
    ) as fh:
        json.dump(
            {"bench": "fleet_bounded_memory", "headline": headline}, fh, indent=2
        )
