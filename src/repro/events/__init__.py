"""Event layer: unpredictable-event grouping and ground-truth labelling."""

from .grouping import EVENT_GAP_SECONDS, UnpredictableEvent, group_events
from .labeling import GroundTruthLog, InteractionWindow, RoutineFiring, label_trace

__all__ = [
    "EVENT_GAP_SECONDS",
    "UnpredictableEvent",
    "group_events",
    "GroundTruthLog",
    "InteractionWindow",
    "RoutineFiring",
    "label_trace",
]
