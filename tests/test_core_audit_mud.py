"""Unit tests for the audit log (§7) and the MUD-style profile export."""

import dataclasses

import pytest

from repro.core import (
    AuditLog,
    DeviceInteractionGraph,
    FiatConfig,
    FiatSystem,
    RuleTable,
    build_user_report,
    export_profile,
    import_profile,
)
from repro.crypto import pair
from repro.net import FlowDefinition
from repro.predictability import BucketPredictor
from tests.conftest import make_packet


@pytest.fixture(scope="module")
def run_system():
    system = FiatSystem(["SP10"], config=FiatConfig(bootstrap_s=0.0), seed=5)
    system.run_accuracy(n_manual=5, n_non_manual=10, n_attacks=5)
    return system


class TestAuditChain:
    def test_append_and_verify(self):
        log = AuditLog()
        log.append(1.0, "decision", {"device": "d", "action": "allow"})
        log.append(2.0, "alert", {"device": "d", "reason": "test"})
        assert len(log) == 2
        assert log.verify()

    def test_chain_links(self):
        log = AuditLog()
        first = log.append(1.0, "decision", {"a": 1})
        second = log.append(2.0, "decision", {"a": 2})
        assert second.previous_hash == first.entry_hash

    def test_tampering_detected(self):
        log = AuditLog()
        log.append(1.0, "decision", {"device": "d", "action": "drop"})
        log.append(2.0, "decision", {"device": "d", "action": "allow"})
        # An attacker rewrites a record ("drop" -> "allow").
        tampered = dataclasses.replace(log._entries[0])
        log._entries[0].payload["action"] = "allow"
        assert not log.verify()

    def test_deletion_detected(self):
        log = AuditLog()
        log.append(1.0, "decision", {"a": 1})
        log.append(2.0, "decision", {"a": 2})
        log.append(3.0, "decision", {"a": 3})
        del log._entries[1]
        assert not log.verify()

    def test_ingest_proxy_idempotent(self, run_system):
        log = AuditLog()
        appended = log.ingest_proxy(run_system.proxy)
        assert appended == len(run_system.proxy.decisions) + len(run_system.proxy.alerts)
        assert log.ingest_proxy(run_system.proxy) == 0
        assert log.verify()

    def test_attestation_signed(self, run_system):
        phone_ks, proxy_ks = pair("phone", "proxy")
        log = AuditLog(keystore=proxy_ks, key_alias="fiat-pairing")
        log.append(1.0, "decision", {"a": 1})
        wire = log.attestation()
        assert wire is not None
        from repro.crypto import SignedMessage

        assert phone_ks.verify(SignedMessage.from_wire(wire))

    def test_no_keystore_no_attestation(self):
        assert AuditLog().attestation() is None


class TestUserReport:
    def test_report_structure(self, run_system):
        log = AuditLog()
        log.ingest_proxy(run_system.proxy)
        report = build_user_report(log)
        assert "SP10" in report
        entry = report["SP10"]
        assert entry["events"] == entry["allowed"] + entry["blocked"]
        assert entry["manual_allowed"] >= 1  # the genuine user operations
        assert entry["blocked"] >= 1  # the blocked attacks
        assert entry["first"] <= entry["last"]


def _learned_table():
    predictor = BucketPredictor()
    for t in range(0, 100, 10):
        predictor.observe(make_packet(timestamp=float(t)))
    return RuleTable.from_predictor(predictor)


class TestMudProfile:
    def test_export_import_roundtrip(self):
        table = _learned_table()
        graph = DeviceInteractionGraph()
        graph.add_edge("EchoDot4", "SP10", services=["api"], note="voice control")
        document = export_profile("SP10", table, graph, metadata={"version": "fw-1.2"})
        restored = import_profile(document)
        assert restored["device"] == "SP10"
        assert restored["metadata"] == {"version": "fw-1.2"}
        assert len(restored["table"]) == len(table)
        assert restored["interactions"].allows("EchoDot4", "SP10", service="api")

    def test_restored_table_matches_packets(self):
        table = _learned_table()
        restored = import_profile(export_profile("d", table))["table"]
        assert restored.matches(make_packet(timestamp=200.0))
        assert restored.matches(make_packet(timestamp=210.0))
        assert not restored.matches(make_packet(timestamp=0.0, size=9999))

    def test_version_check(self):
        document = export_profile("d", _learned_table()).replace(
            '"fiat-mud-version": 1', '"fiat-mud-version": 99'
        )
        with pytest.raises(ValueError, match="version"):
            import_profile(document)

    def test_export_is_json(self):
        import json

        document = export_profile("d", _learned_table())
        data = json.loads(document)
        assert data["flow-definition"] == "portless"
        assert isinstance(data["acl"], list) and data["acl"]
        assert all("iat-bins" in entry for entry in data["acl"])
