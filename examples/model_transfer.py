"""Cross-location model transfer (§4.3, Table 5).

Trains the manual-event classifier on traffic observed in one country
and tests it on the same device model operated elsewhere (different
cloud IPs, different ccTLD domains).  Because the classifier never
relies on addressing features (Table 4: zero importance for IP octets),
the knowledge transfers — this is what lets a production FIAT ship one
model per device model and software version (§7).

Run:  python examples/model_transfer.py
"""

from repro import ml
from repro.features import FEATURE_NAMES, event_labels, events_to_matrix
from repro.testbed import Location, generate_labeled_events


def dataset(device: str, location: Location, seed: int):
    events = generate_labeled_events(
        device, location=location, n_manual=50, n_automated=80, n_control=100, seed=seed
    )
    return events_to_matrix(events), event_labels(events)


def main() -> None:
    device = "HomeMini"
    print(f"device: {device} (talks to google.com in US, google.co.jp in JP, google.de in DE)\n")

    data = {
        location: dataset(device, location, seed=40 + i)
        for i, location in enumerate(Location)
    }

    print(f"{'train -> test':16s}  {'manual F1':>9s}")
    for src in Location:
        for dst in Location:
            if src is dst:
                continue
            X_train, y_train = data[src]
            X_test, y_test = data[dst]
            scaler = ml.StandardScaler().fit(X_train)
            model = ml.BernoulliNB().fit(scaler.transform(X_train), y_train)
            f1 = ml.f1_score(y_test, model.predict(scaler.transform(X_test)), "manual")
            print(f"{src.value:>5s} -> {dst.value:<5s}     {f1:9.2f}")

    # Why it transfers: permutation importance of the addressing features.
    X, y = data[Location.US]
    scaler = ml.StandardScaler().fit(X)
    model = ml.BernoulliNB().fit(scaler.transform(X), y)
    importance = ml.permutation_importance(
        model, scaler.transform(X), y, scoring=ml.manual_f1_scorer("manual"),
        n_repeats=15, seed=0,
    )
    ranked = ml.rank_features(importance["importances_mean"], FEATURE_NAMES)
    ip_max = max(abs(v) for name, v in ranked if "dst-ip" in name)
    print(f"\ntop features: {[name for name, _ in ranked[:4]]}")
    print(f"largest |importance| among dst-ip octets: {ip_max:.4f} (paper: 0.0000)")


if __name__ == "__main__":
    main()
