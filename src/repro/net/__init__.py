"""Packet, flow, DNS and trace substrate (replaces scapy/tcpdump)."""

from .dns import DnsTable
from .flows import FlowDefinition, classic_key, flow_key, flow_pretty, portless_key
from .packet import (
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
    TLS_1_0,
    TLS_1_1,
    TLS_1_2,
    TLS_1_3,
    TLS_NONE,
    Direction,
    Packet,
    TrafficClass,
)
from .pcap import read_pcap, write_pcap
from .trace import Trace, TraceStats

__all__ = [
    "DnsTable",
    "FlowDefinition",
    "classic_key",
    "portless_key",
    "flow_key",
    "flow_pretty",
    "Direction",
    "Packet",
    "TrafficClass",
    "Trace",
    "TraceStats",
    "read_pcap",
    "write_pcap",
    "TLS_NONE",
    "TLS_1_0",
    "TLS_1_1",
    "TLS_1_2",
    "TLS_1_3",
    "TCP_FIN",
    "TCP_SYN",
    "TCP_RST",
    "TCP_PSH",
    "TCP_ACK",
]
