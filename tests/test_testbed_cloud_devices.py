"""Unit tests for the cloud directory and device profiles."""

import numpy as np
import pytest

from repro.testbed import (
    BOSE_SOUNDTOUCH,
    TESTBED,
    CloudDirectory,
    Location,
    profile_for,
)


class TestCloudDirectory:
    def test_endpoint_stable(self):
        cloud = CloudDirectory(seed=1)
        a = cloud.endpoint("google", "api", Location.US)
        b = cloud.endpoint("google", "api", Location.US)
        assert a is b

    def test_location_changes_domain_and_prefix(self):
        cloud = CloudDirectory(seed=1)
        us = cloud.endpoint("google", "api", Location.US)
        jp = cloud.endpoint("google", "api", Location.JP)
        de = cloud.endpoint("google", "api", Location.DE)
        assert us.domain.endswith(".com")
        assert jp.domain.endswith(".co.jp")  # §3.3: google.co.jp from Japan
        assert de.domain.endswith(".de")
        assert us.ip.split(".")[0] != jp.ip.split(".")[0]

    def test_dns_registered_for_whole_pool(self):
        cloud = CloudDirectory(seed=1, pool_size=5)
        endpoint = cloud.endpoint("wyze", "relay", Location.US)
        assert len(endpoint.ips) == 5
        for ip in endpoint.ips:
            assert cloud.dns.domain_for(ip) == endpoint.domain

    def test_pick_ip_in_pool(self, rng):
        cloud = CloudDirectory(seed=1)
        endpoint = cloud.endpoint("nest", "api", Location.US)
        assert endpoint.pick_ip(rng) in endpoint.ips

    def test_relay_helper(self):
        cloud = CloudDirectory(seed=1)
        relay = cloud.relay("amazon", Location.US)
        assert relay.domain.startswith("relay.")
        assert relay.port == 8883

    def test_all_endpoints(self):
        cloud = CloudDirectory(seed=1)
        cloud.endpoint("a", "api", Location.US)
        cloud.endpoint("b", "api", Location.US)
        assert len(cloud.all_endpoints()) == 2


class TestDeviceProfiles:
    def test_ten_devices(self):
        assert len(TESTBED) == 10
        assert set(TESTBED) == {
            "EchoDot4",
            "HomeMini",
            "WyzeCam",
            "SP10",
            "Home",
            "Nest-E",
            "EchoDot3",
            "E4",
            "Blink",
            "WP3",
        }

    def test_profile_lookup(self):
        assert profile_for("SP10").device_class == "plug"
        with pytest.raises(KeyError, match="unknown device"):
            profile_for("Toaster")

    def test_simple_rule_devices(self):
        # §4: SP10, WP3, Nest-E use distinctive notification sizes.
        for name in ("SP10", "WP3", "Nest-E"):
            assert profile_for(name).uses_simple_rules
        for name in ("EchoDot4", "WyzeCam", "Home"):
            assert not profile_for(name).uses_simple_rules

    def test_paper_rule_sizes(self):
        assert profile_for("SP10").simple_rule_size == 235
        assert profile_for("Nest-E").simple_rule_size == 267

    def test_n_command_range(self):
        # §3.3: N ranges from 1 (SP10, WP3) to 41 (WyzeCam).
        values = {name: profile.n_command for name, profile in TESTBED.items()}
        assert values["SP10"] == 1 and values["WP3"] == 1
        assert values["WyzeCam"] == 41
        assert all(1 <= v <= 41 for v in values.values())

    def test_plugs_have_no_automation_burst(self):
        assert profile_for("SP10").automated_burst is None
        assert profile_for("WP3").automated_burst is None
        assert profile_for("EchoDot4").automated_burst is not None

    def test_cameras_stream(self):
        assert profile_for("WyzeCam").manual_stream is not None
        assert profile_for("Blink").manual_stream is not None
        assert profile_for("SP10").manual_stream is None

    def test_nest_noisy_control(self):
        # The Fig-2 outlier: frequent drifting control events.
        assert profile_for("Nest-E").control_noise_per_hour > max(
            profile_for(n).control_noise_per_hour
            for n in TESTBED
            if n != "Nest-E"
        )

    def test_manual_templates_include_variants(self):
        profile = profile_for("EchoDot4")
        assert len(profile.manual_templates()) == 1 + len(profile.manual_variants)

    def test_bose_profile_for_fig1a(self):
        # Fig 1(a): 8 flows of the Bose SoundTouch.
        assert len(BOSE_SOUNDTOUCH.control_flows) == 8
