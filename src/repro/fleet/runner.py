"""Shared-nothing fleet execution: serial or process-pool backends.

:class:`FleetRunner` walks a :class:`~repro.fleet.spec.FleetSpec` and
produces one :class:`~repro.fleet.aggregate.FleetReport`.  Two backends
share a single code path per home (:func:`~repro.fleet.worker.run_home`):

``serial``
    In-process, one home after another — the reference execution.
``process``
    ``concurrent.futures.ProcessPoolExecutor`` with a bounded window of
    in-flight homes (at most ``2 * jobs``), so a million-home spec never
    materialises a million futures.

Determinism: homes are independent (shared-nothing, hash-derived
seeds), and results are *collected strictly in spec order*, so the
aggregate report is byte-identical across backends and any ``--jobs``
value — completion order never leaks into the output.

Failure semantics — fail the home, never the fleet:

* A worker that raises (a poisoned or genuinely buggy home) marks that
  home ``failed`` with the exception text; the fleet continues.
* A worker *process death* (power cut, OOM kill — surfaces as
  ``BrokenProcessPool``) kills every in-flight future, and the pool
  cannot name the culprit.  The runner rebuilds the pool and reruns the
  home being collected *in isolation*: an innocent bystander passes its
  isolated rerun and the fleet re-pipelines; a crasher breaks the fresh
  pool with only itself in flight and is marked ``failed`` after its
  retry (two attempts), never taking a neighbour down with it.
* A per-home timeout marks the home ``failed`` (the stuck worker is
  abandoned to the pool's shutdown); the deadline is measured from when
  collection reaches the home, i.e. it is a *liveness* bound, not a
  wall-clock budget.
"""

from __future__ import annotations

import logging
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional

from .aggregate import FleetReport, aggregate
from .spec import FleetSpec, HomeSpec
from .worker import HomeResult, run_home, run_home_payload

__all__ = ["FleetRunner", "BACKENDS"]

logger = logging.getLogger(__name__)

#: Supported execution backends (``auto`` resolves by ``jobs``).
BACKENDS = ("auto", "serial", "process")


class FleetRunner:
    """Run every home of a fleet and aggregate the population report."""

    def __init__(
        self,
        spec: FleetSpec,
        jobs: int = 1,
        backend: str = "auto",
        timeout_s: Optional[float] = None,
        state_root: Optional[str] = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.spec = spec
        self.jobs = jobs
        self.backend = backend if backend != "auto" else ("serial" if jobs == 1 else "process")
        self.timeout_s = timeout_s
        self.state_root = state_root

    # -- public API --------------------------------------------------------------

    def run(self) -> FleetReport:
        """Execute the fleet and return the aggregated population report."""
        if self.backend == "serial":
            results = self._run_serial()
        else:
            results = self._run_process()
        return aggregate(self.spec, results)

    # -- failure bookkeeping -----------------------------------------------------

    @staticmethod
    def _failure(home: HomeSpec, error: BaseException, attempts: int) -> HomeResult:
        return HomeResult(
            home_id=home.home_id,
            status="failed",
            error=f"{type(error).__name__}: {error}",
            attempts=attempts,
        )

    # -- serial backend ----------------------------------------------------------

    def _run_serial(self) -> List[HomeResult]:
        results: List[HomeResult] = []
        for home in self.spec.homes:
            try:
                results.append(run_home(home, state_root=self.state_root))
            except Exception as error:  # fail the home, not the fleet
                logger.warning("home %s failed: %s", home.home_id, error)
                results.append(self._failure(home, error, attempts=1))
        return results

    # -- process backend ---------------------------------------------------------

    def _payload(self, home: HomeSpec) -> Dict[str, object]:
        return {"home": home.to_dict(), "state_root": self.state_root}

    def _run_process(self) -> List[HomeResult]:
        homes = self.spec.homes
        n = len(homes)
        results: List[Optional[HomeResult]] = [None] * n
        window = 2 * self.jobs
        executor = ProcessPoolExecutor(max_workers=self.jobs)
        futures: Dict[int, object] = {}
        next_submit = 0
        abandoned_worker = False
        try:
            for i in range(n):
                # Keep the in-flight window full ahead of the collector.
                while next_submit < n and next_submit < i + window:
                    futures[next_submit] = executor.submit(
                        run_home_payload, self._payload(homes[next_submit])
                    )
                    next_submit += 1

                attempts = 0
                while results[i] is None:
                    if i not in futures:  # lazily resubmitted after a pool break
                        futures[i] = executor.submit(
                            run_home_payload, self._payload(homes[i])
                        )
                    attempts += 1
                    try:
                        payload = futures[i].result(timeout=self.timeout_s)  # type: ignore[union-attr]
                        result = HomeResult.from_dict(payload)  # type: ignore[arg-type]
                        result.attempts = attempts
                        results[i] = result
                    except BrokenProcessPool as error:
                        # A worker process died, killing every in-flight
                        # future — the pool cannot say whose.  Rebuild
                        # and rerun home i *alone*: a crasher breaks the
                        # fresh pool by itself (conclusive after its
                        # retry); a bystander passes the isolated rerun
                        # and later homes resubmit lazily.
                        logger.warning(
                            "process pool broke while collecting %s (attempt %d): %s",
                            homes[i].home_id, attempts, error,
                        )
                        executor.shutdown(wait=False, cancel_futures=True)
                        executor = ProcessPoolExecutor(max_workers=self.jobs)
                        futures.clear()
                        if attempts >= 2:  # retried in isolation — fail the home
                            results[i] = self._failure(homes[i], error, attempts)
                    except FutureTimeoutError:
                        futures[i].cancel()  # type: ignore[union-attr]
                        abandoned_worker = True
                        logger.warning("home %s timed out", homes[i].home_id)
                        results[i] = self._failure(
                            homes[i],
                            TimeoutError(f"no result within {self.timeout_s}s"),
                            attempts,
                        )
                    except Exception as error:  # raised inside the worker
                        logger.warning("home %s failed: %s", homes[i].home_id, error)
                        results[i] = self._failure(homes[i], error, attempts)
                futures.pop(i, None)
        finally:
            # A clean join avoids interpreter-exit noise; after a
            # timeout the stuck worker must not block the fleet.
            executor.shutdown(wait=not abandoned_worker, cancel_futures=True)
        return [result for result in results if result is not None]
