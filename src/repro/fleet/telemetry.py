"""Fleet telemetry plane: live progress frames and the run monitor.

A checkpointed fleet run can execute for hours; until this module the
only signal it produced was the final report.  Telemetry makes the run
observable *while it executes* without touching the determinism
contract: every frame is out-of-band (wall-clock timestamps and
latencies live here and only here — the fleet report stays
byte-identical with telemetry on or off).

Layout, under ``<state_dir>/telemetry/``:

``run.jsonl``
    The runner's channel: one ``run-start`` frame per (re)start, a
    ``progress`` frame after every folded home, and a ``final`` frame
    on clean completion *or* signal interrupt (so ``--watch`` shows the
    partial-coverage state instead of appearing hung).  A ``SIGKILL``
    leaves no final frame — the monitor reports the run as *stale*
    once frames stop ageing, which is exactly the truth.
``worker-<pid>.jsonl``
    One file per worker process: ``home-start`` / ``home-end`` frames
    with per-phase wall-clock timings.  Files are per-pid so appends
    never interleave across processes.

Every frame is CRC32-framed JSONL (:func:`repro.recovery.journal.frame_record`),
the same discipline as the checkpoint journal: a reader never trusts a
torn tail, and a half-written frame from a live writer is simply not
visible yet.  :class:`FleetMonitor` tails the directory, reconstructs
progress/rate/ETA/per-phase digests/slowest-shard attribution, and
renders the ``fiat-repro fleet --watch`` / ``fleet-top`` dashboard.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..recovery.journal import frame_record, read_journal

__all__ = [
    "TELEMETRY_DIRNAME",
    "RUN_CHANNEL",
    "TelemetryWriter",
    "emit_worker_frame",
    "read_frames",
    "load_frames",
    "MonitorSnapshot",
    "PhaseDigest",
    "FleetMonitor",
    "MultiFleetMonitor",
    "telemetry_dir_for",
]

logger = logging.getLogger(__name__)

#: Subdirectory of a fleet state dir holding the telemetry channels.
TELEMETRY_DIRNAME = "telemetry"

#: The runner's own channel file name.
RUN_CHANNEL = "run.jsonl"

#: A running fleet emits at least one frame per folded home; a channel
#: this quiet for this long (and no ``final`` frame) means the process
#: is gone or wedged.
STALE_AFTER_S = 30.0

#: Slowest homes surfaced by the dashboard.
SLOWEST_ROWS = 5


def telemetry_dir_for(state_dir: str) -> str:
    """The telemetry directory of a fleet state dir."""
    return os.path.join(state_dir, TELEMETRY_DIRNAME)


class TelemetryWriter:
    """Append CRC-framed telemetry frames to one channel file.

    Holds the file handle open (the runner emits one frame per folded
    home); every frame is flushed immediately so a tailing monitor in
    another process sees it without waiting for a buffer to fill.
    Telemetry is advisory — it is never fsynced and a lost tail costs
    nothing but a momentarily stale dashboard.
    """

    def __init__(self, directory: str, channel: str = RUN_CHANNEL) -> None:
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, channel)
        self._handle = open(self.path, "ab")

    def emit(self, kind: str, **fields: object) -> None:
        """Append one frame (stamped with wall time and pid)."""
        if self._handle is None:  # pragma: no cover - emit-after-close guard
            return
        record: Dict[str, object] = {"kind": kind, "t": time.time(), "pid": os.getpid()}
        record.update(fields)
        self._handle.write(frame_record(record))
        self._handle.flush()

    def close(self) -> None:
        """Flush and close (idempotent)."""
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def emit_worker_frame(directory: str, kind: str, **fields: object) -> None:
    """Append one frame to this process's worker channel.

    Open-append-close per frame: a pool worker runs many homes over its
    lifetime and must never hold a handle hostage across them (the
    runner kills abandoned workers on timeout).  Each pid owns its file,
    so frames never interleave.
    """
    os.makedirs(directory, exist_ok=True)
    record: Dict[str, object] = {"kind": kind, "t": time.time(), "pid": os.getpid()}
    record.update(fields)
    path = os.path.join(directory, f"worker-{os.getpid()}.jsonl")
    with open(path, "ab") as handle:
        handle.write(frame_record(record))


def read_frames(path: str) -> List[Dict[str, object]]:
    """Every valid frame of one channel (torn tails tolerated).

    A frame mid-write by a live producer fails its CRC or lacks its
    newline and simply ends the readable prefix — the next poll sees it
    complete.
    """
    return read_journal(path).records


def load_frames(directory: str) -> List[Dict[str, object]]:
    """All frames of every channel in a telemetry dir, oldest first.

    Stable order: sorted by wall timestamp, ties broken by channel name
    and in-file position so repeated polls of quiescent files agree.

    Robust against a live, possibly dying producer: a directory (or
    channel file) that disappears between the listing and the read, or
    an entry that turns out not to be a readable file, is skipped with
    a warning — a monitor poll must never traceback because the thing
    it watches is being torn down.
    """
    stamped: List[Tuple[float, str, int, Dict[str, object]]] = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        # Not a directory, vanished mid-watch, or never created yet —
        # all read as "no frames", which is the truth for a monitor.
        return []
    for name in names:
        if not name.endswith(".jsonl"):
            continue
        path = os.path.join(directory, name)
        try:
            frames = read_frames(path)
        except OSError as error:
            logger.warning(
                "telemetry channel %s unreadable (%s); skipping", path, error
            )
            continue
        for position, frame in enumerate(frames):
            stamped.append((float(frame.get("t", 0.0)), name, position, frame))
    stamped.sort(key=lambda item: (item[0], item[1], item[2]))
    return [frame for _, _, _, frame in stamped]


@dataclass
class PhaseDigest:
    """Latency digest of one worker phase across completed homes."""

    n: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    samples: List[float] = field(default_factory=list)

    def add(self, seconds: float) -> None:
        self.n += 1
        self.total_s += seconds
        self.max_s = max(self.max_s, seconds)
        self.samples.append(seconds)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.n if self.n else 0.0

    @property
    def p95_s(self) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


@dataclass
class MonitorSnapshot:
    """Everything the dashboard needs, reconstructed from the frames."""

    #: "idle" | "running" | "stale" | "interrupted" | "done"
    status: str = "idle"
    fleet: str = ""
    backend: str = ""
    jobs: int = 0
    planned: Optional[int] = None
    #: homes folded into the aggregate (includes resumed prefix)
    completed: int = 0
    ok: int = 0
    failed: int = 0
    retries: int = 0
    quarantined: int = 0
    #: homes folded by prior (resumed-from) runs
    resumed_from: int = 0
    homes_per_sec: float = 0.0
    elapsed_s: float = 0.0
    eta_s: Optional[float] = None
    #: seconds since the newest frame (None when there are no frames)
    age_s: Optional[float] = None
    n_frames: int = 0
    n_runs: int = 0
    phases: Dict[str, PhaseDigest] = field(default_factory=dict)
    #: ``(home_id, total_s, dominant phase)`` — the attribution rows
    slowest: List[Tuple[str, float, str]] = field(default_factory=list)
    #: homes started but not yet finished: ``(home_id, pid, started_at)``
    in_flight: List[Tuple[str, int, float]] = field(default_factory=list)

    @property
    def fraction_done(self) -> Optional[float]:
        if self.planned:
            return self.completed / self.planned
        return None


def _format_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


class FleetMonitor:
    """Tail a telemetry dir and reconstruct the live run state.

    Read-only and out-of-process: point it at the ``state_dir`` of a
    running (or finished, or killed) fleet and :meth:`poll` as often as
    you like — every poll re-reads the channels from scratch, which at
    one frame per home stays trivially cheap far beyond the fleet sizes
    a single state dir holds.
    """

    def __init__(self, state_dir: str, stale_after_s: float = STALE_AFTER_S) -> None:
        # Accept either the state dir or the telemetry dir itself (plain
        # ``telemetry`` or a distrib machine's epoch-suffixed
        # ``telemetry-NNNN``).
        base = os.path.basename(state_dir.rstrip(os.sep))
        if base == TELEMETRY_DIRNAME or base.startswith(TELEMETRY_DIRNAME + "-"):
            self.directory = state_dir
        else:
            self.directory = telemetry_dir_for(state_dir)
        self.stale_after_s = stale_after_s

    def poll(self, now: Optional[float] = None) -> MonitorSnapshot:
        """Re-read every channel and fold the frames into a snapshot."""
        frames = load_frames(self.directory)
        snapshot = MonitorSnapshot(n_frames=len(frames))
        if not frames:
            return snapshot

        open_homes: Dict[Tuple[int, str], float] = {}
        finished: List[Tuple[str, float, str]] = []
        newest_t = 0.0
        for frame in frames:
            kind = frame.get("kind")
            stamp = float(frame.get("t", 0.0))
            newest_t = max(newest_t, stamp)
            if kind == "run-start":
                snapshot.n_runs += 1
                snapshot.status = "running"
                snapshot.fleet = str(frame.get("fleet", snapshot.fleet))
                snapshot.backend = str(frame.get("backend", snapshot.backend))
                snapshot.jobs = int(frame.get("jobs", snapshot.jobs) or 0)
                planned = frame.get("planned")
                snapshot.planned = int(planned) if planned is not None else None
                snapshot.resumed_from = int(frame.get("resumed", 0) or 0)
                snapshot.completed = snapshot.resumed_from
            elif kind == "progress":
                snapshot.status = "running"
                snapshot.completed = int(frame.get("completed", snapshot.completed))
                snapshot.ok = int(frame.get("ok", snapshot.ok))
                snapshot.failed = int(frame.get("failed", snapshot.failed))
                snapshot.retries = int(frame.get("retries", snapshot.retries))
                snapshot.quarantined = int(
                    frame.get("quarantined", snapshot.quarantined)
                )
                snapshot.elapsed_s = float(frame.get("elapsed_s", snapshot.elapsed_s))
                snapshot.homes_per_sec = float(
                    frame.get("homes_per_sec", snapshot.homes_per_sec)
                )
            elif kind == "final":
                snapshot.status = (
                    "interrupted"
                    if frame.get("status") == "interrupted"
                    else "done"
                )
                snapshot.completed = int(frame.get("completed", snapshot.completed))
                snapshot.elapsed_s = float(frame.get("elapsed_s", snapshot.elapsed_s))
                open_homes.clear()
            elif kind == "home-start":
                key = (int(frame.get("pid", 0)), str(frame.get("home", "")))
                open_homes[key] = stamp
            elif kind == "home-end":
                key = (int(frame.get("pid", 0)), str(frame.get("home", "")))
                open_homes.pop(key, None)
                phases = frame.get("phases")
                if isinstance(phases, dict):
                    summed = 0.0
                    dominant, dominant_s = "", -1.0
                    for phase, seconds in sorted(phases.items()):
                        seconds = float(seconds)
                        snapshot.phases.setdefault(str(phase), PhaseDigest()).add(
                            seconds
                        )
                        if phase == "total":  # the sum, not a phase
                            continue
                        summed += seconds
                        if seconds > dominant_s:
                            dominant, dominant_s = str(phase), seconds
                    total = float(phases.get("total", summed) or summed)
                    finished.append((str(frame.get("home", "")), total, dominant))

        snapshot.slowest = sorted(finished, key=lambda row: -row[1])[:SLOWEST_ROWS]
        snapshot.in_flight = sorted(
            ((home, pid, started) for (pid, home), started in open_homes.items()),
            key=lambda row: row[2],
        )
        now = time.time() if now is None else now
        snapshot.age_s = max(0.0, now - newest_t)
        if snapshot.status == "running":
            if snapshot.age_s > self.stale_after_s:
                snapshot.status = "stale"
            remaining = (
                (snapshot.planned - snapshot.completed)
                if snapshot.planned is not None
                else None
            )
            if remaining is not None and snapshot.homes_per_sec > 0:
                snapshot.eta_s = remaining / snapshot.homes_per_sec
        return snapshot

    def render(self, snapshot: Optional[MonitorSnapshot] = None) -> str:
        """The text dashboard for one snapshot (polls when not given)."""
        snap = self.poll() if snapshot is None else snapshot
        if snap.status == "idle":
            return (
                f"=== FIAT fleet monitor — {self.directory} ===\n"
                "  (no telemetry frames yet)\n"
            )
        planned = str(snap.planned) if snap.planned is not None else "?"
        percent = (
            f" ({snap.fraction_done * 100:.0f}%)"
            if snap.fraction_done is not None
            else ""
        )
        lines = [
            f"=== FIAT fleet monitor — {self.directory} ===",
            f"  fleet {snap.fleet!r}   status {snap.status.upper()}   "
            f"backend {snap.backend} x{snap.jobs}   runs {snap.n_runs}",
            f"  progress  {snap.completed}/{planned} homes{percent}   "
            f"ok {snap.ok}  failed {snap.failed}  retries {snap.retries}  "
            f"quarantined {snap.quarantined}",
            f"  rate      {snap.homes_per_sec:.2f} homes/s   "
            f"elapsed {_format_duration(snap.elapsed_s)}   "
            f"ETA {_format_duration(snap.eta_s)}",
        ]
        if snap.resumed_from:
            lines.append(
                f"  resumed   {snap.resumed_from} homes carried over from "
                "earlier run(s)"
            )
        if snap.in_flight:
            rows = ", ".join(
                f"{home or '?'} (pid {pid})" for home, pid, _ in snap.in_flight[:6]
            )
            lines.append(f"  in-flight {rows}")
        if snap.phases:
            lines.append(
                f"  {'phase':12s} {'n':>6s} {'mean':>9s} {'p95':>9s} {'max':>9s}"
            )
            for phase, digest in sorted(snap.phases.items()):
                lines.append(
                    f"    {phase:10s} {digest.n:6d} "
                    f"{digest.mean_s * 1000:8.1f}ms "
                    f"{digest.p95_s * 1000:8.1f}ms "
                    f"{digest.max_s * 1000:8.1f}ms"
                )
        if snap.slowest:
            rows = ", ".join(
                f"{home} {_format_duration(total)} ({phase})"
                for home, total, phase in snap.slowest
            )
            lines.append(f"  slowest   {rows}")
        age = f"{snap.age_s:.1f}s" if snap.age_s is not None else "?"
        lines.append(f"  last frame {age} ago ({snap.n_frames} frames)")
        return "\n".join(lines) + "\n"


class MultiFleetMonitor:
    """Aggregate :class:`FleetMonitor` views over many telemetry dirs.

    The distributed-fleet dashboard: each machine writes frames into its
    own per-lease telemetry dir, and the set of live dirs changes as
    ranges are re-leased — so the watched dirs come from either a static
    sequence or a discovery callable re-evaluated on every poll (e.g.
    :func:`repro.fleet.distrib.machine_telemetry_dirs`).  Counters sum
    across dirs, rates sum over the parts currently running, and the
    merged status is the most urgent of the per-dir statuses (any stale
    part makes the whole fleet STALE).  Like everything else here it is
    advisory and read-only: dirs may vanish mid-poll without harm.
    """

    def __init__(
        self,
        dirs: Union[Sequence[str], Callable[[], Iterable[str]]],
        stale_after_s: float = STALE_AFTER_S,
    ) -> None:
        self._dirs = dirs
        self.stale_after_s = stale_after_s
        #: per-dir snapshots of the last poll, for the renderer
        self.parts: List[Tuple[str, MonitorSnapshot]] = []

    def dirs(self) -> List[str]:
        """The telemetry dirs watched right now."""
        if callable(self._dirs):
            return list(self._dirs())
        return list(self._dirs)

    def poll(self, now: Optional[float] = None) -> MonitorSnapshot:
        """Poll every dir and merge the per-machine snapshots."""
        now = time.time() if now is None else now
        self.parts = [
            (directory, FleetMonitor(directory, self.stale_after_s).poll(now))
            for directory in self.dirs()
        ]
        merged = MonitorSnapshot()
        statuses = set()
        planned_known = False
        for _, part in self.parts:
            statuses.add(part.status)
            merged.completed += part.completed
            merged.ok += part.ok
            merged.failed += part.failed
            merged.retries += part.retries
            merged.quarantined += part.quarantined
            merged.resumed_from += part.resumed_from
            merged.n_frames += part.n_frames
            merged.n_runs += part.n_runs
            merged.elapsed_s = max(merged.elapsed_s, part.elapsed_s)
            if part.status == "running":
                merged.homes_per_sec += part.homes_per_sec
            if part.planned is not None:
                planned_known = True
                merged.planned = (merged.planned or 0) + part.planned
            if part.age_s is not None:
                merged.age_s = (
                    part.age_s
                    if merged.age_s is None
                    else min(merged.age_s, part.age_s)
                )
            if not merged.fleet and part.fleet:
                merged.fleet = part.fleet
                merged.backend = part.backend
            merged.jobs += part.jobs
            for phase, digest in part.phases.items():
                target = merged.phases.setdefault(phase, PhaseDigest())
                target.n += digest.n
                target.total_s += digest.total_s
                target.max_s = max(target.max_s, digest.max_s)
                target.samples.extend(digest.samples)
            merged.slowest.extend(part.slowest)
            merged.in_flight.extend(part.in_flight)
        if not planned_known:
            merged.planned = None
        merged.slowest = sorted(merged.slowest, key=lambda row: -row[1])[:SLOWEST_ROWS]
        merged.in_flight.sort(key=lambda row: row[2])
        # Most-urgent-wins: one dark machine must surface even while
        # the others hum along; "done" only when every part is done.
        if "stale" in statuses:
            merged.status = "stale"
        elif "running" in statuses:
            merged.status = "running"
        elif "interrupted" in statuses:
            merged.status = "interrupted"
        elif statuses == {"done"}:
            merged.status = "done"
        elif "done" in statuses:
            # Some ranges finished, others have not started yet.
            merged.status = "running"
        else:
            merged.status = "idle"
        if merged.status == "running" and merged.planned is not None:
            remaining = merged.planned - merged.completed
            if merged.homes_per_sec > 0:
                merged.eta_s = remaining / merged.homes_per_sec
        return merged

    def render(self, snapshot: Optional[MonitorSnapshot] = None) -> str:
        """The merged dashboard plus a one-line row per machine dir."""
        snap = self.poll() if snapshot is None else snapshot
        planned = str(snap.planned) if snap.planned is not None else "?"
        lines = [
            f"=== FIAT fleet monitor — {len(self.parts)} machine dir(s) ===",
            f"  fleet {snap.fleet!r}   status {snap.status.upper()}   "
            f"jobs {snap.jobs}   runs {snap.n_runs}",
            f"  progress  {snap.completed}/{planned} homes   "
            f"ok {snap.ok}  failed {snap.failed}  retries {snap.retries}  "
            f"quarantined {snap.quarantined}",
            f"  rate      {snap.homes_per_sec:.2f} homes/s   "
            f"elapsed {_format_duration(snap.elapsed_s)}   "
            f"ETA {_format_duration(snap.eta_s)}",
        ]
        for directory, part in self.parts:
            age = f"{part.age_s:.1f}s" if part.age_s is not None else "?"
            part_planned = str(part.planned) if part.planned is not None else "?"
            lines.append(
                f"    {part.status.upper():11s} {part.completed}/{part_planned:4s} "
                f"last frame {age:>7s} ago  {directory}"
            )
        return "\n".join(lines) + "\n"
