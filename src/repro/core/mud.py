"""MUD-style profile export of FIAT's learned rules (related work, §8).

The IETF's Manufacturer Usage Description (RFC 8520) formally specifies
what traffic an IoT device is *supposed* to exchange; the paper cites
MUD as the standards-track approach to the same problem FIAT learns
automatically.  This module bridges the two: it serialises a learned
:class:`~repro.core.rules.RuleTable` (plus optional §7 interaction
rules) into a MUD-like JSON document — so a FIAT deployment can publish
what it learned, diff it against a vendor-provided MUD file, or seed a
new deployment of the same device model — and parses such documents
back into rule tables.

The format follows MUD's spirit (ACL entries per direction with
endpoint/protocol matches) with FIAT-specific extensions for the
PortLess flow identity (domain + size + inter-arrival bins).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..net.flows import FlowDefinition
from .interactions import DeviceInteractionGraph, InteractionRule
from .rules import RuleTable

__all__ = ["export_profile", "import_profile", "PROFILE_VERSION"]

PROFILE_VERSION = 1


def _rule_entries(table: RuleTable) -> List[Dict[str, Any]]:
    entries = []
    for key, bins in sorted(table._rules.items(), key=lambda kv: str(kv[0])):
        if table.definition is FlowDefinition.PORTLESS:
            device_ip, remote, direction, proto, size = key
            entries.append(
                {
                    "device-endpoint": device_ip,
                    "remote": str(remote),
                    "direction": direction,
                    "protocol": proto,
                    "packet-size": size,
                    "iat-bins": sorted(int(b) for b in bins),
                }
            )
        else:
            src, dst, sport, dport, proto, size = key
            entries.append(
                {
                    "src": src,
                    "dst": dst,
                    "src-port": sport,
                    "dst-port": dport,
                    "protocol": proto,
                    "packet-size": size,
                    "iat-bins": sorted(int(b) for b in bins),
                }
            )
    return entries


def export_profile(
    device: str,
    table: RuleTable,
    interactions: Optional[DeviceInteractionGraph] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> str:
    """Serialise a device's learned profile to MUD-like JSON."""
    document = {
        "fiat-mud-version": PROFILE_VERSION,
        "device": device,
        "flow-definition": table.definition.value,
        "iat-resolution-s": table.resolution,
        "neighbor-bins": table.neighbor_bins,
        "acl": _rule_entries(table),
        "interactions": [
            {
                "controller": rule.controller,
                "target": rule.target,
                "services": sorted(rule.services),
                "note": rule.note,
            }
            for rule in (interactions.rules() if interactions else [])
        ],
        "metadata": metadata or {},
    }
    return json.dumps(document, indent=2, sort_keys=True)


def import_profile(document: str) -> Dict[str, Any]:
    """Parse a profile back into a rule table (+ interaction graph).

    Returns ``{"device", "table", "interactions", "metadata"}``.
    Raises :class:`ValueError` on version mismatch or malformed input.
    """
    data = json.loads(document)
    version = data.get("fiat-mud-version")
    if version != PROFILE_VERSION:
        raise ValueError(f"unsupported profile version {version!r}")
    definition = FlowDefinition(data["flow-definition"])
    table = RuleTable(
        definition=definition,
        dns=None,
        resolution=float(data["iat-resolution-s"]),
        neighbor_bins=int(data["neighbor-bins"]),
    )
    for entry in data.get("acl", []):
        bins = {int(b) for b in entry["iat-bins"]}
        if definition is FlowDefinition.PORTLESS:
            key = (
                entry["device-endpoint"],
                entry["remote"],
                entry["direction"],
                entry["protocol"],
                int(entry["packet-size"]),
            )
        else:
            key = (
                entry["src"],
                entry["dst"],
                int(entry["src-port"]),
                int(entry["dst-port"]),
                entry["protocol"],
                int(entry["packet-size"]),
            )
        table.add_rule(key, bins)
    graph = DeviceInteractionGraph(
        InteractionRule(
            controller=item["controller"],
            target=item["target"],
            services=frozenset(item.get("services", ())),
            note=item.get("note", ""),
        )
        for item in data.get("interactions", [])
    )
    return {
        "device": data["device"],
        "table": table,
        "interactions": graph,
        "metadata": data.get("metadata", {}),
    }
