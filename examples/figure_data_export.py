"""Export every paper figure's data series as CSV (plot with any tool).

Simulates the testbed + the YourThings-like corpus, then writes the
series behind Fig 1(a), Fig 1(b), Fig 1(c) and Fig 2 to ``./figures/``.
Also identifies the devices in the capture passively (§7 extension).

Run:  python examples/figure_data_export.py
"""

import os

from repro.core import DeviceIdentifier
from repro.datasets import generate_yourthings
from repro.net import FlowDefinition
from repro.testbed import BOSE_SOUNDTOUCH, TESTBED, Household, HouseholdConfig
from repro.viz import (
    fig1a_flow_series,
    fig1b_cdf_series,
    fig1c_interval_cdf,
    fig2_bars,
    write_csv,
)

OUT = "figures"


def main() -> None:
    os.makedirs(OUT, exist_ok=True)

    print("Fig 1(a): Bose SoundTouch flows over 30 min...")
    sound_touch = Household(
        [BOSE_SOUNDTOUCH],
        HouseholdConfig(duration_s=1800.0, seed=2, manual_interval_s=(1e9, 2e9)),
    ).simulate()
    rows = []
    for i, record in enumerate(fig1a_flow_series(sound_touch.trace, min_packets=5)):
        rows.extend((i, record["flow"], t) for t in record["timestamps"])
    n = write_csv(f"{OUT}/fig1a_flows.csv", ["flow_index", "flow", "timestamp"], rows)
    print(f"  {n} points -> {OUT}/fig1a_flows.csv")

    print("Fig 1(b)/(c): YourThings-like corpus (takes a minute)...")
    corpus = generate_yourthings(n_devices=30, duration_s=2400.0, seed=0)
    for definition in (FlowDefinition.PORTLESS, FlowDefinition.CLASSIC):
        x, y = fig1b_cdf_series(corpus, definition)
        write_csv(
            f"{OUT}/fig1b_yourthings_{definition.value}.csv",
            ["predictable_fraction", "cdf"],
            list(zip(x, y)),
        )
    x, y = fig1c_interval_cdf(corpus)
    write_csv(f"{OUT}/fig1c_intervals.csv", ["max_interval_s", "cdf"], list(zip(x, y)))
    print(f"  curves -> {OUT}/fig1b_*.csv, {OUT}/fig1c_intervals.csv")

    print("Fig 2: full testbed, two hours...")
    testbed = Household(list(TESTBED), HouseholdConfig(duration_s=7200.0, seed=1)).simulate()
    bars = fig2_bars(testbed.trace)
    write_csv(
        f"{OUT}/fig2_testbed.csv",
        ["device", "control", "automated", "manual", "overall"],
        [
            (b["device"], b["control"], b["automated"], b["manual"], b["overall"])
            for b in bars
        ],
    )
    print(f"  {len(bars)} devices -> {OUT}/fig2_testbed.csv")

    print("bonus: passive device identification on the Fig-2 capture")
    identifier = DeviceIdentifier.fit_from_testbed(n_windows=2, window_s=900.0, seed=5)
    testbed.trace.dns = testbed.cloud.dns
    for device, predicted in sorted(identifier.identify_household(testbed.trace).items()):
        truth = TESTBED[device].device_class
        marker = "" if predicted == truth else "   <-- MISS"
        print(f"  {device:10s} -> {predicted:10s}{marker}")


if __name__ == "__main__":
    main()
