"""Crash-safe durability for the FIAT proxy stack.

A CRC-framed write-ahead journal plus periodic atomic snapshots make the
proxy's security state (learned rules, bucket predictor, replay cache,
validated interactions, lockout/breaker state, open unpredictable
events) survive a process death.  :class:`RecoveryManager` supervises
the journal/snapshot epochs and rebuilds the stack after a crash;
:mod:`repro.recovery.chaos` sweeps randomized crash points asserting the
recovery invariants (decision-log equality modulo downtime, no replayed
proof accepted post-restart, deterministic recovery).
"""

from .chaos import ChaosReport, ChaosTrial, chaos_sweep
from .journal import JournalReadResult, JournalWriter, frame_record, read_journal
from .manager import RecoveryManager, RecoveryReport
from .snapshot import SNAPSHOT_FORMAT_VERSION, read_snapshot, write_snapshot

__all__ = [
    "ChaosReport",
    "ChaosTrial",
    "chaos_sweep",
    "JournalReadResult",
    "JournalWriter",
    "frame_record",
    "read_journal",
    "RecoveryManager",
    "RecoveryReport",
    "SNAPSHOT_FORMAT_VERSION",
    "read_snapshot",
    "write_snapshot",
]
