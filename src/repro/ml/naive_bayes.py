"""Naive Bayes classifiers: Bernoulli (paper's deployed model) and Gaussian.

FIAT deploys **Bernoulli Naive Bayes** as the manual-event classifier
(§6, footnote 2: "the BernoulliNB model with default parameters of
sklearn") because of its high accuracy and superior cross-location
transferability.  Defaults here match sklearn's: ``alpha=1.0``,
``binarize=0.0``, learned class priors.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from .base import Classifier, check_X, check_Xy

__all__ = ["BernoulliNB", "GaussianNB"]


class BernoulliNB(Classifier):
    """Naive Bayes over binarised features with Laplace smoothing.

    Features are thresholded at ``binarize``; per class, Bernoulli
    likelihoods are estimated with additive smoothing ``alpha``.
    """

    def __init__(self, alpha: float = 1.0, binarize: Optional[float] = 0.0) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self.binarize = binarize
        self.feature_log_prob_: Optional[np.ndarray] = None
        self.class_log_prior_: Optional[np.ndarray] = None

    def _binarize(self, X: np.ndarray) -> np.ndarray:
        if self.binarize is None:
            return X
        return (X > self.binarize).astype(float)

    def fit(self, X: Any, y: Any) -> "BernoulliNB":
        """Estimate class priors and per-feature Bernoulli parameters."""
        X, y = check_Xy(X, y)
        indices = self._store_classes(y)
        Xb = self._binarize(X)
        n_classes = len(self.classes_)
        counts = np.empty((n_classes, X.shape[1]))
        class_counts = np.empty(n_classes)
        for k in range(n_classes):
            members = Xb[indices == k]
            class_counts[k] = len(members)
            counts[k] = members.sum(axis=0)
        smoothed = (counts + self.alpha) / (class_counts[:, None] + 2 * self.alpha)
        self.feature_log_prob_ = np.log(smoothed)
        self._neg_log_prob = np.log(1.0 - smoothed)
        self.class_log_prior_ = np.log(class_counts / class_counts.sum())
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        Xb = self._binarize(X)
        jll = Xb @ self.feature_log_prob_.T + (1.0 - Xb) @ self._neg_log_prob.T
        return jll + self.class_log_prior_

    def predict_proba(self, X: Any) -> np.ndarray:
        """Posterior class probabilities."""
        if self.feature_log_prob_ is None:
            raise RuntimeError("classifier must be fitted before predict")
        X = check_X(X)
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        expd = np.exp(jll)
        return expd / expd.sum(axis=1, keepdims=True)


class GaussianNB(Classifier):
    """Naive Bayes with per-class Gaussian feature likelihoods.

    A small variance floor (``var_smoothing`` times the largest feature
    variance) keeps constant features well-behaved, as in sklearn.
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        if var_smoothing <= 0:
            raise ValueError("var_smoothing must be positive")
        self.var_smoothing = var_smoothing
        self.theta_: Optional[np.ndarray] = None
        self.var_: Optional[np.ndarray] = None
        self.class_log_prior_: Optional[np.ndarray] = None

    def fit(self, X: Any, y: Any) -> "GaussianNB":
        """Estimate per-class feature means and variances."""
        X, y = check_Xy(X, y)
        indices = self._store_classes(y)
        n_classes = len(self.classes_)
        self.theta_ = np.empty((n_classes, X.shape[1]))
        self.var_ = np.empty((n_classes, X.shape[1]))
        class_counts = np.empty(n_classes)
        epsilon = self.var_smoothing * max(float(X.var(axis=0).max()), 1e-12)
        for k in range(n_classes):
            members = X[indices == k]
            class_counts[k] = len(members)
            self.theta_[k] = members.mean(axis=0)
            self.var_[k] = members.var(axis=0) + epsilon
        self.class_log_prior_ = np.log(class_counts / class_counts.sum())
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        """Posterior class probabilities under the Gaussian model."""
        if self.theta_ is None:
            raise RuntimeError("classifier must be fitted before predict")
        X = check_X(X)
        jll = np.empty((X.shape[0], len(self.classes_)))
        for k in range(len(self.classes_)):
            log_det = np.sum(np.log(2.0 * np.pi * self.var_[k]))
            maha = np.sum((X - self.theta_[k]) ** 2 / self.var_[k], axis=1)
            jll[:, k] = self.class_log_prior_[k] - 0.5 * (log_det + maha)
        jll -= jll.max(axis=1, keepdims=True)
        expd = np.exp(jll)
        return expd / expd.sum(axis=1, keepdims=True)
