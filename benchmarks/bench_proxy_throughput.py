"""Performance bench: proxy packet-processing throughput.

The paper deploys the proxy on a Raspberry Pi intercepting all home IoT
traffic, so per-packet cost matters.  This bench measures the proxy's
steady-state throughput on a realistic household trace (rule hits
dominating, the unpredictable-event path exercised by the events mixed
in) and the bucket heuristic's offline labelling rate.
"""

import numpy as np
import pytest

from repro.core import FiatConfig, FiatProxy, HumanValidationService, train_event_classifier
from repro.crypto import pair
from repro.predictability import label_predictable
from repro.sensors import HumannessValidator
from repro.testbed import APP_PACKAGES, profile_for


@pytest.fixture(scope="module")
def proxy_and_trace(testbed_household):
    result = testbed_household
    _, proxy_ks = pair("phone", "proxy")
    classifiers = {}
    for name in result.trace.devices():
        profile = profile_for(name)
        if profile.uses_simple_rules:
            classifiers[name] = train_event_classifier(profile)
    proxy = FiatProxy(
        config=FiatConfig(bootstrap_s=1200.0),
        dns=result.cloud.dns,
        classifiers=classifiers,
        validation=HumanValidationService(
            proxy_ks, validator=HumannessValidator(n_train_per_class=60, seed=0).fit()
        ),
        app_for_device=dict(APP_PACKAGES),
    )
    packets = list(result.trace)[:20000]
    return proxy, packets


def test_proxy_packet_throughput(benchmark, proxy_and_trace):
    proxy, packets = proxy_and_trace

    def process_all():
        for packet in packets:
            proxy.process(packet)
        return len(packets)

    n = benchmark.pedantic(process_all, rounds=3, iterations=1)
    seconds = benchmark.stats["mean"]
    rate = n / seconds
    print(f"\nproxy throughput: {rate:,.0f} packets/s over {n} packets")
    # A Raspberry-Pi-class deployment needs ~hundreds of packets/s; the
    # pure-Python pipeline must clear that by a wide margin on a laptop.
    assert rate > 5_000


def test_offline_labelling_throughput(benchmark, testbed_household):
    trace = testbed_household.trace

    labels = benchmark.pedantic(
        lambda: label_predictable(trace, dns=testbed_household.cloud.dns),
        rounds=3,
        iterations=1,
    )
    rate = len(trace) / benchmark.stats["mean"]
    print(f"\noffline labelling: {rate:,.0f} packets/s over {len(trace)} packets")
    assert len(labels) == len(trace)
    assert rate > 10_000
