"""Unit tests for the 48 motion-sensor features (§5.4 / zkSENSE)."""

import numpy as np
import pytest

from repro.features import (
    AXIS_STATS,
    N_SENSOR_FEATURES,
    SENSOR_AXES,
    SENSOR_FEATURE_NAMES,
    axis_statistics,
    sensor_features,
    windows_to_matrix,
)
from repro.sensors import MotionKind, synthesize_window


class TestLayout:
    def test_exactly_48(self):
        assert N_SENSOR_FEATURES == 48
        assert len(SENSOR_FEATURE_NAMES) == 48
        assert len(SENSOR_AXES) * len(AXIS_STATS) == 48

    def test_feature_vector_shape(self, rng):
        window = synthesize_window(MotionKind.HUMAN, rng=rng)
        assert sensor_features(window).shape == (48,)

    def test_bad_window_shape_rejected(self):
        with pytest.raises(ValueError):
            sensor_features(np.zeros((10, 3)))


class TestAxisStatistics:
    def test_constant_signal(self):
        stats = axis_statistics(np.full(100, 5.0))
        named = dict(zip(AXIS_STATS, stats))
        assert named["mean"] == 5.0
        assert named["std"] == 0.0
        assert named["range"] == 0.0
        assert named["mad"] == 0.0
        assert named["peaks"] == 0.0

    def test_empty_signal(self):
        assert axis_statistics(np.array([])) == [0.0] * 8

    def test_peak_counting(self):
        signal = np.zeros(50)
        signal[10] = 10.0
        signal[30] = 12.0
        named = dict(zip(AXIS_STATS, axis_statistics(signal)))
        assert named["peaks"] == 2.0

    def test_rms(self):
        named = dict(zip(AXIS_STATS, axis_statistics(np.array([3.0, -3.0, 3.0, -3.0]))))
        assert named["rms"] == pytest.approx(3.0)


class TestDiscriminativePower:
    def test_human_windows_more_energetic(self, rng):
        human = sensor_features(synthesize_window(MotionKind.HUMAN, rng=rng))
        still = sensor_features(synthesize_window(MotionKind.NON_HUMAN, rng=rng))
        names = list(SENSOR_FEATURE_NAMES)
        # Gyroscope should be basically silent on a still phone.
        gyro_range = names.index("gyro-x-range")
        assert human[gyro_range] > still[gyro_range]

    def test_matrix_stacking(self, rng):
        windows = [synthesize_window(MotionKind.HUMAN, rng=rng) for _ in range(3)]
        assert windows_to_matrix(windows).shape == (3, 48)

    def test_empty_matrix(self):
        assert windows_to_matrix([]).shape == (0, 48)
