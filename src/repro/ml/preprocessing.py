"""Feature preprocessing: scaling and label encoding.

The paper pre-processes all event features by "scaling all the features
to unit variance before training and testing" (§4.1) —
:class:`StandardScaler` reproduces that step.  :class:`LabelEncoder` maps
arbitrary class labels to contiguous integers for models that need them.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from .base import check_X

__all__ = ["StandardScaler", "LabelEncoder"]


class StandardScaler:
    """Standardise features by removing the mean and scaling to unit variance.

    Constant features (zero variance) are left centred but unscaled, to
    avoid division by zero — matching scikit-learn's behaviour.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True) -> None:
        self.with_mean = with_mean
        self.with_std = with_std
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, X: Any) -> "StandardScaler":
        """Learn per-feature mean and standard deviation."""
        X = check_X(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            std[std == 0.0] = 1.0
            self.scale_ = std
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X: Any) -> np.ndarray:
        """Apply the learned standardisation."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted before transform")
        X = check_X(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fitted with {self.mean_.shape[0]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: Any) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: Any) -> np.ndarray:
        """Undo the standardisation."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted before inverse_transform")
        X = check_X(X)
        return X * self.scale_ + self.mean_


class LabelEncoder:
    """Encode arbitrary hashable labels as integers ``0..n_classes-1``."""

    def __init__(self) -> None:
        self.classes_: Optional[np.ndarray] = None

    def fit(self, y: Any) -> "LabelEncoder":
        """Learn the sorted set of labels."""
        self.classes_ = np.unique(np.asarray(y))
        return self

    def transform(self, y: Any) -> np.ndarray:
        """Map labels to their integer codes; unknown labels raise."""
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder must be fitted before transform")
        y = np.asarray(y)
        codes = np.searchsorted(self.classes_, y)
        codes = np.clip(codes, 0, len(self.classes_) - 1)
        if not np.all(self.classes_[codes] == y):
            unknown = sorted(set(y.tolist()) - set(self.classes_.tolist()))
            raise ValueError(f"unseen labels: {unknown}")
        return codes

    def fit_transform(self, y: Any) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(y).transform(y)

    def inverse_transform(self, codes: Any) -> np.ndarray:
        """Map integer codes back to the original labels."""
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder must be fitted before inverse_transform")
        return self.classes_[np.asarray(codes, dtype=int)]
