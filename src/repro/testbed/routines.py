"""IFTTT-style routine engine (paper Table 1, §2 "automated traffic").

Table 1 configures per-device automations — reminders, IFTTT alerts,
"camera turn on", "upload a short video" — via companion apps or IFTTT.
The base simulator fires automations at a fixed period; this module
models the richer trigger types the paper mentions so ablations can
stress the predictability heuristic the way real routines would:

* :class:`PeriodicTrigger` — every N seconds (the base behaviour);
* :class:`DailyTrigger` — at fixed clock times each day ("turn on the
  heat at 6pm"): perfectly repetitive day over day;
* :class:`JitteredDailyTrigger` — "dynamic behaviors like 'at sunset'"
  (§3.2): the firing time drifts from day to day, which is exactly why
  the paper "deliberately avoided" predicting such routines — their
  inter-event intervals never repeat;
* :class:`ChainTrigger` — an IFTTT chain: fires a fixed delay after
  another routine (e.g. "when the camera turns on, upload a video").

:class:`RoutineSchedule` expands a set of routines into concrete firing
times over a horizon, which :class:`~repro.testbed.household.Household`
can consume instead of its default periodic plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "PeriodicTrigger",
    "DailyTrigger",
    "JitteredDailyTrigger",
    "ChainTrigger",
    "Routine",
    "RoutineSchedule",
    "DAY_SECONDS",
]

DAY_SECONDS = 86400.0


@dataclass(frozen=True)
class PeriodicTrigger:
    """Fire every ``period_s`` seconds starting at ``phase_s``."""

    period_s: float
    phase_s: float = 0.0

    def firings(self, horizon_s: float, rng: np.random.Generator) -> List[float]:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        return list(np.arange(self.phase_s, horizon_s, self.period_s))


@dataclass(frozen=True)
class DailyTrigger:
    """Fire at a fixed time-of-day (seconds past midnight), every day."""

    time_of_day_s: float

    def firings(self, horizon_s: float, rng: np.random.Generator) -> List[float]:
        if not 0 <= self.time_of_day_s < DAY_SECONDS:
            raise ValueError("time_of_day_s must be within one day")
        times = []
        t = self.time_of_day_s
        while t < horizon_s:
            times.append(t)
            t += DAY_SECONDS
        return times


@dataclass(frozen=True)
class JitteredDailyTrigger:
    """Fire around a time-of-day that drifts day to day ("at sunset")."""

    time_of_day_s: float
    jitter_s: float = 900.0  # sunset moves by minutes across days

    def firings(self, horizon_s: float, rng: np.random.Generator) -> List[float]:
        base = DailyTrigger(self.time_of_day_s).firings(horizon_s, rng)
        return [
            max(0.0, t + float(rng.uniform(-self.jitter_s, self.jitter_s)))
            for t in base
        ]


@dataclass(frozen=True)
class ChainTrigger:
    """Fire ``delay_s`` after every firing of routine ``after``."""

    after: str
    delay_s: float = 5.0

    def firings(self, horizon_s: float, rng: np.random.Generator) -> List[float]:
        raise RuntimeError("ChainTrigger is resolved by RoutineSchedule")


Trigger = Union[PeriodicTrigger, DailyTrigger, JitteredDailyTrigger, ChainTrigger]


@dataclass(frozen=True)
class Routine:
    """One automation bound to a device."""

    name: str
    device: str
    trigger: Trigger


class RoutineSchedule:
    """Expand routines (including chains) into concrete firing times."""

    def __init__(self, routines: Sequence[Routine]) -> None:
        names = [r.name for r in routines]
        if len(set(names)) != len(names):
            raise ValueError("routine names must be unique")
        self.routines = list(routines)
        self._by_name = {r.name: r for r in routines}
        self._check_chains()

    def _check_chains(self) -> None:
        # chains must reference existing routines and not form cycles
        for routine in self.routines:
            seen = {routine.name}
            current = routine
            while isinstance(current.trigger, ChainTrigger):
                target = current.trigger.after
                if target not in self._by_name:
                    raise ValueError(
                        f"routine {current.name!r} chains after unknown {target!r}"
                    )
                if target in seen:
                    raise ValueError(f"routine chain cycle through {target!r}")
                seen.add(target)
                current = self._by_name[target]

    def expand(
        self, horizon_s: float, seed: int = 0
    ) -> Dict[str, List[Tuple[str, float]]]:
        """Firing times per device: ``{device: [(routine, t), ...]}``.

        Chains are resolved after their anchors, with per-firing delays.
        """
        rng = np.random.default_rng(seed)
        firings: Dict[str, List[float]] = {}

        def resolve(routine: Routine) -> List[float]:
            if routine.name in firings:
                return firings[routine.name]
            trigger = routine.trigger
            if isinstance(trigger, ChainTrigger):
                anchor = resolve(self._by_name[trigger.after])
                times = [t + trigger.delay_s for t in anchor if t + trigger.delay_s < horizon_s]
            else:
                times = trigger.firings(horizon_s, rng)
            firings[routine.name] = times
            return times

        per_device: Dict[str, List[Tuple[str, float]]] = {}
        for routine in self.routines:
            for t in resolve(routine):
                per_device.setdefault(routine.device, []).append((routine.name, t))
        for device in per_device:
            per_device[device].sort(key=lambda item: item[1])
        return per_device

    def interval_repetition(self, routine_name: str, horizon_s: float, seed: int = 0,
                            resolution_s: float = 1.0) -> float:
        """Share of a routine's inter-firing intervals that repeat.

        This is the §2.1-style predictability of the *schedule itself*:
        1.0 for periodic/daily routines, ~0 for jittered ("at sunset")
        ones — the reason the paper keeps dynamic routines out of the
        predictable set.
        """
        rng = np.random.default_rng(seed)
        routine = self._by_name[routine_name]
        if isinstance(routine.trigger, ChainTrigger):
            anchor = self._by_name[routine.trigger.after]
            times = [t + routine.trigger.delay_s
                     for t in anchor.trigger.firings(horizon_s, rng)]
        else:
            times = routine.trigger.firings(horizon_s, rng)
        if len(times) < 3:
            return 0.0
        bins = [round(d / resolution_s) for d in np.diff(sorted(times))]
        counts: Dict[int, int] = {}
        for b in bins:
            counts[b] = counts.get(b, 0) + 1
        repeated = sum(c for c in counts.values() if c >= 2)
        return repeated / len(bins)
