"""Tests for durable fleet runs: checkpoint, resume, corruption, retry.

The contract under test is the tentpole claim: a fleet run killed at
any home — SIGKILL included — and resumed with ``resume=True`` produces
a report byte-identical to an uninterrupted run, re-running only the
homes past the reconstructed prefix; corruption of the checkpoint
(torn tails, CRC-bad frames, unreadable snapshots) degrades resume
fail-soft to the last good record, never to a silently-wrong report.
"""

import json
import os
import signal
import subprocess
import sys
from types import SimpleNamespace

import pytest

from repro.fleet import (
    CheckpointMismatch,
    FleetAggregator,
    FleetCheckpoint,
    FleetInterrupted,
    FleetRunner,
    SampleReservoir,
    SpecStream,
    generate_fleet,
    run_home,
)
from repro.fleet.aggregate import percentile
from repro.fleet.checkpoint import ResumeState, result_digest
from repro.fleet.runner import KILL_AFTER_ENV
from repro.recovery.journal import JournalWriter

N_HOMES = 4
SEED = 11
SPEC_KWARGS = dict(
    n_manual=2, n_non_manual=3, n_attacks=1, n_training_events=60
)


def _spec(n=N_HOMES, seed=SEED):
    return generate_fleet(n, seed=seed, **SPEC_KWARGS)


@pytest.fixture(scope="module")
def fleet():
    """One small fleet, its per-home results, and the baseline report bytes.

    Results are computed once (a ``HomeResult`` is a pure function of
    its spec); the baseline is the spec-order fold of all of them —
    exactly what any uninterrupted run must produce.
    """
    spec = _spec()
    stream = spec.stream()
    results = [run_home(home) for home in spec.homes]
    agg = FleetAggregator(spec.name, spec.seed)
    for idx, result in enumerate(results):
        agg.add(idx, result)
    baseline = agg.report(n_planned=N_HOMES).to_json()
    return SimpleNamespace(spec=spec, stream=stream, results=results, baseline=baseline)


def _partial_dir(tmp_path, fleet, k, snapshot_every=2):
    """A state dir as a run SIGKILLed after ``k`` folded homes leaves it.

    Mirrors the runner's fold loop (record after fold, compact every
    ``snapshot_every`` epochs) but skips the final compaction — a hard
    kill never reaches it.
    """
    state_dir = str(tmp_path / f"state-k{k}")
    checkpoint = FleetCheckpoint(
        state_dir,
        name=fleet.stream.name,
        seed=fleet.stream.seed,
        spec_digest=fleet.stream.digest,
    )
    checkpoint.start_fresh()
    agg = FleetAggregator(fleet.spec.name, fleet.spec.seed)
    for idx in range(k):
        agg.add(idx, fleet.results[idx])
        checkpoint.record_home(idx, fleet.results[idx].to_dict(), agg.epoch)
        if agg.epoch % snapshot_every == 0:
            checkpoint.compact(idx + 1, agg.to_state())
    checkpoint.close()
    return state_dir


def _resume(fleet, state_dir, **kwargs):
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("snapshot_every", 2)
    return FleetRunner(
        fleet.spec, state_dir=state_dir, resume=True, **kwargs
    ).run()


def _newest(state_dir, prefix):
    names = sorted(n for n in os.listdir(state_dir) if n.startswith(prefix))
    return os.path.join(state_dir, names[-1])


class TestCheckpointLayer:
    def test_empty_dir_loads_empty_state(self, tmp_path, fleet):
        checkpoint = FleetCheckpoint(
            str(tmp_path), "f", 0, spec_digest=fleet.stream.digest
        )
        state = checkpoint.load()
        checkpoint.close()
        assert state.empty and state.next_idx == 0 and state.records == []

    def test_load_reconstructs_prefix(self, tmp_path, fleet):
        state_dir = _partial_dir(tmp_path, fleet, k=3)
        checkpoint = FleetCheckpoint(
            state_dir,
            name=fleet.stream.name,
            seed=fleet.stream.seed,
            spec_digest=fleet.stream.digest,
        )
        state = checkpoint.load()
        checkpoint.close()
        assert not state.empty
        assert state.next_idx == 3
        # snapshot + journal replay together cover exactly homes 0..2
        replayed = {int(r["idx"]) for r in state.records}
        agg = FleetAggregator.from_state(
            state.agg_state, fleet.spec.name, fleet.spec.seed
        )
        assert agg.completed + len(replayed) == 3

    def test_start_fresh_wipes_prior_state(self, tmp_path, fleet):
        state_dir = _partial_dir(tmp_path, fleet, k=3)
        checkpoint = FleetCheckpoint(
            state_dir,
            name=fleet.stream.name,
            seed=fleet.stream.seed,
            spec_digest=fleet.stream.digest,
        )
        checkpoint.start_fresh()
        checkpoint.close()
        state = checkpoint.load()
        checkpoint.close()
        assert state.empty

    def test_record_after_close_raises(self, tmp_path, fleet):
        checkpoint = FleetCheckpoint(
            str(tmp_path), "f", 0, spec_digest=fleet.stream.digest
        )
        checkpoint.start_fresh()
        checkpoint.close()
        with pytest.raises(ValueError, match="closed"):
            checkpoint.record_home(0, fleet.results[0].to_dict(), 1)

    def test_result_digest_is_key_order_invariant(self):
        assert result_digest({"a": 1, "b": 2}) == result_digest({"b": 2, "a": 1})
        assert result_digest({"a": 1}) != result_digest({"a": 2})

    def test_resume_state_empty_property(self):
        assert ResumeState().empty
        assert not ResumeState(records=[{"idx": 0}]).empty
        assert not ResumeState(agg_state={"epoch": 1}).empty


class TestResumeByteIdentical:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_resume_serial_matches_baseline(self, tmp_path, fleet, k):
        state_dir = _partial_dir(tmp_path, fleet, k=k)
        report = _resume(fleet, state_dir)
        assert report.to_json() == fleet.baseline

    def test_resume_process_backend_matches_baseline(self, tmp_path, fleet):
        state_dir = _partial_dir(tmp_path, fleet, k=2)
        report = _resume(fleet, state_dir, jobs=2, backend="process")
        assert report.to_json() == fleet.baseline

    def test_resume_after_complete_runs_nothing(self, tmp_path, fleet, monkeypatch):
        state_dir = _partial_dir(tmp_path, fleet, k=N_HOMES)

        def _boom(*args, **kwargs):  # the resumed run must not execute homes
            raise AssertionError("a fully-checkpointed run re-ran a home")

        monkeypatch.setattr("repro.fleet.runner.run_home", _boom)
        report = _resume(fleet, state_dir)
        assert report.to_json() == fleet.baseline


class TestResumeUnderCorruption:
    def test_torn_tail_falls_back_to_last_good_record(self, tmp_path, fleet):
        state_dir = _partial_dir(tmp_path, fleet, k=3, snapshot_every=100)
        journal = _newest(state_dir, "fleet-homes-")
        with open(journal, "ab") as handle:
            handle.write(b'8badf00d {"kind": "home", "idx": 99, "trunc')
        report = _resume(fleet, state_dir)
        assert report.to_json() == fleet.baseline
        # the torn tail was cut (and later epochs never carried it);
        # only checkpoint files matter — skip the telemetry subdir.
        for name in os.listdir(state_dir):
            path = os.path.join(state_dir, name)
            if not os.path.isfile(path):
                continue
            with open(path, "rb") as handle:
                assert b"trunc" not in handle.read()

    def test_crc_corrupt_record_ends_readable_prefix(self, tmp_path, fleet):
        state_dir = _partial_dir(tmp_path, fleet, k=3, snapshot_every=100)
        journal = _newest(state_dir, "fleet-homes-")
        with open(journal, "rb") as handle:
            data = bytearray(handle.read())
        # flip one payload byte inside the *last* frame: CRC now fails,
        # so the readable prefix ends at home 1 and homes 2..3 re-run
        last_line_start = data.rstrip(b"\n").rfind(b"\n") + 1
        target = last_line_start + 20
        data[target] = ord(b"Z") if data[target] != ord(b"Z") else ord(b"Q")
        with open(journal, "wb") as handle:
            handle.write(bytes(data))
        report = _resume(fleet, state_dir)
        assert report.to_json() == fleet.baseline

    def test_digest_mismatch_discards_rest_of_segment(self, tmp_path, fleet):
        state_dir = _partial_dir(tmp_path, fleet, k=2, snapshot_every=100)
        journal = _newest(state_dir, "fleet-homes-")
        # CRC-valid frames whose body lies about its own digest: the
        # bad record and everything after it must be distrusted.
        with JournalWriter(journal) as writer:
            for idx, digest in ((2, "0" * 64), (3, None)):
                result = fleet.results[idx].to_dict()
                writer.append(
                    {
                        "kind": "home",
                        "idx": idx,
                        "home_id": result["home_id"],
                        "status": result["status"],
                        "attempts": 1,
                        "digest": digest or result_digest(result),
                        "agg_epoch": idx + 1,
                        "result": result,
                    }
                )
        checkpoint = FleetCheckpoint(
            state_dir,
            name=fleet.stream.name,
            seed=fleet.stream.seed,
            spec_digest=fleet.stream.digest,
        )
        state = checkpoint.load()
        checkpoint.close()
        assert state.next_idx == 2  # idx 3's good record is past the bad one
        report = _resume(fleet, state_dir)
        assert report.to_json() == fleet.baseline

    def test_corrupt_newest_snapshot_falls_back_one_epoch(self, tmp_path, fleet):
        state_dir = _partial_dir(tmp_path, fleet, k=N_HOMES, snapshot_every=2)
        snapshot = _newest(state_dir, "fleet-snapshot-")
        with open(snapshot, "wb") as handle:
            handle.write(b"not json at all")
        report = _resume(fleet, state_dir)
        assert report.to_json() == fleet.baseline

    def test_every_snapshot_corrupt_refuses_resume(self, tmp_path, fleet):
        state_dir = _partial_dir(tmp_path, fleet, k=N_HOMES, snapshot_every=2)
        for name in os.listdir(state_dir):
            if name.startswith("fleet-snapshot-"):
                with open(os.path.join(state_dir, name), "wb") as handle:
                    handle.write(b"garbage")
        with pytest.raises(CheckpointMismatch, match="corrupt"):
            _resume(fleet, state_dir)

    def test_resume_against_different_spec_refused(self, tmp_path, fleet):
        state_dir = _partial_dir(tmp_path, fleet, k=2)
        other = _spec(seed=SEED + 1)
        with pytest.raises(CheckpointMismatch, match="different fleet"):
            FleetRunner(
                other, jobs=1, state_dir=state_dir, resume=True
            ).run()


class _StopDuringStream(SpecStream):
    """Spec stream that requests a stop while yielding home ``stop_at``."""

    def __init__(self, inner, stop_at):
        self.inner = inner
        self.stop_at = stop_at
        self.runner = None
        self.name = inner.name
        self.seed = inner.seed
        self.n_homes = inner.n_homes
        self.digest = inner.digest

    def iter_homes(self):
        for idx, home in enumerate(self.inner.iter_homes()):
            if idx == self.stop_at and self.runner is not None:
                self.runner._stop_requested = True
            yield home


class TestInterrupt:
    def test_stop_signal_semantics(self, fleet):
        runner = FleetRunner(fleet.spec, jobs=1)
        runner._handle_stop(signal.SIGTERM, None)
        assert runner._stop_requested
        with pytest.raises(KeyboardInterrupt):  # second signal: now
            runner._handle_stop(signal.SIGTERM, None)

    def test_interrupt_checkpoints_then_resume_matches(self, tmp_path, fleet):
        state_dir = str(tmp_path / "state")
        stream = _StopDuringStream(fleet.stream, stop_at=2)
        runner = FleetRunner(
            stream, jobs=1, state_dir=state_dir, snapshot_every=2
        )
        stream.runner = runner
        with pytest.raises(FleetInterrupted) as excinfo:
            runner.run()
        partial = excinfo.value.report
        assert partial.coverage["partial"] is True
        assert partial.coverage["completed"] == 2
        assert partial.coverage["planned"] == N_HOMES
        assert not partial.ok
        report = _resume(fleet, state_dir)
        assert report.to_json() == fleet.baseline


class TestKillResume:
    """Hard-kill determinism: the process dies mid-run, resume heals."""

    @pytest.mark.parametrize("kill_after,jobs", [(1, 1), (3, 1), (2, 2)])
    def test_sigkill_then_resume_byte_identical(
        self, tmp_path, fleet, kill_after, jobs
    ):
        state_dir = str(tmp_path / "state")
        code = (
            "from repro.fleet import FleetRunner, generate_fleet\n"
            f"spec = generate_fleet({N_HOMES}, seed={SEED}, **{SPEC_KWARGS!r})\n"
            f"FleetRunner(spec, jobs={jobs}, state_dir={state_dir!r}, "
            "snapshot_every=2).run()\n"
        )
        env = dict(os.environ, **{KILL_AFTER_ENV: str(kill_after)})
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        # Own session + group kill afterwards: a SIGKILLed pool parent
        # cannot clean up its forked workers (that is the point of the
        # test), so the test reaps the whole group like the kernel
        # reaps a powered-off box.
        proc = subprocess.Popen(
            [sys.executable, "-c", code],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            preexec_fn=os.setsid,
        )
        try:
            returncode = proc.wait(timeout=300)
        finally:
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        assert returncode == -signal.SIGKILL
        assert os.listdir(state_dir)  # the dead run left a checkpoint
        report = _resume(fleet, state_dir)
        assert report.to_json() == fleet.baseline


class TestRetryAndQuarantine:
    def _flaky_spec(self):
        base = _spec(n=2, seed=SEED + 5)
        homes = list(base.homes)
        flaky = homes[1].to_dict()
        flaky["poison"] = "flaky"
        homes[1] = type(homes[1]).from_dict(flaky)
        return type(base)(name=base.name, seed=base.seed, homes=tuple(homes))

    @pytest.fixture()
    def flaky_env(self, tmp_path, monkeypatch):
        marker_dir = tmp_path / "flaky"
        marker_dir.mkdir()
        monkeypatch.setenv("FIAT_FLAKY_DIR", str(marker_dir))
        return marker_dir

    def test_retry_with_backoff_succeeds_serial(self, flaky_env):
        report = FleetRunner(
            self._flaky_spec(),
            jobs=1,
            retries=1,
            backoff_base_s=0.001,
            backoff_max_s=0.002,
        ).run()
        assert report.ok
        assert report.homes[1]["attempts"] == 2
        assert report.quarantined == []

    def test_retry_with_backoff_succeeds_process(self, flaky_env):
        report = FleetRunner(
            self._flaky_spec(),
            jobs=2,
            backend="process",
            retries=1,
            backoff_base_s=0.001,
            backoff_max_s=0.002,
        ).run()
        assert report.ok
        assert report.homes[1]["attempts"] == 2

    def test_quarantine_then_retry_quarantined_heals(self, tmp_path, flaky_env):
        spec = self._flaky_spec()
        state_dir = str(tmp_path / "state")
        first = FleetRunner(spec, jobs=1, state_dir=state_dir).run()
        assert first.n_failed == 1
        assert first.quarantined == [spec.homes[1].home_id]
        assert first.coverage["quarantined"] == 1
        # the marker now exists, so the re-attempt succeeds; healthy
        # home 0 must not re-run (its result comes from the checkpoint)
        second = FleetRunner(
            spec,
            jobs=1,
            state_dir=state_dir,
            resume=True,
            retry_quarantined=True,
        ).run()
        assert second.ok
        assert second.quarantined == []
        assert second.n_ok == 2 and second.n_failed == 0

    def test_retry_quarantined_requires_state_dir(self, fleet):
        with pytest.raises(ValueError, match="state_dir"):
            FleetRunner(fleet.spec, retry_quarantined=True)
        with pytest.raises(ValueError, match="state_dir"):
            FleetRunner(fleet.spec, resume=True)

    def test_backoff_is_seeded_and_bounded(self, fleet, monkeypatch):
        delays = []
        monkeypatch.setattr(
            "repro.fleet.runner.time.sleep", lambda s: delays.append(s)
        )
        runner = FleetRunner(
            fleet.spec, jobs=1, retries=3, backoff_base_s=0.1, backoff_max_s=0.3
        )
        for attempt in (1, 2, 3):
            runner._backoff_sleep("home-x", attempt)
        replay = []
        monkeypatch.setattr(
            "repro.fleet.runner.time.sleep", lambda s: replay.append(s)
        )
        for attempt in (1, 2, 3):
            runner._backoff_sleep("home-x", attempt)
        assert delays == replay  # same seed, same jitter
        # exponential (0.1, 0.2, then capped 0.3) times jitter in [0.5, 1.5)
        assert 0.05 <= delays[0] < 0.15
        assert 0.10 <= delays[1] < 0.30
        assert 0.15 <= delays[2] < 0.45


class TestReservoir:
    def test_exact_below_cap(self):
        reservoir = SampleReservoir(0, "f", cap=8)
        values = [0.9, 0.1, 0.5, 0.3, 0.7]
        for v in values:
            reservoir.add(v)
        assert reservoir.exact
        stats = reservoir.stats()
        assert stats["p50"] == percentile(values, 0.5)
        assert stats["mean"] == pytest.approx(sum(values) / len(values))
        assert stats["n"] == 5.0

    def test_bounded_beyond_cap_mean_stays_exact(self):
        reservoir = SampleReservoir(0, "f", cap=8)
        values = [float(i) for i in range(100)]
        for v in values:
            reservoir.add(v)
        assert not reservoir.exact
        assert len(reservoir.values) == 8
        assert reservoir.n_seen == 100
        assert reservoir.stats()["mean"] == pytest.approx(sum(values) / 100)

    def test_checkpoint_round_trip_reproduces_uninterrupted(self):
        values = [float(i) * 0.37 for i in range(200)]
        straight = SampleReservoir(7, "field", cap=16)
        for v in values:
            straight.add(v)
        # checkpoint at value 120, restore into a fresh reservoir
        first = SampleReservoir(7, "field", cap=16)
        for v in values[:120]:
            first.add(v)
        state = json.loads(json.dumps(first.to_state()))
        resumed = SampleReservoir(7, "field", cap=16)
        resumed.restore(state)
        for v in values[120:]:
            resumed.add(v)
        assert resumed.values == straight.values
        assert resumed.n_seen == straight.n_seen
        assert resumed.total == straight.total

    def test_replacement_is_stateless_in_key_and_index(self):
        a = SampleReservoir(7, "ka", cap=4)
        b = SampleReservoir(7, "kb", cap=4)
        for v in range(50):
            a.add(float(v))
            b.add(float(v))
        assert a.values != b.values  # distinct fields, distinct subsamples
