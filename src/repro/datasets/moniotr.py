"""Mon(IoT)r-like corpus (paper §2.2, Fig 1b).

The real Mon(IoT)r dataset covers 104 IoT devices and splits traffic
into *idle* (no human-initiated action; 4.1 GB) and *active* (captures
around companion-app operations; 8.8 GB).  Two properties matter to the
§2 analysis and are reproduced here:

* idle traffic is control-only and highly predictable (up to 90 % of
  traffic for 90 % of devices under PortLess);
* active traffic mixes control with manual bursts, lowering
  predictability — and the captures are *short, discontinuous chunks*
  around each action (often missing connection beginnings), which
  further depresses measured predictability because periodic flows get
  fewer repetitions per chunk.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..net.dns import DnsTable
from ..net.packet import Packet
from ..net.trace import Trace
from .synthetic import SyntheticDeviceSpec, generate_device_trace

__all__ = ["generate_moniotr_idle", "generate_moniotr_active", "N_DEVICES"]

#: IoT devices in the real dataset (plus 16 controller devices, which we
#: do not model: the paper notes controller-side traffic was not kept).
N_DEVICES = 104


def generate_moniotr_idle(
    n_devices: int = N_DEVICES,
    duration_s: float = 3600.0,
    seed: int = 10,
) -> Trace:
    """Idle split: control traffic only, very low noise."""
    rng = np.random.default_rng(seed)
    dns = DnsTable()
    packets: List[Packet] = []
    for d in range(n_devices):
        spec = SyntheticDeviceSpec.random(
            f"moniotr-dev{d:03d}", rng, noise_scale=0.4, max_period_s=300.0
        )
        device_ip = f"10.1.{d // 250}.{d % 250 + 2}"
        packets.extend(generate_device_trace(spec, duration_s, dns, device_ip, rng))
    return Trace(packets, dns=dns, name="moniotr-idle")


def generate_moniotr_active(
    n_devices: int = N_DEVICES,
    n_chunks: int = 12,
    chunk_s: float = 120.0,
    seed: int = 11,
) -> Trace:
    """Active split: short capture chunks around manual operations.

    Each device is captured in ``n_chunks`` discontinuous windows of
    ``chunk_s`` seconds; each chunk contains background control traffic
    plus a dense manual burst, as the real active captures do.  Chunks
    are stitched on a common timeline with large gaps, reproducing the
    broken-connection effect the paper describes.
    """
    rng = np.random.default_rng(seed)
    dns = DnsTable()
    packets: List[Packet] = []
    for d in range(n_devices):
        spec = SyntheticDeviceSpec.random(
            f"moniotr-dev{d:03d}", rng, noise_scale=2.5, max_period_s=300.0
        )
        device_ip = f"10.2.{d // 250}.{d % 250 + 2}"
        for chunk in range(n_chunks):
            offset = chunk * (chunk_s + 3600.0)  # one-hour gaps between chunks
            chunk_packets = generate_device_trace(spec, chunk_s, dns, device_ip, rng)
            packets.extend(p.with_timestamp(p.timestamp + offset) for p in chunk_packets)
    return Trace(packets, dns=dns, name="moniotr-active")
