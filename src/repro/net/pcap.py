"""Minimal pcap (libpcap classic format) interoperability.

An open-source FIAT release must interoperate with standard capture
tooling: this module writes :class:`~repro.net.trace.Trace` objects as
pcap files readable by tcpdump/Wireshark, and reads pcap files produced
by them back into traces.  Packets are synthesised as Ethernet + IPv4 +
TCP/UDP headers with a zero-filled payload padded to the recorded size;
FIAT-specific ground-truth annotations cannot be represented in pcap
and are dropped on write (``device`` can be recovered on read via a
LAN-subnet heuristic).

Only what FIAT needs is implemented: fixed 24-byte global header
(magic 0xa1b2c3d4, LINKTYPE_ETHERNET), per-packet headers with
microsecond timestamps, IPv4 without options, TCP without options.
"""

from __future__ import annotations

import logging
import struct
from typing import List, Optional

from .packet import TLS_NONE, Direction, Packet
from .trace import Trace

__all__ = ["write_pcap", "read_pcap", "PCAP_MAGIC"]

logger = logging.getLogger(__name__)

PCAP_MAGIC = 0xA1B2C3D4
_LINKTYPE_ETHERNET = 1
_ETH_IPV4 = 0x0800
_PROTO_TCP = 6
_PROTO_UDP = 17
_ETH_HEADER = 14
_IP_HEADER = 20
_TCP_HEADER = 20
_UDP_HEADER = 8


def _ip_bytes(ip: str) -> bytes:
    parts = ip.split(".")
    if len(parts) != 4:
        return b"\x00\x00\x00\x00"
    try:
        return bytes(int(p) & 0xFF for p in parts)
    except ValueError:
        return b"\x00\x00\x00\x00"


def _bytes_ip(raw: bytes) -> str:
    return ".".join(str(b) for b in raw)


def _frame_for(packet: Packet) -> bytes:
    """Synthesise an Ethernet/IPv4/L4 frame of ``packet.size`` IP bytes."""
    proto = _PROTO_TCP if packet.protocol == "tcp" else _PROTO_UDP
    l4_header = _TCP_HEADER if proto == _PROTO_TCP else _UDP_HEADER
    # packet.size is the on-wire IP length in this codebase
    total_ip_len = max(packet.size, _IP_HEADER + l4_header)
    payload_len = total_ip_len - _IP_HEADER - l4_header

    eth = b"\x02\x00\x00\x00\x00\x01" + b"\x02\x00\x00\x00\x00\x02" + struct.pack(
        "!H", _ETH_IPV4
    )
    ip = struct.pack(
        "!BBHHHBBH4s4s",
        0x45,  # version 4, IHL 5
        0,
        total_ip_len,
        0,
        0,
        64,
        proto,
        0,  # checksum left zero (synthetic capture)
        _ip_bytes(packet.src_ip),
        _ip_bytes(packet.dst_ip),
    )
    if proto == _PROTO_TCP:
        l4 = struct.pack(
            "!HHIIBBHHH",
            packet.src_port,
            packet.dst_port,
            0,
            0,
            (_TCP_HEADER // 4) << 4,
            packet.tcp_flags & 0xFF,
            65535,
            0,
            0,
        )
    else:
        l4 = struct.pack(
            "!HHHH", packet.src_port, packet.dst_port, _UDP_HEADER + payload_len, 0
        )
    return eth + ip + l4 + b"\x00" * payload_len


def write_pcap(trace: Trace, path: str) -> int:
    """Write a trace as a pcap file; returns the number of packets."""
    with open(path, "wb") as handle:
        handle.write(
            struct.pack(
                "<IHHiIII",
                PCAP_MAGIC,
                2,
                4,
                0,
                0,
                65535,
                _LINKTYPE_ETHERNET,
            )
        )
        for packet in trace:
            frame = _frame_for(packet)
            timestamp = max(0.0, packet.timestamp)  # pcap time is unsigned
            seconds = int(timestamp)
            micros = int(round((timestamp - seconds) * 1e6))
            if micros >= 1_000_000:
                seconds += 1
                micros -= 1_000_000
            handle.write(struct.pack("<IIII", seconds, micros, len(frame), len(frame)))
            handle.write(frame)
    return len(trace)


def read_pcap(path: str, lan_prefix: str = "192.168.") -> Trace:
    """Read a pcap file into a trace.

    Direction and device are recovered heuristically: the endpoint whose
    address starts with ``lan_prefix`` is taken as the IoT device.
    Non-IPv4 or non-TCP/UDP frames are skipped.
    """
    packets: List[Packet] = []
    n_skipped = 0
    with open(path, "rb") as handle:
        header = handle.read(24)
        if len(header) < 24:
            raise ValueError("truncated pcap global header")
        magic = struct.unpack("<I", header[:4])[0]
        if magic == PCAP_MAGIC:
            endian = "<"
        elif magic == struct.unpack(">I", struct.pack("<I", PCAP_MAGIC))[0]:
            endian = ">"
        else:
            raise ValueError(f"not a pcap file (magic {magic:#x})")
        while True:
            record = handle.read(16)
            if len(record) < 16:
                break
            seconds, micros, incl_len, _orig = struct.unpack(endian + "IIII", record)
            frame = handle.read(incl_len)
            if len(frame) < incl_len:
                raise ValueError("truncated pcap record")
            packet = _parse_frame(frame, seconds + micros / 1e6, lan_prefix)
            if packet is not None:
                packets.append(packet)
            else:
                n_skipped += 1
    if n_skipped:
        logger.debug("read_pcap(%s): skipped %d non-IPv4/TCP/UDP frames", path, n_skipped)
    return Trace(packets, name=path)


def _parse_frame(frame: bytes, timestamp: float, lan_prefix: str) -> Optional[Packet]:
    if len(frame) < _ETH_HEADER + _IP_HEADER:
        return None
    ethertype = struct.unpack("!H", frame[12:14])[0]
    if ethertype != _ETH_IPV4:
        return None
    ip = frame[_ETH_HEADER:]
    ihl = (ip[0] & 0x0F) * 4
    total_len = struct.unpack("!H", ip[2:4])[0]
    proto = ip[9]
    src_ip = _bytes_ip(ip[12:16])
    dst_ip = _bytes_ip(ip[16:20])
    l4 = ip[ihl:]
    if proto == _PROTO_TCP and len(l4) >= _TCP_HEADER:
        src_port, dst_port = struct.unpack("!HH", l4[:4])
        flags = l4[13]
        protocol = "tcp"
    elif proto == _PROTO_UDP and len(l4) >= _UDP_HEADER:
        src_port, dst_port = struct.unpack("!HH", l4[:4])
        flags = 0
        protocol = "udp"
    else:
        return None
    if src_ip.startswith(lan_prefix):
        direction = Direction.OUTBOUND
        device_ip = src_ip
    else:
        direction = Direction.INBOUND
        device_ip = dst_ip
    return Packet(
        timestamp=timestamp,
        size=total_len,
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        protocol=protocol,
        direction=direction,
        device=device_ip,
        tcp_flags=flags,
        tls_version=TLS_NONE,  # pcap carries no TLS metadata at this layer
    )
