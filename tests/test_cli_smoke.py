"""End-to-end smoke coverage of every ``fiat-repro`` subcommand.

Each case invokes :func:`repro.cli.main` with real argv in a tmpdir and
asserts exit code 0, non-empty stdout, and non-empty output artifacts.
Workloads are scaled down to keep the whole module fast; correctness
depth lives in the per-subsystem test modules — this file exists so a
broken wire between the CLI and any subsystem fails loudly.
"""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    """Shared artifact directory, pre-seeded with a simulated capture."""
    root = tmp_path_factory.mktemp("cli-smoke")
    trace = root / "trace.jsonl"
    code = main(
        [
            "simulate", "--devices", "SP10", "WP3",
            "--duration", "1800", "--seed", "0",
            "--output", str(trace),
        ]
    )
    assert code == 0 and trace.stat().st_size > 0
    # A standalone metrics snapshot so obs-report does not depend on
    # the evaluate case having run first (e.g. under -k selection).
    snapshot = {
        "counters": {"proxy_decisions_total": {"device=SP10": 3.0}},
        "gauges": {},
        "histograms": {},
    }
    (root / "obs-snapshot.json").write_text(json.dumps(snapshot))
    return root


def _trace(root):
    return str(root / "trace.jsonl")


def _distrib_range_dir(root):
    """A completed one-home range dir for the fleet-merge case.

    Built on demand (in-process, no subprocess) so the case stays valid
    under ``-k`` selection without depending on the fleet case's state.
    """
    range_dir = root / "merge-state" / "range-0000"
    if not range_dir.exists():
        from repro.fleet import generate_fleet, write_spec_jsonl
        from repro.fleet.distrib import machine_seed, run_machine

        spec = generate_fleet(
            1, seed=0, n_manual=1, n_non_manual=2, n_attacks=1,
            n_training_events=40,
        )
        spec_path = root / "merge-state" / "spec.jsonl"
        spec_path.parent.mkdir(parents=True, exist_ok=True)
        write_spec_jsonl(
            str(spec_path), spec.homes, name=spec.name, seed=spec.seed,
            n_homes=1,
        )
        assert run_machine(
            {
                "spec": str(spec_path),
                "range_index": 0,
                "start": 0,
                "stop": 1,
                "epoch": 1,
                "range_dir": str(range_dir),
                "machine_seed": machine_seed(spec.seed, 0, 1),
            }
        ) == 0
    return str(range_dir)


# Each case: (name, argv builder, output artifacts the command must create).
CASES = [
    (
        "simulate",
        lambda root: [
            "simulate", "--devices", "SP10", "--duration", "600",
            "--output", str(root / "smoke-trace.jsonl"),
        ],
        ["smoke-trace.jsonl"],
    ),
    ("analyze", lambda root: ["analyze", _trace(root)], []),
    ("events", lambda root: ["events", _trace(root), "--limit", "5"], []),
    (
        "evaluate",
        lambda root: [
            "evaluate", "--devices", "SP10", "--manual", "3",
            "--non-manual", "4", "--attacks", "2",
            "--metrics-out", str(root / "metrics.json"),
            "--audit-out", str(root / "audit.jsonl"),
        ],
        ["metrics.json", "audit.jsonl"],
    ),
    (
        "chaos",
        lambda root: [
            "chaos", "--devices", "SP10", "--trials", "2",
            "--duration", "120", "--bootstrap", "0",
            "--state-root", str(root / "chaos-state"),
        ],
        [],
    ),
    (
        "fleet",
        lambda root: [
            "fleet", "--homes", "2", "--jobs", "1",
            "--manual", "2", "--non-manual", "3", "--attacks", "1",
            "--state-dir", str(root / "fleet-state"),
            "--out", str(root / "fleet-report.json"),
            "--spec-out", str(root / "fleet-spec.jsonl"),
        ],
        ["fleet-report.json", "fleet-spec.jsonl"],
    ),
    (
        "fleet-merge",
        lambda root: [
            "fleet-merge", _distrib_range_dir(root),
            "--out", str(root / "merged-report.json"),
        ],
        ["merged-report.json"],
    ),
    (
        # Against the fleet case's state dir when the full module ran;
        # against an idle (frameless) dir under -k selection — both are
        # valid monitor states and both must exit 0.
        "fleet-top",
        lambda root: ["fleet-top", "--state-dir", str(root / "fleet-state")],
        [],
    ),
    (
        "obs-report",
        lambda root: ["obs-report", str(root / "obs-snapshot.json")],
        [],
    ),
    (
        # No committed history in the tmpdir: renders the "no history"
        # hint, which is the correct empty-trajectory view.
        "bench-report",
        lambda root: [
            "bench-report", "--history", str(root / "bench-history.jsonl"),
        ],
        [],
    ),
    (
        "export-profile",
        lambda root: [
            "export-profile", _trace(root), "--device", "SP10",
            "--bootstrap", "900", "--output", str(root / "mud.json"),
        ],
        ["mud.json"],
    ),
    (
        "train",
        lambda root: [
            "train", "--device", "E4", "--manual", "12", "--non-manual", "24",
            "--output", str(root / "model.json"),
        ],
        ["model.json"],
    ),
    ("scenario", lambda root: ["scenario", "--example"], []),
]


@pytest.mark.parametrize("name,argv,artifacts", CASES, ids=[c[0] for c in CASES])
def test_subcommand_smoke(workdir, capsys, name, argv, artifacts):
    assert main(argv(workdir)) == 0
    assert capsys.readouterr().out.strip(), f"{name} printed nothing"
    for artifact in artifacts:
        path = workdir / artifact
        assert path.exists() and path.stat().st_size > 0, f"{name}: empty {artifact}"


def test_every_subcommand_is_smoked():
    """Adding a subcommand without a smoke case fails here, not in prod."""
    from repro.cli import build_parser

    subcommands = set()
    for action in build_parser()._actions:
        if hasattr(action, "choices") and isinstance(action.choices, dict):
            subcommands |= set(action.choices)
    assert subcommands == {case[0] for case in CASES}


def test_fleet_cli_report_parses(workdir):
    """The fleet artifacts written above are valid, linked documents."""
    report = json.loads((workdir / "fleet-report.json").read_text())
    lines = (workdir / "fleet-spec.jsonl").read_text().splitlines()
    header = json.loads(lines[0])["fleet"]
    homes = [json.loads(line) for line in lines[1:]]
    assert report["n_homes"] == header["n_homes"] == len(homes) == 2
    assert [h["home_id"] for h in report["homes"]] == [
        h["home_id"] for h in homes
    ]
    assert report["coverage"]["partial"] is False


def test_fleet_cli_watch_smoke(workdir, capsys):
    """--watch runs the live monitor thread alongside a tiny fleet and
    leaves a final dashboard render on stderr."""
    code = main(
        [
            "fleet", "--homes", "2", "--jobs", "1",
            "--manual", "2", "--non-manual", "3", "--attacks", "1",
            "--state-dir", str(workdir / "watch-state"),
            "--watch", "--watch-interval", "0.2",
            "--out", str(workdir / "watch-report.json"),
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "FIAT fleet monitor" in captured.err
    assert "DONE" in captured.err
    # Watching never changes the report bytes.
    assert (
        json.loads((workdir / "watch-report.json").read_text())["n_homes"] == 2
    )


def test_fleet_watch_requires_state_dir(capsys):
    assert main(["fleet", "--homes", "1", "--watch"]) == 2
    assert "--watch requires --state-dir" in capsys.readouterr().err


def test_obs_report_reads_fleet_state_dir(workdir, capsys):
    """obs-report pointed at a fleet checkpoint dir renders the latest
    compacted population aggregate."""
    assert (workdir / "fleet-state").is_dir()
    assert main(["obs-report", str(workdir / "fleet-state")]) == 0
    out = capsys.readouterr().out
    assert "fleet state dir" in out
    assert "2 homes folded" in out


def test_fleet_cli_resume_of_complete_run_is_noop(workdir, capsys):
    """--resume over a finished checkpoint re-runs nothing, same bytes."""
    assert (workdir / "fleet-state").is_dir()
    code = main(
        [
            "fleet", "--homes", "2", "--jobs", "1",
            "--manual", "2", "--non-manual", "3", "--attacks", "1",
            "--state-dir", str(workdir / "fleet-state"), "--resume",
            "--out", str(workdir / "fleet-resumed.json"),
        ]
    )
    assert code == 0 and capsys.readouterr().out.strip()
    assert (
        (workdir / "fleet-resumed.json").read_bytes()
        == (workdir / "fleet-report.json").read_bytes()
    )
