"""IoT-Inspector-like corpus (paper §2.2, last paragraph).

IoT Inspector crowdsources labelled traffic from real homes but only
publishes **five-second aggregates** per flow, not packets.  The paper
re-runs its predictability analysis over those aggregates and finds the
coarsening costs accuracy — one unpredictable packet poisons its whole
window — yet half the devices still exceed 85 % predictability under
PortLess.  We reproduce that by generating packet-level traces (so the
ground truth is known) and exposing only the windowed view to the
analysis (:func:`repro.predictability.windowed_predictability`).
"""

from __future__ import annotations

from typing import Dict

from ..net.flows import FlowDefinition
from ..net.trace import Trace
from ..predictability.aggregation import windowed_predictability
from .synthetic import generate_corpus

__all__ = ["generate_inspector", "inspector_device_predictability"]


def generate_inspector(
    n_devices: int = 40,
    duration_s: float = 1800.0,
    seed: int = 21,
) -> Trace:
    """Generate the Inspector-like sample corpus (packet level)."""
    return generate_corpus(
        n_devices=n_devices,
        duration_s=duration_s,
        seed=seed,
        noise_scale=1.5,
        name="inspector",
        max_period_s=300.0,
    )


def inspector_device_predictability(
    trace: Trace,
    definition: FlowDefinition = FlowDefinition.PORTLESS,
    window: float = 5.0,
) -> Dict[str, float]:
    """Per-device predictability at 5-second window granularity."""
    return {
        device: windowed_predictability(trace.for_device(device), definition, window=window)
        for device in trace.devices()
    }
