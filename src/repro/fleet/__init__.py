"""Sharded multi-home fleet simulation with durable, resumable runs.

FIAT's evaluation covers one household; the ROADMAP north star is a
population.  This package turns every existing experiment into a
population experiment: a declarative :class:`FleetSpec` (or a streamed
JSONL spec that never materialises) describes N independent homes
(device mix, routine intensity, attack mix, fault plan), a
shared-nothing worker runs each home's §6 accuracy experiment in its
own :class:`~repro.core.FiatSystem` (serially or on a process pool),
and an *incremental* aggregation layer folds per-home results —
reservoir accuracy percentiles, traffic-class confusion totals, alert
rollups, and the merged :class:`~repro.obs.MetricsSnapshot` of all
shards — into one deterministic population report at bounded memory.

Durability: with a ``state_dir`` every completed home is journaled
(CRC32 frames, reusing :mod:`repro.recovery.journal`) and the running
aggregate is periodically compacted into atomic snapshots, so a run
killed at home 900k of a million resumes (``resume=True``) where it
stopped and still produces a byte-identical report.  Homes that
exhaust their retry/backoff budget are quarantined, reported, and
reattemptable via ``retry_quarantined=True``.

Layering: ``spec`` (data, streaming) → ``worker`` (one home) →
``runner`` (orchestration, failure policy) → ``checkpoint``
(durability) → ``aggregate`` (incremental population report) →
``telemetry`` (out-of-band progress frames + the live
:class:`FleetMonitor` dashboard behind ``fiat-repro fleet --watch`` /
``fleet-top``) → ``distrib`` (the multi-machine coordinator: leased
contiguous home-ranges on machine subprocesses, epoch-fenced
submissions, a CRC-framed ledger, and an exact spec-order merge that
stays byte-identical to a single-machine run under machine kills,
stalls, partitions, and coordinator crashes).
Per-home seeds are hash-derived via :func:`repro.util.spawn_seed`,
never ``seed + i`` offsets, so no two homes — and no two components
within a home — share an RNG stream.  The aggregate report is
byte-identical across backends, job counts, and kill/resume boundaries
by contract (CI diffs the bytes).
"""

from .aggregate import FleetAggregator, FleetReport, SampleReservoir, aggregate, percentile
from .checkpoint import (
    CheckpointMismatch,
    FleetCheckpoint,
    ResumeState,
    load_latest_aggregate,
)
from .distrib import (
    DistribCoordinator,
    DistribError,
    RangeSpecStream,
    SubmissionMismatch,
    machine_telemetry_dirs,
    merge_range_dirs,
    parse_machine_fault,
    partition_ranges,
)
from .runner import BACKENDS, FleetInterrupted, FleetRunner
from .telemetry import (
    FleetMonitor,
    MonitorSnapshot,
    MultiFleetMonitor,
    TelemetryWriter,
    telemetry_dir_for,
)
from .spec import (
    FleetSpec,
    HomeSpec,
    JsonlSpecStream,
    MemorySpecStream,
    SpecStream,
    generate_fleet,
    home_seed,
    iter_generate_fleet,
    open_spec,
    write_spec_jsonl,
)
from .worker import HomeResult, run_home

__all__ = [
    "BACKENDS",
    "CheckpointMismatch",
    "DistribCoordinator",
    "DistribError",
    "FleetAggregator",
    "FleetCheckpoint",
    "FleetInterrupted",
    "FleetMonitor",
    "FleetReport",
    "FleetRunner",
    "FleetSpec",
    "HomeResult",
    "MonitorSnapshot",
    "MultiFleetMonitor",
    "TelemetryWriter",
    "HomeSpec",
    "JsonlSpecStream",
    "MemorySpecStream",
    "RangeSpecStream",
    "ResumeState",
    "SampleReservoir",
    "SpecStream",
    "SubmissionMismatch",
    "aggregate",
    "generate_fleet",
    "home_seed",
    "iter_generate_fleet",
    "load_latest_aggregate",
    "machine_telemetry_dirs",
    "merge_range_dirs",
    "open_spec",
    "parse_machine_fault",
    "partition_ranges",
    "percentile",
    "run_home",
    "telemetry_dir_for",
    "write_spec_jsonl",
]
