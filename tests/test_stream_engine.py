"""Byte-equality tests for the streaming engine (repro.stream.engine).

The streaming path's contract is not "approximately the same": the
decision log must be **byte-identical** to the scalar path on the same
input — across scenarios, window sizes, fault plans and mid-stream
snapshot/restore.  Every test here compares serialized bytes, not
summaries.
"""

import pytest

from repro.core import (
    FiatConfig,
    FiatProxy,
    FiatSystem,
    HumanValidationService,
    train_event_classifier,
)
from repro.crypto import pair
from repro.faults import FaultPlan, OutageWindow
from repro.sensors import HumannessValidator
from repro.stream import StreamingEngine
from repro.testbed import (
    APP_PACKAGES,
    Household,
    HouseholdConfig,
    TESTBED,
    profile_for,
)


@pytest.fixture(scope="module")
def household():
    result = Household(
        list(TESTBED), HouseholdConfig(duration_s=1800.0, seed=5)
    ).simulate()
    return result, list(result.trace)


def _build_proxy(result, streaming, window=1024, bootstrap_s=600.0):
    _, proxy_ks = pair("phone", "proxy")
    classifiers = {}
    for name in result.trace.devices():
        profile = profile_for(name)
        if profile.uses_simple_rules:
            classifiers[name] = train_event_classifier(profile)
    proxy = FiatProxy(
        config=FiatConfig(
            bootstrap_s=bootstrap_s, streaming=streaming, stream_window=window
        ),
        dns=result.cloud.dns,
        classifiers=classifiers,
        validation=HumanValidationService(
            proxy_ks,
            validator=HumannessValidator(n_train_per_class=60, seed=0).fit(),
        ),
        app_for_device=dict(APP_PACKAGES),
    )
    if streaming:
        proxy.attach_engine(StreamingEngine(proxy, window=window))
    return proxy


def _run_scalar(result, packets, **kwargs):
    proxy = _build_proxy(result, streaming=False, **kwargs)
    for packet in packets:
        proxy.process(packet)
    proxy.flush()
    return proxy


class TestRunTraceEquality:
    def test_household_trace_byte_identical(self, household):
        result, packets = household
        scalar = _run_scalar(result, packets)
        streaming = _build_proxy(result, streaming=True)
        streaming._engine.feed_many(packets)
        streaming.flush()
        assert streaming.decision_log() == scalar.decision_log()
        assert (streaming.n_allowed, streaming.n_dropped) == (
            scalar.n_allowed,
            scalar.n_dropped,
        )

    def test_snapshot_state_byte_identical(self, household):
        import json

        result, packets = household
        scalar = _run_scalar(result, packets)
        streaming = _build_proxy(result, streaming=True)
        streaming._engine.feed_many(packets)
        streaming.flush()
        assert json.dumps(streaming.snapshot(), sort_keys=False) == json.dumps(
            scalar.snapshot(), sort_keys=False
        )

    @pytest.mark.parametrize("window", [1, 7, 64, 4096])
    def test_window_size_invariant(self, household, window):
        result, packets = household
        subset = packets[:3000]
        scalar = _run_scalar(result, subset)
        streaming = _build_proxy(result, streaming=True, window=window)
        streaming._engine.feed_many(subset)
        streaming.flush()
        assert streaming.decision_log() == scalar.decision_log(), window

    def test_ingest_defers_and_barrier_drains(self, household):
        result, packets = household
        proxy = _build_proxy(result, streaming=True, window=4096)
        for packet in packets[:100]:
            assert proxy.ingest(packet) is None  # deferred, no verdict yet
        assert proxy._engine.pending == 100
        proxy.decision_log()  # a read barrier drains the window
        assert proxy._engine.pending == 0

    def test_mid_stream_snapshot_restore(self, household):
        result, packets = household
        scalar = _run_scalar(result, packets)

        first = _build_proxy(result, streaming=True)
        half = len(packets) // 2
        first._engine.feed_many(packets[:half])
        state = first.snapshot()

        second = _build_proxy(result, streaming=True)
        second.restore(state)
        second._engine.feed_many(packets[half:])
        second.flush()
        assert second.decision_log() == scalar.decision_log()

    def test_dns_mutation_mid_stream(self, household):
        result, packets = household
        half = len(packets) // 2

        def run(streaming):
            proxy = _build_proxy(result, streaming=streaming)
            feed = (
                proxy._engine.feed_many
                if streaming
                else lambda chunk: [proxy.process(p) for p in chunk]
            )
            feed(packets[:half])
            result.cloud.dns.add_record("203.0.113.99", "late.example.com")
            feed(packets[half:])
            proxy.flush()
            return proxy

        try:
            scalar = run(False)
            streaming = run(True)
        finally:
            # Shared module-scope DNS table: leave no record behind.
            del result.cloud.dns._ip_to_domain["203.0.113.99"]
            result.cloud.dns.version += 2
        assert streaming.decision_log() == scalar.decision_log()


class TestSystemEquality:
    """The config switch end-to-end: FiatSystem(streaming=True) vs scalar."""

    DEVICES = ["EchoDot4", "SP10", "WyzeCam"]

    def _logs(self, streaming, faults=None, seed=0):
        system = FiatSystem(
            self.DEVICES,
            config=FiatConfig(bootstrap_s=0.0, streaming=streaming),
            seed=seed,
            n_training_events=120,
        )
        system.run_accuracy(
            n_manual=10, n_non_manual=20, n_attacks=10, faults=faults
        )
        return system.proxy.decision_log()

    def test_accuracy_run_byte_identical(self):
        # EchoDot4/WyzeCam carry ML classifiers: this exercises the
        # batched-classification hint path, not just rule matching.
        assert self._logs(True) == self._logs(False)

    def test_accuracy_run_under_faults_byte_identical(self):
        plan = FaultPlan(
            seed=11,
            loss_rate=0.3,
            duplicate_rate=0.1,
            outages=(
                OutageWindow("validation", 100.0, 300.0),
                OutageWindow("classifier:EchoDot4", 50.0, 400.0),
            ),
        )
        rerun = FaultPlan(
            seed=11,
            loss_rate=0.3,
            duplicate_rate=0.1,
            outages=(
                OutageWindow("validation", 100.0, 300.0),
                OutageWindow("classifier:EchoDot4", 50.0, 400.0),
            ),
        )
        assert self._logs(True, faults=plan) == self._logs(False, faults=rerun)
