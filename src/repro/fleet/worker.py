"""The shard worker: one home in, one compact :class:`HomeResult` out.

:func:`run_home` is the shared-nothing unit of fleet execution.  It
builds a fresh :class:`~repro.core.FiatSystem` for one
:class:`~repro.fleet.spec.HomeSpec` (own observability registry, own
derived seeds, optionally its own recovery state shard), runs the §6
accuracy experiment, and condenses the outcome into a small, picklable,
JSON-safe :class:`HomeResult` — everything the aggregation layer needs
and nothing it does not (no packets, no decision objects, no live
system references cross the process boundary).

Determinism contract: a ``HomeResult`` is a pure function of its
``HomeSpec``.  Wall-clock latency histograms (the ``*_latency_ms``
families fed by :mod:`repro.obs.timing`) are stripped from the metrics
snapshot before it leaves the worker — they are the one nondeterministic
channel in the registry, and keeping them would break the fleet's
byte-identical-across-backends guarantee.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from ..core import FiatConfig, FiatSystem
from ..faults import FaultPlan
from ..obs import MetricsSnapshot, Observability
from ..testbed.cloud import Location
from ..util import spawn_seed
from .spec import HomeSpec

__all__ = [
    "HomeResult",
    "run_home",
    "run_home_traced",
    "run_home_payload",
    "WALL_CLOCK_SUFFIX",
]

#: Histogram families with this suffix carry ``perf_counter`` readings
#: (see :mod:`repro.obs.timing`) and are excluded from fleet results.
WALL_CLOCK_SUFFIX = "_latency_ms"


@dataclass
class HomeResult:
    """Compact, JSON-safe outcome of one home's run."""

    home_id: str
    status: str = "ok"  # "ok" | "failed"
    error: str = ""
    #: how many executions this result took (2 = retried after a crash)
    attempts: int = 1
    #: per-device Table-6 rows (``DeviceAccuracy`` as plain dicts)
    devices: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: per-ground-truth-class decision tallies: ``{"events": n, "blocked": n}``
    class_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: humanness-validation precision/recall accumulated by the home
    human_rates: Dict[str, float] = field(default_factory=dict)
    #: alert tallies by kind (``security`` / ``health``)
    alerts: Dict[str, int] = field(default_factory=dict)
    n_decisions: int = 0
    #: deterministic :class:`MetricsSnapshot` encoding (wall-clock
    #: histogram families stripped); the fleet aggregation merges these
    metrics: Dict[str, object] = field(default_factory=dict)
    #: recovery epoch reached when the home journaled state (``recover``)
    recovery_epoch: Optional[int] = None
    #: wall-clock per-phase seconds (``setup``/``simulate``/``condense``).
    #: Telemetry-only: excluded from :meth:`to_dict` so checkpoint record
    #: digests and fleet reports stay byte-identical run to run.
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the home completed."""
        return self.status == "ok"

    def snapshot(self) -> MetricsSnapshot:
        """Rehydrate the home's (deterministic) metrics snapshot."""
        return MetricsSnapshot(
            counters=dict(self.metrics.get("counters", {})),
            gauges=dict(self.metrics.get("gauges", {})),
            histograms=dict(self.metrics.get("histograms", {})),
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding (deterministic: wall-clock timings dropped)."""
        data = asdict(self)
        del data["timings"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HomeResult":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


def _deterministic_snapshot(snapshot: MetricsSnapshot) -> Dict[str, object]:
    """Snapshot encoding minus the wall-clock histogram families."""
    return {
        "counters": {name: dict(series) for name, series in snapshot.counters.items()},
        "gauges": {name: dict(series) for name, series in snapshot.gauges.items()},
        "histograms": {
            name: {key: dict(data) for key, data in series.items()}
            for name, series in snapshot.histograms.items()
            if not name.endswith(WALL_CLOCK_SUFFIX)
        },
    }


def _truth_class(decision) -> str:
    """The scripted traffic class behind one decision.

    ``EventDecision.truth`` folds attacks into ``"manual"`` (they are
    manual-*shaped*); the fleet confusion rollup wants the scripted
    class, which the experiment encodes in the event ID.
    """
    event_id = decision.event_id or ""
    for name in ("manual", "attack", "automated", "control"):
        if f"-{name}-" in event_id:
            return name
    return str(decision.truth)


def run_home(spec: HomeSpec, state_root: Optional[str] = None) -> HomeResult:
    """Run one home end to end; raises if the spec is poisoned.

    Exceptions are deliberately *not* swallowed here — failure policy
    (retry, mark failed, strict exit) belongs to the
    :class:`~repro.fleet.runner.FleetRunner`, which must treat an
    in-worker crash and a process death the same way.
    """
    if spec.poison == "raise":
        raise RuntimeError(f"poison home {spec.home_id}")
    if spec.poison == "exit":  # pragma: no cover - kills the test process
        os._exit(17)
    if spec.poison == "hang":  # pragma: no cover - worker is killed by the runner
        # Simulates a wedged worker for the liveness-timeout path; the
        # runner kills the abandoned process, so the sleep never runs out.
        time.sleep(3600)
    if spec.poison == "flaky":
        # Fails exactly once per marker dir (FIAT_FLAKY_DIR): the
        # retry/backoff and quarantine-reattempt tests' success-on-retry
        # home.  State lives on disk so it survives the process boundary.
        marker = os.path.join(
            os.environ.get("FIAT_FLAKY_DIR", tempfile.gettempdir()),
            f"fiat-flaky-{spec.home_id}",
        )
        if not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8"):
                pass
            raise RuntimeError(f"flaky home {spec.home_id} (first attempt)")

    phase_started = time.perf_counter()
    obs = Observability(trace_seed=spec.seed % (2**32))
    system = FiatSystem(
        list(spec.devices),
        config=FiatConfig(bootstrap_s=0.0, obs=obs),
        location=Location[spec.location],
        seed=spec.seed,
        n_training_events=spec.n_training_events,
    )
    recovery_epoch: Optional[int] = None
    if spec.recover and state_root:
        system.enable_recovery(os.path.join(state_root, spec.home_id))
    timings = {"setup": time.perf_counter() - phase_started}
    phase_started = time.perf_counter()
    try:
        accuracy = system.run_accuracy(
            n_manual=spec.n_manual,
            n_non_manual=spec.n_non_manual,
            n_attacks=spec.n_attacks,
            attack_with_proof=spec.attack_with_proof,
            seed=spawn_seed(spec.seed, "accuracy"),
            faults=FaultPlan(**spec.faults) if spec.faults else None,
        )
    finally:
        if system.recovery is not None:
            recovery_epoch = system.recovery.epoch
            system.recovery.close()
    timings["simulate"] = time.perf_counter() - phase_started
    phase_started = time.perf_counter()

    class_counts: Dict[str, Dict[str, int]] = {}
    for decision in system.proxy.decisions:
        tally = class_counts.setdefault(
            _truth_class(decision), {"events": 0, "blocked": 0}
        )
        tally["events"] += 1
        tally["blocked"] += int(decision.blocked)
    alerts: Dict[str, int] = {}
    for alert in system.proxy.alerts:
        alerts[alert.kind] = alerts.get(alert.kind, 0) + 1

    result = HomeResult(
        home_id=spec.home_id,
        devices={name: asdict(row) for name, row in accuracy.items()},
        class_counts=class_counts,
        human_rates=system.human_validation_rates(),
        alerts=alerts,
        n_decisions=len(system.proxy.decisions),
        metrics=_deterministic_snapshot(system.metrics_snapshot()),
        recovery_epoch=recovery_epoch,
    )
    timings["condense"] = time.perf_counter() - phase_started
    timings["total"] = sum(timings.values())
    result.timings = timings
    return result


def run_home_traced(
    spec: HomeSpec,
    state_root: Optional[str] = None,
    telemetry_dir: Optional[str] = None,
) -> HomeResult:
    """:func:`run_home` bracketed by telemetry frames (when enabled).

    Emits a ``home-start`` frame before and a ``home-end`` frame after
    the run — including on failure, so the monitor never shows a crashed
    home as eternally in flight.  With no ``telemetry_dir`` this *is*
    :func:`run_home`: telemetry must stay strictly out-of-band.
    """
    if not telemetry_dir:
        return run_home(spec, state_root=state_root)
    from .telemetry import emit_worker_frame  # late: avoid cycle at import

    emit_worker_frame(telemetry_dir, "home-start", home=spec.home_id)
    started = time.perf_counter()
    try:
        result = run_home(spec, state_root=state_root)
    except BaseException as error:
        emit_worker_frame(
            telemetry_dir,
            "home-end",
            home=spec.home_id,
            status="error",
            error=f"{type(error).__name__}: {error}",
            phases={"total": time.perf_counter() - started},
        )
        raise
    emit_worker_frame(
        telemetry_dir,
        "home-end",
        home=spec.home_id,
        status=result.status,
        phases=dict(result.timings),
    )
    return result


def run_home_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Process-pool entrypoint: plain dict in, plain dict out.

    Dicts (not dataclass instances) cross the process boundary so the
    wire format matches the JSON spec/report encodings exactly and
    never depends on class identity across interpreter states.  The
    wall-clock ``timings`` ride alongside the deterministic body (the
    runner wants them for slowest-shard attribution) but are re-stripped
    by :meth:`HomeResult.to_dict` before anything durable is written.
    """
    spec = HomeSpec.from_dict(dict(payload["home"]))  # type: ignore[arg-type]
    state_root = payload.get("state_root")
    telemetry_dir = payload.get("telemetry_dir")
    result = run_home_traced(
        spec,
        state_root=str(state_root) if state_root else None,
        telemetry_dir=str(telemetry_dir) if telemetry_dir else None,
    )
    out = result.to_dict()
    out["timings"] = dict(result.timings)
    return out
