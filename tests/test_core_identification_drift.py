"""Tests for device identification and rule drift adaptation (§7)."""

import numpy as np
import pytest

from repro.core import (
    DeviceIdentifier,
    FiatConfig,
    FiatProxy,
    HumanValidationService,
    RuleTable,
    device_fingerprint,
)
from repro.crypto import pair
from repro.net import Trace
from repro.predictability import BucketPredictor
from repro.sensors import HumannessValidator
from repro.testbed import TESTBED, Household, HouseholdConfig
from tests.conftest import make_packet


@pytest.fixture(scope="module")
def identifier():
    return DeviceIdentifier.fit_from_testbed(n_windows=3, window_s=900.0, seed=5)


@pytest.fixture(scope="module")
def fresh_household():
    config = HouseholdConfig(
        duration_s=900.0, seed=777, manual_interval_s=(1e9, 2e9)
    )
    result = Household(list(TESTBED), config).simulate()
    result.trace.dns = result.cloud.dns
    return result


class TestFingerprint:
    def test_feature_length(self, fresh_household):
        from repro.core import IDENTIFICATION_FEATURES

        trace = fresh_household.trace.for_device("SP10")
        trace.dns = fresh_household.cloud.dns
        fp = device_fingerprint(trace)
        assert fp.shape == (len(IDENTIFICATION_FEATURES),)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            device_fingerprint(Trace([]))

    def test_plug_vs_speaker_differ(self, fresh_household):
        plug = fresh_household.trace.for_device("SP10")
        speaker = fresh_household.trace.for_device("EchoDot4")
        plug.dns = speaker.dns = fresh_household.cloud.dns
        assert not np.allclose(device_fingerprint(plug), device_fingerprint(speaker))


class TestIdentifier:
    def test_unseen_household_identified(self, identifier, fresh_household):
        predictions = identifier.identify_household(fresh_household.trace)
        truth = {name: profile.device_class for name, profile in TESTBED.items()}
        correct = sum(predictions[d] == truth[d] for d in predictions)
        assert correct / len(predictions) >= 0.8

    def test_identify_before_fit_raises(self, fresh_household):
        with pytest.raises(RuntimeError):
            DeviceIdentifier().identify(fresh_household.trace.for_device("SP10"))


def _periodic(start, end, size=100, period=10.0):
    return [make_packet(timestamp=float(t), size=size) for t in np.arange(start, end, period)]


class TestRuleAging:
    def _table(self):
        predictor = BucketPredictor()
        predictor.learn_trace(Trace(_periodic(0, 100)))
        return RuleTable.from_predictor(predictor)

    def test_active_rule_survives(self):
        table = self._table()
        for t in (200.0, 210.0, 220.0):
            table.matches(make_packet(timestamp=t))
        assert table.expire_stale(now=250.0, ttl_s=100.0) == 0
        assert len(table) == 1

    def test_stale_rule_expires(self):
        table = self._table()
        table.matches(make_packet(timestamp=200.0))
        assert table.expire_stale(now=2000.0, ttl_s=600.0) == 1
        assert len(table) == 0

    def test_invalid_ttl(self):
        with pytest.raises(ValueError):
            self._table().expire_stale(now=0.0, ttl_s=0.0)

    def test_merge_from_predictor_adds_new_flows(self):
        table = self._table()
        predictor = BucketPredictor()
        predictor.learn_trace(Trace(_periodic(300, 400, size=555, period=20.0)))
        assert table.merge_from_predictor(predictor, now=400.0) == 1
        assert table.matches(make_packet(timestamp=500.0, size=555))

    def test_expired_rule_not_resurrected_by_merge(self):
        """The predictor's long memory must not undo expiry."""
        table = self._table()
        predictor = BucketPredictor()
        predictor.learn_trace(Trace(_periodic(0, 100)))  # flow dies at t=100
        table.matches(make_packet(timestamp=100.0))
        assert table.expire_stale(now=2000.0, ttl_s=600.0) == 1
        # refresh with idle guard: the dead flow stays out
        assert table.merge_from_predictor(predictor, now=2000.0, max_idle_s=600.0) == 0
        assert len(table) == 0
        # without the guard it would come back (documenting the knob)
        assert table.merge_from_predictor(predictor, now=2000.0) == 1


class TestProxyDriftAdaptation:
    def test_new_flow_learned_after_refresh(self):
        """A heartbeat that appears post-bootstrap becomes a rule."""
        _, proxy_ks = pair("a", "b")
        proxy = FiatProxy(
            config=FiatConfig(
                bootstrap_s=100.0, rule_refresh_s=100.0, rule_ttl_s=None
            ),
            dns=None,
            classifiers={},
            validation=HumanValidationService(
                proxy_ks, validator=HumannessValidator(n_train_per_class=60, seed=0).fit()
            ),
            app_for_device={},
        )
        # bootstrap flow
        for p in _periodic(0, 100):
            proxy.process(p)
        # a NEW periodic flow (firmware update) appears at t=100
        outcomes = []
        for p in _periodic(100, 400, size=777, period=10.0):
            outcomes.append(proxy.process(p))
        proxy.flush()
        # After the refresh the flow hits rules directly (continuing the
        # 10-second cadence from the last observed packet at t=390).
        late = [proxy._rules.matches(make_packet(timestamp=t, size=777))
                for t in (400.0, 410.0)]
        assert all(late)

    def test_frozen_mode_never_learns(self):
        _, proxy_ks = pair("a", "b")
        proxy = FiatProxy(
            config=FiatConfig(bootstrap_s=100.0),  # no refresh configured
            dns=None,
            classifiers={},
            validation=HumanValidationService(
                proxy_ks, validator=HumannessValidator(n_train_per_class=60, seed=0).fit()
            ),
            app_for_device={},
        )
        for p in _periodic(0, 100):
            proxy.process(p)
        for p in _periodic(100, 400, size=777, period=10.0):
            proxy.process(p)
        proxy.flush()
        assert not proxy._rules.matches(make_packet(timestamp=500.0, size=777))
