"""Ablation: the paper's §4.1 hyperparameter explorations.

Reproduces the two sweeps the paper describes for the distance-based
models: the NCC distance metric (Euclidean / Manhattan / Chebyshev —
Chebyshev was best on the paper's traffic) and kNN's k from 3 to 15
with different metrics (Euclidean k=5 best there).
"""

import numpy as np

from repro import ml
from repro.features import event_labels, events_to_matrix

from benchmarks._helpers import ML_DEVICES, print_table


def _matrices(labeled_event_sets):
    out = []
    for device in ML_DEVICES[:4]:
        events = labeled_event_sets[(device, "US")]
        X = ml.StandardScaler().fit_transform(events_to_matrix(events))
        out.append((X, event_labels(events)))
    return out


def test_ablation_ncc_metric(benchmark, labeled_event_sets):
    matrices = _matrices(labeled_event_sets)

    def score(metric):
        return float(
            np.mean(
                [
                    ml.cross_validate(
                        ml.NearestCentroidClassifier(metric=metric), X, y, n_splits=5, seed=0
                    )["mean"]
                    for X, y in matrices
                ]
            )
        )

    benchmark.pedantic(lambda: score("euclidean"), rounds=1, iterations=1)
    results = {metric: score(metric) for metric in ("euclidean", "manhattan", "chebyshev")}
    print_table(
        "Ablation — NCC distance metric (paper: Chebyshev best on its traffic)",
        ("metric", "balanced accuracy"),
        [(m, f"{s:.3f}") for m, s in results.items()],
    )
    assert max(results.values()) > 0.8


def test_ablation_knn_k(benchmark, labeled_event_sets):
    matrices = _matrices(labeled_event_sets)

    def score(k, metric):
        return float(
            np.mean(
                [
                    ml.cross_validate(
                        ml.KNeighborsClassifier(n_neighbors=k, metric=metric),
                        X,
                        y,
                        n_splits=5,
                        seed=0,
                    )["mean"]
                    for X, y in matrices
                ]
            )
        )

    benchmark.pedantic(lambda: score(5, "euclidean"), rounds=1, iterations=1)

    rows = []
    best = (None, 0.0)
    for metric in ("euclidean", "manhattan"):
        for k in (3, 5, 9, 15):
            s = score(k, metric)
            rows.append((metric, k, f"{s:.3f}"))
            if s > best[1]:
                best = ((metric, k), s)
    print_table(
        "Ablation — kNN k and metric sweep (paper: Euclidean, k = 5 best)",
        ("metric", "k", "balanced accuracy"),
        rows,
    )
    # Small k beats large k on the scarce manual class.
    small = score(3, "euclidean")
    large = score(15, "euclidean")
    assert small >= large - 0.02
