"""§2.2 IoT-Inspector analysis: predictability at 5-second granularity.

The paper re-runs the heuristic over IoT Inspector's five-second
aggregates and reports that, despite the coarsening (one unpredictable
packet poisons its whole window), half the devices still exceed 85 %
predictability under PortLess.
"""

import numpy as np

from repro.datasets import inspector_device_predictability
from repro.net import FlowDefinition
from repro.predictability import analyze_trace

from benchmarks._helpers import print_table


def test_inspector_windowed_predictability(benchmark, inspector_corpus):
    windowed = benchmark.pedantic(
        lambda: inspector_device_predictability(inspector_corpus, FlowDefinition.PORTLESS),
        rounds=1,
        iterations=1,
    )
    values = np.asarray(sorted(windowed.values()))
    packet_level = analyze_trace(inspector_corpus, FlowDefinition.PORTLESS)
    packet_values = np.asarray(sorted(packet_level.fractions()))

    rows = [
        ("5-second windows (Inspector granularity)", f"{np.median(values):.2f}",
         f"{np.mean(values > 0.85):.2f}"),
        ("packet level (ground truth)", f"{np.median(packet_values):.2f}",
         f"{np.mean(packet_values > 0.85):.2f}"),
    ]
    print_table(
        "IoT Inspector — predictability at 5 s aggregation "
        "(paper: half of devices > 85 % despite coarsening)",
        ("granularity", "median device", "share of devices > 0.85"),
        rows,
    )

    # Coarsening must lose information relative to packets (the paper's
    # central caveat) yet keep the median device reasonably predictable.
    assert np.median(values) <= np.median(packet_values)
    assert np.median(values) > 0.4
