"""Complex smart-home scenarios and auditability (paper §7 extensions).

Demonstrates the two future-work features the paper sketches:

* **Device-interaction DAG** — "some smart lights can be controlled by
  Alexa ... this can be resolved by adding a rule that allows all the
  unidirectional traffic from Alexa to the smart light": an EchoDot
  drives the SP10 plug through an explicit DAG edge; the same command
  without the rule is dropped.  Cyclic rule sets are rejected.
* **Audit log and user report** — the proxy's decisions flow into a
  hash-chained, TEE-attestable log; a digest surfaces per-device
  activity and any allowed manual events the user does not recognise
  (the silent-false-negative detector).

Run:  python examples/complex_home.py
"""

from repro.core import (
    AuditLog,
    CycleError,
    DeviceInteractionGraph,
    FiatConfig,
    FiatSystem,
    build_user_report,
    export_profile,
)
from repro.net import Direction, Packet, TrafficClass


def device_command(controller_ip: str, target: str, target_ip: str, start: float):
    """A manual-shaped SP10 command arriving from another device's IP."""
    return [
        Packet(
            timestamp=start + 0.1 * i,
            size=235 if i == 0 else 180,
            src_ip=controller_ip,
            dst_ip=target_ip,
            src_port=40010,
            dst_port=443,
            protocol="tcp",
            direction=Direction.INBOUND,
            device=target,
            traffic_class=TrafficClass.MANUAL,
        )
        for i in range(2)
    ]


def main() -> None:
    system = FiatSystem(["SP10", "EchoDot4"], config=FiatConfig(bootstrap_s=0.0), seed=3)
    device_ips = {"EchoDot4": "192.168.1.11", "SP10": "192.168.1.10"}

    print("1. Alexa -> plug, no interaction rule configured")
    packets = device_command("192.168.1.11", "SP10", "192.168.1.10", 100.0)
    allowed = [system.proxy.process(p) for p in packets]
    system.proxy.flush()
    print(f"   command executed: {all(allowed)}  (dropped: no human, no rule)\n")
    system.proxy.unlock("SP10")

    print("2. the user whitelists 'EchoDot4 controls SP10'")
    graph = DeviceInteractionGraph()
    graph.add_edge("EchoDot4", "SP10", note="voice control of the lamp plug")
    system.proxy.interactions = graph
    system.proxy.device_ips = device_ips
    packets = device_command("192.168.1.11", "SP10", "192.168.1.10", 200.0)
    allowed = [system.proxy.process(p) for p in packets]
    system.proxy.flush()
    print(f"   command executed: {all(allowed)}  (allowed by the DAG edge)\n")

    print("3. cyclic rules are rejected (devices cannot vouch for each other)")
    try:
        graph.add_edge("SP10", "EchoDot4")
    except CycleError as error:
        print(f"   CycleError: {error}\n")

    print("4. a real user operation plus one attack, then the audit report")
    system.run_accuracy(n_manual=5, n_non_manual=5, n_attacks=3)
    log = AuditLog(keystore=None)
    log.ingest_proxy(system.proxy)
    print(f"   audit log: {len(log)} chained entries, verify() = {log.verify()}")
    report = build_user_report(log)
    for device, entry in report.items():
        print(
            f"   {device:10s} events={entry['events']:3d} allowed={entry['allowed']:3d} "
            f"blocked={entry['blocked']:3d} manual-allowed={entry['manual_allowed']:3d} "
            f"alerts={entry['alerts']}"
        )

    print("\n5. export the learned profile as a MUD-style document (excerpt)")
    document = export_profile("SP10", system.proxy.rules, graph,
                              metadata={"household": "demo"})
    print("\n".join(document.splitlines()[:14]) + "\n   ...")


if __name__ == "__main__":
    main()
