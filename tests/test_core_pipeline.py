"""Integration tests for the end-to-end FIAT system (Table 6)."""

import pytest

from repro.core import FiatConfig, FiatSystem


@pytest.fixture(scope="module")
def system_results():
    system = FiatSystem(
        ["EchoDot4", "SP10", "WyzeCam"],
        config=FiatConfig(bootstrap_s=0.0),
        seed=0,
        n_training_events=160,
    )
    results = system.run_accuracy(n_manual=25, n_non_manual=50, n_attacks=25)
    return system, results


class TestAccuracyExperiment:
    def test_all_devices_reported(self, system_results):
        _, results = system_results
        assert set(results) == {"EchoDot4", "SP10", "WyzeCam"}

    def test_event_counts(self, system_results):
        _, results = system_results
        for row in results.values():
            assert row.n_manual == 25
            assert row.n_non_manual == 50
            assert row.n_attacks == 25

    def test_rule_device_perfect(self, system_results):
        _, results = system_results
        sp10 = results["SP10"]
        assert sp10.manual_precision == 1.0
        assert sp10.manual_recall == 1.0
        assert sp10.fp_non_manual_blocked == 0.0

    def test_ml_devices_paper_band(self, system_results):
        _, results = system_results
        for device in ("EchoDot4", "WyzeCam"):
            row = results[device]
            # Table 6: recalls >= 0.92, errors a few percent at most.
            assert row.manual_recall > 0.8, device
            assert row.non_manual_recall > 0.9, device
            assert row.fp_non_manual_blocked < 0.1, device

    def test_false_negatives_bounded(self, system_results):
        _, results = system_results
        for row in results.values():
            # paper: zero for half the devices, <= ~6 % for the rest;
            # allow slack for our smaller sample size
            assert row.false_negative < 0.25

    def test_human_validation_rates(self, system_results):
        system, _ = system_results
        rates = system.human_validation_rates()
        assert rates["human_recall"] > 0.85
        assert rates["non_human_recall"] > 0.9

    def test_proofless_attacks_on_rule_devices_always_blocked(self):
        system = FiatSystem(["SP10"], config=FiatConfig(bootstrap_s=0.0), seed=3)
        results = system.run_accuracy(
            n_manual=5, n_non_manual=5, n_attacks=20, attack_with_proof=0.0
        )
        assert results["SP10"].false_negative == 0.0

    def test_spyware_attacks_bounded_by_validator(self):
        system = FiatSystem(["SP10"], config=FiatConfig(bootstrap_s=0.0), seed=4)
        results = system.run_accuracy(
            n_manual=5, n_non_manual=5, n_attacks=30, attack_with_proof=1.0
        )
        # FN equals the validator's non-human miss rate (~1-2 %).
        assert results["SP10"].false_negative < 0.15
