"""Integration tests for the household simulator."""

import numpy as np
import pytest

from repro.net import FlowDefinition, TrafficClass
from repro.predictability import analyze_trace, label_predictable
from repro.testbed import Household, HouseholdConfig, generate_labeled_events


class TestSimulation:
    def test_all_classes_present(self, small_household_result):
        trace = small_household_result.trace
        classes = {p.traffic_class for p in trace}
        assert {TrafficClass.CONTROL, TrafficClass.AUTOMATED, TrafficClass.MANUAL} <= classes

    def test_sorted_by_timestamp(self, small_household_result):
        trace = small_household_result.trace
        times = [p.timestamp for p in trace]
        assert times == sorted(times)

    def test_all_devices_emit(self, small_household_result):
        assert set(small_household_result.trace.devices()) == {"EchoDot4", "SP10", "WyzeCam"}

    def test_ground_truth_log_populated(self, small_household_result):
        log = small_household_result.log
        assert len(log.interactions) > 0
        assert len(log.routines) > 0

    def test_deterministic_given_seed(self):
        config = HouseholdConfig(duration_s=600.0, seed=42)
        a = Household(["SP10"], config).simulate().trace
        b = Household(["SP10"], HouseholdConfig(duration_s=600.0, seed=42)).simulate().trace
        assert a.packets == b.packets

    def test_dns_resolves_cloud_traffic(self, small_household_result):
        result = small_household_result
        resolved = sum(
            1 for p in result.trace if result.cloud.dns.domain_for(p.remote_ip) is not None
        )
        assert resolved / len(result.trace) > 0.95


class TestPredictabilityShape:
    """Fig 2's qualitative structure must hold on the simulated testbed."""

    @pytest.fixture(scope="class")
    def report(self, small_household_result):
        return analyze_trace(small_household_result.trace, FlowDefinition.PORTLESS)

    def test_control_highly_predictable(self, report):
        for device, entry in report.devices.items():
            fraction = entry.class_fraction(TrafficClass.CONTROL)
            assert fraction is not None and fraction > 0.9, device

    def test_plug_commands_fully_unpredictable(self, report):
        entry = report.devices["SP10"]
        assert entry.class_fraction(TrafficClass.MANUAL) == 0.0
        automated = entry.class_fraction(TrafficClass.AUTOMATED)
        assert automated is None or automated == 0.0

    def test_camera_manual_mostly_stream(self, report):
        fraction = report.devices["WyzeCam"].class_fraction(TrafficClass.MANUAL)
        assert fraction is not None and 0.4 < fraction < 0.9

    def test_manual_least_predictable_for_speaker(self, report):
        entry = report.devices["EchoDot4"]
        control = entry.class_fraction(TrafficClass.CONTROL)
        manual = entry.class_fraction(TrafficClass.MANUAL)
        assert manual is not None and control is not None and manual < control


class TestGeneratedEvents:
    def test_counts(self, echodot_events):
        from repro.features import event_labels

        labels = list(event_labels(echodot_events))
        assert labels.count("manual") == 40
        assert labels.count("automated") >= 50  # confusion may flip a few
        assert labels.count("control") >= 50

    def test_events_never_merge(self, echodot_events):
        # 30-second spacing >> 5-second grouping gap.
        for earlier, later in zip(echodot_events, echodot_events[1:]):
            assert later.start - earlier.end > 5.0

    def test_event_packets_are_unpredictable(self, echodot_events):
        from repro.net import Trace

        packets = [p for event in echodot_events for p in event]
        labels = label_predictable(Trace(packets))
        assert sum(labels) / len(labels) < 0.25

    def test_deterministic(self):
        a = generate_labeled_events("SP10", n_manual=5, n_automated=5, n_control=5, seed=3)
        b = generate_labeled_events("SP10", n_manual=5, n_automated=5, n_control=5, seed=3)
        assert [p for e in a for p in e] == [p for e in b for p in e]

    def test_plug_rule_sizes_present(self):
        events = generate_labeled_events("SP10", n_manual=10, n_automated=10, n_control=0, seed=1)
        manual = [e for e in events if e.majority_class() is TrafficClass.MANUAL]
        assert all(e.packets[0].size == 235 for e in manual)
