"""Unit tests for the keystore, pairing and replay protection."""

import pytest

from repro.crypto import (
    KeystoreError,
    ReplayCache,
    SecureKeystore,
    SignedMessage,
    pair,
    payload_digest,
)


class TestKeystore:
    def test_sign_verify_roundtrip(self):
        store = SecureKeystore("phone")
        store.generate_key("k1")
        message = store.sign("k1", b"hello")
        assert store.verify(message)

    def test_tampered_payload_fails(self):
        store = SecureKeystore("phone")
        store.generate_key("k1")
        message = store.sign("k1", b"hello")
        forged = SignedMessage(payload=b"evil", signature=message.signature, key_alias="k1")
        assert not store.verify(forged)

    def test_unknown_alias_verifies_false(self):
        store = SecureKeystore("proxy")
        message = SignedMessage(payload=b"x", signature="00" * 32, key_alias="ghost")
        assert not store.verify(message)

    def test_sign_unknown_alias_raises(self):
        with pytest.raises(KeystoreError):
            SecureKeystore("p").sign("nope", b"x")

    def test_short_key_rejected(self):
        with pytest.raises(KeystoreError):
            SecureKeystore("p").install_key("k", b"short")

    def test_wire_roundtrip(self):
        store = SecureKeystore("phone")
        store.generate_key("k1")
        message = store.sign("k1", b"payload-bytes")
        assert SignedMessage.from_wire(message.to_wire()) == message

    def test_no_public_key_access(self):
        store = SecureKeystore("phone")
        store.generate_key("k1")
        public = [name for name in dir(store) if not name.startswith("_")]
        assert "keys" not in public  # TEE contract: no key extraction API


class TestPairing:
    def test_paired_stores_interoperate(self):
        phone, proxy = pair("phone", "proxy")
        message = phone.sign("fiat-pairing", b"proof")
        assert proxy.verify(message)

    def test_foreign_device_rejected(self):
        phone, proxy = pair("phone", "proxy")
        attacker, _ = pair("attacker-phone", "attacker-proxy")
        message = attacker.sign("fiat-pairing", b"proof")
        assert not proxy.verify(message)

    def test_payload_digest_stable(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest({"b": 2, "a": 1})
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})


class TestReplayCache:
    def test_fresh_then_replay(self):
        cache = ReplayCache(window_seconds=60.0)
        assert cache.check_and_register("n1", now=0.0)
        assert not cache.check_and_register("n1", now=10.0)
        assert cache.n_replays_detected == 1

    def test_expired_identifier_accepted_again(self):
        cache = ReplayCache(window_seconds=60.0)
        cache.check_and_register("n1", now=0.0)
        assert cache.check_and_register("n1", now=120.0)

    def test_eviction_bounds_memory(self):
        cache = ReplayCache(window_seconds=1e9, max_entries=10)
        for i in range(50):
            cache.check_and_register(f"n{i}", now=float(i))
        assert len(cache) <= 11

    def test_clear(self):
        cache = ReplayCache()
        cache.check_and_register("n1", now=0.0)
        cache.clear()
        assert cache.check_and_register("n1", now=1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ReplayCache(window_seconds=0)
        with pytest.raises(ValueError):
            ReplayCache(max_entries=0)
