"""Unit tests for the §2.1 bucket predictability heuristic."""

import pytest

from repro.net import DnsTable, FlowDefinition, Trace
from repro.predictability import BucketPredictor, label_predictable, quantize_iat
from tests.conftest import make_packet


class TestQuantize:
    def test_zero_and_negative_clamp(self):
        assert quantize_iat(0.0) == 0
        assert quantize_iat(-3.0) == 0

    def test_rounding_to_nearest_bin(self):
        assert quantize_iat(0.25, resolution=0.25) == 1
        assert quantize_iat(0.37, resolution=0.25) == 1
        assert quantize_iat(0.38, resolution=0.25) == 2

    def test_resolution_scales(self):
        assert quantize_iat(10.0, resolution=1.0) == 10
        assert quantize_iat(10.0, resolution=0.5) == 20


class TestOfflineLabelling:
    def test_periodic_flow_fully_predictable(self, periodic_trace):
        labels = label_predictable(periodic_trace)
        assert all(labels)

    def test_random_sizes_unpredictable(self, rng):
        packets = [
            make_packet(timestamp=float(t), size=int(rng.integers(100, 2000)))
            for t in range(0, 100, 10)
        ]
        labels = label_predictable(Trace(packets))
        # Distinct sizes -> distinct buckets -> no repeated IATs.
        assert not any(labels)

    def test_irregular_intervals_unpredictable(self):
        times = [0.0, 3.0, 10.0, 30.0, 70.0, 150.0]
        packets = [make_packet(timestamp=t) for t in times]
        labels = label_predictable(Trace(packets))
        assert not any(labels)

    def test_retroactive_marking(self):
        # One irregular packet, then a regular run: the first pair of the
        # repeated IAT must be marked too ("previous or future").
        times = [0.0, 7.3, 17.3, 27.3, 37.3]
        labels = label_predictable(Trace([make_packet(timestamp=t) for t in times]))
        assert labels == [False, True, True, True, True]

    def test_mask_length_matches(self, periodic_trace):
        assert len(label_predictable(periodic_trace)) == len(periodic_trace)

    def test_portless_merges_port_churn(self):
        # Same flow re-opened from a new source port every two packets:
        # each Classic bucket sees a single IAT (never repeated) while
        # the PortLess bucket sees the full periodic run.
        packets = [
            make_packet(timestamp=float(t), src_port=40000 + 7 * (t // 20))
            for t in range(0, 100, 10)
        ]
        trace = Trace(packets)
        portless = label_predictable(trace, FlowDefinition.PORTLESS)
        classic = label_predictable(trace, FlowDefinition.CLASSIC)
        assert all(portless)
        assert not any(classic)

    def test_domain_rotation_only_portless_predicts(self):
        # Load-balanced service: the flow hops between pool IPs of one
        # domain such that no per-IP bucket ever repeats an IAT.
        ips = ["a", "a", "b", "a", "c", "b", "d", "c", "d", "d"]
        pool = {name: f"172.0.0.{i + 1}" for i, name in enumerate("abcd")}
        dns = DnsTable([(ip, "api.x.com") for ip in pool.values()])
        packets = [
            make_packet(timestamp=float(t * 10), dst_ip=pool[ips[t]])
            for t in range(len(ips))
        ]
        trace = Trace(packets, dns=dns)
        assert all(label_predictable(trace, FlowDefinition.PORTLESS))
        assert not any(label_predictable(trace, FlowDefinition.CLASSIC))


class TestOnlinePredictor:
    def test_first_packets_not_predictable(self):
        predictor = BucketPredictor()
        assert predictor.observe(make_packet(timestamp=0.0)) is False
        assert predictor.observe(make_packet(timestamp=10.0)) is False

    def test_third_matching_packet_predictable(self):
        predictor = BucketPredictor()
        predictor.observe(make_packet(timestamp=0.0))
        predictor.observe(make_packet(timestamp=10.0))
        assert predictor.observe(make_packet(timestamp=20.0)) is True

    def test_learn_trace_builds_rules(self, periodic_trace):
        predictor = BucketPredictor()
        predictor.learn_trace(periodic_trace)
        recurring = predictor.recurring_buckets()
        assert len(recurring) == 1
        key, bins = recurring[0]
        assert quantize_iat(10.0) in bins

    def test_neighbor_bin_tolerance(self):
        predictor = BucketPredictor(resolution=0.25, neighbor_bins=1)
        predictor.observe(make_packet(timestamp=0.0))
        predictor.observe(make_packet(timestamp=10.0))
        # 10.2 s IAT falls into the adjacent bin: still a match.
        assert predictor.observe(make_packet(timestamp=20.2)) is True

    def test_no_neighbor_tolerance_strict(self):
        predictor = BucketPredictor(resolution=0.25, neighbor_bins=0)
        predictor.observe(make_packet(timestamp=0.0))
        predictor.observe(make_packet(timestamp=10.0))
        assert predictor.observe(make_packet(timestamp=20.2)) is False

    def test_n_buckets(self):
        predictor = BucketPredictor()
        predictor.observe(make_packet(size=100))
        predictor.observe(make_packet(size=200))
        assert predictor.n_buckets == 2

    def test_learned_bins_unknown_bucket_empty(self):
        predictor = BucketPredictor()
        assert predictor.learned_bins(("nope",)) == set()


class TestMaskMismatch:
    def test_group_events_rejects_bad_mask(self, periodic_trace):
        from repro.events import group_events

        with pytest.raises(ValueError, match="mask length"):
            group_events(periodic_trace, [True])


class TestQuantizeBinEdges:
    def test_docstring_edge_pins(self):
        # Rounds to *nearest* bin: 0.124 < res/2 stays in bin 0, 0.125
        # lands exactly on the half-way edge and rounds up into bin 1.
        assert quantize_iat(0.124) == 0
        assert quantize_iat(0.125) == 1

    def test_half_open_upper_edges(self):
        # Bin k >= 1 covers ((k - 0.5) * res, (k + 0.5) * res].
        assert quantize_iat(0.375) == 2
        assert quantize_iat(0.3749999) == 1
        assert quantize_iat(0.625) == 3


def _random_packets(seed, n=500, n_flows=8):
    import numpy as np

    rng = np.random.default_rng(seed)
    t = 0.0
    packets = []
    for _ in range(n):
        t += float(rng.choice([0.1, 0.25, 1.0, 7.5, 12.0]))
        flow = int(rng.integers(n_flows))
        packets.append(
            make_packet(timestamp=t, size=100 + flow, dst_ip=f"172.1.2.{flow}")
        )
    return packets


class TestObserveBatch:
    def test_state_identical_to_scalar_observe(self):
        import json

        for seed in range(3):
            packets = _random_packets(seed)
            scalar = BucketPredictor()
            for packet in packets:
                scalar.observe(packet)
            batched = BucketPredictor()
            batched.observe_batch(packets)
            # Unsorted dumps: bucket/bin *insertion order* must match too.
            assert json.dumps(batched.to_state(), sort_keys=False) == json.dumps(
                scalar.to_state(), sort_keys=False
            ), seed

    def test_chunked_batches_equal_one_batch(self):
        import json

        packets = _random_packets(9)
        whole = BucketPredictor()
        whole.observe_batch(packets)
        chunked = BucketPredictor()
        for i in range(0, len(packets), 37):
            chunked.observe_batch(packets[i : i + 37])
        assert json.dumps(chunked.to_state()) == json.dumps(whole.to_state())

    def test_tracking_predictor_falls_back_to_scalar(self):
        packets = _random_packets(1, n=60)
        tracking = BucketPredictor(track_packet_bins=True)
        tracking.observe_batch(packets)
        reference = BucketPredictor(track_packet_bins=True)
        for packet in packets:
            reference.observe(packet)
        assert tracking.to_state() == reference.to_state()


class TestOnlineMemoryBounded:
    def test_state_size_flat_over_long_run(self):
        """The memory-leak regression: per-packet history must be opt-in.

        A predictor fed 100k packets from a fixed set of flows and IATs
        must serialise to exactly the same size as one fed 10k — the
        online learner's state is O(buckets x bins), not O(packets).
        """
        import json

        def state_size(n):
            predictor = BucketPredictor()
            predictor.observe_batch(_random_packets(3, n=1000) * (n // 1000))
            return len(json.dumps(predictor.to_state()))

        small, large = state_size(10_000), state_size(100_000)
        # 10x the packets must not grow the state materially: only the
        # bin *counters* and n_observed gain digits.  The pre-fix
        # per-packet history would have grown this 10x.
        assert large < small * 1.2

    def test_tracking_opt_in_grows(self):
        predictor = BucketPredictor(track_packet_bins=True)
        packets = _random_packets(4, n=200)
        for packet in packets:
            predictor.observe(packet)
        total_history = sum(
            len(b.packet_bins) for b in predictor._buckets.values()
        )
        # One history entry per packet *with* a same-bucket predecessor.
        assert total_history == len(packets) - predictor.n_buckets

    def test_default_predictor_keeps_no_history(self):
        predictor = BucketPredictor()
        for packet in _random_packets(4, n=200):
            predictor.observe(packet)
        assert all(b.packet_bins == [] for b in predictor._buckets.values())


class TestStateVersioning:
    def _v1_state(self):
        tracking = BucketPredictor(track_packet_bins=True)
        for packet in _random_packets(6, n=120):
            tracking.observe(packet)
        state = tracking.to_state()
        state["v"] = 1
        del state["track_packet_bins"]  # v1 predates the flag
        return state, tracking

    def test_v1_state_lifts_as_non_tracking(self):
        state, _ = self._v1_state()
        lifted = BucketPredictor.from_state(state)
        assert lifted.track_packet_bins is False
        # The retroactive memory fix: v1 per-packet history is dropped.
        assert all(b.packet_bins == [] for b in lifted._buckets.values())

    def test_v1_lift_preserves_learning(self):
        state, original = self._v1_state()
        lifted = BucketPredictor.from_state(state)
        assert lifted.recurring_buckets() == original.recurring_buckets()
        assert lifted._n_observed == original._n_observed

    def test_v2_round_trip_exact(self):
        import json

        predictor = BucketPredictor()
        predictor.observe_batch(_random_packets(8, n=300))
        state = predictor.to_state()
        assert state["v"] == 2
        assert json.dumps(BucketPredictor.from_state(state).to_state()) == json.dumps(
            state
        )

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="state version"):
            BucketPredictor.from_state({"v": 99})
