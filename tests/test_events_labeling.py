"""Unit tests for ground-truth labelling from interaction logs."""

import pytest

from repro.events import GroundTruthLog, InteractionWindow, RoutineFiring, label_trace
from repro.net import Trace, TrafficClass
from tests.conftest import make_packet


class TestWindows:
    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            InteractionWindow(device="d", start=10.0, end=5.0)

    def test_covers_with_slack(self):
        window = InteractionWindow(device="d", start=10.0, end=20.0)
        assert window.covers(15.0)
        assert not window.covers(21.0)
        assert window.covers(21.0, slack=2.0)

    def test_routine_covers(self):
        firing = RoutineFiring(device="d", timestamp=100.0, duration=10.0)
        assert firing.covers(105.0)
        assert not firing.covers(111.0)
        assert firing.covers(111.0, slack=2.0)


class TestClassification:
    def test_precedence_manual_over_automated(self):
        log = GroundTruthLog(
            interactions=[InteractionWindow("d", 0.0, 10.0)],
            routines=[RoutineFiring("d", 5.0)],
        )
        assert log.classify("d", 5.0) is TrafficClass.MANUAL

    def test_routine_labelled_automated(self):
        log = GroundTruthLog(routines=[RoutineFiring("d", 100.0)])
        assert log.classify("d", 105.0) is TrafficClass.AUTOMATED

    def test_default_control(self):
        assert GroundTruthLog().classify("d", 0.0) is TrafficClass.CONTROL

    def test_device_scoped(self):
        log = GroundTruthLog(interactions=[InteractionWindow("a", 0.0, 10.0)])
        assert log.classify("b", 5.0) is TrafficClass.CONTROL

    def test_add_keeps_sorted(self):
        log = GroundTruthLog()
        log.add_interaction(InteractionWindow("d", 50.0, 60.0))
        log.add_interaction(InteractionWindow("d", 0.0, 10.0))
        assert log.interactions[0].start == 0.0
        log.add_routine(RoutineFiring("d", 99.0))
        log.add_routine(RoutineFiring("d", 1.0))
        assert log.routines[0].timestamp == 1.0


class TestLabelTrace:
    def test_relabels_by_overlap(self):
        trace = Trace(
            [
                make_packet(timestamp=5.0, device="d"),
                make_packet(timestamp=50.0, device="d"),
                make_packet(timestamp=105.0, device="d"),
            ]
        )
        log = GroundTruthLog(
            interactions=[InteractionWindow("d", 0.0, 10.0)],
            routines=[RoutineFiring("d", 100.0)],
        )
        labelled = label_trace(trace, log, slack=0.0)
        classes = [p.traffic_class for p in labelled]
        assert classes == [TrafficClass.MANUAL, TrafficClass.CONTROL, TrafficClass.AUTOMATED]

    def test_simulated_labels_recoverable(self, small_household_result):
        """The log produced by the simulator must reconstruct most labels."""
        result = small_household_result
        relabelled = label_trace(result.trace, result.log, slack=2.0)
        agree = sum(
            a.traffic_class == b.traffic_class
            for a, b in zip(result.trace, relabelled)
        )
        assert agree / len(result.trace) > 0.9
