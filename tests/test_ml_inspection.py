"""Unit tests for permutation importance (§4.3 / Table 4)."""

import numpy as np
import pytest

from repro.ml import (
    BernoulliNB,
    GaussianNB,
    manual_f1_scorer,
    permutation_importance,
    rank_features,
)


def _dataset(seed=0):
    rng = np.random.default_rng(seed)
    n = 300
    signal = rng.normal(size=n)
    noise = rng.normal(size=(n, 3))
    X = np.column_stack([signal, noise])
    y = (signal > 0).astype(int)
    return X, y


class TestPermutationImportance:
    def test_signal_feature_ranks_first(self):
        X, y = _dataset()
        model = GaussianNB().fit(X, y)
        result = permutation_importance(model, X, y, n_repeats=10, seed=0)
        means = result["importances_mean"]
        assert np.argmax(means) == 0
        assert means[0] > 0.2

    def test_noise_features_near_zero(self):
        X, y = _dataset()
        model = GaussianNB().fit(X, y)
        result = permutation_importance(model, X, y, n_repeats=10, seed=0)
        assert np.all(np.abs(result["importances_mean"][1:]) < 0.05)

    def test_baseline_reported(self):
        X, y = _dataset()
        model = GaussianNB().fit(X, y)
        result = permutation_importance(model, X, y, n_repeats=3)
        assert float(result["baseline_score"]) == pytest.approx(model.score(X, y))

    def test_custom_scorer(self):
        X, y = _dataset()
        model = BernoulliNB().fit(X, y)
        result = permutation_importance(
            model, X, y, scoring=manual_f1_scorer(1), n_repeats=5, seed=1
        )
        assert result["importances_mean"].shape == (4,)

    def test_invalid_repeats(self):
        X, y = _dataset()
        model = GaussianNB().fit(X, y)
        with pytest.raises(ValueError):
            permutation_importance(model, X, y, n_repeats=0)

    def test_original_matrix_untouched(self):
        X, y = _dataset()
        X_copy = X.copy()
        model = GaussianNB().fit(X, y)
        permutation_importance(model, X, y, n_repeats=2)
        assert np.array_equal(X, X_copy)


class TestRanking:
    def test_rank_features_sorted(self):
        ranked = rank_features(np.array([0.1, 0.5, 0.0]), ["a", "b", "c"])
        assert [name for name, _ in ranked] == ["b", "a", "c"]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            rank_features(np.array([0.1]), ["a", "b"])
