"""Property-based tests on the FIAT proxy's core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FiatConfig, FiatProxy, HumanValidationService, train_event_classifier
from repro.crypto import pair
from repro.net import Direction, Packet
from repro.sensors import HumannessValidator
from repro.testbed import profile_for

# A single validator is expensive to train; share it across examples.
_VALIDATOR = HumannessValidator(n_train_per_class=60, seed=0).fit()


def _proxy(bootstrap_s=0.0):
    _, proxy_ks = pair("phone", "proxy")
    return FiatProxy(
        config=FiatConfig(bootstrap_s=bootstrap_s),
        dns=None,
        classifiers={"SP10": train_event_classifier(profile_for("SP10"))},
        validation=HumanValidationService(proxy_ks, validator=_VALIDATOR),
        app_for_device={},
    )


@st.composite
def packet_streams(draw):
    n = draw(st.integers(min_value=1, max_value=50))
    base = 0.0
    packets = []
    for _ in range(n):
        base += draw(st.floats(min_value=0.0, max_value=20.0, allow_nan=False))
        packets.append(
            Packet(
                timestamp=base,
                size=draw(st.integers(min_value=0, max_value=1500)),
                src_ip="10.0.0.1",
                dst_ip="192.168.1.10",
                src_port=draw(st.integers(min_value=1, max_value=65535)),
                dst_port=draw(st.integers(min_value=1, max_value=65535)),
                protocol=draw(st.sampled_from(["tcp", "udp"])),
                direction=draw(st.sampled_from(list(Direction))),
                device=draw(st.sampled_from(["SP10", "ghost"])),
            )
        )
    return packets


class TestProxyProperties:
    @given(packet_streams())
    @settings(deadline=None, max_examples=30)
    def test_never_crashes_and_partitions_packets(self, packets):
        proxy = _proxy()
        for packet in packets:
            proxy.process(packet)
        proxy.flush()
        # every unpredictable packet landed in exactly one logged event
        logged = sum(d.n_packets for d in proxy.decisions)
        assert logged == len(packets)  # empty rule table: all unpredictable
        assert proxy.n_allowed + proxy.n_dropped == len(packets)

    @given(packet_streams())
    @settings(deadline=None, max_examples=30)
    def test_bootstrap_allows_everything(self, packets):
        proxy = _proxy(bootstrap_s=1e9)
        assert all(proxy.process(p) for p in packets)
        assert proxy.n_dropped == 0

    @given(packet_streams())
    @settings(deadline=None, max_examples=20)
    def test_decisions_sorted_and_consistent(self, packets):
        proxy = _proxy()
        for packet in packets:
            proxy.process(packet)
        proxy.flush()
        for decision in proxy.decisions:
            assert decision.n_packets >= 1
            assert decision.action in ("allow", "drop")
            if decision.action == "drop":
                assert decision.predicted_manual
