"""Unit tests for the DNS table."""

from repro.net import DnsTable


class TestResolution:
    def test_forward_record(self):
        dns = DnsTable([("1.2.3.4", "a.example.com")])
        assert dns.domain_for("1.2.3.4") == "a.example.com"

    def test_unknown_ip_is_none(self):
        assert DnsTable().domain_for("9.9.9.9") is None

    def test_reverse_record_used_as_fallback(self):
        dns = DnsTable()
        dns.add_reverse_record("1.2.3.4", "ptr.example.com")
        assert dns.domain_for("1.2.3.4") == "ptr.example.com"

    def test_forward_wins_over_reverse(self):
        dns = DnsTable([("1.2.3.4", "fwd.example.com")])
        dns.add_reverse_record("1.2.3.4", "ptr.example.com")
        assert dns.domain_for("1.2.3.4") == "fwd.example.com"


class TestAliases:
    def test_alias_canonicalised(self):
        dns = DnsTable([("1.2.3.4", "cdn.alias.net")])
        dns.add_alias("cdn.alias.net", "origin.example.com")
        assert dns.domain_for("1.2.3.4") == "origin.example.com"

    def test_alias_chain(self):
        dns = DnsTable([("1.2.3.4", "a")])
        dns.add_alias("a", "b")
        dns.add_alias("b", "c")
        assert dns.domain_for("1.2.3.4") == "c"

    def test_alias_cycle_terminates(self):
        dns = DnsTable([("1.2.3.4", "a")])
        dns.add_alias("a", "b")
        dns.add_alias("b", "a")
        assert dns.domain_for("1.2.3.4") in ("a", "b")


class TestIpsForAndMerge:
    def test_ips_for_collects_all(self):
        dns = DnsTable([("1.1.1.1", "x.com"), ("2.2.2.2", "x.com"), ("3.3.3.3", "y.com")])
        assert set(dns.ips_for("x.com")) == {"1.1.1.1", "2.2.2.2"}

    def test_ips_for_follows_aliases(self):
        dns = DnsTable([("1.1.1.1", "alias.com")])
        dns.add_alias("alias.com", "x.com")
        assert dns.ips_for("x.com") == ("1.1.1.1",)

    def test_merge_other_wins(self):
        a = DnsTable([("1.1.1.1", "old.com")])
        b = DnsTable([("1.1.1.1", "new.com")])
        assert a.merge(b).domain_for("1.1.1.1") == "new.com"

    def test_len_and_contains(self):
        dns = DnsTable([("1.1.1.1", "x.com")])
        dns.add_reverse_record("2.2.2.2", "y.com")
        assert len(dns) == 2
        assert "1.1.1.1" in dns
        assert "2.2.2.2" in dns
        assert "3.3.3.3" not in dns
