"""Edge-case coverage sweep across substrates."""

import numpy as np
import pytest

from repro.core import RuleTable
from repro.ml import (
    LinearSVC,
    MLPClassifier,
    SimpleRNNClassifier,
    balanced_accuracy_score,
    classification_report,
)
from repro.net import Direction, DnsTable, FlowDefinition, Trace
from repro.predictability import BucketPredictor, analyze_trace, windowed_predictability
from repro.quic.transport import NetworkPath
from tests.conftest import make_packet


class TestSingleClassModels:
    """Degenerate single-class training must not crash inference."""

    def test_linear_svc_single_class(self):
        X = np.random.default_rng(0).normal(size=(10, 3))
        y = np.zeros(10, dtype=int)
        model = LinearSVC(n_epochs=2).fit(X, y)
        assert list(model.predict(X)) == [0] * 10

    def test_mlp_single_class(self):
        X = np.random.default_rng(0).normal(size=(10, 3))
        y = np.array(["only"] * 10)
        model = MLPClassifier(hidden_layer_sizes=(4,), n_epochs=10).fit(X, y)
        assert set(model.predict(X)) == {"only"}

    def test_rnn_single_class(self):
        X = np.random.default_rng(0).normal(size=(6, 4, 2))
        y = np.zeros(6, dtype=int)
        model = SimpleRNNClassifier(hidden_size=4, n_epochs=10).fit(X, y)
        assert set(model.predict(X)) == {0}


class TestMetricsEdges:
    def test_report_with_predicted_only_label(self):
        # label 2 never appears in y_true: support 0, excluded from macro
        report = classification_report([0, 1], [0, 2])
        assert report[2]["support"] == 0.0
        assert 0.0 <= report["macro avg"]["f1"] <= 1.0

    def test_balanced_accuracy_single_class(self):
        assert balanced_accuracy_score([1, 1, 1], [1, 1, 0]) == pytest.approx(2 / 3)


class TestPredictabilityEdges:
    def test_single_packet_trace(self):
        trace = Trace([make_packet()])
        report = analyze_trace(trace)
        assert report.fraction_for("dev") == 0.0
        assert windowed_predictability(trace) == 0.0

    def test_two_packet_trace_never_predictable(self):
        trace = Trace([make_packet(timestamp=0.0), make_packet(timestamp=5.0)])
        from repro.predictability import label_predictable

        assert label_predictable(trace) == [False, False]

    def test_predictor_handles_backwards_time(self):
        predictor = BucketPredictor()
        predictor.observe(make_packet(timestamp=100.0))
        # out-of-order arrival: negative IAT clamps to bin 0, no crash
        predictor.observe(make_packet(timestamp=50.0))
        assert predictor.n_buckets == 1


class TestRuleTableEdges:
    def test_empty_table_from_empty_predictor(self):
        table = RuleTable.from_predictor(BucketPredictor())
        assert len(table) == 0
        assert not table.matches(make_packet())
        assert table.hit_rate == 0.0

    def test_expire_on_empty_table(self):
        table = RuleTable(FlowDefinition.PORTLESS, None, resolution=0.25)
        assert table.expire_stale(now=1000.0, ttl_s=10.0) == 0


class TestDnsEdges:
    def test_empty_table_everything_none(self):
        dns = DnsTable()
        assert dns.domain_for("1.2.3.4") is None
        assert dns.ips_for("x.com") == ()
        assert len(dns) == 0

    def test_canonicalize_unknown_domain_identity(self):
        assert DnsTable().canonicalize("anything.com") == "anything.com"


class TestTransportEdges:
    def test_zero_jitter_path_deterministic_scale(self):
        path = NetworkPath("flat", base_rtt_ms=100.0, jitter_sigma=1e-9)
        rng = np.random.default_rng(0)
        samples = [path.sample_rtt(rng) for _ in range(10)]
        assert all(abs(s - 100.0) < 0.1 for s in samples)


class TestTraceEdges:
    def test_merge_with_empty(self):
        trace = Trace([make_packet()])
        merged = trace.merge(Trace([]))
        assert len(merged) == 1

    def test_between_empty_window(self):
        trace = Trace([make_packet(timestamp=5.0)])
        assert len(trace.between(10.0, 20.0)) == 0

    def test_direction_inbound_device_metadata(self):
        packet = make_packet(
            direction=Direction.INBOUND, src_ip="1.2.3.4", dst_ip="192.168.1.10"
        )
        assert packet.device_ip == "192.168.1.10"
