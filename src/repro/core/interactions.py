"""Device-to-device interaction rules (paper §7, "Complex Scenarios").

Some smart-home commands are issued by *other IoT devices*: a smart
light controlled through Alexa, a camera triggered by a door sensor.
By default FIAT drops such traffic — the command is manual-shaped but no
humanness proof accompanies it (the user talked to the speaker; no
companion app moved).  The paper proposes allowing explicitly
configured *unidirectional* device-to-device flows, which "may lead to
a set of rules following a Directed Acyclic Graph (DAG) among the IoT
devices".

:class:`DeviceInteractionGraph` implements that extension: edges declare
"controller -> target" permissions, acyclicity is enforced on every
insertion (a cycle would let two devices vouch for each other and
launder arbitrary traffic), and :meth:`allows` answers the proxy's
question for an intercepted packet.  Transitive control (Alexa -> hub ->
light) is supported through :meth:`reachable`, but each *hop* must be an
explicit edge — FIAT never infers permissions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..net.packet import Packet

__all__ = ["InteractionRule", "DeviceInteractionGraph", "CycleError"]


class CycleError(ValueError):
    """Raised when adding an edge would create a control cycle."""


@dataclass(frozen=True)
class InteractionRule:
    """One allowed unidirectional control relation."""

    controller: str
    target: str
    #: optional restriction to specific cloud services (empty = any)
    services: FrozenSet[str] = frozenset()
    note: str = ""

    def __post_init__(self) -> None:
        if self.controller == self.target:
            raise ValueError("a device cannot be its own controller")


class DeviceInteractionGraph:
    """DAG of allowed device-to-device control relations.

    The graph is kept acyclic by construction; the proxy consults
    :meth:`allows` for manual-shaped events whose origin is another
    in-home device rather than the user's phone.
    """

    def __init__(self, rules: Optional[Iterable[InteractionRule]] = None) -> None:
        self._edges: Dict[Tuple[str, str], InteractionRule] = {}
        self._successors: Dict[str, Set[str]] = {}
        for rule in rules or ():
            self.add_rule(rule)

    # -- construction --------------------------------------------------------------

    def _would_cycle(self, controller: str, target: str) -> bool:
        # a cycle exists iff controller is already reachable from target
        return controller in self.reachable(target)

    def add_rule(self, rule: InteractionRule) -> None:
        """Install a rule; raises :class:`CycleError` on control cycles."""
        if self._would_cycle(rule.controller, rule.target):
            raise CycleError(
                f"edge {rule.controller} -> {rule.target} would create a control cycle"
            )
        self._edges[(rule.controller, rule.target)] = rule
        self._successors.setdefault(rule.controller, set()).add(rule.target)

    def add_edge(self, controller: str, target: str, services: Iterable[str] = (),
                 note: str = "") -> None:
        """Convenience wrapper around :meth:`add_rule`."""
        self.add_rule(
            InteractionRule(
                controller=controller,
                target=target,
                services=frozenset(services),
                note=note,
            )
        )

    def remove_edge(self, controller: str, target: str) -> bool:
        """Remove a rule; returns whether it existed."""
        rule = self._edges.pop((controller, target), None)
        if rule is None:
            return False
        self._successors[controller].discard(target)
        return True

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._edges)

    def rules(self) -> List[InteractionRule]:
        """All installed rules."""
        return list(self._edges.values())

    def reachable(self, controller: str) -> Set[str]:
        """All devices transitively controllable from ``controller``."""
        seen: Set[str] = set()
        queue = deque([controller])
        while queue:
            node = queue.popleft()
            for successor in self._successors.get(node, ()):
                if successor not in seen:
                    seen.add(successor)
                    queue.append(successor)
        return seen

    def allows(self, controller: str, target: str, service: Optional[str] = None) -> bool:
        """Whether a direct edge permits ``controller`` to drive ``target``.

        Only *direct* edges authorize traffic; transitive paths describe
        what a controller can ultimately influence but every hop is
        checked at its own interception point.
        """
        rule = self._edges.get((controller, target))
        if rule is None:
            return False
        if rule.services and service is not None and service not in rule.services:
            return False
        return True

    def allows_packet(self, packet: Packet, device_ips: Dict[str, str]) -> bool:
        """Whether an intercepted packet is covered by an interaction rule.

        ``device_ips`` maps device names to their LAN addresses; the
        packet's non-target endpoint is matched against controllers.
        """
        ip_to_device = {ip: name for name, ip in device_ips.items()}
        controller = ip_to_device.get(packet.remote_ip)
        if controller is None:
            return False
        return self.allows(controller, packet.device)

    def topological_order(self) -> List[str]:
        """Devices in a control-before-controlled order (Kahn's algorithm)."""
        indegree: Dict[str, int] = {}
        nodes: Set[str] = set()
        for controller, target in self._edges:
            nodes.add(controller)
            nodes.add(target)
            indegree[target] = indegree.get(target, 0) + 1
        queue = deque(sorted(n for n in nodes if indegree.get(n, 0) == 0))
        order: List[str] = []
        remaining = dict(indegree)
        while queue:
            node = queue.popleft()
            order.append(node)
            for successor in sorted(self._successors.get(node, ())):
                remaining[successor] -= 1
                if remaining[successor] == 0:
                    queue.append(successor)
        if len(order) != len(nodes):  # pragma: no cover - guarded by add_rule
            raise CycleError("interaction graph contains a cycle")
        return order
