"""Unpredictable-event grouping (paper §3.2).

Given the per-packet predictability mask, unpredictable packets are
grouped into *events*: consecutive unpredictable packets whose gaps are
below a threshold (5 seconds in the paper, "chosen empirically and has
very limited impact on the results") belong to the same event; a gap
above the threshold closes the current event and opens a new one.

Events are the unit the manual-traffic classifier (§4) and the FIAT
proxy's access control (§5.4) operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..net.packet import Packet, TrafficClass
from ..net.trace import Trace
from ..obs import Observability

__all__ = ["UnpredictableEvent", "group_events", "EVENT_GAP_SECONDS"]

#: Default event gap threshold, seconds (paper §3.2).
EVENT_GAP_SECONDS = 5.0


@dataclass
class UnpredictableEvent:
    """A maximal run of unpredictable packets separated by small gaps."""

    packets: List[Packet] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.packets)

    @property
    def start(self) -> float:
        """Timestamp of the first packet."""
        return self.packets[0].timestamp

    @property
    def end(self) -> float:
        """Timestamp of the last packet."""
        return self.packets[-1].timestamp

    @property
    def duration(self) -> float:
        """Event span in seconds."""
        return self.end - self.start

    @property
    def device(self) -> str:
        """Device the event belongs to (of the first packet)."""
        return self.packets[0].device

    @property
    def total_bytes(self) -> int:
        """Sum of packet sizes in the event."""
        return sum(p.size for p in self.packets)

    def majority_class(self) -> TrafficClass:
        """Ground-truth label: the most common packet class in the event.

        Ties are broken in favour of the "most manual" class, because a
        single human-caused packet makes the whole event user-visible —
        the same convention the testbed labelling uses.
        """
        counts: Dict[TrafficClass, int] = {}
        for packet in self.packets:
            counts[packet.traffic_class] = counts.get(packet.traffic_class, 0) + 1
        priority = {
            TrafficClass.ATTACK: 3,
            TrafficClass.MANUAL: 2,
            TrafficClass.AUTOMATED: 1,
            TrafficClass.CONTROL: 0,
        }
        return max(counts, key=lambda c: (counts[c], priority[c]))

    @property
    def is_manual(self) -> bool:
        """Whether the event is ground-truth manual (or attack) traffic."""
        cls = self.majority_class()
        return cls in (TrafficClass.MANUAL, TrafficClass.ATTACK)

    def first_n(self, n: int) -> List[Packet]:
        """The first ``n`` packets (fewer if the event is shorter)."""
        return self.packets[:n]


def group_events(
    trace: Trace,
    predictable: Sequence[bool],
    gap: float = EVENT_GAP_SECONDS,
    per_device: bool = True,
    obs: Optional[Observability] = None,
) -> List[UnpredictableEvent]:
    """Group unpredictable packets of ``trace`` into events.

    Parameters
    ----------
    trace:
        Packet trace in timestamp order.
    predictable:
        Boolean mask aligned with ``trace`` (from
        :func:`repro.predictability.label_predictable`).
    gap:
        Gap threshold in seconds closing an event.
    per_device:
        When true (default), events never span devices: each device's
        unpredictable packets are grouped independently, matching the
        testbed analysis where traffic is labelled per device.
    obs:
        Optional :class:`~repro.obs.Observability` handle; when enabled,
        the pass feeds ``event_grouping_latency_ms`` and counts grouped
        events/packets.
    """
    if len(predictable) != len(trace):
        raise ValueError(
            f"mask length {len(predictable)} does not match trace length {len(trace)}"
        )
    if obs is not None and obs.enabled:
        t0 = perf_counter()
        events = _group_events(trace, predictable, gap, per_device)
        obs.observe("event_grouping_latency_ms", (perf_counter() - t0) * 1000.0)
        obs.inc("events_grouped_total", float(len(events)))
        obs.inc("event_packets_total", float(sum(len(e) for e in events)))
        return events
    return _group_events(trace, predictable, gap, per_device)


def _group_events(
    trace: Trace,
    predictable: Sequence[bool],
    gap: float,
    per_device: bool,
) -> List[UnpredictableEvent]:
    open_events: Dict[str, UnpredictableEvent] = {}
    finished: List[UnpredictableEvent] = []

    for packet, is_predictable in zip(trace, predictable):
        if is_predictable:
            continue
        stream = packet.device if per_device else ""
        current = open_events.get(stream)
        if current is not None and packet.timestamp - current.end <= gap:
            current.packets.append(packet)
        else:
            if current is not None:
                finished.append(current)
            open_events[stream] = UnpredictableEvent(packets=[packet])

    finished.extend(open_events.values())
    finished.sort(key=lambda e: e.start)
    return finished
