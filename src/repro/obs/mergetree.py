"""Hierarchical, exact merging of :class:`MetricsSnapshot`s.

The fleet aggregation layer used to fold shard snapshots with a linear
left fold (``merged = merged.merge(shard)``).  That fold has two
problems at population scale:

* it is *sequential by construction* — a million-home fleet cannot
  split the merge across groups of shards (shard → group → fleet, the
  ROADMAP's tree-merge item) because pairwise float addition is not
  associative: ``(a + b) + c`` and ``a + (b + c)`` differ in the last
  ulp, and one ulp is a different byte in the report;
* every intermediate rounding step loses precision, so the final
  counter/histogram sums drift with fleet size.

This module fixes both at once.  A :class:`SnapshotAccumulator` holds
one contiguous *range* of shards with every additive quantity kept as
an exact rational (:class:`fractions.Fraction` — every IEEE double is a
dyadic rational, so float ingestion is lossless).  Exact addition *is*
associative, which makes any merge tree over the shard sequence produce
the same accumulator — and after a single correctly-rounded conversion
to float at render time, the same snapshot bytes.  The non-additive
parts keep their linear-fold semantics: gauges are last-writer-wins
(associative over an *ordered* sequence, which every merge here
preserves), histogram min/max take the extrema (order-free).

:class:`SnapshotMergeTree` is the bounded-memory driver: a binomial
forest (the classic tree-reduction counter) that ingests shards one at
a time, keeps only ``O(log n)`` partial accumulators, and collapses
them on demand.  Two trees over adjacent shard ranges combine exactly
with :meth:`SnapshotMergeTree.absorb` — the multi-machine merge-final
step: each machine folds its own shard range, ships
:meth:`SnapshotMergeTree.to_state`, and the coordinator absorbs the
states in range order.

Equivalence contract (property-tested): for shards whose histogram
boundaries are consistent per metric name — which the registry
guarantees by pinning boundaries on first observation —
``SnapshotMergeTree`` over a shard sequence renders byte-identically to
the exact linear fold of the same sequence, regardless of tree shape.
The one documented divergence from the *old float* fold is deliberate:
sums are now correctly rounded once instead of rounded ``n - 1`` times,
so the tree is byte-identical to the fold for integral values (all
counters and histogram counts) and strictly *more* accurate for
fractional ones.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

from .registry import MetricsSnapshot

__all__ = ["SnapshotAccumulator", "SnapshotMergeTree", "merge_snapshots"]


def _to_fraction(value: object) -> Fraction:
    """Exact rational of one JSON numeric (floats are dyadic — lossless)."""
    if isinstance(value, str):  # serialised "num/den" state
        return Fraction(value)
    return Fraction(value)  # type: ignore[arg-type]


def _fraction_state(value: Fraction) -> str:
    """JSON-safe exact encoding of one rational."""
    return f"{value.numerator}/{value.denominator}"


class SnapshotAccumulator:
    """Exact running union of one ordered range of shard snapshots.

    Mirrors :meth:`MetricsSnapshot.merge` semantics — counters and
    histograms add, gauges take the later shard's value, histogram
    boundary conflicts resolve to the later shard — but keeps every sum
    as a :class:`~fractions.Fraction` so addition is associative and
    the float conversion happens exactly once, in :meth:`snapshot`.
    """

    __slots__ = ("counters", "gauges", "histograms", "n_shards")

    def __init__(self) -> None:
        self.counters: Dict[str, Dict[str, Fraction]] = {}
        self.gauges: Dict[str, Dict[str, float]] = {}
        #: per series: {"boundaries": [...], "counts": [int], "sum":
        #: Fraction, "count": int, "min": float, "max": float}
        self.histograms: Dict[str, Dict[str, Dict[str, object]]] = {}
        self.n_shards = 0

    # -- ingestion ---------------------------------------------------------------

    @classmethod
    def from_snapshot(cls, snapshot: MetricsSnapshot) -> "SnapshotAccumulator":
        """Lift one shard snapshot into an exact single-shard range."""
        acc = cls()
        acc.n_shards = 1
        for name, series in snapshot.counters.items():
            acc.counters[name] = {
                key: _to_fraction(value) for key, value in series.items()
            }
        for name, series in snapshot.gauges.items():
            acc.gauges[name] = {key: float(value) for key, value in series.items()}
        for name, series in snapshot.histograms.items():
            target = acc.histograms[name] = {}
            for key, data in series.items():
                count = int(data["count"])
                target[key] = {
                    "boundaries": [float(b) for b in data["boundaries"]],
                    "counts": [int(c) for c in data["counts"]],
                    "sum": _to_fraction(data["sum"]),
                    "count": count,
                    "min": float("inf") if data.get("min") is None else float(data["min"]),
                    "max": float("-inf") if data.get("max") is None else float(data["max"]),
                }
        return acc

    # -- the associative combine -------------------------------------------------

    def merge(self, later: "SnapshotAccumulator") -> "SnapshotAccumulator":
        """Union with the accumulator of the *next* shard range.

        ``self`` must cover shards that precede every shard in
        ``later`` — gauge last-writer-wins and boundary-conflict
        resolution depend on that order, exactly like the linear fold.
        Neither operand is mutated.
        """
        out = SnapshotAccumulator()
        out.n_shards = self.n_shards + later.n_shards
        out.counters = {name: dict(series) for name, series in self.counters.items()}
        for name, series in later.counters.items():
            target = out.counters.setdefault(name, {})
            for key, value in series.items():
                target[key] = target.get(key, Fraction(0)) + value
        out.gauges = {name: dict(series) for name, series in self.gauges.items()}
        for name, series in later.gauges.items():
            out.gauges.setdefault(name, {}).update(series)
        out.histograms = {
            name: {key: dict(data) for key, data in series.items()}
            for name, series in self.histograms.items()
        }
        for name, series in later.histograms.items():
            target = out.histograms.setdefault(name, {})
            for key, theirs in series.items():
                mine = target.get(key)
                if mine is None or list(mine["boundaries"]) != list(theirs["boundaries"]):
                    # Boundary conflict: the later range wins, as in
                    # MetricsSnapshot.merge.  (The registry pins
                    # boundaries per name, so this only fires across
                    # incompatible code versions.)
                    target[key] = dict(theirs)
                    continue
                target[key] = {
                    "boundaries": list(mine["boundaries"]),
                    "counts": [
                        a + b for a, b in zip(mine["counts"], theirs["counts"])
                    ],
                    "sum": mine["sum"] + theirs["sum"],
                    "count": int(mine["count"]) + int(theirs["count"]),
                    "min": min(mine["min"], theirs["min"]),
                    "max": max(mine["max"], theirs["max"]),
                }
        return out

    # -- rendering ---------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Render to a plain snapshot — the single rounding step."""
        histograms: Dict[str, Dict[str, Dict[str, object]]] = {}
        for name, series in self.histograms.items():
            histograms[name] = {}
            for key, data in series.items():
                count = int(data["count"])
                histograms[name][key] = {
                    "boundaries": list(data["boundaries"]),
                    "counts": list(data["counts"]),
                    "sum": float(data["sum"]),
                    "count": count,
                    "min": None if count == 0 else data["min"],
                    "max": None if count == 0 else data["max"],
                }
        return MetricsSnapshot(
            counters={
                name: {key: float(value) for key, value in series.items()}
                for name, series in self.counters.items()
            },
            gauges={name: dict(series) for name, series in self.gauges.items()},
            histograms=histograms,
        )

    # -- state round trip --------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """JSON-safe exact state (rationals as ``"num/den"`` strings)."""
        return {
            "n_shards": self.n_shards,
            "counters": {
                name: {key: _fraction_state(value) for key, value in series.items()}
                for name, series in self.counters.items()
            },
            "gauges": {name: dict(series) for name, series in self.gauges.items()},
            "histograms": {
                name: {
                    key: {
                        "boundaries": list(data["boundaries"]),
                        "counts": list(data["counts"]),
                        "sum": _fraction_state(data["sum"]),
                        "count": int(data["count"]),
                        "min": None if data["min"] == float("inf") else data["min"],
                        "max": None if data["max"] == float("-inf") else data["max"],
                    }
                    for key, data in series.items()
                }
                for name, series in self.histograms.items()
            },
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "SnapshotAccumulator":
        """Inverse of :meth:`to_state` (exact by construction)."""
        acc = cls()
        acc.n_shards = int(state.get("n_shards", 0))
        acc.counters = {
            name: {key: _to_fraction(value) for key, value in series.items()}
            for name, series in state.get("counters", {}).items()
        }
        acc.gauges = {
            name: {key: float(value) for key, value in series.items()}
            for name, series in state.get("gauges", {}).items()
        }
        for name, series in state.get("histograms", {}).items():
            target = acc.histograms.setdefault(name, {})
            for key, data in series.items():
                target[key] = {
                    "boundaries": [float(b) for b in data["boundaries"]],
                    "counts": [int(c) for c in data["counts"]],
                    "sum": _to_fraction(data["sum"]),
                    "count": int(data["count"]),
                    "min": float("inf") if data.get("min") is None else float(data["min"]),
                    "max": float("-inf") if data.get("max") is None else float(data["max"]),
                }
        return acc


class SnapshotMergeTree:
    """Bounded-memory tree reduction over an ordered shard sequence.

    A binomial forest: level ``i`` holds (at most) one accumulator
    covering an earlier contiguous range of the sequence than every
    level below it.  Adding shard ``n`` carries up exactly like binary
    increment, so only ``O(log n)`` partials ever exist — the
    million-home replacement for the O(1)-but-sequential linear fold,
    with the same rendered bytes (see the module docstring contract).
    """

    STATE_FORMAT = 1

    def __init__(self) -> None:
        #: ``_levels[i]`` covers an older range than ``_levels[j]`` for i > j
        self._levels: List[Optional[SnapshotAccumulator]] = []
        self.n_shards = 0

    def add(self, snapshot: MetricsSnapshot) -> None:
        """Ingest the next shard of the sequence."""
        self._push(SnapshotAccumulator.from_snapshot(snapshot))
        self.n_shards += 1

    def absorb(self, other: "SnapshotMergeTree") -> None:
        """Append another tree covering the *next* shard range.

        The multi-machine step: group trees are absorbed in range
        order, and the result is exactly the tree of the concatenated
        sequence (associativity of the exact combine).
        """
        if other.n_shards == 0:
            return
        self._push(other.collapse())
        self.n_shards += other.n_shards

    def _push(self, carry: SnapshotAccumulator) -> None:
        for i in range(len(self._levels)):
            older = self._levels[i]
            if older is None:
                self._levels[i] = carry
                return
            self._levels[i] = None
            carry = older.merge(carry)
        self._levels.append(carry)

    def collapse(self) -> SnapshotAccumulator:
        """Exact union of everything ingested so far (non-destructive)."""
        acc: Optional[SnapshotAccumulator] = None
        for partial in reversed(self._levels):  # oldest range first
            if partial is None:
                continue
            acc = partial if acc is None else acc.merge(partial)
        return acc if acc is not None else SnapshotAccumulator()

    def result(self) -> MetricsSnapshot:
        """Render the merged fleet snapshot (single rounding step)."""
        return self.collapse().snapshot()

    # -- state round trip --------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """JSON-safe state: the forest levels, exact."""
        return {
            "format": self.STATE_FORMAT,
            "n_shards": self.n_shards,
            "levels": [
                None if partial is None else partial.to_state()
                for partial in self._levels
            ],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "SnapshotMergeTree":
        """Inverse of :meth:`to_state`; resuming mid-stream reproduces
        the uninterrupted tree bit for bit."""
        if int(state.get("format", -1)) != cls.STATE_FORMAT:
            raise ValueError(
                f"unsupported merge-tree state format {state.get('format')!r}"
            )
        tree = cls()
        tree.n_shards = int(state.get("n_shards", 0))
        tree._levels = [
            None if partial is None else SnapshotAccumulator.from_state(partial)
            for partial in state.get("levels", [])
        ]
        return tree


def merge_snapshots(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Merge an ordered shard sequence through a tree (convenience form)."""
    tree = SnapshotMergeTree()
    for snapshot in snapshots:
        tree.add(snapshot)
    return tree.result()
