"""Ablation: Classic vs PortLess flow definition on the testbed (§2.1, §5.4).

FIAT's rules use PortLess "given its superior performance": devices keep
talking to the same domains while rotating ephemeral ports and
load-balanced IPs, which fragments Classic 6-tuple buckets.  This bench
quantifies the gap on the simulated testbed.
"""

import numpy as np

from repro.net import FlowDefinition, TrafficClass
from repro.predictability import analyze_trace

from benchmarks._helpers import print_table


def test_ablation_flow_definition(benchmark, testbed_household):
    trace = testbed_household.trace
    dns = testbed_household.cloud.dns

    portless = benchmark.pedantic(
        lambda: analyze_trace(trace, FlowDefinition.PORTLESS, dns=dns),
        rounds=1,
        iterations=1,
    )
    classic = analyze_trace(trace, FlowDefinition.CLASSIC, dns=dns)

    rows = []
    gaps = []
    for device in sorted(portless.devices):
        p = portless.devices[device].class_fraction(TrafficClass.CONTROL) or 0.0
        c = classic.devices[device].class_fraction(TrafficClass.CONTROL) or 0.0
        gaps.append(p - c)
        rows.append((device, f"{p:.3f}", f"{c:.3f}", f"{p - c:+.3f}"))
    print_table(
        "Ablation — Classic vs PortLess on testbed control traffic "
        "(paper: PortLess superior, deployed by FIAT)",
        ("device", "PortLess", "Classic", "gap"),
        rows,
    )

    # PortLess dominates on (almost) every device and clearly on average.
    assert np.mean(gaps) > 0.0
    assert min(gaps) > -0.02
