"""Unit tests for the predictability analyzer (Fig 1b/1c/2 machinery)."""

import numpy as np
import pytest

from repro.net import FlowDefinition, Trace, TrafficClass
from repro.predictability import analyze_trace, cdf, max_predictable_intervals
from tests.conftest import make_packet


def _mixed_trace():
    periodic = [
        make_packet(timestamp=float(t), device="devA") for t in range(0, 200, 10)
    ]
    noise = [
        make_packet(
            timestamp=float(t) + 0.5,
            size=1000 + t,
            device="devA",
            traffic_class=TrafficClass.MANUAL,
        )
        for t in range(0, 50, 13)
    ]
    other = [make_packet(timestamp=float(t), size=77, device="devB") for t in range(0, 60, 5)]
    return Trace(periodic + noise + other)


class TestAnalyzeTrace:
    def test_per_device_fractions(self):
        report = analyze_trace(_mixed_trace())
        assert set(report.devices) == {"devA", "devB"}
        assert report.fraction_for("devB") == 1.0
        assert 0.5 < report.fraction_for("devA") < 1.0

    def test_class_breakdown(self):
        report = analyze_trace(_mixed_trace())
        entry = report.devices["devA"]
        assert entry.class_fraction(TrafficClass.CONTROL) == 1.0
        assert entry.class_fraction(TrafficClass.MANUAL) == 0.0
        assert entry.class_fraction(TrafficClass.AUTOMATED) is None

    def test_fractions_list(self):
        report = analyze_trace(_mixed_trace())
        assert len(report.fractions()) == 2

    def test_empty_device_fraction(self):
        report = analyze_trace(Trace([]))
        assert report.fractions() == []


class TestMaxIntervals:
    def test_constant_period_interval(self):
        trace = Trace([make_packet(timestamp=float(t)) for t in range(0, 100, 10)])
        intervals = max_predictable_intervals(trace)
        assert len(intervals) == 1
        assert pytest.approx(10.0, abs=0.01) == list(intervals.values())[0]

    def test_unpredictable_flows_absent(self, rng):
        packets = [
            make_packet(timestamp=float(t), size=int(rng.integers(100, 5000)))
            for t in range(0, 40, 7)
        ]
        assert max_predictable_intervals(Trace(packets)) == {}

    def test_gap_recorded(self):
        # Periodic flow with a long hole in the middle.
        times = list(range(0, 50, 10)) + list(range(300, 350, 10))
        trace = Trace([make_packet(timestamp=float(t)) for t in times])
        intervals = max_predictable_intervals(trace)
        assert max(intervals.values()) >= 250.0


class TestCdf:
    def test_basic_shape(self):
        x, y = cdf([3.0, 1.0, 2.0])
        assert list(x) == [1.0, 2.0, 3.0]
        assert list(y) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        x, y = cdf([])
        assert len(x) == 0 and len(y) == 0

    def test_monotone(self, rng):
        x, y = cdf(rng.normal(size=50))
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(y) > 0)
