"""The controller phone: companion apps, interactions and sensor capture.

Models the Samsung Galaxy S10 of the NJ testbed / the IL user's phone.
Each IoT device has a companion app package; a
:class:`ManualInteraction` bundles what happens when the user operates
one: the app comes to the foreground (detected by FIAT's accessibility
service), the motion sensors record the touch (or record stillness when
the "interaction" is actually ADB automation or an attacker), and the
corresponding manual IoT traffic is emitted shortly after.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..sensors.motion import MotionKind, synthesize_window

__all__ = ["APP_PACKAGES", "ManualInteraction", "Phone"]

#: Companion app package per testbed device.
APP_PACKAGES: Dict[str, str] = {
    "EchoDot4": "com.amazon.dee.app",
    "EchoDot3": "com.amazon.dee.app",
    "HomeMini": "com.google.android.apps.chromecast.app",
    "Home": "com.google.android.apps.chromecast.app",
    "WyzeCam": "com.hualai",
    "SP10": "com.smartlife.teckin",
    "Nest-E": "com.nest.android",
    "E4": "com.roborock.smart",
    "Blink": "com.immediasemi.android.blink",
    "WP3": "com.gosund.smart",
}


@dataclass
class ManualInteraction:
    """One user (or pretend-user) operation of a companion app."""

    device: str
    app_package: str
    start: float
    duration_s: float
    human: bool
    sensor_window: np.ndarray


class Phone:
    """Generates interactions with companion apps, with sensor ground truth.

    Parameters
    ----------
    seed:
        Seed for motion synthesis and interaction durations.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def interact(
        self,
        device: str,
        start: float,
        human: bool = True,
        intensity: Optional[float] = None,
    ) -> ManualInteraction:
        """Operate ``device``'s companion app starting at ``start``.

        ``human=False`` models an attacker or ADB automation: the app may
        be in foreground but the phone does not move.  ``intensity``
        overrides the touch strength (low values create the borderline
        windows behind validator false rejections).
        """
        package = APP_PACKAGES.get(device, f"com.example.{device.lower()}")
        duration = float(self._rng.uniform(0.8, 2.5))
        kind = MotionKind.HUMAN if human else MotionKind.NON_HUMAN
        if intensity is None:
            if human and self._rng.random() < 0.12:
                # A gentle interaction (phone on a table, light taps):
                # the borderline windows behind the validator's ~0.93
                # human recall in Table 6.
                intensity = float(self._rng.uniform(0.02, 0.12))
            elif human:
                intensity = float(self._rng.uniform(0.5, 1.5))
            else:
                intensity = 1.0
        window = synthesize_window(
            kind, duration_s=min(duration, 1.2), intensity=intensity, rng=self._rng
        )
        return ManualInteraction(
            device=device,
            app_package=package,
            start=start,
            duration_s=duration,
            human=human,
            sensor_window=window,
        )
