"""Equivalence and state tests for the exact snapshot merge tree.

The fleet aggregate now folds shard snapshots through
:class:`repro.obs.mergetree.SnapshotMergeTree` instead of the linear
``MetricsSnapshot.merge`` fold.  The contract these tests pin down:

* the tree renders byte-identically to the exact linear accumulator
  fold over the same ordered shard sequence, for *any* values and any
  tree shape (exact rational addition is associative);
* for integral-valued shards — every production counter and histogram
  count — the tree is also byte-identical to the *old float* fold, so
  swapping the fold for the tree changed no committed report bytes;
* serialising the tree mid-stream and resuming reproduces the
  uninterrupted result bit for bit (the checkpoint path);
* group trees absorbed in range order (shard → group → fleet) equal
  the flat tree over the concatenated sequence (the multi-machine
  merge-final step).
"""

import json
import random

import pytest

from repro.obs.mergetree import (
    SnapshotAccumulator,
    SnapshotMergeTree,
    merge_snapshots,
)
from repro.obs.registry import Histogram, MetricsSnapshot

from test_obs_merge_properties import HISTOGRAMS, make_shards


def make_fractional_shard(rng: random.Random, shard_id: int) -> MetricsSnapshot:
    """A shard with awkward fractional values (floats, not integers)."""
    counters = {
        "latency_total_ms": {
            f"device=SP{k}": rng.random() * 10.0 ** rng.randrange(-3, 4)
            for k in range(rng.randrange(1, 4))
        }
    }
    gauges = {"drift": {f"shard={shard_id}": rng.random()}}
    histograms = {}
    for name, boundaries in HISTOGRAMS.items():
        histogram = Histogram(boundaries=boundaries)
        for _ in range(rng.randrange(1, 12)):
            histogram.observe(rng.random() * 30.0)
        histograms[name] = {"": histogram.to_dict()}
    return MetricsSnapshot(counters=counters, gauges=gauges, histograms=histograms)


def make_fractional_shards(seed: int, n: int):
    rng = random.Random(seed)
    return [make_fractional_shard(rng, shard_id) for shard_id in range(n)]


def exact_linear_fold(shards) -> MetricsSnapshot:
    """The reference: exact accumulators folded left to right."""
    acc = SnapshotAccumulator()
    for shard in shards:
        acc = acc.merge(SnapshotAccumulator.from_snapshot(shard))
    return acc.snapshot()


def old_float_fold(shards) -> MetricsSnapshot:
    """The pre-tree implementation the fleet aggregate used."""
    merged = MetricsSnapshot()
    for shard in shards:
        merged = merged.merge(shard)
    return merged


@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize("n", [1, 2, 3, 7, 16])
class TestTreeEquivalence:
    def test_tree_matches_exact_linear_fold_fractional(self, seed, n):
        """Any tree shape == the exact sequential fold, for any floats."""
        shards = make_fractional_shards(seed, n)
        assert merge_snapshots(shards).to_json() == exact_linear_fold(shards).to_json()

    def test_tree_matches_old_float_fold_integral(self, seed, n):
        """For integral shards (production counters/counts) the swap
        from linear float fold to tree changed no report bytes."""
        shards = make_shards(seed, n=n)
        assert merge_snapshots(shards).to_json() == old_float_fold(shards).to_json()


class TestTreeStructure:
    def test_levels_stay_logarithmic(self):
        tree = SnapshotMergeTree()
        for shard in make_fractional_shards(0, 33):
            tree.add(shard)
        assert tree.n_shards == 33
        # 33 shards -> binary 100001 -> at most 6 forest levels.
        assert len(tree._levels) <= 6

    def test_collapse_is_non_destructive(self):
        tree = SnapshotMergeTree()
        for shard in make_fractional_shards(1, 5):
            tree.add(shard)
        first = tree.result().to_json()
        assert tree.result().to_json() == first
        tree.add(make_fractional_shard(random.Random(99), 5))
        assert tree.n_shards == 6

    def test_empty_tree_renders_empty_snapshot(self):
        assert SnapshotMergeTree().result().to_json() == MetricsSnapshot().to_json()

    def test_empty_accumulator_is_identity(self):
        (shard,) = make_fractional_shards(2, 1)
        lifted = SnapshotAccumulator.from_snapshot(shard)
        left = SnapshotAccumulator().merge(lifted)
        right = lifted.merge(SnapshotAccumulator())
        assert left.snapshot().to_json() == shard.to_json()
        assert right.snapshot().to_json() == shard.to_json()

    def test_gauge_last_writer_order_preserved(self):
        """Conflicting gauge series resolve to the *latest* shard no
        matter how the tree groups the sequence."""
        shards = [
            MetricsSnapshot(gauges={"epoch": {"": float(i)}}) for i in range(9)
        ]
        assert merge_snapshots(shards).gauges["epoch"][""] == 8.0

    def test_histogram_boundary_conflict_later_range_wins(self):
        one = Histogram(boundaries=(1.0, 2.0))
        one.observe(0.5)
        two = Histogram(boundaries=(5.0, 50.0))
        two.observe(7.0)
        shards = [
            MetricsSnapshot(histograms={"h": {"": one.to_dict()}}),
            MetricsSnapshot(histograms={"h": {"": two.to_dict()}}),
        ]
        merged = merge_snapshots(shards).histogram("h")
        assert merged is not None
        assert list(merged.boundaries) == [5.0, 50.0]
        assert merged.count == 1 and merged.sum == 7.0


class TestTreeState:
    @pytest.mark.parametrize("cut", [0, 1, 3, 6])
    def test_state_roundtrip_midstream_is_bit_identical(self, cut):
        """Checkpoint the tree after ``cut`` shards, resume, finish:
        same bytes as the uninterrupted run."""
        shards = make_fractional_shards(5, 7)
        uninterrupted = merge_snapshots(shards)

        tree = SnapshotMergeTree()
        for shard in shards[:cut]:
            tree.add(shard)
        state = json.loads(json.dumps(tree.to_state()))  # through JSON
        resumed = SnapshotMergeTree.from_state(state)
        for shard in shards[cut:]:
            resumed.add(shard)
        assert resumed.n_shards == len(shards)
        assert resumed.result().to_json() == uninterrupted.to_json()

    def test_state_format_guard(self):
        with pytest.raises(ValueError):
            SnapshotMergeTree.from_state({"format": 99, "levels": []})

    def test_accumulator_state_keeps_rationals_exact(self):
        shards = make_fractional_shards(6, 3)
        acc = SnapshotMergeTree()
        for shard in shards:
            acc.add(shard)
        collapsed = acc.collapse()
        state = json.loads(json.dumps(collapsed.to_state()))
        restored = SnapshotAccumulator.from_state(state)
        assert restored.snapshot().to_json() == collapsed.snapshot().to_json()
        # The state encodes exact rationals, not rounded floats.
        series = state["counters"]["latency_total_ms"]
        assert all("/" in value for value in series.values())


class TestAbsorb:
    @pytest.mark.parametrize("splits", [(3, 4), (1, 1, 5), (2, 2, 2, 1)])
    def test_group_trees_equal_flat_tree(self, splits):
        """shard -> group -> fleet == flat fold over the sequence."""
        shards = make_fractional_shards(7, sum(splits))
        flat = merge_snapshots(shards)

        fleet = SnapshotMergeTree()
        offset = 0
        for size in splits:
            group = SnapshotMergeTree()
            for shard in shards[offset : offset + size]:
                group.add(shard)
            fleet.absorb(group)
            offset += size
        assert fleet.n_shards == len(shards)
        assert fleet.result().to_json() == flat.to_json()

    def test_absorb_empty_tree_is_noop(self):
        shards = make_fractional_shards(8, 3)
        tree = SnapshotMergeTree()
        for shard in shards:
            tree.add(shard)
        before = tree.result().to_json()
        tree.absorb(SnapshotMergeTree())
        assert tree.n_shards == 3
        assert tree.result().to_json() == before

    def test_absorb_through_state_shipping(self):
        """The multi-machine path: groups serialise, ship, absorb."""
        shards = make_fractional_shards(9, 6)
        flat = merge_snapshots(shards)
        groups = []
        for lo in (0, 2, 4):
            group = SnapshotMergeTree()
            for shard in shards[lo : lo + 2]:
                group.add(shard)
            groups.append(json.dumps(group.to_state()))
        fleet = SnapshotMergeTree()
        for payload in groups:
            fleet.absorb(SnapshotMergeTree.from_state(json.loads(payload)))
        assert fleet.result().to_json() == flat.to_json()
