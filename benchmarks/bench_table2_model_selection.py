"""Table 2: model selection — mean balanced accuracy of 9 classifiers.

The paper sweeps nine model families (with per-family hyperparameter
exploration: NCC/kNN distance metrics, kNN k in 3..15, MLP depth 1..10,
tree depth 2..12) over the labelled unpredictable events of the seven
ML devices, reporting each family's best mean balanced accuracy.
Published ranking: NCC 0.931 > BernoulliNB 0.906 > NN 0.786 >
GaussianNB 0.779 > DT 0.745 > AdaBoost 0.739 > SVC 0.713 > RF 0.706 >
kNN 0.621.
"""

import numpy as np

from repro import ml
from repro.features import event_labels, events_to_matrix

from benchmarks._helpers import ML_DEVICES, print_table

#: Model families with their hyperparameter grids (the paper's sweeps).
MODEL_GRIDS = {
    "Nearest Centroid Classifier": [
        lambda metric=metric: ml.NearestCentroidClassifier(metric=metric)
        for metric in ("euclidean", "manhattan", "chebyshev")
    ],
    "Bernoulli Naive Bayes": [lambda: ml.BernoulliNB()],
    "Neural Network": [
        lambda depth=depth: ml.MLPClassifier(
            hidden_layer_sizes=(128,) * depth, n_epochs=120, seed=0
        )
        for depth in (1, 2, 4, 8)
    ],
    "Gaussian Naive Bayes": [lambda: ml.GaussianNB()],
    "Decision Tree": [
        lambda depth=depth: ml.DecisionTreeClassifier(max_depth=depth)
        for depth in (2, 3, 6, 12)
    ],
    "AdaBoost Classifier": [lambda: ml.AdaBoostClassifier(n_estimators=30, seed=0)],
    "Support Vector Classifier": [lambda: ml.LinearSVC(n_epochs=10, seed=0)],
    "Random Forest": [lambda: ml.RandomForestClassifier(n_estimators=30, seed=0)],
    "K-Nearest Neighbors": [
        lambda k=k: ml.KNeighborsClassifier(n_neighbors=k)
        for k in (3, 5, 9, 15)
    ],
}

#: Published Table 2 values, for the printed comparison.
PAPER_TABLE2 = {
    "Nearest Centroid Classifier": 0.931,
    "Bernoulli Naive Bayes": 0.906,
    "Neural Network": 0.786,
    "Gaussian Naive Bayes": 0.779,
    "Decision Tree": 0.745,
    "AdaBoost Classifier": 0.739,
    "Support Vector Classifier": 0.713,
    "Random Forest": 0.706,
    "K-Nearest Neighbors": 0.621,
}


def _device_matrices(labeled_event_sets):
    matrices = []
    for device in ML_DEVICES:
        events = labeled_event_sets[(device, "US")]
        X = events_to_matrix(events)
        y = event_labels(events)
        matrices.append((device, ml.StandardScaler().fit_transform(X), y))
    return matrices


def test_table2_model_selection(benchmark, labeled_event_sets):
    matrices = _device_matrices(labeled_event_sets)

    def evaluate_family(builders):
        best = 0.0
        for builder in builders:
            scores = [
                ml.cross_validate(builder(), X, y, n_splits=5, seed=0)["mean"]
                for _, X, y in matrices
            ]
            best = max(best, float(np.mean(scores)))
        return best

    # Benchmark the deployed family's evaluation (BernoulliNB).
    bnb_score = benchmark.pedantic(
        lambda: evaluate_family(MODEL_GRIDS["Bernoulli Naive Bayes"]),
        rounds=1,
        iterations=1,
    )

    results = {}
    for family, builders in MODEL_GRIDS.items():
        if family == "Bernoulli Naive Bayes":
            results[family] = bnb_score
        else:
            results[family] = evaluate_family(builders)

    rows = [
        (family, f"{score:.3f}", f"{PAPER_TABLE2[family]:.3f}")
        for family, score in sorted(results.items(), key=lambda kv: -kv[1])
    ]
    print_table(
        "Table 2 — model selection, mean balanced accuracy over 7 devices "
        "(best hyperparameters per family)",
        ("model", "measured", "paper"),
        rows,
    )

    # Shape: NCC and BernoulliNB are strong (>= 0.85) and kNN trails them.
    assert results["Nearest Centroid Classifier"] > 0.85
    assert results["Bernoulli Naive Bayes"] > 0.85
    top_two = {
        "Nearest Centroid Classifier",
        "Bernoulli Naive Bayes",
    }
    for family in top_two:
        assert results[family] >= results["K-Nearest Neighbors"] - 0.05
