"""Latency models behind Table 7 and the delay-tolerance experiment (§6).

Compares two races for each IoT operation:

* the **IoT command path**: companion app -> vendor cloud -> device
  (the "time to first packet" rows).  The command always traverses the
  WAN and pays vendor-cloud processing, which dominates for complex
  devices (Google Home Mini's music command takes ~1.4 s even on LAN);
* the **FIAT authentication path**: app detection + keystore access +
  QUIC transfer to the in-home proxy + ML validation (the "time to
  human validation" rows; sensor sampling overlaps and is excluded).

FIAT wins when the proof arrives before the command's first packet, so
manual traffic is never delayed.  The §6 tolerance experiment further
shows devices survive up to ~2 s of *added* validation delay because
TCP absorbs it via retransmission — modelled by
:func:`command_impaired`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..quic.transport import LAN_PATH, MOBILE_PATH, NetworkPath, Transport, connection_latency

__all__ = [
    "DeviceOperation",
    "TABLE7_OPERATIONS",
    "Scenario",
    "LAN_SCENARIO",
    "MOBILE_SCENARIO",
    "time_to_first_packet",
    "validation_breakdown",
    "command_impaired",
    "TCP_TOLERANCE_S",
]

#: Extra validation delay (seconds) all testbed devices tolerated (§6).
TCP_TOLERANCE_S = 2.0


@dataclass(frozen=True)
class DeviceOperation:
    """One Table-7 row: a device operation and its cloud-side cost."""

    device: str
    operation: str
    #: vendor-cloud processing time for this operation, milliseconds
    cloud_processing_ms: float


#: The four operations measured in Table 7.
TABLE7_OPERATIONS: Tuple[DeviceOperation, ...] = (
    DeviceOperation("WyzeCam", "Get video", 850.0),
    DeviceOperation("SP10", "Turn on/off", 430.0),
    DeviceOperation("EchoDot4", "Play the radio", 360.0),
    DeviceOperation("HomeMini", "Play music", 1150.0),
)


@dataclass(frozen=True)
class Scenario:
    """A usage scenario: where the phone is relative to the home."""

    name: str
    #: path from phone to vendor cloud (always WAN)
    wan_path: NetworkPath
    #: path from phone to the in-home FIAT proxy
    auth_path: NetworkPath


#: Phone on the home WiFi: short hop to the proxy, normal WAN to cloud.
LAN_SCENARIO = Scenario(
    name="lan",
    wan_path=NetworkPath(name="wan-from-lan", base_rtt_ms=48.0, jitter_sigma=0.15),
    auth_path=LAN_PATH,
)

#: Phone on LTE near the home: both legs traverse the mobile network.
MOBILE_SCENARIO = Scenario(
    name="mobile",
    wan_path=NetworkPath(name="wan-from-mobile", base_rtt_ms=210.0, jitter_sigma=0.35),
    auth_path=MOBILE_PATH,
)


def time_to_first_packet(
    operation: DeviceOperation,
    scenario: Scenario,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Milliseconds from command issue to the first packet at the device.

    The command pays: TLS-secured request to the vendor cloud (~1.5 RTT
    of the phone's WAN path), cloud-side processing, and the push from
    cloud to device over the home's WAN link.
    """
    rng = rng if rng is not None else np.random.default_rng()
    request = 1.5 * scenario.wan_path.sample_rtt(rng)
    processing = float(operation.cloud_processing_ms * rng.lognormal(0.0, 0.08))
    push = float(max(40.0, rng.normal(120.0, 20.0)))
    return request + processing + push


def validation_breakdown(
    scenario: Scenario,
    transport: Transport = Transport.QUIC_0RTT,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, float]:
    """Per-component FIAT authentication latency (ms), Table-7 rows.

    Components: ``app_detection``, ``sensor_sampling`` (measured but not
    on the critical path), ``secure_storage``, ``transport``
    (QUIC 0-RTT / 1-RTT / TCP), ``ml_validation`` and the derived
    ``time_to_validation`` (everything except sensor sampling).
    """
    rng = rng if rng is not None else np.random.default_rng()
    components = {
        "app_detection": float(max(30.0, rng.normal(75.0, 9.0))),
        "sensor_sampling": float(max(60.0, rng.normal(250.0, 7.0))),
        "secure_storage": float(max(20.0, rng.normal(50.0, 4.0))),
        "transport": connection_latency(transport, scenario.auth_path, rng),
        "ml_validation": float(max(0.5, rng.normal(2.3, 0.3))),
    }
    components["time_to_validation"] = (
        components["app_detection"]
        + components["secure_storage"]
        + components["transport"]
        + components["ml_validation"]
    )
    return components


def command_impaired(
    added_validation_delay_s: float,
    tolerance_s: float = TCP_TOLERANCE_S,
) -> bool:
    """Whether added validation delay breaks the device's command.

    The proxy holds event packets until validation completes; TCP at
    the endpoints absorbs the extra RTT via timeout + retransmission up
    to ``tolerance_s``, past which commands start failing (§6's
    empirical two-second threshold).
    """
    return added_validation_delay_s > tolerance_s
