"""FIAT: Frictionless Authentication of IoT Traffic — full reproduction.

Reproduces Xiao & Varvello, CoNEXT 2022 (DOI 10.1145/3555050.3569126):
a third-party mechanism that authorizes IoT traffic by learning its
predictable portion and validating human presence behind unpredictable
manual events.

Subpackages
-----------
``repro.net``
    Packet / flow / DNS / trace substrate.
``repro.predictability``
    The §2.1 bucket heuristic and the measurement analyses.
``repro.events``
    Unpredictable-event grouping and ground-truth labelling.
``repro.features``
    66 packet-event features and 48 motion-sensor features.
``repro.ml``
    From-scratch NumPy classifiers (all Table-2 models) + CV + metrics.
``repro.sensors``
    Synthetic accelerometer/gyroscope traces and humanness detection.
``repro.crypto``
    TEE-like keystore, pairing, signing, replay protection.
``repro.quic``
    Transport latency models (TCP / QUIC 1-RTT / QUIC 0-RTT) + channel.
``repro.testbed``
    The 10-device testbed simulator (Table 1) and attacker models.
``repro.datasets``
    Synthetic YourThings / Mon(IoT)r / IoT-Inspector-like corpora.
``repro.core``
    The FIAT system: client app, IoT proxy, accuracy and latency models.
``repro.obs``
    Zero-dependency observability: metrics, tracing, audit stream.
``repro.fleet``
    Sharded multi-home fleet simulation with process-pool workers.
"""

import logging as _logging

__version__ = "1.0.0"

# Library convention: never emit log records unless the application
# configures handlers (the CLI does, via --verbose/--quiet).
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

from . import (  # noqa: F401,E402  (re-export for discoverability)
    core,
    crypto,
    datasets,
    events,
    features,
    fleet,
    ml,
    net,
    obs,
    predictability,
    quic,
    scenarios,
    sensors,
    testbed,
    viz,
)

__all__ = [
    "net",
    "predictability",
    "events",
    "features",
    "ml",
    "sensors",
    "crypto",
    "quic",
    "testbed",
    "datasets",
    "core",
    "obs",
    "scenarios",
    "viz",
    "__version__",
]
