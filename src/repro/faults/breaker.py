"""Circuit breaker guarding flaky FIAT components.

The proxy must keep making access decisions when a per-device classifier
or the humanness validation service misbehaves.  A
:class:`CircuitBreaker` wraps such calls with the classic three-state
protocol: CLOSED passes traffic through and counts consecutive
failures; after ``failure_threshold`` failures it OPENs and the caller
switches to its degraded policy without paying for doomed calls; after
``recovery_timeout_s`` the next request becomes a HALF_OPEN *probe* — a
success closes the breaker (recovery), a failure re-opens it and restarts
the timer.  The breaker is purely time-driven off the simulated clock
passed by the caller, so fault experiments stay deterministic.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from ..obs import NULL_OBS, Observability

__all__ = ["BreakerState", "CircuitBreaker"]

#: Version of the serialised state schema (see :meth:`CircuitBreaker.to_state`).
_STATE_VERSION = 1


class BreakerState(enum.Enum):
    """State of a circuit breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: Gauge encoding of breaker states for the metrics registry.
_STATE_GAUGE = {
    BreakerState.CLOSED: 0.0,
    BreakerState.HALF_OPEN: 1.0,
    BreakerState.OPEN: 2.0,
}


class CircuitBreaker:
    """Consecutive-failure circuit breaker with timed recovery probes."""

    def __init__(
        self,
        name: str = "",
        failure_threshold: int = 3,
        recovery_timeout_s: float = 60.0,
        obs: Optional[Observability] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_timeout_s < 0:
            raise ValueError("recovery_timeout_s must be non-negative")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_timeout_s = recovery_timeout_s
        self.state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self.n_opens = 0
        self.n_probes = 0
        self.n_recoveries = 0
        self.n_rejected = 0
        self._obs = obs if obs is not None else NULL_OBS
        self._obs.gauge("breaker_state", 0.0, component=name or "anonymous")

    def _transition(self, transition: str) -> None:
        component = self.name or "anonymous"
        self._obs.inc("breaker_transitions_total", component=component, transition=transition)
        self._obs.gauge("breaker_state", _STATE_GAUGE[self.state], component=component)

    def allow_request(self, now: float) -> bool:
        """Whether the caller should attempt the protected call at ``now``.

        While OPEN, requests are rejected until the recovery timeout
        elapses; the first request after that transitions to HALF_OPEN
        and is allowed through as a probe.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if (
                self._opened_at is not None
                and now - self._opened_at >= self.recovery_timeout_s
            ):
                self.state = BreakerState.HALF_OPEN
                self.n_probes += 1
                self._transition("probe")
                return True
            self.n_rejected += 1
            self._transition("reject")
            return False
        # HALF_OPEN: the probe call is in flight; in this synchronous
        # simulation each call resolves immediately, so further requests
        # are themselves probes.
        self.n_probes += 1
        return True

    def record_success(self, now: float) -> bool:
        """Report a successful call; returns ``True`` on recovery.

        Recovery means the breaker was not CLOSED (a probe succeeded or
        the component healed before the breaker tripped fully).
        """
        recovered = self.state is not BreakerState.CLOSED
        self.state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = None
        if recovered:
            self.n_recoveries += 1
            self._transition("close")
        return recovered

    def record_failure(self, now: float) -> bool:
        """Report a failed call; returns ``True`` when the breaker opens.

        A failure during HALF_OPEN (a failed probe) re-opens immediately
        and restarts the recovery timer.
        """
        self._consecutive_failures += 1
        should_open = (
            self.state is BreakerState.HALF_OPEN
            or self._consecutive_failures >= self.failure_threshold
        )
        if should_open:
            newly_opened = self.state is not BreakerState.OPEN
            self.state = BreakerState.OPEN
            self._opened_at = now
            if newly_opened:
                self.n_opens += 1
                self._transition("open")
            return newly_opened
        return False

    # -- durable state ------------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """Serialise to a JSON-native dict (versioned schema).

        Losing breaker state on restart would silently close an open
        breaker and hammer a component that was known to be down — the
        restored proxy must resume the same degraded-mode posture.
        """
        return {
            "v": _STATE_VERSION,
            "name": self.name,
            "failure_threshold": self.failure_threshold,
            "recovery_timeout_s": self.recovery_timeout_s,
            "state": self.state.value,
            "consecutive_failures": self._consecutive_failures,
            "opened_at": self._opened_at,
            "n_opens": self.n_opens,
            "n_probes": self.n_probes,
            "n_recoveries": self.n_recoveries,
            "n_rejected": self.n_rejected,
        }

    @classmethod
    def from_state(
        cls, state: Dict[str, object], obs: Optional[Observability] = None
    ) -> "CircuitBreaker":
        """Rebuild a breaker from :meth:`to_state` output."""
        if state.get("v") != _STATE_VERSION:
            raise ValueError(f"unsupported CircuitBreaker state version: {state.get('v')!r}")
        breaker = cls(
            name=str(state["name"]),
            failure_threshold=int(state["failure_threshold"]),
            recovery_timeout_s=float(state["recovery_timeout_s"]),
            obs=obs,
        )
        breaker.state = BreakerState(state["state"])
        breaker._consecutive_failures = int(state["consecutive_failures"])
        opened_at = state["opened_at"]
        breaker._opened_at = None if opened_at is None else float(opened_at)
        breaker.n_opens = int(state["n_opens"])
        breaker.n_probes = int(state["n_probes"])
        breaker.n_recoveries = int(state["n_recoveries"])
        breaker.n_rejected = int(state["n_rejected"])
        return breaker
