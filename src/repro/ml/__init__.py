"""Mini-ML library: from-scratch NumPy versions of the paper's classifiers.

Replaces scikit-learn, which is unavailable offline.  Implements every
model in the paper's Table 2 plus the shared preprocessing, metrics,
cross-validation and permutation-importance machinery.
"""

from .base import Classifier, check_X, check_Xy, clone
from .ensemble import AdaBoostClassifier, RandomForestClassifier
from .inspection import (
    manual_f1_scorer,
    permutation_importance,
    rank_features,
    sampling_shapley_importance,
)
from .metrics import (
    accuracy_score,
    balanced_accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_recall_f1,
)
from .model_selection import (
    StratifiedKFold,
    cross_val_score,
    cross_validate,
    grid_search,
    train_test_split,
)
from .naive_bayes import BernoulliNB, GaussianNB
from .nearest import KNeighborsClassifier, NearestCentroidClassifier, pairwise_distances
from .persistence import load_model, save_model
from .neural import MLPClassifier
from .preprocessing import LabelEncoder, StandardScaler
from .recurrent import SimpleRNNClassifier, pad_sequences
from .svm import LinearSVC
from .tree import DecisionTreeClassifier

__all__ = [
    "Classifier",
    "clone",
    "check_X",
    "check_Xy",
    "NearestCentroidClassifier",
    "KNeighborsClassifier",
    "pairwise_distances",
    "BernoulliNB",
    "GaussianNB",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "AdaBoostClassifier",
    "LinearSVC",
    "MLPClassifier",
    "SimpleRNNClassifier",
    "pad_sequences",
    "StandardScaler",
    "LabelEncoder",
    "StratifiedKFold",
    "train_test_split",
    "cross_validate",
    "cross_val_score",
    "grid_search",
    "save_model",
    "load_model",
    "accuracy_score",
    "balanced_accuracy_score",
    "precision_recall_f1",
    "f1_score",
    "confusion_matrix",
    "classification_report",
    "permutation_importance",
    "manual_f1_scorer",
    "rank_features",
    "sampling_shapley_importance",
]
