"""Trace-ID propagation and the observability behaviour-neutrality contract.

The two load-bearing invariants of ``repro.obs``:

* one trace ID, minted when the app signs a humanness proof, survives
  every retransmission of that proof and is queryable from the audit
  stream all the way to the proxy decision it backed;
* attaching a fully enabled :class:`~repro.obs.Observability` handle
  changes nothing about behaviour — ``FiatProxy.decision_log()`` is
  byte-identical with observability on or off, even under an active
  fault plan.
"""

from repro.core import FiatConfig, FiatSystem
from repro.faults import FaultPlan
from repro.obs import MemoryAuditSink, Observability, events_for_trace

DEVICES = ["SP10"]


def _run(obs=None, loss_rate=0.0, n_manual=20):
    system = FiatSystem(
        DEVICES, config=FiatConfig(bootstrap_s=0.0, obs=obs), seed=0
    )
    system.run_accuracy(
        n_manual=n_manual,
        n_non_manual=5,
        n_attacks=2,
        faults=FaultPlan(seed=7, loss_rate=loss_rate),
    )
    return system


def _audited_run(loss_rate=0.0, n_manual=20):
    sink = MemoryAuditSink()
    obs = Observability(audit=sink)
    system = _run(obs=obs, loss_rate=loss_rate, n_manual=n_manual)
    return system, sink.records


class TestByteIdentity:
    def test_decision_log_identical_with_obs_on_and_off(self):
        plain = _run(obs=None)
        instrumented = _run(obs=Observability(audit=MemoryAuditSink()))
        log = plain.proxy.decision_log()
        assert log == instrumented.proxy.decision_log()
        assert len(log) > 100  # the comparison is not vacuous

    def test_decision_log_identical_under_faults(self):
        plain = _run(obs=None, loss_rate=0.3)
        instrumented = _run(obs=Observability(), loss_rate=0.3)
        assert plain.proxy.decision_log() == instrumented.proxy.decision_log()

    def test_event_decisions_carry_no_obs_fields(self):
        # EventDecision is the determinism surface: instrumenting must
        # not widen it (trace IDs live only in metrics/audit records).
        from repro.core.proxy import EventDecision

        fields = set(EventDecision.__dataclass_fields__)
        assert not {f for f in fields if "trace" in f or "obs" in f}


class TestTraceMinting:
    def test_sequential_ids_are_seeded_not_wall_clock(self):
        from repro.obs import TraceIdMinter

        a = TraceIdMinter(seed=3)
        b = TraceIdMinter(seed=3)
        ids = [a.mint("proof") for _ in range(5)]
        assert ids == [b.mint("proof") for _ in range(5)]
        assert len(set(ids)) == 5
        assert all(i.startswith("proof-") for i in ids)
        assert a.n_minted == 5

    def test_disabled_handle_mints_empty_sentinel(self):
        assert Observability(enabled=False).mint_trace("proof") == ""


class TestTracePropagation:
    def test_retransmissions_share_the_proof_trace(self):
        """Under 30 % proof loss some proofs need several attempts; every
        attempt of one proof must carry the trace minted at signing."""
        _, records = _audited_run(loss_rate=0.3)
        attempts_by_trace = {}
        for r in records:
            if r["kind"] == "proof.attempt":
                attempts_by_trace.setdefault(r["trace"], []).append(r)
        retransmitted = {
            t: rs for t, rs in attempts_by_trace.items() if len(rs) >= 2
        }
        assert retransmitted, "loss rate produced no retransmissions"
        signed_traces = {r["trace"] for r in records if r["kind"] == "proof.signed"}
        acked_traces = {r["kind"] == "proof.acked" and r["trace"] for r in records}
        for trace, attempts in retransmitted.items():
            assert trace in signed_traces
            # attempt numbers increase while the trace stays fixed
            numbers = [r["attempt"] for r in attempts]
            assert numbers == sorted(numbers)
        assert any(t in acked_traces for t in retransmitted)

    def test_proof_trace_links_send_to_proxy_decision(self):
        """events_for_trace(proof_id) returns the full chain: the proof
        send, its acceptance, and the proxy decision it authorized."""
        _, records = _audited_run()
        linked = [
            r
            for r in records
            if r["kind"] == "proxy.decision" and r.get("proof_trace")
        ]
        assert linked, "no decision was linked to a humanness proof"
        decision = linked[0]
        chain = events_for_trace(records, decision["proof_trace"])
        kinds = [r["kind"] for r in chain]
        assert "proof.signed" in kinds
        assert "channel.accept" in kinds
        assert "validation.registered" in kinds
        assert kinds[-1] == "proxy.decision"
        # chain is one proof's story: all records agree on the trace
        for r in chain:
            assert decision["proof_trace"] in (r.get("trace"), r.get("proof_trace"))
        # and the linked decisions were allowed human-backed manual events
        assert decision["action"] == "allow"
        assert decision["human_backed"] is True

    def test_audit_times_are_simulated_not_wall_clock(self):
        system, records = _audited_run()
        horizon = max(d.start for d in system.proxy.decisions) + 3600.0
        for r in records:
            if "t" in r:
                assert 0.0 <= r["t"] <= horizon

    def test_disabled_obs_emits_nothing(self):
        sink = MemoryAuditSink()
        _run(obs=Observability(enabled=False, audit=sink))
        assert sink.records == []
