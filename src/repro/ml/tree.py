"""CART decision tree classifier (Gini impurity).

Used three ways in the reproduction, as in the paper:

* stand-alone manual-event classifier (Table 2 sweeps ``max_depth`` 2-12,
  best at 3);
* base learner of the random forest and AdaBoost ensembles;
* the 9-layer humanness-validation model borrowed from zkSENSE (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

import numpy as np

from .base import Classifier, check_X, check_Xy

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    """One tree node; leaves carry class-count distributions."""

    counts: np.ndarray
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


class DecisionTreeClassifier(Classifier):
    """Binary CART tree grown greedily on Gini impurity decrease.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (``None`` = unbounded).
    min_samples_split:
        Minimum samples required to consider splitting a node.
    min_samples_leaf:
        Minimum samples each child must retain.
    max_features:
        Number of features examined per split: ``None`` (all),
        ``"sqrt"``, or an int.  Random forests pass ``"sqrt"``.
    seed:
        Seed for the per-split feature subsampling.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Any = None,
        seed: Optional[int] = None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: Optional[_Node] = None

    # -- training -----------------------------------------------------------------

    def _n_features_per_split(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        return max(1, min(int(self.max_features), n_features))

    def _best_split(
        self, X: np.ndarray, y_idx: np.ndarray, features: np.ndarray, n_classes: int
    ) -> Optional[tuple]:
        parent_counts = np.bincount(y_idx, minlength=n_classes)
        parent_gini = _gini(parent_counts)
        n = len(y_idx)
        best = None
        best_gain = 1e-12
        for feature in features:
            order = np.argsort(X[:, feature], kind="mergesort")
            values = X[order, feature]
            labels = y_idx[order]
            left = np.zeros(n_classes)
            right = parent_counts.astype(float).copy()
            for i in range(n - 1):
                left[labels[i]] += 1
                right[labels[i]] -= 1
                if values[i] == values[i + 1]:
                    continue
                n_left = i + 1
                n_right = n - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                gain = parent_gini - (
                    n_left * _gini(left) + n_right * _gini(right)
                ) / n
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float((values[i] + values[i + 1]) / 2.0))
        return best

    def _grow(
        self,
        X: np.ndarray,
        y_idx: np.ndarray,
        depth: int,
        n_classes: int,
        rng: np.random.Generator,
    ) -> _Node:
        counts = np.bincount(y_idx, minlength=n_classes).astype(float)
        node = _Node(counts=counts)
        if (
            len(y_idx) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.count_nonzero(counts) <= 1
        ):
            return node
        n_features = X.shape[1]
        k = self._n_features_per_split(n_features)
        if k < n_features:
            features = rng.choice(n_features, size=k, replace=False)
        else:
            features = np.arange(n_features)
        split = self._best_split(X, y_idx, features, n_classes)
        if split is None:
            return node
        node.feature, node.threshold = split
        mask = X[:, node.feature] <= node.threshold
        node.left = self._grow(X[mask], y_idx[mask], depth + 1, n_classes, rng)
        node.right = self._grow(X[~mask], y_idx[~mask], depth + 1, n_classes, rng)
        return node

    def fit(self, X: Any, y: Any) -> "DecisionTreeClassifier":
        """Grow the tree on ``(X, y)``."""
        X, y = check_Xy(X, y)
        y_idx = self._store_classes(y)
        rng = np.random.default_rng(self.seed)
        self._root = self._grow(X, y_idx, depth=0, n_classes=len(self.classes_), rng=rng)
        return self

    # -- inference ----------------------------------------------------------------

    def _leaf_for(self, x: np.ndarray) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node

    def predict_proba(self, X: Any) -> np.ndarray:
        """Class distribution of the leaf each sample lands in."""
        if self._root is None:
            raise RuntimeError("classifier must be fitted before predict")
        X = check_X(X)
        proba = np.empty((X.shape[0], len(self.classes_)))
        for i, x in enumerate(X):
            counts = self._leaf_for(x).counts
            total = counts.sum()
            proba[i] = counts / total if total else 1.0 / len(counts)
        return proba

    @property
    def depth(self) -> int:
        """Actual depth of the grown tree (0 = a single leaf)."""

        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("classifier must be fitted first")
        return walk(self._root)

    @property
    def n_leaves(self) -> int:
        """Number of leaves in the grown tree."""

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        if self._root is None:
            raise RuntimeError("classifier must be fitted first")
        return walk(self._root)
