"""Crash/chaos harness: sweep random crash points, assert recovery invariants.

The harness builds one deterministic workload (bootstrap heartbeats that
become allow rules, then manual / automated / attack / control events
with their signed humanness proofs), runs it once uninterrupted as the
baseline, then replays it many times under randomly drawn
:class:`~repro.faults.CrashWindow` schedules — kill the proxy mid-run,
optionally corrupt the journal tail, restart through
:class:`~repro.recovery.RecoveryManager` — and checks, per trial:

* **log equality modulo downtime** — the recovered run's decision log
  equals the uninterrupted run's outside an exclusion window around the
  outage (inputs that arrived while the proxy was dead are gone; events
  interrupted mid-decision are reconciled fail-closed; the first
  heartbeat after restart strays into an unpredictable event because its
  inter-arrival gap spans the outage);
* **no replayed proof accepted post-restart** — re-sending the last
  pre-crash proof wire after recovery must not register a new validated
  interaction (the restored replay cache or the freshness window rejects
  it — either way the QUIC 0-RTT replay window stays closed across the
  crash);
* **deterministic recovery** — periodically, the same crashed trial is
  run twice from scratch and must produce byte-identical decision logs.

The workload is built *once* and shared by every run: proof wires are
signed by the pairing keystore, which models keys living in the TEE —
they survive a process death, so a restarted proxy must verify the same
wires.  Trained models (humanness validator, event classifiers) likewise
persist on disk and are shared; only volatile memory is rebuilt, via the
system's stack factory.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..faults.plan import CrashWindow
from ..net.packet import Direction, Packet, TrafficClass
from .manager import RecoveryManager, RecoveryReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pipeline imports us)
    from ..core.pipeline import FiatSystem

__all__ = ["ChaosTrial", "ChaosReport", "build_chaos_workload", "chaos_sweep"]

#: Exclusion window padding before the recovery horizon: must cover the
#: longest event that can be open (or torn off the journal tail) when
#: the crash hits, plus the event gap that would have closed it.
PRE_GUARD_S = 45.0
#: Exclusion window padding after restart: covers the stray heartbeat
#: event caused by the downtime-spanning inter-arrival gap.
POST_GUARD_S = 15.0


@dataclass(frozen=True)
class _Op:
    """One timed workload input: a packet, a proof wire, or an unlock."""

    t: float
    kind: str  # "pkt" | "auth" | "unlock"
    packet: Optional[Packet] = None
    wire: bytes = b""
    device: str = ""


@dataclass
class ChaosTrial:
    """Outcome of one randomized crash/restart cycle."""

    index: int
    crash: CrashWindow
    ok: bool
    failure: str = ""
    #: "replay" / "stale" when the post-restart probe was rejected for
    #: that reason, "none" when no proof preceded the crash.
    replay_probe: str = "none"
    n_replayed: int = 0
    snapshot_epoch: int = 0
    torn_tail: bool = False
    n_reconciled: int = 0
    n_compared: int = 0
    n_excluded_baseline: int = 0
    n_excluded_recovered: int = 0
    #: whether the double-run determinism check ran and what it found
    determinism_checked: bool = False
    deterministic: Optional[bool] = None
    #: state dir kept for post-mortem when the trial failed ("" = removed)
    state_dir: str = ""


@dataclass
class ChaosReport:
    """Aggregate result of a crash sweep."""

    n_trials: int
    n_ok: int
    n_corrupted_tail: int
    n_torn_tails_seen: int
    trials: List[ChaosTrial] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every trial upheld every invariant."""
        return self.n_ok == self.n_trials

    def failures(self) -> List[ChaosTrial]:
        """The failing trials, for artifact dumps."""
        return [t for t in self.trials if not t.ok]


# -- workload -------------------------------------------------------------------


def build_chaos_workload(
    system: "FiatSystem",
    duration_s: float = 240.0,
    heartbeat_s: float = 5.0,
    event_spacing_s: float = 40.0,
    seed: int = 0,
) -> List[_Op]:
    """Build the deterministic input schedule shared by every run.

    Each device sends a strictly periodic heartbeat from t=0 (learned
    into an allow rule during bootstrap), then cycles through
    manual-with-proof, automated, attack-with-stolen-proof and control
    events.  Attacks are followed by an unlock, mirroring the §6
    experiment's per-attempt isolation.  Proof wires are signed now, by
    the shared keystore, and delivered as opaque bytes in every run.
    """
    config = system.config
    rng = np.random.default_rng(seed)
    ops: List[_Op] = []

    for i, profile in enumerate(system.profiles):
        t = 0.5 + 0.05 * i
        while t < duration_s:
            ops.append(
                _Op(
                    t=t,
                    kind="pkt",
                    packet=Packet(
                        timestamp=t,
                        size=96 + 16 * i,
                        src_ip=f"192.168.1.{20 + i}",
                        dst_ip=f"172.16.{i}.1",
                        src_port=40000 + i,
                        dst_port=443,
                        protocol="tcp",
                        direction=Direction.OUTBOUND,
                        device=profile.name,
                        traffic_class=TrafficClass.CONTROL,
                    ),
                )
            )
            t += heartbeat_s

    def proof_ops(device: str, when: float, human: bool) -> List[_Op]:
        interaction = system.phone.interact(device, when, human=human)
        attempt = system.app.authenticate(interaction, when)
        arrive = when + attempt.components["transport"] / 1000.0
        return [_Op(t=arrive, kind="auth", wire=attempt.wire, device=device)]

    cycle = ("manual", "automated", "attack", "control")
    t = config.bootstrap_s + 10.0
    k = 0
    while t < duration_s - 20.0:
        profile = system.profiles[k % len(system.profiles)]
        phase = cycle[(k // len(system.profiles)) % len(cycle)]
        if phase == "manual":
            ops.extend(proof_ops(profile.name, t - 0.5, human=True))
            traffic_class = TrafficClass.MANUAL
        elif phase == "attack":
            # Spyware-captured still-phone proof (§5.1's strongest attacker).
            ops.extend(proof_ops(profile.name, t - 0.5, human=False))
            traffic_class = TrafficClass.ATTACK
        else:
            traffic_class = (
                TrafficClass.AUTOMATED if phase == "automated" else TrafficClass.CONTROL
            )
        for packet in system._event_packets(
            profile, traffic_class, t, int(rng.integers(0, 2**31))
        ):
            ops.append(_Op(t=packet.timestamp, kind="pkt", packet=packet))
        if phase == "attack":
            ops.append(_Op(t=t + event_spacing_s / 2.0, kind="unlock", device=profile.name))
        t += event_spacing_s
        k += 1

    ops.sort(key=lambda op: op.t)
    return ops


# -- runs -----------------------------------------------------------------------


def _apply(proxy: object, op: _Op) -> None:
    if op.kind == "pkt":
        proxy.process(op.packet)  # type: ignore[attr-defined]
    elif op.kind == "auth":
        proxy.receive_auth(op.wire, op.t)  # type: ignore[attr-defined]
    elif op.kind == "unlock":
        proxy.unlock(op.device)  # type: ignore[attr-defined]
    else:  # pragma: no cover - _Op construction is local
        raise ValueError(f"unknown op kind {op.kind!r}")


def run_uninterrupted(ops: Sequence[_Op], factory: Callable[[], Tuple[object, object]]):
    """Run the workload on a fresh stack with no crash; return the proxy."""
    proxy, _validation = factory()
    for op in ops:
        _apply(proxy, op)
    proxy.flush()  # type: ignore[attr-defined]
    return proxy


def run_crashed(
    ops: Sequence[_Op],
    factory: Callable[[], Tuple[object, object]],
    state_dir: str,
    crash: CrashWindow,
    snapshot_interval_s: float,
    fsync: bool = False,
    reconcile: str = "fail-closed",
):
    """Run the workload with a journaling manager and one crash/restart.

    Returns ``(proxy, report, probe_outcome)`` where ``probe_outcome``
    is how the post-restart replayed-proof probe was rejected ("replay"
    / "stale" / "none"), or raises ``AssertionError`` when a replayed
    proof registers — the invariant the sweep exists to enforce.
    """
    manager = RecoveryManager(
        state_dir,
        factory,
        snapshot_interval_s=snapshot_interval_s,
        fsync=fsync,
        reconcile=reconcile,
    )
    proxy, validation = factory()
    manager.start(proxy, validation, now=0.0)

    crashed = False
    report: Optional[RecoveryReport] = None
    probe = "none"
    last_wire: Optional[bytes] = None
    for op in ops:
        if not crashed and op.t >= crash.at:
            manager.simulate_crash(corrupt_tail_bytes=crash.corrupt_tail_bytes)
            proxy, validation, report = manager.recover(restart_t=crash.restart_at)
            crashed = True
            if last_wire is not None:
                probe = _probe_replay(proxy, validation, last_wire, crash.restart_at)
        if crashed and crash.at <= op.t < crash.restart_at:
            continue  # the input arrived while the proxy was dead
        if op.kind == "pkt":
            manager.journal_packet(op.packet)  # type: ignore[arg-type]
        elif op.kind == "auth":
            manager.journal_auth(op.wire, op.t)
            if not crashed:
                last_wire = op.wire
        else:
            manager.journal_unlock(op.device, op.t)
        _apply(proxy, op)
        manager.maybe_checkpoint(op.t)
    proxy.flush()  # type: ignore[attr-defined]
    manager.close()
    if report is None:
        raise ValueError(f"crash at t={crash.at} fell outside the workload span")
    return proxy, report, probe


def _probe_replay(proxy: object, validation: object, wire: bytes, now: float) -> str:
    """Re-send a pre-crash proof wire post-restart; it must not register."""
    receiver = validation.receiver  # type: ignore[attr-defined]
    before_rejections = len(receiver.rejections)
    before_interactions = len(validation._interactions)  # type: ignore[attr-defined]
    result = proxy.receive_auth(wire, now)  # type: ignore[attr-defined]
    # ingest() opportunistically prunes expired interactions, so the
    # registry may *shrink*; the invariant is that nothing new registers.
    if result is not None or len(validation._interactions) > before_interactions:  # type: ignore[attr-defined]
        raise AssertionError("replayed proof accepted after crash recovery")
    new = receiver.rejections[before_rejections:]
    if "replay" in new:
        return "replay"
    if "stale" in new:
        return "stale"
    return new[-1] if new else "rejected"


# -- comparison -----------------------------------------------------------------


def _split_decisions(decisions, lo: float, hi: float, reconciled_ids=frozenset()):
    """Partition decisions into (comparable, excluded) around the outage.

    A decision is excluded when its event *started* inside ``[lo, hi]``
    (``lo`` sits :data:`PRE_GUARD_S` before the recovery horizon, ``hi``
    sits :data:`POST_GUARD_S` after restart — covering inputs lost with
    the process, the torn journal tail, and the stray heartbeat event
    whose inter-arrival gap spans the downtime), or when it belongs to an
    event the recovery reconciled fail-closed: an event can stay open
    arbitrarily long (until its device's next unpredictable packet), so a
    crash can interrupt — and deliberately drop — an event that started
    well before any fixed window.  The same event ids are excluded from
    the baseline so the remaining sequences stay aligned.
    """
    comparable, excluded = [], []
    for d in decisions:
        out = (
            lo <= d.start <= hi
            or (d.degraded is not None and "recovery:fail-closed" in d.degraded)
            or (d.event_id is not None and d.event_id in reconciled_ids)
        )
        (excluded if out else comparable).append(asdict(d))
    return comparable, excluded


# -- the sweep ------------------------------------------------------------------


def chaos_sweep(
    system: "FiatSystem",
    n_trials: int = 50,
    seed: int = 0,
    duration_s: float = 240.0,
    downtime_range: Tuple[float, float] = (1.0, 12.0),
    corrupt_fraction: float = 0.3,
    determinism_every: int = 10,
    state_root: Optional[str] = None,
    keep_failed: bool = True,
) -> ChaosReport:
    """Sweep randomized crash points over one deterministic workload.

    ``corrupt_fraction`` of the trials additionally flip the tail of the
    active journal segment before restart (a torn, un-synced page).
    Every ``determinism_every``-th trial is run twice from scratch and
    must reproduce a byte-identical decision log.  Failing trials keep
    their state directory (journal + snapshots) plus both decision logs
    on disk for post-mortem when ``keep_failed`` is set.

    The ``system``'s config should use a generous ``lockout_threshold``:
    a crash adds at most one stray blocked event between unlocks, which
    must not tip one run (and not the other) over the lockout edge —
    lockouts are sticky and would diverge the logs far past the outage.
    """
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    config = system.config
    ops = build_chaos_workload(system, duration_s=duration_s, seed=seed)
    factory = system.build_stack
    baseline = run_uninterrupted(ops, factory)
    baseline_decisions = list(baseline.decisions)

    own_root = state_root is None
    root = state_root or tempfile.mkdtemp(prefix="fiat-chaos-")
    os.makedirs(root, exist_ok=True)
    rng = np.random.default_rng([seed, n_trials])
    span_lo = 10.0
    span_hi = duration_s - 30.0

    trials: List[ChaosTrial] = []
    n_corrupted = 0
    n_torn_seen = 0
    for i in range(n_trials):
        crash_at = float(rng.uniform(span_lo, span_hi))
        downtime = float(rng.uniform(*downtime_range))
        corrupt = int(rng.integers(1, 200)) if rng.random() < corrupt_fraction else 0
        crash = CrashWindow(at=crash_at, downtime_s=downtime, corrupt_tail_bytes=corrupt)
        if corrupt:
            n_corrupted += 1
        trial_dir = os.path.join(root, f"trial-{i:03d}")
        trial = ChaosTrial(index=i, crash=crash, ok=False)
        try:
            proxy, report, probe = run_crashed(
                ops,
                factory,
                os.path.join(trial_dir, "state"),
                crash,
                snapshot_interval_s=config.snapshot_interval_s,
                fsync=config.journal_fsync,
                reconcile=config.recovery_reconcile,
            )
            trial.replay_probe = probe
            trial.n_replayed = report.n_replayed
            trial.snapshot_epoch = report.snapshot_epoch
            trial.torn_tail = report.torn_tail
            trial.n_reconciled = report.n_reconciled
            if report.torn_tail:
                n_torn_seen += 1

            horizon = min(
                report.horizon_t if report.horizon_t is not None else crash.at, crash.at
            )
            lo, hi = horizon - PRE_GUARD_S, crash.restart_at + POST_GUARD_S
            reconciled = [
                d
                for d in proxy.decisions
                if d.degraded is not None and "recovery:fail-closed" in d.degraded
            ]
            for d in reconciled:
                # Reconciliation may only touch events interrupted by THIS
                # crash — a fail-closed drop of anything else is a bug.
                if d.start > crash.at:
                    raise AssertionError(
                        f"fail-closed reconciliation hit an event that started "
                        f"after the crash (start={d.start}, crash at {crash.at})"
                    )
            reconciled_ids = frozenset(
                d.event_id for d in reconciled if d.event_id is not None
            )
            base_cmp, base_excl = _split_decisions(
                baseline_decisions, lo, hi, reconciled_ids
            )
            rec_cmp, rec_excl = _split_decisions(proxy.decisions, lo, hi, reconciled_ids)
            trial.n_compared = len(base_cmp)
            trial.n_excluded_baseline = len(base_excl)
            trial.n_excluded_recovered = len(rec_excl)
            if rec_cmp != base_cmp:
                raise AssertionError(
                    f"decision logs diverge outside the outage window [{lo:.1f}, {hi:.1f}]: "
                    f"{len(base_cmp)} baseline vs {len(rec_cmp)} recovered comparable decisions"
                )

            if determinism_every > 0 and i % determinism_every == 0:
                trial.determinism_checked = True
                proxy2, report2, _probe2 = run_crashed(
                    ops,
                    factory,
                    os.path.join(trial_dir, "state-repeat"),
                    crash,
                    snapshot_interval_s=config.snapshot_interval_s,
                    fsync=config.journal_fsync,
                    reconcile=config.recovery_reconcile,
                )
                trial.deterministic = (
                    proxy2.decision_log() == proxy.decision_log()
                    and report2.n_replayed == report.n_replayed
                    and report2.snapshot_epoch == report.snapshot_epoch
                )
                if not trial.deterministic:
                    raise AssertionError("same seed + same crash produced different logs")
            trial.ok = True
        except Exception as exc:  # noqa: BLE001 - every failure becomes a trial record
            trial.failure = f"{type(exc).__name__}: {exc}"
            if keep_failed:
                trial.state_dir = trial_dir
                os.makedirs(trial_dir, exist_ok=True)
                with open(os.path.join(trial_dir, "baseline-decisions.json"), "w") as fh:
                    fh.write(baseline.decision_log().decode("utf-8"))
        if trial.ok and os.path.isdir(trial_dir):
            shutil.rmtree(trial_dir, ignore_errors=True)
        trials.append(trial)

    report = ChaosReport(
        n_trials=n_trials,
        n_ok=sum(t.ok for t in trials),
        n_corrupted_tail=n_corrupted,
        n_torn_tails_seen=n_torn_seen,
        trials=trials,
    )
    if own_root and report.ok:
        shutil.rmtree(root, ignore_errors=True)
    return report
