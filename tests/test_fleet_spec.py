"""Tests for fleet specifications: derivation, validation, round-trips."""

import json

import pytest

from repro.fleet import FleetSpec, HomeSpec, generate_fleet, home_seed
from repro.util import spawn_seed


def _home(home_id="h1", **kwargs):
    kwargs.setdefault("devices", ("SP10",))
    kwargs.setdefault("seed", home_seed(0, home_id))
    return HomeSpec(home_id=home_id, **kwargs)


class TestHomeSpec:
    def test_requires_devices(self):
        with pytest.raises(ValueError, match="at least one device"):
            HomeSpec(home_id="h", devices=(), seed=1)

    def test_rejects_unknown_devices(self):
        with pytest.raises(ValueError, match="unknown devices"):
            HomeSpec(home_id="h", devices=("Toaster9000",), seed=1)

    def test_rejects_bad_poison(self):
        with pytest.raises(ValueError, match="poison"):
            _home(poison="explode")

    def test_rejects_negative_volumes(self):
        with pytest.raises(ValueError, match="non-negative"):
            _home(n_manual=-1)

    def test_dict_round_trip(self):
        home = _home(faults={"seed": 3, "loss_rate": 0.1}, n_manual=9)
        assert HomeSpec.from_dict(home.to_dict()) == home


class TestHomeSeedDerivation:
    def test_hash_derived_not_offsets(self):
        assert home_seed(0, "home-0001") == spawn_seed(0, "home", "home-0001")
        assert home_seed(0, "home-0001") != 1

    def test_adjacent_fleet_seeds_do_not_collide(self):
        seeds = {
            home_seed(fleet_seed, f"home-{i:04d}")
            for fleet_seed in range(5)
            for i in range(50)
        }
        assert len(seeds) == 5 * 50


class TestFleetSpec:
    def test_rejects_duplicate_home_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            FleetSpec(homes=(_home("a"), _home("a")))

    def test_json_round_trip(self):
        spec = generate_fleet(5, seed=9, fault_fraction=0.5)
        assert FleetSpec.from_json(spec.to_json()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = generate_fleet(3, seed=2)
        path = str(tmp_path / "fleet.json")
        spec.dump(path)
        assert FleetSpec.load(path) == spec

    def test_missing_seed_filled_with_derived(self):
        document = {
            "name": "f",
            "seed": 4,
            "homes": [{"home_id": "home-x", "devices": ["SP10"]}],
        }
        spec = FleetSpec.from_json(json.dumps(document))
        assert spec.homes[0].seed == home_seed(4, "home-x")


class TestGenerateFleet:
    def test_deterministic(self):
        assert generate_fleet(6, seed=1).to_json() == generate_fleet(6, seed=1).to_json()

    def test_seed_changes_fleet(self):
        assert generate_fleet(6, seed=1).to_json() != generate_fleet(6, seed=2).to_json()

    def test_homes_are_varied(self):
        spec = generate_fleet(12, seed=0)
        assert len({home.n_manual for home in spec.homes}) > 1
        assert len({home.attack_with_proof for home in spec.homes}) > 1

    def test_fault_fraction(self):
        clean = generate_fleet(10, seed=0)
        faulty = generate_fleet(10, seed=0, fault_fraction=1.0)
        assert all(h.faults is None for h in clean.homes)
        assert all(h.faults is not None for h in faulty.homes)

    def test_home_seeds_unique(self):
        spec = generate_fleet(40, seed=0)
        seeds = [home.seed for home in spec.homes]
        assert len(set(seeds)) == len(seeds)

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            generate_fleet(0)
