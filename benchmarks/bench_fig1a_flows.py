"""Figure 1(a): predictable flows of the Bose SoundTouch 10 over 30 min.

The paper visualises 8 highly predictable TCP/UDP flows of the Bose
SoundTouch as observed in YourThings.  This bench renders the same
30-minute capture from the SoundTouch profile, reports the per-flow
packet series (count, period, predictability), and benchmarks the §2.1
labelling pass that produces the figure.
"""

from collections import defaultdict

from repro.net import FlowDefinition
from repro.predictability import label_predictable
from repro.testbed import BOSE_SOUNDTOUCH, Household, HouseholdConfig

from benchmarks._helpers import print_table


def _soundtouch_trace():
    config = HouseholdConfig(duration_s=1800.0, seed=2, manual_interval_s=(1e9, 2e9))
    household = Household([BOSE_SOUNDTOUCH], config)
    # Fig 1(a) shows only the periodic flows: disable routines too.
    household.profiles[0] = household.profiles[0]
    result = household.simulate()
    return result


def test_fig1a_soundtouch_flows(benchmark):
    result = _soundtouch_trace()
    trace = result.trace

    labels = benchmark.pedantic(
        lambda: label_predictable(trace, FlowDefinition.PORTLESS, dns=result.cloud.dns),
        rounds=3,
        iterations=1,
    )

    per_flow = defaultdict(lambda: [0, 0])
    from repro.net.flows import portless_key

    for packet, predictable in zip(trace, labels):
        key = portless_key(packet, result.cloud.dns)
        per_flow[key][0] += 1
        per_flow[key][1] += int(predictable)

    rows = []
    for key, (total, predictable) in sorted(per_flow.items(), key=lambda kv: -kv[1][0]):
        _, remote, direction, proto, size = key
        rows.append(
            (
                f"{remote}",
                direction,
                proto,
                f"{size}B",
                total,
                f"{predictable / total:.2f}",
            )
        )
    print_table(
        "Fig 1(a) — Bose SoundTouch flows over 30 min "
        "(paper: 8 highly predictable TCP/UDP flows)",
        ("remote", "dir", "proto", "size", "packets", "predictable"),
        rows,
    )

    periodic_rows = [r for r in rows if r[4] >= 10]
    assert len(periodic_rows) >= 8, "the SoundTouch must expose >= 8 recurring flows"
    assert all(float(r[5]) > 0.9 for r in periodic_rows)
