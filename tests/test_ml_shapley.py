"""Unit tests for the sampling Shapley feature importances (§7 future work)."""

import numpy as np
import pytest

from repro.ml import GaussianNB, sampling_shapley_importance


def _dataset(seed=0, n=240):
    rng = np.random.default_rng(seed)
    strong = rng.normal(size=n)
    weak = 0.4 * strong + rng.normal(scale=1.0, size=n)
    noise = rng.normal(size=(n, 2))
    X = np.column_stack([strong, weak, noise])
    y = (strong > 0).astype(int)
    return X, y


class TestShapley:
    @pytest.fixture(scope="class")
    def result(self):
        X, y = _dataset()
        model = GaussianNB().fit(X, y)
        return (
            sampling_shapley_importance(model, X, y, n_permutations=15, seed=0),
            model,
            X,
            y,
        )

    def test_strong_feature_dominates(self, result):
        values = result[0]["shapley_mean"]
        assert np.argmax(values) == 0

    def test_noise_near_zero(self, result):
        values = result[0]["shapley_mean"]
        assert np.all(np.abs(values[2:]) < 0.08)

    def test_efficiency_property(self, result):
        """Shapley values sum to score(full) - score(all-shuffled)."""
        shap, model, X, y = result
        rng = np.random.default_rng(0)
        shuffled = X.copy()
        for feature in range(X.shape[1]):
            rng.shuffle(shuffled[:, feature])
        gap_estimate = shap["shapley_mean"].sum()
        full = model.score(X, y)
        # the all-shuffled baseline hovers near chance (0.5)
        assert abs(gap_estimate - (full - 0.5)) < 0.15

    def test_invalid_permutations(self):
        X, y = _dataset()
        model = GaussianNB().fit(X, y)
        with pytest.raises(ValueError):
            sampling_shapley_importance(model, X, y, n_permutations=0)

    def test_input_untouched(self):
        X, y = _dataset()
        X_copy = X.copy()
        model = GaussianNB().fit(X, y)
        sampling_shapley_importance(model, X, y, n_permutations=3, seed=1)
        assert np.array_equal(X, X_copy)

    def test_agrees_with_permutation_importance_ranking(self, result):
        from repro.ml import permutation_importance

        shap, model, X, y = result
        perm = permutation_importance(model, X, y, n_repeats=10, seed=0)
        assert np.argmax(perm["importances_mean"]) == np.argmax(shap["shapley_mean"])
