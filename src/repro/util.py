"""Small shared utilities: stable, collision-free seed derivation.

Historically the simulator derived component seeds with ad-hoc integer
offsets (``CloudDirectory(seed=seed + 1)``, ``Phone(seed=seed + 2)``,
...).  That convention breaks down the moment *many* sibling systems run
side by side: home ``i``'s phone stream (``i + 2``) is byte-identical to
home ``i + 1``'s cloud stream (``i + 2``), so adjacent-seed households
share RNG streams across components — exactly the correlation a
population experiment must not have.

:func:`spawn_seed` replaces the offsets with a cryptographic-hash
derivation: a child seed is ``SHA-256(root, *path)`` truncated to 63
bits.  Children of different roots or different label paths land in
unrelated points of the seed space, the mapping is stable across
processes and platforms (independent of ``PYTHONHASHSEED``), and the
label path documents *which* stream a consumer owns.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["spawn_seed"]


def spawn_seed(root: int, *path: object) -> int:
    """Derive a child seed from ``root`` and a label path, collision-free.

    The path elements (strings, ints, device names, home IDs, ...) are
    canonically JSON-encoded together with the root and hashed with
    SHA-256; the first 8 bytes (shifted to 63 bits so the value stays a
    non-negative ``int64``) become the child seed.  Unlike ``root + k``
    offsets, children of adjacent roots never coincide::

        spawn_seed(0, "phone") != spawn_seed(1, "cloud")   # offsets collided here

    Deterministic across processes — safe to use inside process-pool
    workers that must reproduce the serial run bit-for-bit.
    """
    message = json.dumps(
        [int(root), *[str(p) for p in path]], separators=(",", ":")
    ).encode("utf-8")
    digest = hashlib.sha256(message).digest()
    return int.from_bytes(digest[:8], "big") >> 1
