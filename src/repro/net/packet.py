"""Packet model for the FIAT reproduction.

FIAT operates passively on network traffic: it never inspects payloads,
only header-level metadata (arrival time, size, addressing, transport
protocol, TCP flags, and the TLS record version when present).  The
:class:`Packet` dataclass carries exactly that metadata, plus ground-truth
annotations (owning device, traffic class, event id) that the simulator
knows but the FIAT proxy is never allowed to read.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional


class Direction(enum.Enum):
    """Direction of a packet relative to the IoT device that owns it."""

    #: Sent by the IoT device towards the cloud / phone.
    OUTBOUND = "out"
    #: Received by the IoT device from the cloud / phone.
    INBOUND = "in"

    def flipped(self) -> "Direction":
        """Return the opposite direction."""
        return Direction.INBOUND if self is Direction.OUTBOUND else Direction.OUTBOUND


class TrafficClass(enum.Enum):
    """Ground-truth traffic category used throughout the paper.

    * ``CONTROL``   -- software-generated keep-alive / telemetry traffic.
    * ``AUTOMATED`` -- traffic triggered by user-configured routines
      (e.g. IFTTT, "turn on the heat at 6pm").
    * ``MANUAL``    -- traffic caused by a human physically interacting
      with a companion app.
    * ``ATTACK``    -- traffic injected by an adversary (only produced by
      the attack simulator; the paper treats it as illegitimate manual
      traffic).
    """

    CONTROL = "control"
    AUTOMATED = "automated"
    MANUAL = "manual"
    ATTACK = "attack"


#: TLS record versions observed on the wire, encoded as small integers.
#: ``TLS_NONE`` means the packet carries no TLS record (plain TCP/UDP).
TLS_NONE = 0
TLS_1_0 = 10
TLS_1_1 = 11
TLS_1_2 = 12
TLS_1_3 = 13

#: Common TCP flag bits (subset sufficient for feature extraction).
TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10


@dataclass(frozen=True)
class Packet:
    """A single observed packet.

    Attributes mirror what a passive on-path monitor (the FIAT proxy)
    can see.  ``device``, ``traffic_class`` and ``event_id`` are
    ground-truth annotations added by the simulator for evaluation; the
    FIAT decision pipeline must not use them.
    """

    timestamp: float
    size: int
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: str  # "tcp" | "udp"
    direction: Direction
    device: str = ""
    tcp_flags: int = 0
    tls_version: int = TLS_NONE
    traffic_class: TrafficClass = TrafficClass.CONTROL
    event_id: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"packet size must be non-negative, got {self.size}")
        if self.protocol not in ("tcp", "udp"):
            raise ValueError(f"unsupported protocol {self.protocol!r}")
        if not (0 <= self.src_port <= 65535 and 0 <= self.dst_port <= 65535):
            raise ValueError("ports must be in [0, 65535]")

    @property
    def remote_ip(self) -> str:
        """IP address of the non-device endpoint."""
        return self.dst_ip if self.direction is Direction.OUTBOUND else self.src_ip

    @property
    def remote_port(self) -> int:
        """Port of the non-device endpoint."""
        return self.dst_port if self.direction is Direction.OUTBOUND else self.src_port

    @property
    def device_ip(self) -> str:
        """IP address of the IoT device endpoint."""
        return self.src_ip if self.direction is Direction.OUTBOUND else self.dst_ip

    @property
    def is_tls(self) -> bool:
        """Whether the packet carries a TLS record."""
        return self.tls_version != TLS_NONE

    def with_timestamp(self, timestamp: float) -> "Packet":
        """Return a copy of this packet shifted to ``timestamp``."""
        return replace(self, timestamp=timestamp)

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a plain dict (JSON friendly)."""
        return {
            "timestamp": self.timestamp,
            "size": self.size,
            "src_ip": self.src_ip,
            "dst_ip": self.dst_ip,
            "src_port": self.src_port,
            "dst_port": self.dst_port,
            "protocol": self.protocol,
            "direction": self.direction.value,
            "device": self.device,
            "tcp_flags": self.tcp_flags,
            "tls_version": self.tls_version,
            "traffic_class": self.traffic_class.value,
            "event_id": self.event_id,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Packet":
        """Inverse of :meth:`to_dict`."""
        return cls(
            timestamp=float(data["timestamp"]),
            size=int(data["size"]),
            src_ip=str(data["src_ip"]),
            dst_ip=str(data["dst_ip"]),
            src_port=int(data["src_port"]),
            dst_port=int(data["dst_port"]),
            protocol=str(data["protocol"]),
            direction=Direction(data["direction"]),
            device=str(data.get("device", "")),
            tcp_flags=int(data.get("tcp_flags", 0)),
            tls_version=int(data.get("tls_version", TLS_NONE)),
            traffic_class=TrafficClass(data.get("traffic_class", "control")),
            event_id=data.get("event_id"),
        )
