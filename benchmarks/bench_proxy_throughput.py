"""Performance bench: proxy packet-processing throughput.

The paper deploys the proxy on a Raspberry Pi intercepting all home IoT
traffic, so per-packet cost matters.  This bench measures the proxy's
steady-state throughput on a realistic household trace (rule hits
dominating, the unpredictable-event path exercised by the events mixed
in), the bucket heuristic's offline labelling rate, and the cost of the
``repro.obs`` instrumentation layer (budget: <10 % throughput overhead
with a full ``Observability`` handle attached).

Results are also written as a machine-readable
``BENCH_proxy_throughput.json`` (directory from ``FIAT_BENCH_OUT``).
"""

import gc
from time import perf_counter

import numpy as np
import pytest

from repro.core import FiatConfig, FiatProxy, HumanValidationService, train_event_classifier
from repro.crypto import pair
from repro.obs import Observability, write_bench_snapshot
from repro.predictability import label_predictable
from repro.sensors import HumannessValidator
from repro.testbed import APP_PACKAGES, profile_for

from benchmarks._helpers import bench_out_path


def _build_proxy(result, obs=None):
    _, proxy_ks = pair("phone", "proxy", obs=obs)
    classifiers = {}
    for name in result.trace.devices():
        profile = profile_for(name)
        if profile.uses_simple_rules:
            classifiers[name] = train_event_classifier(profile, obs=obs)
    return FiatProxy(
        config=FiatConfig(bootstrap_s=1200.0, obs=obs),
        dns=result.cloud.dns,
        classifiers=classifiers,
        validation=HumanValidationService(
            proxy_ks,
            validator=HumannessValidator(n_train_per_class=60, seed=0).fit(),
            obs=obs,
        ),
        app_for_device=dict(APP_PACKAGES),
    )


@pytest.fixture(scope="module")
def proxy_and_trace(testbed_household):
    result = testbed_household
    proxy = _build_proxy(result)
    packets = list(result.trace)[:20000]
    return proxy, packets


def test_proxy_packet_throughput(benchmark, proxy_and_trace):
    proxy, packets = proxy_and_trace

    def process_all():
        for packet in packets:
            proxy.process(packet)
        return len(packets)

    n = benchmark.pedantic(process_all, rounds=3, iterations=1)
    seconds = benchmark.stats["mean"]
    rate = n / seconds
    print(f"\nproxy throughput: {rate:,.0f} packets/s over {n} packets")
    # A Raspberry-Pi-class deployment needs ~hundreds of packets/s; the
    # pure-Python pipeline must clear that by a wide margin on a laptop.
    assert rate > 5_000


def test_observability_overhead(testbed_household):
    """Full instrumentation must cost <10 % throughput and change nothing.

    Builds twin proxies — one bare, one carrying an enabled
    :class:`~repro.obs.Observability` handle — runs the identical packet
    stream through both (fresh proxies per round, best-of-N timing), and
    checks the two contracts at once: the decision log stays
    byte-identical, and the instrumented throughput stays within the
    10 % overhead budget (sampled hot-path timers, lazily synced packet
    counters).
    """
    result = testbed_household
    packets = list(result.trace)[:20000]
    rounds = 7

    def timed_round(obs):
        proxy = _build_proxy(result, obs=obs)
        gc.collect()
        gc.disable()
        t0 = perf_counter()
        for packet in packets:
            proxy.process(packet)
        elapsed = perf_counter() - t0
        gc.enable()
        proxy.flush()
        return elapsed, proxy

    # Interleave plain/instrumented rounds: CPU frequency scaling can
    # shift machine speed by 2x between two sequential blocks, which
    # would swamp the ratio under measurement.
    plain_s = instr_s = float("inf")
    for _ in range(rounds):
        elapsed, plain_proxy = timed_round(None)
        plain_s = min(plain_s, elapsed)
        elapsed, instr_proxy = timed_round(Observability())
        instr_s = min(instr_s, elapsed)
    overhead = instr_s / plain_s - 1.0
    plain_rate = len(packets) / plain_s
    instr_rate = len(packets) / instr_s
    print(
        f"\nplain {plain_rate:,.0f} pkt/s, instrumented {instr_rate:,.0f} pkt/s "
        f"(overhead {overhead:+.1%})"
    )

    assert plain_proxy.decision_log() == instr_proxy.decision_log()
    snapshot = instr_proxy.metrics_snapshot()
    assert snapshot.counter_total("proxy_packets_total") == len(packets)
    decide = snapshot.histogram("proxy_decide_latency_ms")
    headline = {
        "plain_packets_per_s": round(plain_rate),
        "instrumented_packets_per_s": round(instr_rate),
        "overhead_fraction": round(overhead, 4),
        "n_packets": len(packets),
        "n_dropped": instr_proxy.n_dropped,
        "decide_p95_ms": decide.percentile(0.95) if decide is not None else None,
    }
    write_bench_snapshot(
        bench_out_path("BENCH_proxy_throughput.json"),
        "proxy_throughput",
        headline,
        snapshot=snapshot,
    )
    assert overhead < 0.10


def test_offline_labelling_throughput(benchmark, testbed_household):
    trace = testbed_household.trace

    labels = benchmark.pedantic(
        lambda: label_predictable(trace, dns=testbed_household.cloud.dns),
        rounds=3,
        iterations=1,
    )
    rate = len(trace) / benchmark.stats["mean"]
    print(f"\noffline labelling: {rate:,.0f} packets/s over {len(trace)} packets")
    assert len(labels) == len(trace)
    assert rate > 10_000
