"""Replay protection for QUIC 0-RTT authentication messages (paper §5.3).

QUIC 0-RTT is vulnerable to replay: an adversary can resend a previously
captured early-data packet unmodified.  The paper argues that, because
only a few devices are authorized per household, the IoT proxy can keep
state of all previously seen connections and reject replays.
:class:`ReplayCache` implements that state: a bounded, time-windowed set
of message identifiers (nonce or payload digest); re-observing an
identifier within the window is a replay.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

__all__ = ["ReplayCache"]


class ReplayCache:
    """Time-windowed duplicate detector for authentication messages.

    Parameters
    ----------
    window_seconds:
        How long an identifier stays "hot".  Within the window, a second
        occurrence is flagged as replay; afterwards the identifier is
        evicted (the accompanying freshness timestamp check makes stale
        replays useless anyway).
    max_entries:
        Hard memory bound; the oldest entries are evicted first.
    """

    def __init__(self, window_seconds: float = 600.0, max_entries: int = 100_000) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.window_seconds = window_seconds
        self.max_entries = max_entries
        self._seen: "OrderedDict[str, float]" = OrderedDict()
        self.n_replays_detected = 0

    def _evict(self, now: float) -> None:
        while self._seen:
            _, oldest_time = next(iter(self._seen.items()))
            if now - oldest_time > self.window_seconds or len(self._seen) > self.max_entries:
                self._seen.popitem(last=False)
            else:
                break

    def check_and_register(self, identifier: str, now: float) -> bool:
        """Register an identifier; return ``True`` if it is fresh.

        ``False`` means the identifier was already seen inside the window
        — a replay.  Fresh identifiers are recorded.
        """
        self._evict(now)
        if identifier in self._seen and now - self._seen[identifier] <= self.window_seconds:
            self.n_replays_detected += 1
            return False
        self._seen[identifier] = now
        self._seen.move_to_end(identifier)
        return True

    def __len__(self) -> int:
        return len(self._seen)

    def clear(self) -> None:
        """Drop all state (e.g. on re-pairing)."""
        self._seen.clear()
