"""Unit tests for the deployed per-device event classifier."""

import pytest

from repro.core import EventClassifier, SimpleRuleClassifier, train_event_classifier
from repro.features import event_labels
from repro.testbed import generate_labeled_events, profile_for
from tests.conftest import make_packet


class TestSimpleRules:
    def test_rule_matches_distinctive_size(self):
        rule = SimpleRuleClassifier(manual_size=235)
        assert rule.is_manual_packets([make_packet(size=235)])
        assert not rule.is_manual_packets([make_packet(size=198)])

    def test_rule_empty_event(self):
        assert not SimpleRuleClassifier(235).is_manual_packets([])

    def test_tolerance(self):
        rule = SimpleRuleClassifier(235, tolerance=2)
        assert rule.is_manual_packets([make_packet(size=236)])
        assert not rule.is_manual_packets([make_packet(size=240)])

    def test_rule_device_needs_no_training(self):
        classifier = train_event_classifier(profile_for("SP10"))
        assert classifier.uses_rules
        assert classifier.is_manual([make_packet(size=235)])


class TestMlClassifier:
    @pytest.fixture(scope="class")
    def trained(self, echodot_events):
        return train_event_classifier(profile_for("EchoDot4"), echodot_events)

    def test_requires_training_events(self):
        with pytest.raises(ValueError, match="training events"):
            train_event_classifier(profile_for("EchoDot4"))

    def test_classifies_held_out_events(self, trained):
        events = generate_labeled_events(
            "EchoDot4", n_manual=30, n_automated=30, n_control=30, seed=77
        )
        labels = event_labels(events)
        correct = sum(
            trained.classify_packets(event.first_n(5)) == label
            for event, label in zip(events, labels)
        )
        assert correct / len(events) > 0.8

    def test_is_manual_collapses(self, trained, echodot_events):
        event = next(e for e in echodot_events if e.is_manual)
        assert trained.is_manual(event.first_n(5)) in (True, False)

    def test_constructor_requires_rule_or_model(self):
        with pytest.raises(ValueError):
            EventClassifier(device="x")

    def test_manual_recall_paper_band(self, trained):
        events = generate_labeled_events(
            "EchoDot4", n_manual=60, n_automated=0, n_control=0, seed=88
        )
        hits = sum(trained.is_manual(e.first_n(5)) for e in events)
        # Table 6: manual recall >= 0.92 for every device.
        assert hits / len(events) > 0.8
