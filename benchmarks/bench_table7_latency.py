"""Table 7: latency breakdown — FIAT authentication vs the IoT command.

For the four measured operations (WyzeCam "Get video", SP10 "Turn
on/off", EchoDot "Play the radio", HomeMini "Play music"), on LAN and
mobile scenarios: time to the command's first packet vs FIAT's time to
human validation with QUIC 0-RTT, plus the per-component breakdown (app
detection, sensor sampling, secure storage, QUIC 1-RTT/0-RTT, ML
validation).

Paper headline: FIAT authenticates manual traffic before it arrives —
by >74 % on LAN and >50 % on mobile — and QUIC 0-RTT beats 1-RTT on
both latency and execution time.
"""

import numpy as np

from repro.core import (
    LAN_SCENARIO,
    MOBILE_SCENARIO,
    TABLE7_OPERATIONS,
    time_to_first_packet,
    validation_breakdown,
)
from repro.quic import Transport

from benchmarks._helpers import print_table

N_REPEATS = 40


def _mean(samples):
    return float(np.mean(samples))


def test_table7_latency(benchmark):
    rng = np.random.default_rng(0)

    def sample_all():
        data = {}
        for scenario in (LAN_SCENARIO, MOBILE_SCENARIO):
            components_0rtt = [
                validation_breakdown(scenario, Transport.QUIC_0RTT, rng)
                for _ in range(N_REPEATS)
            ]
            components_1rtt = [
                validation_breakdown(scenario, Transport.QUIC_1RTT, rng)
                for _ in range(N_REPEATS)
            ]
            data[scenario.name] = {
                "first_packet": {
                    op.device: _mean(
                        [time_to_first_packet(op, scenario, rng) for _ in range(N_REPEATS)]
                    )
                    for op in TABLE7_OPERATIONS
                },
                "validation": _mean([c["time_to_validation"] for c in components_0rtt]),
                "app_detection": _mean([c["app_detection"] for c in components_0rtt]),
                "sensor_sampling": _mean([c["sensor_sampling"] for c in components_0rtt]),
                "secure_storage": _mean([c["secure_storage"] for c in components_0rtt]),
                "quic_0rtt": _mean([c["transport"] for c in components_0rtt]),
                "quic_1rtt": _mean([c["transport"] for c in components_1rtt]),
                "ml_validation": _mean([c["ml_validation"] for c in components_0rtt]),
            }
        return data

    data = benchmark.pedantic(sample_all, rounds=1, iterations=1)

    rows = []
    for op in TABLE7_OPERATIONS:
        lan_first = data["lan"]["first_packet"][op.device]
        mob_first = data["mobile"]["first_packet"][op.device]
        rows.append(
            (
                f"{op.device} ({op.operation})",
                f"{lan_first:.0f}/{mob_first:.0f}",
                f"{data['lan']['validation']:.0f}/{data['mobile']['validation']:.0f}",
            )
        )
    component_rows = [
        (
            name,
            f"{data['lan'][key]:.1f}/{data['mobile'][key]:.1f}",
        )
        for name, key in (
            ("App detection", "app_detection"),
            ("Sensor sampling", "sensor_sampling"),
            ("Secure storage access", "secure_storage"),
            ("QUIC (1-RTT)", "quic_1rtt"),
            ("QUIC (0-RTT)", "quic_0rtt"),
            ("ML-based human validation", "ml_validation"),
        )
    ]
    print_table(
        "Table 7 (top) — time to first packet vs time to human validation, "
        "ms LAN/mobile (paper: FIAT always faster; >74 % LAN, >50 % mobile)",
        ("operation", "time to first packet", "time to validation (0-RTT)"),
        rows,
    )
    print_table(
        "Table 7 (bottom) — component breakdown, ms LAN/mobile",
        ("component", "ms LAN/mobile"),
        component_rows,
    )

    # FIAT always wins the race, with the paper's margins.
    for op in TABLE7_OPERATIONS:
        assert data["lan"]["validation"] < 0.3 * data["lan"]["first_packet"][op.device]
        assert data["mobile"]["validation"] < 0.5 * data["mobile"]["first_packet"][op.device]

    # 0-RTT strictly faster than 1-RTT on both paths.
    for scenario in ("lan", "mobile"):
        assert data[scenario]["quic_0rtt"] < data[scenario]["quic_1rtt"]

    # Component magnitudes in the paper's bands.
    assert 15.0 < data["lan"]["quic_0rtt"] < 45.0  # paper: ~21-23 ms
    assert data["lan"]["ml_validation"] < 5.0  # paper: ~2-3 ms
    assert 200.0 < data["lan"]["sensor_sampling"] < 300.0  # paper: ~250 ms
