"""Sharded multi-home fleet simulation with merged observability.

FIAT's evaluation covers one household; the ROADMAP north star is a
population.  This package turns every existing experiment into a
population experiment: a declarative :class:`FleetSpec` describes N
independent homes (device mix, routine intensity, attack mix, fault
plan), a shared-nothing worker runs each home's §6 accuracy experiment
in its own :class:`~repro.core.FiatSystem` (serially or on a process
pool), and the aggregation layer folds the per-home results — accuracy
distribution percentiles, traffic-class confusion totals, alert
rollups, and the merged :class:`~repro.obs.MetricsSnapshot` of all
shards — into one deterministic population report.

Layering: ``spec`` (data) → ``worker`` (one home) → ``runner``
(orchestration) → ``aggregate`` (population report).  Per-home seeds
are hash-derived via :func:`repro.util.spawn_seed`, never ``seed + i``
offsets, so no two homes — and no two components within a home — share
an RNG stream.  The aggregate report is byte-identical across backends
and job counts by contract (CI diffs the bytes).
"""

from .aggregate import FleetReport, aggregate, percentile
from .runner import BACKENDS, FleetRunner
from .spec import FleetSpec, HomeSpec, generate_fleet, home_seed
from .worker import HomeResult, run_home

__all__ = [
    "BACKENDS",
    "FleetReport",
    "FleetRunner",
    "FleetSpec",
    "HomeResult",
    "HomeSpec",
    "aggregate",
    "generate_fleet",
    "home_seed",
    "percentile",
    "run_home",
]
