"""Drift adaptation: FIAT surviving a firmware update (§7 extension).

A device's firmware update introduces a new periodic heartbeat.  The
paper's prototype freezes rules at the end of the 20-minute bootstrap,
so the new flow would be treated as unpredictable forever; the
reproduction's drift-adaptation mode keeps learning, adopts the new
flow on the next refresh and expires rules the device stopped using.

Run:  python examples/drift_adaptation.py
"""

import numpy as np

from repro.core import FiatConfig, FiatProxy, HumanValidationService
from repro.crypto import pair
from repro.net import Direction, Packet
from repro.sensors import HumannessValidator


def heartbeat(size: int, start: float, end: float, period: float = 10.0):
    """A periodic device heartbeat flow."""
    return [
        Packet(
            timestamp=float(t),
            size=size,
            src_ip="192.168.1.10",
            dst_ip="172.8.8.8",
            src_port=40000,
            dst_port=443,
            protocol="tcp",
            direction=Direction.OUTBOUND,
            device="thermostat",
        )
        for t in np.arange(start, end, period)
    ]


def build_proxy(drift: bool) -> FiatProxy:
    _, proxy_ks = pair("phone", "proxy")
    config = FiatConfig(
        bootstrap_s=300.0,
        rule_refresh_s=300.0 if drift else None,
        rule_ttl_s=1200.0 if drift else None,
    )
    return FiatProxy(
        config=config,
        dns=None,
        classifiers={},
        validation=HumanValidationService(
            proxy_ks, validator=HumannessValidator(n_train_per_class=60, seed=0).fit()
        ),
        app_for_device={},
    )


def main() -> None:
    # Timeline: old heartbeat (size 150) during bootstrap and until the
    # firmware update at t=600; then a NEW heartbeat (size 390) replaces it.
    old_flow = heartbeat(150, 0.0, 600.0)
    new_flow = heartbeat(390, 600.0, 2400.0)

    for drift in (False, True):
        proxy = build_proxy(drift)
        for packet in sorted(old_flow + new_flow, key=lambda p: p.timestamp):
            proxy.process(packet)
        proxy.flush()

        # Probe: does the proxy now recognise the new heartbeat as a rule?
        hits = [
            proxy.rules.matches(
                heartbeat(390, t, t + 1.0, period=10.0)[0]
            )
            for t in (2400.0, 2410.0)
        ]
        mode = "drift adaptation ON " if drift else "frozen rules (paper)"
        rules = len(proxy.rules)
        print(
            f"{mode}: rule table has {rules} rule(s); "
            f"new heartbeat recognised: {all(hits)}"
        )

    print(
        "\nWith drift adaptation the proxy adopts the post-update flow at "
        "the next refresh and expires the dead one, keeping the attack "
        "surface minimal without a manual re-bootstrap."
    )


if __name__ == "__main__":
    main()
