"""Checksummed append-only write-ahead journal.

The FIAT proxy is an in-home middlebox: a power cycle must not reset the
security state it accumulated (learned rules, replay cache, validated
interactions, lockouts).  This module provides the durability primitive:
an append-only JSONL journal where every record is framed with a CRC32
of its canonical body::

    <crc32-hex8> <canonical-json-body>\n

Records are written *before* the corresponding state mutation is applied
(write-ahead), so a crash between write and apply is recovered by
re-applying the journal.  The reader is torn-tail tolerant: a record
that is truncated (no trailing newline), fails its CRC, or cannot be
parsed ends the readable prefix — everything after the first bad frame
is discarded, because record ordering past a corruption cannot be
trusted (fail-closed).  :meth:`JournalReader` reports how many bytes of
the file were valid so a writer can truncate the torn tail before
appending again.
"""

from __future__ import annotations

import io
import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["JournalWriter", "JournalReadResult", "read_journal", "frame_record"]

#: Length of the hex CRC prefix plus the separating space.
_FRAME_PREFIX_LEN = 9


def frame_record(record: Dict[str, object]) -> bytes:
    """Render one record as a CRC-framed journal line."""
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    payload = body.encode("utf-8")
    return f"{zlib.crc32(payload):08x} ".encode("ascii") + payload + b"\n"


def _parse_frame(line: bytes) -> Optional[Dict[str, object]]:
    """Decode one framed line; ``None`` when the frame is invalid."""
    if len(line) < _FRAME_PREFIX_LEN or line[_FRAME_PREFIX_LEN - 1 : _FRAME_PREFIX_LEN] != b" ":
        return None
    try:
        expected = int(line[: _FRAME_PREFIX_LEN - 1], 16)
    except ValueError:
        return None
    payload = line[_FRAME_PREFIX_LEN:]
    if zlib.crc32(payload) != expected:
        return None
    try:
        record = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return record if isinstance(record, dict) else None


class JournalWriter:
    """Append-only writer for one journal segment.

    ``fsync=True`` forces the record to stable storage on every append
    (the durable configuration for a real middlebox); the default relies
    on OS buffering, which the crash harness models as journal-tail
    corruption/truncation.
    """

    def __init__(self, path: str, fsync: bool = False, truncate_to: Optional[int] = None) -> None:
        if truncate_to is not None and os.path.exists(path):
            # Resume hook: cut a torn tail (everything past the last
            # valid frame, as reported by :func:`read_journal`) before
            # reopening for append, so the segment stays parseable.
            with open(path, "rb+") as handle:
                handle.truncate(truncate_to)
        self.path = path
        self.fsync = fsync
        self._handle: Optional[io.BufferedWriter] = open(path, "ab")
        self.n_appended = 0
        #: bytes known to be on stable storage (everything past this
        #: offset may be lost or torn by a power cut).
        self.synced_bytes = os.path.getsize(path)

    def append(self, record: Dict[str, object], sync: bool = False) -> int:
        """Frame and append one record; returns the bytes written.

        ``sync=True`` forces this record (and everything before it) to
        stable storage regardless of the writer-level ``fsync`` setting —
        the write-ahead discipline for security-critical records that
        must never be un-happened by a torn tail (e.g. a consumed proof:
        losing its journal record would reopen the replay window).
        """
        if self._handle is None:
            raise ValueError("journal writer is closed")
        frame = frame_record(record)
        self._handle.write(frame)
        self._handle.flush()
        if self.fsync or sync:
            os.fsync(self._handle.fileno())
            self.synced_bytes = os.path.getsize(self.path)
        self.n_appended += 1
        return len(frame)

    @property
    def size_bytes(self) -> int:
        """Current size of the journal file in bytes."""
        return os.path.getsize(self.path)

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalReadResult:
    """The readable prefix of one journal segment."""

    records: List[Dict[str, object]] = field(default_factory=list)
    #: bytes of the file covered by valid frames (truncate-to offset)
    valid_bytes: int = 0
    #: whether the file ended in an invalid/truncated frame
    torn: bool = False
    #: "" | "truncated" | "bad-frame"
    torn_reason: str = ""


def read_journal(path: str) -> JournalReadResult:
    """Read every valid record of a journal segment, tolerating torn tails.

    Missing files read as empty (a crash can hit before the first
    append).  Reading stops at the first invalid frame; ``valid_bytes``
    is the offset up to which the segment may be trusted (and to which a
    recovering writer should truncate before resuming appends).
    """
    result = JournalReadResult()
    if not os.path.exists(path):
        return result
    with open(path, "rb") as handle:
        data = handle.read()
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            result.torn = True
            result.torn_reason = "truncated"
            return result
        record = _parse_frame(data[offset:newline])
        if record is None:
            result.torn = True
            result.torn_reason = "bad-frame"
            return result
        result.records.append(record)
        offset = newline + 1
        result.valid_bytes = offset
    return result
