"""Unit tests for the IFTTT-style routine engine."""

import numpy as np
import pytest

from repro.testbed.routines import (
    DAY_SECONDS,
    ChainTrigger,
    DailyTrigger,
    JitteredDailyTrigger,
    PeriodicTrigger,
    Routine,
    RoutineSchedule,
)


class TestTriggers:
    def test_periodic(self, rng):
        times = PeriodicTrigger(period_s=100.0, phase_s=10.0).firings(350.0, rng)
        assert times == [10.0, 110.0, 210.0, 310.0]

    def test_periodic_invalid(self, rng):
        with pytest.raises(ValueError):
            PeriodicTrigger(period_s=0.0).firings(100.0, rng)

    def test_daily(self, rng):
        times = DailyTrigger(time_of_day_s=3600.0).firings(3 * DAY_SECONDS, rng)
        assert times == [3600.0, 3600.0 + DAY_SECONDS, 3600.0 + 2 * DAY_SECONDS]

    def test_daily_invalid(self, rng):
        with pytest.raises(ValueError):
            DailyTrigger(time_of_day_s=DAY_SECONDS + 1).firings(100.0, rng)

    def test_jittered_daily_drifts(self, rng):
        times = JitteredDailyTrigger(time_of_day_s=64800.0, jitter_s=900.0).firings(
            5 * DAY_SECONDS, rng
        )
        diffs = np.diff(times)
        # never exactly one day apart
        assert not np.any(np.isclose(diffs, DAY_SECONDS, atol=1.0))
        # but always within the jitter envelope
        assert np.all(np.abs(diffs - DAY_SECONDS) <= 1800.0)


class TestSchedule:
    def _schedule(self):
        return RoutineSchedule(
            [
                Routine("heat-at-6", "Nest-E", DailyTrigger(64800.0)),
                Routine("camera-on", "WyzeCam", PeriodicTrigger(period_s=DAY_SECONDS / 2)),
                Routine("upload-clip", "WyzeCam", ChainTrigger(after="camera-on", delay_s=30.0)),
            ]
        )

    def test_expand_per_device(self):
        plan = self._schedule().expand(2 * DAY_SECONDS, seed=0)
        assert set(plan) == {"Nest-E", "WyzeCam"}
        names = [name for name, _ in plan["WyzeCam"]]
        assert "camera-on" in names and "upload-clip" in names

    def test_chain_fires_after_anchor(self):
        plan = self._schedule().expand(2 * DAY_SECONDS, seed=0)
        by_name = {}
        for name, t in plan["WyzeCam"]:
            by_name.setdefault(name, []).append(t)
        for anchor_t, chain_t in zip(by_name["camera-on"], by_name["upload-clip"]):
            assert chain_t == pytest.approx(anchor_t + 30.0)

    def test_sorted_within_device(self):
        plan = self._schedule().expand(3 * DAY_SECONDS, seed=0)
        for device, entries in plan.items():
            times = [t for _, t in entries]
            assert times == sorted(times)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            RoutineSchedule(
                [
                    Routine("x", "a", PeriodicTrigger(10.0)),
                    Routine("x", "b", PeriodicTrigger(10.0)),
                ]
            )

    def test_chain_to_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            RoutineSchedule([Routine("c", "a", ChainTrigger(after="ghost"))])

    def test_chain_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            RoutineSchedule(
                [
                    Routine("a", "d", ChainTrigger(after="b")),
                    Routine("b", "d", ChainTrigger(after="a")),
                ]
            )


class TestHouseholdIntegration:
    def test_schedule_drives_automations(self):
        from dataclasses import replace

        from repro.net import TrafficClass
        from repro.testbed import Household, HouseholdConfig

        schedule = RoutineSchedule(
            [
                Routine("morning", "Nest-E", DailyTrigger(600.0)),
                Routine("evening", "Nest-E", DailyTrigger(1800.0)),
            ]
        )
        household = Household(
            ["Nest-E"],
            HouseholdConfig(duration_s=2 * DAY_SECONDS, seed=2,
                            manual_interval_s=(1e12, 2e12)),
            routine_schedule=schedule,
        )
        # strip heavy control flows to keep the test fast
        household.profiles[0] = replace(
            household.profiles[0], control_flows=(), control_noise_per_hour=0.0
        )
        result = household.simulate()
        assert len(result.log.routines) == 4  # 2 routines x 2 days
        fired_at = sorted(r.timestamp for r in result.log.routines)
        assert fired_at == [600.0, 1800.0, 600.0 + DAY_SECONDS, 1800.0 + DAY_SECONDS]
        automated = [p for p in result.trace if p.traffic_class is TrafficClass.AUTOMATED]
        assert automated


class TestScheduleRepetition:
    def test_daily_routine_fully_repetitive(self):
        schedule = RoutineSchedule([Routine("r", "d", DailyTrigger(3600.0))])
        assert schedule.interval_repetition("r", 10 * DAY_SECONDS) == 1.0

    def test_sunset_routine_unpredictable(self):
        """The §3.2 rationale: dynamic routines never repeat intervals."""
        schedule = RoutineSchedule(
            [Routine("sunset", "d", JitteredDailyTrigger(64800.0, jitter_s=900.0))]
        )
        assert schedule.interval_repetition("sunset", 14 * DAY_SECONDS) < 0.3

    def test_chained_inherits_anchor_repetition(self):
        schedule = RoutineSchedule(
            [
                Routine("anchor", "d", DailyTrigger(3600.0)),
                Routine("chained", "d", ChainTrigger(after="anchor", delay_s=30.0)),
            ]
        )
        assert schedule.interval_repetition("chained", 10 * DAY_SECONDS) == 1.0
