"""Ensemble classifiers: random forest and AdaBoost (SAMME).

Both appear in the paper's Table 2 model sweep (balanced accuracies 0.706
and 0.739 respectively — mid-pack, behind the simpler NCC/BernoulliNB).
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from .base import Classifier, check_X, check_Xy
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier", "AdaBoostClassifier"]


class RandomForestClassifier(Classifier):
    """Bagged CART trees with per-split feature subsampling.

    Each tree is grown on a bootstrap resample of the training set and
    examines ``sqrt(n_features)`` candidate features per split; class
    probabilities are the average of the trees' leaf distributions.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        seed: Optional[int] = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.estimators_: List[DecisionTreeClassifier] = []

    def fit(self, X: Any, y: Any) -> "RandomForestClassifier":
        """Fit ``n_estimators`` trees on bootstrap resamples."""
        X, y = check_Xy(X, y)
        self._store_classes(y)
        rng = np.random.default_rng(self.seed)
        self.estimators_ = []
        n = X.shape[0]
        for _ in range(self.n_estimators):
            sample = rng.integers(0, n, size=n)
            # Guarantee every class appears in the bootstrap so all trees
            # share the same class space.
            present = set(np.unique(y[sample]).tolist())
            missing = [c for c in self.classes_.tolist() if c not in present]
            if missing:
                extras = [int(np.flatnonzero(y == c)[0]) for c in missing]
                sample = np.concatenate([sample, np.asarray(extras, dtype=sample.dtype)])
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features="sqrt",
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[sample], y[sample])
            self.estimators_.append(tree)
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        """Average of per-tree leaf class distributions."""
        if not self.estimators_:
            raise RuntimeError("classifier must be fitted before predict")
        X = check_X(X)
        proba = np.zeros((X.shape[0], len(self.classes_)))
        for tree in self.estimators_:
            proba += tree.predict_proba(X)
        return proba / len(self.estimators_)


class AdaBoostClassifier(Classifier):
    """SAMME boosting over shallow CART trees (decision stumps by default).

    Implements multi-class AdaBoost: each round fits a weak tree on the
    current sample weights (realised by weighted resampling), computes
    the weighted error, and re-weights misclassified samples.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        base_max_depth: int = 1,
        learning_rate: float = 1.0,
        seed: Optional[int] = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.n_estimators = n_estimators
        self.base_max_depth = base_max_depth
        self.learning_rate = learning_rate
        self.seed = seed
        self.estimators_: List[DecisionTreeClassifier] = []
        self.estimator_weights_: List[float] = []

    def fit(self, X: Any, y: Any) -> "AdaBoostClassifier":
        """Run SAMME boosting rounds."""
        X, y = check_Xy(X, y)
        self._store_classes(y)
        n_classes = len(self.classes_)
        rng = np.random.default_rng(self.seed)
        n = X.shape[0]
        weights = np.full(n, 1.0 / n)
        self.estimators_ = []
        self.estimator_weights_ = []
        for _ in range(self.n_estimators):
            sample = rng.choice(n, size=n, replace=True, p=weights)
            if len(np.unique(y[sample])) < 2:
                # Degenerate resample; reset weights slightly and retry once.
                sample = rng.choice(n, size=n, replace=True)
                if len(np.unique(y[sample])) < 2:
                    break
            tree = DecisionTreeClassifier(
                max_depth=self.base_max_depth,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[sample], y[sample])
            predictions = tree.predict(X)
            miss = predictions != y
            error = float(np.sum(weights * miss))
            if error >= 1.0 - 1.0 / n_classes:
                continue  # worse than chance: skip this round
            error = max(error, 1e-10)
            alpha = self.learning_rate * (
                np.log((1.0 - error) / error) + np.log(n_classes - 1.0)
            )
            weights *= np.exp(alpha * miss)
            weights /= weights.sum()
            self.estimators_.append(tree)
            self.estimator_weights_.append(float(alpha))
            if error < 1e-9:
                break
        if not self.estimators_:
            # Fall back to a single unweighted tree so predict still works.
            tree = DecisionTreeClassifier(max_depth=self.base_max_depth, seed=self.seed)
            tree.fit(X, y)
            self.estimators_ = [tree]
            self.estimator_weights_ = [1.0]
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        """Normalised weighted vote shares across boosting rounds."""
        if not self.estimators_:
            raise RuntimeError("classifier must be fitted before predict")
        X = check_X(X)
        scores = np.zeros((X.shape[0], len(self.classes_)))
        class_index = {c: i for i, c in enumerate(self.classes_.tolist())}
        for tree, alpha in zip(self.estimators_, self.estimator_weights_):
            predictions = tree.predict(X)
            for row, label in enumerate(predictions.tolist()):
                scores[row, class_index[label]] += alpha
        totals = scores.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return scores / totals
