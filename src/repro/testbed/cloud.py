"""Cloud endpoints, vendors and locations for the testbed simulator.

Section 3.3 ("Location") observes that devices keep the same
communication *models* across locations but talk to different IPs — and
sometimes different domains (Google Home uses ``google.co.jp`` from
Japan).  This module captures that: each vendor owns per-location
domains; each (vendor, location, service) pair resolves to IPs from a
location-specific prefix pool, so the PortLess flow definition and the
IP-octet features behave exactly as in the paper (domains are stable,
IPs are geolocated noise).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..net.dns import DnsTable

__all__ = ["Location", "CloudDirectory", "Endpoint"]


class Location(enum.Enum):
    """Testbed vantage points (NJ/IL are both "US" for cloud purposes)."""

    US = "US"
    JP = "JP"
    DE = "DE"


#: First octet of cloud IPs per location — geolocation shows up in the
#: IP features (and is then found unimportant, Table 4).
_LOCATION_PREFIX = {Location.US: 172, Location.JP: 35, Location.DE: 18}

#: Country-code TLD substitutions applied to vendor domains per location.
_LOCATION_TLD = {Location.US: "com", Location.JP: "co.jp", Location.DE: "de"}

#: Well-known remote port per cloud service.  Vendors run push relays and
#: media services on dedicated ports (e.g. Google's 5228 push port), so
#: port features carry real signal — as the paper's feature set assumes.
_SERVICE_PORTS = {
    "api": 443,
    "telemetry": 443,
    "push": 443,
    "relay": 8883,
    "stream": 10001,
    "upload": 8443,
    "ntp": 123,
    "keepalive": 7275,
    "weather": 443,
    "discovery": 1900,
    "cdn": 443,
}


@dataclass(frozen=True)
class Endpoint:
    """One resolvable cloud service endpoint.

    Real cloud services resolve to many load-balanced addresses, so an
    endpoint owns a *pool* of IPs sharing the location's prefix; the
    PortLess flow definition sees the stable domain, while raw IP
    features are rotation noise — which is why Table 4 measures zero
    permutation importance for destination-IP octets.
    """

    domain: str
    ips: Tuple[str, ...]
    port: int

    @property
    def ip(self) -> str:
        """A stable representative address (first of the pool)."""
        return self.ips[0]

    def pick_ip(self, rng: np.random.Generator) -> str:
        """Draw one address from the pool (per connection)."""
        return self.ips[int(rng.integers(0, len(self.ips)))]


class CloudDirectory:
    """Allocates stable per-(vendor, service, location) cloud endpoints.

    Endpoints are deterministic in the seed, so repeated simulations of
    the same household resolve identical addressing — a prerequisite for
    the predictability heuristic to learn anything.
    """

    def __init__(self, seed: int = 7, pool_size: int = 24) -> None:
        self._rng = np.random.default_rng(seed)
        self.pool_size = pool_size
        self._endpoints: Dict[Tuple[str, str, Location], Endpoint] = {}
        self.dns = DnsTable()

    def endpoint(self, vendor: str, service: str, location: Location) -> Endpoint:
        """Get (allocating on first use) the endpoint of a cloud service."""
        key = (vendor, service, location)
        if key not in self._endpoints:
            tld = _LOCATION_TLD[location]
            domain = f"{service}.{vendor}.{tld}"
            prefix = _LOCATION_PREFIX[location]
            ips = tuple(
                f"{prefix}.{int(self._rng.integers(1, 255))}."
                f"{int(self._rng.integers(1, 255))}.{int(self._rng.integers(1, 255))}"
                for _ in range(self.pool_size)
            )
            port = _SERVICE_PORTS.get(service, 443)
            endpoint = Endpoint(domain=domain, ips=ips, port=port)
            self._endpoints[key] = endpoint
            for ip in ips:
                self.dns.add_record(ip, domain)
        return self._endpoints[key]

    def relay(self, vendor: str, location: Location) -> Endpoint:
        """The vendor's relay server (phone <-> device when off-LAN)."""
        return self.endpoint(vendor, "relay", location)

    def all_endpoints(self) -> List[Endpoint]:
        """Every endpoint allocated so far."""
        return list(self._endpoints.values())
