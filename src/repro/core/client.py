"""FIAT's client-side app (paper §5.3) as a simulation model.

The Android service monitors the foreground app via the accessibility
service, samples accelerometer + gyroscope at 250 Hz when an IoT
companion app comes up, extracts the 48 features, signs them with the
TEE-held pairing key (Jetpack security / hardware keystore) and ships
the proof to the IoT proxy over QUIC (Cronet), preferring 0-RTT.

Each step's execution cost is modelled after the Table 7 measurements:
app detection 60-90 ms, a full sensor window ~250 ms (or the 60-80 ms
lazy buffer), secure storage access ~50 ms, and the transport-dependent
connection latency from :mod:`repro.quic.transport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..crypto.keystore import SecureKeystore
from ..faults.link import FaultyLink
from ..features.sensor_features import sensor_features
from ..obs import NULL_OBS, Observability
from ..quic.channel import AuthChannel
from ..quic.transport import NetworkPath, Transport
from ..testbed.phone import ManualInteraction

__all__ = ["AuthAttempt", "RetryPolicy", "ReliableAuthReport", "FiatApp"]


@dataclass
class AuthAttempt:
    """One end-to-end authentication attempt with its latency breakdown."""

    wire: bytes
    sent_at: float
    #: milliseconds per component (Table 7 rows)
    components: Dict[str, float]
    #: observability trace ID of this proof ("" = untraced)
    trace_id: str = ""

    @property
    def time_to_validation_ms(self) -> float:
        """Client-side latency until the proof reaches the proxy.

        Sensor sampling is excluded, as in the paper: with 1-RTT it
        overlaps the handshake; with 0-RTT the app keeps a lazy sensor
        buffer, whose top-up cost is inside ``app_detection``.
        """
        return (
            self.components["app_detection"]
            + self.components["secure_storage"]
            + self.components["transport"]
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Retransmission policy of the FIAT app's reliable proof delivery.

    Acknowledgement-driven: the app retransmits the *same* signed proof
    on an exponentially backed-off, jittered schedule until the proxy
    acknowledges or the delivery deadline passes.
    """

    initial_rto_ms: float = 120.0
    backoff: float = 2.0
    max_rto_ms: float = 1500.0
    jitter_ms: float = 40.0
    deadline_ms: float = 4000.0

    def __post_init__(self) -> None:
        if self.initial_rto_ms <= 0 or self.backoff < 1.0:
            raise ValueError("initial_rto_ms must be > 0 and backoff >= 1")

    @classmethod
    def from_config(cls, config) -> "RetryPolicy":
        """Build from the ``retry_*`` knobs of a :class:`FiatConfig`."""
        return cls(
            initial_rto_ms=config.retry_initial_rto_ms,
            backoff=config.retry_backoff,
            max_rto_ms=config.retry_max_rto_ms,
            jitter_ms=config.retry_jitter_ms,
            deadline_ms=config.retry_deadline_ms,
        )


@dataclass
class ReliableAuthReport:
    """Sender-side outcome of one reliable proof delivery."""

    acked: bool
    n_attempts: int
    first_sent_at: float
    acked_at: Optional[float]
    #: milliseconds per component of the first attempt (Table 7 rows)
    components: Dict[str, float] = field(default_factory=dict)
    #: simulated send time of every (re)transmission
    attempt_times: List[float] = field(default_factory=list)
    #: observability trace ID shared by every retransmission ("" = untraced)
    trace_id: str = ""

    @property
    def time_to_validation_ms(self) -> Optional[float]:
        """Client latency until the proof was acknowledged, or ``None``.

        Includes retransmission delay: app detection + secure storage
        plus the wall time from first send to the accepted arrival.
        """
        if not self.acked or self.acked_at is None:
            return None
        return (
            self.components.get("app_detection", 0.0)
            + self.components.get("secure_storage", 0.0)
            + (self.acked_at - self.first_sent_at) * 1000.0
        )


class FiatApp:
    """Client-side FIAT service bound to one paired phone."""

    def __init__(
        self,
        keystore: SecureKeystore,
        key_alias: str,
        device_id: str,
        path: NetworkPath,
        transport: Transport = Transport.QUIC_0RTT,
        seed: Optional[int] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self._rng = np.random.default_rng(seed)
        self.obs = obs if obs is not None else NULL_OBS
        self.channel = AuthChannel(
            keystore=keystore,
            key_alias=key_alias,
            device_id=device_id,
            path=path,
            transport=transport,
            rng=self._rng,
        )

    def _component_ms(self, mean: float, sd: float) -> float:
        return float(max(0.5, self._rng.normal(mean, sd)))

    def authenticate(self, interaction: ManualInteraction, now: float) -> AuthAttempt:
        """Produce a signed humanness proof for one app interaction.

        Extracts the 48 sensor features on-device (raw motion never
        leaves the phone unprocessed), signs, and sends.
        """
        components = {
            "app_detection": self._component_ms(75.0, 9.0),
            "sensor_sampling": self._component_ms(250.0, 7.0),
            "secure_storage": self._component_ms(50.0, 4.0),
            "ml_validation": self._component_ms(2.3, 0.3),  # runs at the proxy
        }
        features = sensor_features(interaction.sensor_window)
        trace_id = self.obs.mint_trace("proof")
        delivery = self.channel.send(
            interaction.app_package, features.tolist(), now, trace_id=trace_id
        )
        components["transport"] = delivery.latency_ms
        self.obs.inc("proofs_sent_total", mode="single")
        self.obs.emit(
            "proof.signed", t=now, trace=trace_id, app_package=interaction.app_package
        )
        return AuthAttempt(
            wire=delivery.wire, sent_at=now, components=components, trace_id=trace_id
        )

    def authenticate_reliable(
        self,
        interaction: ManualInteraction,
        now: float,
        link: FaultyLink,
        deliver: Callable[[bytes, float], bool],
        policy: Optional[RetryPolicy] = None,
    ) -> ReliableAuthReport:
        """Deliver a humanness proof over a faulty link with retransmission.

        Signs the proof once and retransmits the identical wire bytes on
        an exponential-backoff + jitter schedule until ``deliver`` (the
        proxy's receive path; ``True`` = registered, i.e. accepted or
        absorbed as an already-registered replay) acknowledges and the
        ack survives the return path, or the delivery deadline passes.
        Every copy the link produces — duplicates included — is handed
        to ``deliver`` at its arrival time.
        """
        policy = policy or RetryPolicy()
        components = {
            "app_detection": self._component_ms(75.0, 9.0),
            "sensor_sampling": self._component_ms(250.0, 7.0),
            "secure_storage": self._component_ms(50.0, 4.0),
            "ml_validation": self._component_ms(2.3, 0.3),
        }
        features = sensor_features(interaction.sensor_window)
        trace_id = self.obs.mint_trace("proof")
        wire = self.channel.prepare(
            interaction.app_package, features.tolist(), now, trace_id=trace_id
        )
        self.obs.inc("proofs_sent_total", mode="reliable")
        self.obs.emit(
            "proof.signed", t=now, trace=trace_id, app_package=interaction.app_package
        )

        deadline = now + policy.deadline_ms / 1000.0
        rto_ms = policy.initial_rto_ms
        send_at = now
        attempt_times: List[float] = []
        acked = False
        acked_at: Optional[float] = None
        while True:
            attempt_times.append(send_at)
            self.obs.inc("proof_attempts_total")
            self.obs.emit(
                "proof.attempt",
                t=send_at,
                trace=trace_id,
                attempt=len(attempt_times),
            )
            latency_ms = self.channel.sample_latency()
            if len(attempt_times) == 1:
                components["transport"] = latency_ms
            registered_at: Optional[float] = None
            for copy in link.transmit(wire, send_at, latency_ms=latency_ms):
                if deliver(copy.wire, copy.arrive_at) and registered_at is None:
                    registered_at = copy.arrive_at
            if registered_at is not None and not link.ack_lost():
                acked = True
                acked_at = registered_at
                break
            next_at = send_at + (rto_ms + link.retry_jitter_ms(policy.jitter_ms)) / 1000.0
            rto_ms = min(rto_ms * policy.backoff, policy.max_rto_ms)
            if next_at > deadline:
                break
            send_at = next_at
        report = ReliableAuthReport(
            acked=acked,
            n_attempts=len(attempt_times),
            first_sent_at=now,
            acked_at=acked_at,
            components=components,
            attempt_times=attempt_times,
            trace_id=trace_id,
        )
        if acked:
            self.obs.inc("proofs_acked_total")
            ttv = report.time_to_validation_ms
            if ttv is not None:
                self.obs.observe("proof_ttv_ms", ttv)
            self.obs.emit(
                "proof.acked",
                t=acked_at if acked_at is not None else now,
                trace=trace_id,
                attempts=len(attempt_times),
            )
        else:
            self.obs.inc("proofs_expired_total")
            self.obs.emit(
                "proof.expired", t=deadline, trace=trace_id, attempts=len(attempt_times)
            )
        return report
