"""Hot-path profiling timers (``perf_counter``-based, monkeypatch-free).

The timers feed wall-clock latencies into registry histograms so the
Table-7 latency model in :mod:`repro.core.latency` can be cross-checked
against what the pipeline actually costs.  Two usage shapes:

* :class:`LatencyTimer` — a reusable ``with`` block for coarse sections
  (classifier inference, proof verification, event grouping);
* the inline guard pattern for per-packet paths, where even a no-op
  context manager is measurable::

      if obs.enabled:
          t0 = time.perf_counter()
          result = hot_call()
          obs.observe("...", (time.perf_counter() - t0) * 1000.0)
      else:
          result = hot_call()

Per-packet paths additionally *sample* their timing — at most one timed
call per :data:`TIMING_SAMPLE_INTERVAL_S` seconds of **simulated** time
— because at sub-microsecond body durations even the two
``perf_counter`` reads dominate.  Gating on the packet's own timestamp
costs a single float compare per packet (the proxy pins the threshold
to ``inf`` when observability is off) and is deterministic with respect
to the packet stream, while keeping the histograms statistically
faithful and instrumentation overhead within the <10 % throughput
budget.

Wall-clock durations go **only** into metrics, never into simulation
state or the audit stream, so instrumentation cannot violate the
determinism contract of :mod:`repro.faults`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional

__all__ = ["LatencyTimer", "NULL_TIMER", "TIMING_SAMPLE_INTERVAL_S"]

#: Per-packet latency histograms record at most one call per this many
#: seconds of simulated (packet-timestamp) time.  At IoT traffic rates
#: this still yields hundreds of samples per simulated hour while the
#: histogram write itself (a few µs) stays far below 1 % of packet
#: processing time.
TIMING_SAMPLE_INTERVAL_S = 30.0


class LatencyTimer:
    """Context manager recording its body's duration as milliseconds."""

    __slots__ = ("_registry", "_name", "_labels", "_t0", "last_ms")

    def __init__(self, registry, name: str, labels: Optional[Dict[str, object]] = None) -> None:
        self._registry = registry
        self._name = name
        self._labels = labels or {}
        self._t0 = 0.0
        #: duration of the most recent completed block, milliseconds
        self.last_ms = 0.0

    def __enter__(self) -> "LatencyTimer":
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.last_ms = (perf_counter() - self._t0) * 1000.0
        self._registry.observe(self._name, self.last_ms, **self._labels)


class _NullTimer:
    """Shared no-op stand-in returned by disabled handles."""

    __slots__ = ()
    last_ms = 0.0

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


#: Singleton no-op timer (safe to share: it holds no state).
NULL_TIMER = _NullTimer()
