"""Deterministic trace-ID minting and span records.

A *trace* follows one logical operation across FIAT's layers: a
humanness proof from sensor sampling through signing, (re)transmission
and the replay-cache check to the proxy decision it ultimately backs,
or one unpredictable event from its first packet to allow/drop.

Trace IDs must never perturb the determinism contract of
:mod:`repro.faults` (identical seeds + identical plan = byte-identical
decision logs), so they derive from a seeded counter — never from wall
clock and never from any RNG stream shared with the simulation.  Two
runs of the same seeded scenario mint the same IDs in the same order,
which makes the JSONL audit stream itself reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["TraceIdMinter", "Span"]


class TraceIdMinter:
    """Seeded sequential trace-ID factory.

    IDs look like ``proof-7f3a9c01b2d4``: a caller-supplied kind prefix
    plus 12 hex characters of ``blake2b(seed:sequence)``.  The hash
    keeps IDs from colliding across differently-seeded minters while the
    sequence number keeps them deterministic within one run.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._sequence = 0

    @property
    def n_minted(self) -> int:
        """How many IDs this minter has produced."""
        return self._sequence

    def mint(self, kind: str = "trace") -> str:
        """Produce the next trace ID for ``kind``."""
        token = f"{self.seed}:{self._sequence}".encode("utf-8")
        digest = hashlib.blake2b(token, digest_size=6).hexdigest()
        self._sequence += 1
        return f"{kind}-{digest}"


@dataclass
class Span:
    """One step of a trace: a named interval in simulated time.

    Spans are plain records (no context-manager magic on the hot path):
    the caller stamps ``t_start``/``t_end`` with simulated-clock values
    and attaches free-form attributes, then emits the span onto the
    audit stream via :meth:`Observability.emit_span
    <repro.obs.handle.Observability.emit_span>`.
    """

    trace_id: str
    name: str
    t_start: float
    t_end: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    def finish(self, t_end: float) -> "Span":
        """Close the span at ``t_end``; returns ``self`` for chaining."""
        self.t_end = t_end
        return self

    def to_record(self) -> Dict[str, object]:
        """Flatten into an audit-stream record payload."""
        record: Dict[str, object] = {
            "kind": f"span:{self.name}",
            "trace": self.trace_id,
            "t": self.t_start,
        }
        if self.t_end is not None:
            record["t_end"] = self.t_end
        record.update(self.attrs)
        return record
