"""Reproduce the §2 measurement study on synthetic public corpora.

Generates YourThings-like and Mon(IoT)r-like corpora, labels every
packet with the bucket heuristic under both flow definitions, and prints
the per-device predictability distributions plus the max-interval
analysis behind FIAT's 20-minute bootstrap.

Run:  python examples/traffic_predictability_study.py
"""

import numpy as np

from repro.datasets import (
    generate_moniotr_active,
    generate_moniotr_idle,
    generate_yourthings,
)
from repro.net import FlowDefinition
from repro.predictability import analyze_trace, cdf, max_predictable_intervals


def summarize(name: str, trace) -> None:
    print(f"\n{name}: {len(trace)} packets from {len(trace.devices())} devices")
    for definition in (FlowDefinition.PORTLESS, FlowDefinition.CLASSIC):
        fractions = np.asarray(analyze_trace(trace, definition).fractions())
        print(
            f"  {definition.value:8s}  median {np.median(fractions):.2f}   "
            f"devices >80% predictable: {100 * np.mean(fractions > 0.8):.0f}%"
        )


def main() -> None:
    print("generating corpora (a minute or so)...")
    yourthings = generate_yourthings(n_devices=30, duration_s=2400.0, seed=0)
    idle = generate_moniotr_idle(n_devices=25, duration_s=1200.0)
    active = generate_moniotr_active(n_devices=25, n_chunks=6)

    summarize("YourThings-like (continuous captures)", yourthings)
    summarize("Mon(IoT)r-like, idle split (control only)", idle)
    summarize("Mon(IoT)r-like, active split (manual mixed)", active)

    print("\nmax intervals of predictable flows (YourThings, Fig 1c):")
    intervals = max_predictable_intervals(yourthings)
    values = np.asarray(sorted(v for v in intervals.values() if v > 0))
    x, y = cdf(values)
    for percentile in (50, 80, 90, 100):
        print(f"  p{percentile:<3d} {np.percentile(values, percentile):6.0f} s")
    print(
        f"  => capture 2 x {values.max():.0f} s = {2 * values.max():.0f} s "
        "to learn all predictable traffic (the paper's 20-minute bootstrap)"
    )


if __name__ == "__main__":
    main()
