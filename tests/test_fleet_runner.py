"""Tests for fleet execution: determinism, failure semantics, aggregation."""

import pytest

from repro.fleet import (
    FleetReport,
    FleetRunner,
    FleetSpec,
    HomeResult,
    HomeSpec,
    aggregate,
    generate_fleet,
    percentile,
    run_home,
)
from repro.fleet.worker import WALL_CLOCK_SUFFIX


def _spec(n=3, seed=0, **kwargs):
    kwargs.setdefault("n_manual", 3)
    kwargs.setdefault("n_non_manual", 4)
    kwargs.setdefault("n_attacks", 2)
    return generate_fleet(n, seed=seed, **kwargs)


def _poisoned_spec(poison="raise"):
    """Three homes; the middle one is poisoned."""
    base = _spec(3, seed=1)
    homes = list(base.homes)
    middle = homes[1].to_dict()
    middle["poison"] = poison
    homes[1] = HomeSpec.from_dict(middle)
    return FleetSpec(name=base.name, seed=base.seed, homes=tuple(homes))


@pytest.fixture(scope="module")
def small_reports():
    """Serial and 2-worker process reports of one small fleet."""
    spec = _spec(4, seed=0)
    serial = FleetRunner(spec, jobs=1).run()
    process = FleetRunner(spec, jobs=2, backend="process").run()
    return serial, process


class TestWorker:
    def test_result_is_pure_function_of_spec(self):
        spec = _spec(1, seed=5)
        a = run_home(spec.homes[0])
        b = run_home(spec.homes[0])
        assert a.to_dict() == b.to_dict()

    def test_wall_clock_families_stripped(self):
        result = run_home(_spec(1, seed=5).homes[0])
        assert all(
            not name.endswith(WALL_CLOCK_SUFFIX) for name in result.metrics["histograms"]
        )
        # ...but deterministic counters made it through
        assert result.metrics["counters"]

    def test_class_counts_cover_all_scripted_classes(self):
        result = run_home(_spec(1, seed=5).homes[0])
        assert {"manual", "attack", "automated", "control"} <= set(result.class_counts)

    def test_result_dict_round_trip(self):
        result = run_home(_spec(1, seed=5).homes[0])
        assert HomeResult.from_dict(result.to_dict()).to_dict() == result.to_dict()

    def test_poisoned_home_raises(self):
        spec = _poisoned_spec()
        with pytest.raises(RuntimeError, match="poison home"):
            run_home(spec.homes[1])


class TestDeterminismAcrossBackends:
    def test_reports_byte_identical(self, small_reports):
        serial, process = small_reports
        assert serial.to_json() == process.to_json()

    def test_reports_ok(self, small_reports):
        serial, _ = small_reports
        assert serial.ok and serial.n_ok == serial.n_homes == 4
        assert serial.population["manual_recall"]["n"] >= 4

    def test_merged_metrics_populated(self, small_reports):
        serial, _ = small_reports
        snapshot = serial.snapshot()
        assert snapshot.counter_total("proxy_decisions_total") > 0

    def test_report_json_round_trip(self, small_reports):
        serial, _ = small_reports
        assert FleetReport.from_json(serial.to_json()).to_json() == serial.to_json()


class TestFailureSemantics:
    def test_poisoned_home_fails_not_fleet_serial(self):
        report = FleetRunner(_poisoned_spec(), jobs=1).run()
        assert report.n_failed == 1 and report.n_ok == 2
        assert report.failed_homes == ["home-0001"]
        failed = report.homes[1]
        assert failed["status"] == "failed"
        assert "poison home" in failed["error"]

    def test_poisoned_home_fails_not_fleet_process(self):
        report = FleetRunner(_poisoned_spec(), jobs=2, backend="process").run()
        assert report.n_failed == 1 and report.n_ok == 2
        assert report.failed_homes == ["home-0001"]

    def test_failure_reports_identical_across_backends(self):
        spec = _poisoned_spec()
        serial = FleetRunner(spec, jobs=1).run()
        process = FleetRunner(spec, jobs=2, backend="process").run()
        assert serial.to_json() == process.to_json()

    def test_worker_process_death_retried_then_failed(self):
        """A hard crash (os._exit) breaks the pool; the fleet survives."""
        report = FleetRunner(
            _poisoned_spec(poison="exit"), jobs=2, backend="process"
        ).run()
        assert report.n_failed == 1 and report.n_ok == 2
        failed = report.homes[1]
        assert failed["status"] == "failed"
        assert failed["attempts"] == 2  # retried once after the pool broke

    def test_timeout_fails_home(self):
        # A zero-second deadline trips immediately; the worker result is
        # abandoned, the home marked failed.
        spec = _spec(2, seed=0)
        report = FleetRunner(
            spec, jobs=2, backend="process", timeout_s=0.0
        ).run()
        assert report.n_failed == 2
        assert all("no result within" in h["error"] for h in report.homes)


class TestTimeoutLeak:
    def test_two_timeouts_do_not_wedge_the_pool(self):
        """Regression: a running future cannot be cancelled, so before the
        pool-rebuild fix two hung workers permanently occupied both slots
        of a ``jobs=2`` pool and every later home timed out behind them.
        """
        base = _spec(4, seed=2, n_training_events=60)
        homes = list(base.homes)
        for i in (0, 1):
            poisoned = homes[i].to_dict()
            poisoned["poison"] = "hang"
            homes[i] = HomeSpec.from_dict(poisoned)
        spec = FleetSpec(name=base.name, seed=base.seed, homes=tuple(homes))
        report = FleetRunner(
            spec, jobs=2, backend="process", timeout_s=6.0
        ).run()
        assert report.n_failed == 2
        assert report.failed_homes == ["home-0000", "home-0001"]
        assert all("no result within" in h["error"] for h in report.homes[:2])
        # the homes queued behind the hung ones still completed
        assert [h["status"] for h in report.homes[2:]] == ["ok", "ok"]


class TestRunnerValidation:
    def test_rejects_bad_backend(self):
        with pytest.raises(ValueError, match="backend"):
            FleetRunner(_spec(1), backend="threads")

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            FleetRunner(_spec(1), jobs=0)

    def test_auto_backend_resolution(self):
        assert FleetRunner(_spec(1), jobs=1).backend == "serial"
        assert FleetRunner(_spec(1), jobs=2).backend == "process"

    def test_serial_rejects_timeout(self):
        # the serial backend cannot preempt a running home; it must
        # refuse a timeout rather than silently ignore it
        with pytest.raises(ValueError, match="serial backend cannot enforce"):
            FleetRunner(_spec(1), backend="serial", timeout_s=5.0)

    def test_auto_with_timeout_resolves_to_process(self):
        assert FleetRunner(_spec(1), jobs=1, timeout_s=5.0).backend == "process"

    def test_backends_agree_on_timeout_semantics(self):
        # process accepts a timeout, serial rejects it — never a
        # silently different behaviour for the same arguments
        assert FleetRunner(
            _spec(1), backend="process", timeout_s=5.0
        ).timeout_s == 5.0
        with pytest.raises(ValueError):
            FleetRunner(_spec(1), backend="serial", timeout_s=5.0)

    def test_rejects_bad_retries_and_snapshot_every(self):
        with pytest.raises(ValueError, match="retries"):
            FleetRunner(_spec(1), retries=-1)
        with pytest.raises(ValueError, match="snapshot_every"):
            FleetRunner(_spec(1), snapshot_every=0)


class TestAggregate:
    def test_order_mismatch_rejected(self):
        spec = _spec(2, seed=0)
        results = [
            HomeResult(home_id=spec.homes[1].home_id),
            HomeResult(home_id=spec.homes[0].home_id),
        ]
        with pytest.raises(ValueError, match="order mismatch"):
            aggregate(spec, results)

    def test_count_mismatch_rejected(self):
        spec = _spec(2, seed=0)
        with pytest.raises(ValueError, match="expected 2 results"):
            aggregate(spec, [HomeResult(home_id=spec.homes[0].home_id)])

    def test_failed_homes_excluded_from_population(self):
        report = FleetRunner(_poisoned_spec(), jobs=1).run()
        # population stats count only ok homes' device rows
        total_rows = sum(
            len(h["devices"]) for h in report.homes if h["status"] == "ok"
        )
        assert report.population["manual_recall"]["n"] == total_rows


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single(self):
        assert percentile([3.5], 0.9) == 3.5

    def test_median_interpolation(self):
        assert percentile([0.0, 1.0], 0.5) == 0.5
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_matches_numpy(self):
        import numpy as np

        values = [0.1, 0.4, 0.45, 0.9, 1.0, 0.2]
        for q in (0.1, 0.5, 0.9):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q * 100))
            )

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestRecoveryShards:
    def test_per_home_state_dirs(self, tmp_path):
        base = _spec(2, seed=3)
        homes = tuple(
            HomeSpec.from_dict({**home.to_dict(), "recover": True})
            for home in base.homes
        )
        spec = FleetSpec(name=base.name, seed=base.seed, homes=homes)
        report = FleetRunner(spec, jobs=1, state_root=str(tmp_path)).run()
        assert report.ok
        for home in spec.homes:
            shard = tmp_path / home.home_id
            assert shard.is_dir() and any(shard.iterdir())
        assert all(h["recovery_epoch"] is not None for h in report.homes)
