"""Unit tests for the 66 packet-event features (§4.1)."""

import numpy as np
import pytest

from repro.events import UnpredictableEvent
from repro.features import (
    FEATURE_NAMES,
    FIRST_N_PACKETS,
    N_FEATURES,
    event_features,
    event_labels,
    events_to_matrix,
)
from repro.net import Direction, TrafficClass
from tests.conftest import make_packet


def _event(n, **kwargs):
    return UnpredictableEvent(
        packets=[make_packet(timestamp=float(i) * 0.1, **kwargs) for i in range(n)]
    )


class TestLayout:
    def test_exactly_66_features(self):
        assert N_FEATURES == 66
        assert len(FEATURE_NAMES) == 66

    def test_names_match_paper_table4(self):
        # Table 4 references these exact names.
        for name in ("pkt1-proto", "pkt1-direction", "pkt3-tls", "pkt3-tcp-flags",
                     "pkt1-dst-ip1", "pkt2-dst-ip1"):
            assert name in FEATURE_NAMES

    def test_vector_length(self):
        assert event_features(_event(3)).shape == (66,)

    def test_empty_event_rejected(self):
        with pytest.raises(ValueError):
            event_features(UnpredictableEvent(packets=[]))


class TestValues:
    def test_short_event_zero_padded(self):
        features = event_features(_event(2))
        # pkt3..pkt5 blocks all zero
        for i in range(3, 6):
            start = FEATURE_NAMES.index(f"pkt{i}-direction")
            assert np.all(features[start : start + 11] == 0.0)

    def test_only_first_n_counted(self):
        features = event_features(_event(20))
        n_packets_index = FEATURE_NAMES.index("n-packets")
        assert features[n_packets_index] == FIRST_N_PACKETS

    def test_direction_encoding(self):
        out = event_features(_event(1, direction=Direction.OUTBOUND))
        assert out[FEATURE_NAMES.index("pkt1-direction")] == 1.0
        inb = event_features(
            _event(1, direction=Direction.INBOUND, src_ip="1.2.3.4", dst_ip="192.168.1.10")
        )
        assert inb[FEATURE_NAMES.index("pkt1-direction")] == 0.0

    def test_remote_ip_octets(self):
        features = event_features(_event(1, dst_ip="172.16.5.9"))
        base = FEATURE_NAMES.index("pkt1-dst-ip1")
        assert list(features[base : base + 4]) == [172.0, 16.0, 5.0, 9.0]

    def test_malformed_ip_zeroed(self):
        features = event_features(_event(1, dst_ip="not-an-ip"))
        base = FEATURE_NAMES.index("pkt1-dst-ip1")
        assert list(features[base : base + 4]) == [0.0] * 4

    def test_iat_features(self):
        features = event_features(_event(3))
        assert features[FEATURE_NAMES.index("pkt2-iat")] == pytest.approx(0.1)
        assert features[FEATURE_NAMES.index("pkt5-iat")] == 0.0

    def test_aggregates(self):
        event = UnpredictableEvent(
            packets=[
                make_packet(timestamp=0.0, size=100),
                make_packet(timestamp=1.0, size=300),
            ]
        )
        features = event_features(event)
        assert features[FEATURE_NAMES.index("total-bytes")] == 400.0
        assert features[FEATURE_NAMES.index("mean-len")] == 200.0
        assert features[FEATURE_NAMES.index("duration")] == 1.0


class TestSequences:
    def test_sequence_shapes(self):
        from repro.features import event_sequences

        events = [_event(3), _event(8)]
        sequences = event_sequences(events, n=5)
        assert sequences[0].shape == (3, 12)
        assert sequences[1].shape == (5, 12)  # truncated to first N

    def test_iat_column(self):
        from repro.features import event_sequences

        sequences = event_sequences([_event(3)])
        iats = sequences[0][:, -1]
        assert iats[0] == 0.0
        assert iats[1] == pytest.approx(0.1)

    def test_per_packet_rows_match_flat_features(self):
        from repro.features import event_sequences

        event = _event(2, dst_ip="172.16.5.9")
        seq = event_sequences([event])[0]
        flat = event_features(event)
        # the first 11 columns of row 0 equal the pkt1 block
        assert list(seq[0, :11]) == list(flat[:11])


class TestMatrixAndLabels:
    def test_matrix_shape(self):
        events = [_event(3), _event(5), _event(1)]
        assert events_to_matrix(events).shape == (3, 66)

    def test_empty_matrix(self):
        assert events_to_matrix([]).shape == (0, 66)

    def test_labels_three_way(self):
        events = [
            _event(2, traffic_class=TrafficClass.CONTROL),
            _event(2, traffic_class=TrafficClass.MANUAL),
            _event(2, traffic_class=TrafficClass.ATTACK),
        ]
        assert list(event_labels(events)) == ["control", "manual", "manual"]

    def test_labels_binary(self):
        events = [
            _event(2, traffic_class=TrafficClass.AUTOMATED),
            _event(2, traffic_class=TrafficClass.MANUAL),
        ]
        assert list(event_labels(events, binary=True)) == ["non_manual", "manual"]
