"""Ground-truth labelling of traffic from interaction logs (paper §3.1-3.2).

The Illinois household deployment could not observe *which* action a user
performed — only *when* an IoT companion app was open (via an Android
logging app).  The testbed similarly records the start times of routines.
This module reproduces that labelling pipeline: given interaction windows
(manual) and routine firing times (automated), packets are re-labelled
CONTROL / AUTOMATED / MANUAL by time overlap, exactly how the paper turns
raw captures plus logs into the labelled dataset behind Fig 2 and §4.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Iterable, List, Optional, Sequence

from ..net.packet import Packet, TrafficClass
from ..net.trace import Trace

__all__ = ["InteractionWindow", "RoutineFiring", "label_trace", "GroundTruthLog"]


@dataclass(frozen=True)
class InteractionWindow:
    """One logged period during which a companion app was in foreground."""

    device: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("interaction window ends before it starts")

    def covers(self, timestamp: float, slack: float = 0.0) -> bool:
        """Whether ``timestamp`` falls inside the window (plus slack)."""
        return self.start - slack <= timestamp <= self.end + slack


@dataclass(frozen=True)
class RoutineFiring:
    """One routine execution (IFTTT / companion-app automation)."""

    device: str
    timestamp: float
    duration: float = 10.0

    def covers(self, timestamp: float, slack: float = 0.0) -> bool:
        """Whether ``timestamp`` falls inside the firing window."""
        return self.timestamp - slack <= timestamp <= self.timestamp + self.duration + slack


class GroundTruthLog:
    """Collection of interaction windows and routine firings for a capture."""

    def __init__(
        self,
        interactions: Optional[Iterable[InteractionWindow]] = None,
        routines: Optional[Iterable[RoutineFiring]] = None,
    ) -> None:
        self.interactions: List[InteractionWindow] = sorted(
            interactions or [], key=lambda w: w.start
        )
        self.routines: List[RoutineFiring] = sorted(
            routines or [], key=lambda r: r.timestamp
        )

    def add_interaction(self, window: InteractionWindow) -> None:
        """Record a manual interaction window (kept sorted)."""
        self.interactions.append(window)
        self.interactions.sort(key=lambda w: w.start)

    def add_routine(self, firing: RoutineFiring) -> None:
        """Record a routine firing (kept sorted)."""
        self.routines.append(firing)
        self.routines.sort(key=lambda r: r.timestamp)

    def classify(self, device: str, timestamp: float, slack: float = 2.0) -> TrafficClass:
        """Label one packet: manual wins over automated wins over control.

        Manual takes precedence because a human interaction is the rarest
        and most security-relevant signal; everything not covered by a
        log entry is control traffic — the paper's "control for all other
        traffic".
        """
        for window in self.interactions:
            if window.device == device and window.covers(timestamp, slack):
                return TrafficClass.MANUAL
        for firing in self.routines:
            if firing.device == device and firing.covers(timestamp, slack):
                return TrafficClass.AUTOMATED
        return TrafficClass.CONTROL


def label_trace(trace: Trace, log: GroundTruthLog, slack: float = 2.0) -> Trace:
    """Return a re-labelled copy of ``trace`` according to ``log``."""
    relabelled: List[Packet] = [
        dc_replace(p, traffic_class=log.classify(p.device, p.timestamp, slack))
        for p in trace
    ]
    return Trace(relabelled, dns=trace.dns, name=trace.name)
