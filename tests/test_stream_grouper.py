"""Unit tests for the incremental event grouper (repro.stream.grouper)."""

import numpy as np

from repro.events import EVENT_GAP_SECONDS
from repro.events.grouping import _group_events
from repro.net import Trace
from repro.stream import IncrementalEventGrouper
from tests.conftest import make_packet


def _random_masked_trace(seed, n=300, n_devices=4):
    rng = np.random.default_rng(seed)
    packets, t = [], 0.0
    for _ in range(n):
        # Mix sub-gap and super-gap steps so events split and merge.
        t += float(rng.choice([0.3, 1.5, 4.9, 5.0, 5.1, 12.0]))
        packets.append(
            make_packet(timestamp=t, device=f"dev{int(rng.integers(n_devices))}")
        )
    mask = rng.random(n) < 0.4  # predictable packets to skip
    return Trace(packets), mask.tolist()


def _feed_all(grouper, trace, mask):
    closed = []
    for packet, predictable in zip(trace, mask):
        event = grouper.feed_masked(packet, predictable)
        if event is not None:
            closed.append(event)
    return closed


class TestIncrementalSemantics:
    def test_event_emitted_when_gap_passes(self):
        grouper = IncrementalEventGrouper(gap=5.0)
        assert grouper.feed(make_packet(timestamp=0.0, device="d")) is None
        assert grouper.feed(make_packet(timestamp=4.0, device="d")) is None
        closed = grouper.feed(make_packet(timestamp=20.0, device="d"))
        assert closed is not None and len(closed) == 2
        assert closed.start == 0.0 and closed.end == 4.0

    def test_boundary_gap_inclusive(self):
        grouper = IncrementalEventGrouper(gap=5.0)
        grouper.feed(make_packet(timestamp=0.0))
        assert grouper.feed(make_packet(timestamp=5.0)) is None
        assert grouper.feed(make_packet(timestamp=10.01)) is not None

    def test_per_device_streams_independent(self):
        grouper = IncrementalEventGrouper(gap=5.0, per_device=True)
        grouper.feed(make_packet(timestamp=0.0, device="a"))
        # A far-future packet of another device must not close "a".
        assert grouper.feed(make_packet(timestamp=100.0, device="b")) is None
        assert len(grouper.open_events) == 2

    def test_single_stream_mode_merges_devices(self):
        grouper = IncrementalEventGrouper(gap=5.0, per_device=False)
        grouper.feed(make_packet(timestamp=0.0, device="a"))
        assert grouper.feed(make_packet(timestamp=1.0, device="b")) is None
        (event,) = grouper.flush()
        assert len(event) == 2

    def test_flush_sorts_by_start_and_clears(self):
        grouper = IncrementalEventGrouper(gap=5.0)
        grouper.feed(make_packet(timestamp=10.0, device="b"))
        grouper.feed(make_packet(timestamp=3.0, device="a"))
        events = grouper.flush()
        assert [e.start for e in events] == [3.0, 10.0]
        assert grouper.flush() == []
        assert grouper.open_events == []

    def test_default_gap_matches_paper(self):
        assert IncrementalEventGrouper().gap == EVENT_GAP_SECONDS


class TestEquivalenceWithBatchGrouping:
    def test_randomized_traces_per_device(self):
        for seed in range(5):
            trace, mask = _random_masked_trace(seed)
            grouper = IncrementalEventGrouper(gap=5.0, per_device=True)
            incremental = _feed_all(grouper, trace, mask) + grouper.flush()
            batch = _group_events(trace, mask, 5.0, True)
            assert _shapes(incremental) == _shapes(batch), seed

    def test_randomized_traces_single_stream(self):
        for seed in range(5):
            trace, mask = _random_masked_trace(seed)
            grouper = IncrementalEventGrouper(gap=5.0, per_device=False)
            incremental = _feed_all(grouper, trace, mask) + grouper.flush()
            batch = _group_events(trace, mask, 5.0, False)
            assert _shapes(incremental) == _shapes(batch), seed


def _shapes(events):
    """Comparable rendering: every packet timestamp of every event."""
    return sorted(
        tuple((p.device, p.timestamp) for p in event.packets) for event in events
    )
