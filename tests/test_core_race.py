"""Unit tests for the event-driven proof-vs-command race (§6)."""

import numpy as np
import pytest

from repro.core import (
    LAN_SCENARIO,
    MOBILE_SCENARIO,
    TABLE7_OPERATIONS,
    race_statistics,
    simulate_race,
)
from repro.quic import Transport


class TestSingleRace:
    def test_proof_wins_by_default(self, rng):
        outcome = simulate_race(TABLE7_OPERATIONS[0], LAN_SCENARIO, rng=rng)
        assert outcome.proof_won
        assert outcome.hold_ms == 0.0
        assert outcome.completed

    def test_fields_consistent(self, rng):
        outcome = simulate_race(TABLE7_OPERATIONS[1], LAN_SCENARIO, rng=rng)
        assert outcome.device == "SP10"
        assert outcome.command_arrival_ms > 0
        assert outcome.proof_ready_ms > 0

    def test_delayed_proof_holds_packet(self, rng):
        outcome = simulate_race(
            TABLE7_OPERATIONS[1], LAN_SCENARIO, extra_validation_delay_s=1.5, rng=rng
        )
        assert not outcome.proof_won
        assert outcome.hold_ms > 0.0
        assert outcome.completed  # within the TCP budget

    def test_excessive_delay_breaks_command(self, rng):
        outcome = simulate_race(
            TABLE7_OPERATIONS[1], LAN_SCENARIO, extra_validation_delay_s=5.0, rng=rng
        )
        assert not outcome.completed


class TestStatistics:
    def test_no_added_latency_on_all_operations(self):
        """§6 headline: FIAT imposes no hold on any measured operation."""
        for operation in TABLE7_OPERATIONS:
            for scenario in (LAN_SCENARIO, MOBILE_SCENARIO):
                stats = race_statistics(operation, scenario, n=60, seed=0)
                assert stats["proof_win_rate"] > 0.95, (operation.device, scenario.name)
                assert stats["mean_hold_ms"] < 5.0
                assert stats["completion_rate"] == 1.0

    def test_one_rtt_still_wins(self):
        stats = race_statistics(
            TABLE7_OPERATIONS[0], MOBILE_SCENARIO, n=60,
            transport=Transport.QUIC_1RTT, seed=1,
        )
        assert stats["proof_win_rate"] > 0.8

    def test_two_second_delay_survivable(self):
        """§6 tolerance: devices survive ~2 s of extra validation delay."""
        stats = race_statistics(
            TABLE7_OPERATIONS[1], LAN_SCENARIO, n=60,
            extra_validation_delay_s=1.8, seed=2,
        )
        assert stats["completion_rate"] > 0.95
        stats = race_statistics(
            TABLE7_OPERATIONS[1], LAN_SCENARIO, n=60,
            extra_validation_delay_s=4.0, seed=2,
        )
        assert stats["completion_rate"] < 0.2

    def test_deterministic_given_seed(self):
        a = race_statistics(TABLE7_OPERATIONS[0], LAN_SCENARIO, n=20, seed=7)
        b = race_statistics(TABLE7_OPERATIONS[0], LAN_SCENARIO, n=20, seed=7)
        assert a == b
