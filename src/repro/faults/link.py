"""A lossy, reordering, corrupting wrapper around the QUIC auth channel.

:class:`FaultyLink` sits between the FIAT app's signed wire bytes and
the proxy's receiver.  Given a message and its nominal transport
latency, it decides — from the plan's seeded RNG stream — whether the
message is lost, duplicated, delayed or corrupted, and at what simulated
time each surviving copy arrives.  It also models acknowledgement loss
(the sender-side trigger for spurious retransmissions) and receiver
clock skew.  All draws come from ``plan.stream("link")``, so an
identical plan reproduces an identical delivery schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .plan import FaultPlan

__all__ = ["Delivery", "FaultyLink"]


@dataclass(frozen=True)
class Delivery:
    """One copy of a message arriving at the receiver."""

    arrive_at: float
    wire: bytes
    duplicate: bool = False
    corrupted: bool = False


class FaultyLink:
    """Applies a :class:`~repro.faults.plan.FaultPlan` to channel sends."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = plan.stream("link")
        self.n_sent = 0
        self.n_lost = 0
        self.n_duplicated = 0
        self.n_corrupted = 0
        self.n_acks_lost = 0

    # -- wire-level faults --------------------------------------------------------

    def transmit(self, wire: bytes, sent_at: float, latency_ms: float = 0.0) -> List[Delivery]:
        """Send one message; return the copies that actually arrive.

        An empty list means the message was lost.  Copies are returned
        in arrival order (delay jitter may put a duplicate ahead of the
        original).
        """
        self.n_sent += 1
        plan = self.plan
        if plan.loss_rate > 0.0 and self._rng.random() < plan.loss_rate:
            self.n_lost += 1
            return []
        deliveries = [self._delivery(wire, sent_at, latency_ms, duplicate=False)]
        if plan.duplicate_rate > 0.0 and self._rng.random() < plan.duplicate_rate:
            self.n_duplicated += 1
            deliveries.append(self._delivery(wire, sent_at, latency_ms, duplicate=True))
        deliveries.sort(key=lambda d: d.arrive_at)
        return deliveries

    def _delivery(self, wire: bytes, sent_at: float, latency_ms: float, duplicate: bool) -> Delivery:
        plan = self.plan
        extra_ms = plan.extra_delay_ms
        if plan.delay_jitter_ms > 0.0:
            extra_ms += float(self._rng.exponential(plan.delay_jitter_ms))
        corrupted = plan.corruption_rate > 0.0 and self._rng.random() < plan.corruption_rate
        if corrupted:
            self.n_corrupted += 1
            wire = self._corrupt(wire)
        return Delivery(
            arrive_at=sent_at + (latency_ms + extra_ms) / 1000.0,
            wire=wire,
            duplicate=duplicate,
            corrupted=corrupted,
        )

    def _corrupt(self, wire: bytes) -> bytes:
        """Flip one low bit at a random position (a bit error in flight)."""
        if not wire:
            return wire
        index = int(self._rng.integers(0, len(wire)))
        return wire[:index] + bytes([wire[index] ^ 0x01]) + wire[index + 1 :]

    # -- acknowledgement + clock --------------------------------------------------

    def ack_lost(self) -> bool:
        """Whether the receiver's acknowledgement is lost on the way back."""
        rate = self.plan.effective_ack_loss_rate
        lost = rate > 0.0 and self._rng.random() < rate
        if lost:
            self.n_acks_lost += 1
        return lost

    def retry_jitter_ms(self, max_jitter_ms: float) -> float:
        """Uniform retransmission jitter drawn from the link's stream."""
        if max_jitter_ms <= 0.0:
            return 0.0
        return float(self._rng.uniform(0.0, max_jitter_ms))

    def receiver_clock(self, t: float) -> float:
        """Map a true arrival time to the receiver's (possibly skewed) clock."""
        return t + self.plan.clock_skew_s
