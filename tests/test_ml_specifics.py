"""Model-specific unit tests beyond the shared behavioural suite."""

import numpy as np
import pytest

from repro.ml import (
    AdaBoostClassifier,
    BernoulliNB,
    DecisionTreeClassifier,
    GaussianNB,
    KNeighborsClassifier,
    LinearSVC,
    MLPClassifier,
    NearestCentroidClassifier,
    RandomForestClassifier,
    pairwise_distances,
)


class TestDistances:
    def test_metrics_formulae(self):
        A = np.array([[0.0, 0.0]])
        B = np.array([[3.0, 4.0]])
        assert pairwise_distances(A, B, "euclidean")[0, 0] == pytest.approx(5.0)
        assert pairwise_distances(A, B, "manhattan")[0, 0] == pytest.approx(7.0)
        assert pairwise_distances(A, B, "chebyshev")[0, 0] == pytest.approx(4.0)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros((1, 1)), np.zeros((1, 1)), "cosine")

    def test_ncc_bad_metric_rejected(self):
        with pytest.raises(ValueError):
            NearestCentroidClassifier(metric="cosine")


class TestNearestCentroid:
    def test_centroids_are_class_means(self):
        X = np.array([[0.0], [2.0], [10.0], [12.0]])
        y = np.array([0, 0, 1, 1])
        model = NearestCentroidClassifier("euclidean").fit(X, y)
        assert model.centroids_.ravel().tolist() == [1.0, 11.0]

    def test_metric_changes_decision(self):
        # A point closer to c0 in Chebyshev but closer to c1 in Manhattan.
        X = np.array([[0.0, 0.0], [4.0, 4.0]])
        y = np.array([0, 1])
        point = np.array([[3.5, 0.5]])  # cheb: d0=3.5 d1=3.5; manh: d0=4 d1=4
        point = np.array([[3.0, 1.0]])  # cheb: d0=3, d1=3; manh d0=4 d1=4
        point = np.array([[3.0, 0.0]])  # cheb d0=3 d1=4 -> class0; manh d0=3 d1=5 -> class0
        model_c = NearestCentroidClassifier("chebyshev").fit(X, y)
        assert model_c.predict(point)[0] == 0


class TestKNN:
    def test_k_one_memorises(self):
        X = np.array([[0.0], [1.0], [5.0]])
        y = np.array([0, 1, 2])
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert list(model.predict(X)) == [0, 1, 2]

    def test_k_clamped_to_dataset(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        model = KNeighborsClassifier(n_neighbors=50).fit(X, y)
        model.predict(X)  # must not raise

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0)


class TestNaiveBayes:
    def test_bernoulli_binarize_threshold(self):
        # All signal below the default 0.0 threshold disappears.
        X = np.array([[-2.0], [-1.0], [1.0], [2.0]])
        y = np.array([0, 0, 1, 1])
        default = BernoulliNB().fit(X, y)
        assert default.score(X, y) == 1.0
        shifted = BernoulliNB(binarize=5.0).fit(X, y)
        # everything binarises to 0: no information left
        assert shifted.score(X, y) <= 0.75

    def test_bernoulli_alpha_validation(self):
        with pytest.raises(ValueError):
            BernoulliNB(alpha=0.0)

    def test_gaussian_handles_constant_feature(self):
        X = np.array([[1.0, 0.0], [1.0, 1.0], [1.0, 10.0], [1.0, 11.0]])
        y = np.array([0, 0, 1, 1])
        model = GaussianNB().fit(X, y)
        assert model.score(X, y) == 1.0

    def test_gaussian_priors_reflect_frequencies(self):
        X = np.array([[0.0]] * 9 + [[10.0]])
        y = np.array([0] * 9 + [1])
        model = GaussianNB().fit(X, y)
        assert np.exp(model.class_log_prior_[0]) == pytest.approx(0.9)


class TestDecisionTree:
    def test_max_depth_respected(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 5))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth <= 2

    def test_pure_node_is_leaf(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 0])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth == 0
        assert tree.n_leaves == 1

    def test_min_samples_leaf(self):
        X = np.array([[float(i)] for i in range(10)])
        y = np.array([0] * 9 + [1])
        tree = DecisionTreeClassifier(min_samples_leaf=3).fit(X, y)
        # cannot isolate the single minority sample
        assert tree.n_leaves <= 3

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)


class TestEnsembles:
    def test_forest_more_stable_than_tree(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(150, 8))
        y = ((X[:, 0] + 0.5 * X[:, 1] + rng.normal(scale=0.8, size=150)) > 0).astype(int)
        X_test = rng.normal(size=(150, 8))
        y_test = (X_test[:, 0] + 0.5 * X_test[:, 1] > 0).astype(int)
        forest = RandomForestClassifier(n_estimators=40, seed=0).fit(X, y)
        assert forest.score(X_test, y_test) > 0.7

    def test_adaboost_weights_positive(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(80, 3))
        y = (X[:, 0] > 0).astype(int)
        model = AdaBoostClassifier(n_estimators=10, seed=0).fit(X, y)
        assert all(w > 0 for w in model.estimator_weights_)
        assert len(model.estimators_) >= 1

    def test_adaboost_boosts_beyond_stump(self):
        # XOR-ish data: a single stump cannot fit it; boosting improves.
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, size=(300, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        boosted = AdaBoostClassifier(n_estimators=80, base_max_depth=2, seed=0).fit(X, y)
        assert boosted.score(X, y) > stump.score(X, y)


class TestLinearSVCAndMLP:
    def test_svc_decision_function_shape(self):
        X = np.array([[0.0], [1.0], [5.0], [6.0]])
        y = np.array([0, 0, 1, 1])
        model = LinearSVC(n_epochs=30).fit(X, y)
        assert model.decision_function(X).shape == (4, 2)

    def test_svc_margin_sign(self):
        X = np.array([[-5.0], [-4.0], [4.0], [5.0]])
        y = np.array([0, 0, 1, 1])
        model = LinearSVC(n_epochs=50).fit(X, y)
        scores = model.decision_function(np.array([[-10.0], [10.0]]))
        assert scores[0, 0] > scores[0, 1]
        assert scores[1, 1] > scores[1, 0]

    def test_mlp_validates_params(self):
        with pytest.raises(ValueError):
            MLPClassifier(hidden_layer_sizes=(0,))
        with pytest.raises(ValueError):
            MLPClassifier(n_epochs=0)

    def test_mlp_learns_xor(self):
        X = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]] * 20)
        y = np.array([0, 1, 1, 0] * 20)
        model = MLPClassifier(hidden_layer_sizes=(16, 16), n_epochs=400, seed=0).fit(X, y)
        assert model.score(X, y) == 1.0
