"""FIAT core: client app, IoT proxy, accuracy and latency models."""

from .audit import AuditEntry, AuditLog, build_user_report
from .interactions import CycleError, DeviceInteractionGraph, InteractionRule
from .mud import export_profile, import_profile
from .analysis import (
    Recalls,
    false_negative,
    fp_blocked_manual,
    fp_blocked_non_manual,
    table6_error_columns,
)
from .classifier import EventClassifier, SimpleRuleClassifier, train_event_classifier
from .identification import IDENTIFICATION_FEATURES, DeviceIdentifier, device_fingerprint
from .client import AuthAttempt, FiatApp, ReliableAuthReport, RetryPolicy
from .config import FiatConfig
from .latency import (
    LAN_SCENARIO,
    MOBILE_SCENARIO,
    TABLE7_OPERATIONS,
    TCP_TOLERANCE_S,
    DeviceOperation,
    Scenario,
    command_impaired,
    time_to_first_packet,
    validation_breakdown,
)
from .pipeline import DeviceAccuracy, FiatSystem
from .race import RaceOutcome, race_statistics, simulate_race
from .proxy import Alert, EventDecision, FiatProxy
from .rules import RuleTable
from .validation import HumanValidationService, ValidatedInteraction

__all__ = [
    "AuditEntry",
    "AuditLog",
    "build_user_report",
    "DeviceInteractionGraph",
    "InteractionRule",
    "CycleError",
    "export_profile",
    "import_profile",
    "DeviceIdentifier",
    "device_fingerprint",
    "IDENTIFICATION_FEATURES",
    "FiatConfig",
    "RuleTable",
    "EventClassifier",
    "SimpleRuleClassifier",
    "train_event_classifier",
    "HumanValidationService",
    "ValidatedInteraction",
    "FiatApp",
    "AuthAttempt",
    "RetryPolicy",
    "ReliableAuthReport",
    "FiatProxy",
    "EventDecision",
    "Alert",
    "FiatSystem",
    "DeviceAccuracy",
    "Recalls",
    "fp_blocked_non_manual",
    "fp_blocked_manual",
    "false_negative",
    "table6_error_columns",
    "DeviceOperation",
    "TABLE7_OPERATIONS",
    "Scenario",
    "LAN_SCENARIO",
    "MOBILE_SCENARIO",
    "time_to_first_packet",
    "validation_breakdown",
    "command_impaired",
    "TCP_TOLERANCE_S",
    "RaceOutcome",
    "simulate_race",
    "race_statistics",
]
