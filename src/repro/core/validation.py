"""Proxy-side humanness validation service (paper §5.4).

Receives authentication messages from the FIAT app over the secure
channel, runs the zkSENSE-style humanness classifier on the carried
sensor features, and keeps a short-lived registry of *verified human
interactions* per companion app.  The proxy's access control asks this
service whether a manual event is backed by a fresh human interaction
with the right app on a pre-authorized device.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from time import perf_counter
from typing import Dict, List, Optional

import numpy as np

from ..crypto.replay import ReplayCache
from ..obs import NULL_OBS, Observability
from ..quic.channel import AuthMessage, ChannelReceiver
from ..crypto.keystore import SecureKeystore
from ..sensors.humanness import HumannessValidator

__all__ = ["ValidatedInteraction", "HumanValidationService"]

#: Version of the serialised state schema (see
#: :meth:`HumanValidationService.to_state`).
_STATE_VERSION = 1


@dataclass(frozen=True)
class ValidatedInteraction:
    """One accepted humanness proof."""

    app_package: str
    device_id: str
    verified_at: float
    human: bool
    #: trace ID carried by the proof's wire message ("" = untraced).
    trace_id: str = ""


class HumanValidationService:
    """Channel receiver + humanness classifier + interaction registry."""

    def __init__(
        self,
        keystore: SecureKeystore,
        validator: Optional[HumannessValidator] = None,
        validity_s: float = 60.0,
        freshness_s: float = 30.0,
        max_interactions: int = 4096,
        obs: Optional[Observability] = None,
    ) -> None:
        if max_interactions < 1:
            raise ValueError("max_interactions must be >= 1")
        self.obs = obs if obs is not None else NULL_OBS
        self.receiver = ChannelReceiver(
            keystore,
            replay_cache=ReplayCache(),
            freshness_window_s=freshness_s,
            obs=self.obs,
        )
        self.validator = validator if validator is not None else HumannessValidator().fit()
        self.validity_s = validity_s
        self.max_interactions = max_interactions
        self._interactions: List[ValidatedInteraction] = []
        self.n_rejected_channel = 0
        self.n_non_human = 0
        self.n_pruned = 0

    def ingest(self, wire: bytes, now: float) -> Optional[ValidatedInteraction]:
        """Process one incoming authentication message.

        Returns the recorded interaction, or ``None`` when the channel
        layer rejected the message (bad signature / stale / replay).
        Messages whose sensor features fail the humanness check are
        recorded with ``human=False`` — they must *not* authorize manual
        traffic, but they still matter for logging (§7: FIAT keeps logs
        of all unpredictable events and validations).
        """
        self.prune(now)
        message = self.receiver.receive(wire, now)
        if message is None:
            self.n_rejected_channel += 1
            self.obs.inc("validations_total", outcome="rejected")
            return None
        if self.obs.enabled:
            t0 = perf_counter()
            human = self.validator.is_human_features(np.asarray(message.sensor_features))
            self.obs.observe(
                "humanness_validation_latency_ms", (perf_counter() - t0) * 1000.0
            )
        else:
            human = self.validator.is_human_features(np.asarray(message.sensor_features))
        if not human:
            self.n_non_human += 1
        self.obs.inc(
            "validations_total",
            outcome="accepted-human" if human else "accepted-non-human",
        )
        interaction = ValidatedInteraction(
            app_package=message.app_package,
            device_id=message.device_id,
            verified_at=now,
            human=human,
            trace_id=message.trace_id,
        )
        self.obs.emit(
            "validation.registered",
            t=now,
            trace=message.trace_id,
            app_package=message.app_package,
            human=human,
        )
        self._interactions.append(interaction)
        if len(self._interactions) > self.max_interactions:
            overflow = len(self._interactions) - self.max_interactions
            del self._interactions[:overflow]
            self.n_pruned += overflow
        return interaction

    def has_recent_human(self, app_package: str, now: float) -> bool:
        """Whether a fresh verified-human interaction exists for the app.

        Only interactions already verified by ``now`` count: a proof
        still in flight (retransmission arriving later) must not
        retroactively authorize an event decided before it landed.
        """
        self.prune(now)
        cutoff = now - self.validity_s
        return any(
            i.human and i.app_package == app_package and cutoff <= i.verified_at <= now
            for i in reversed(self._interactions)
        )

    def recent_human_interaction(
        self, app_package: str, now: float
    ) -> Optional[ValidatedInteraction]:
        """Most recent fresh verified-human interaction for the app, if any.

        Pure read (no pruning, no side effects): used by the proxy's
        observability layer to link a decision back to the proof that
        authorized it without perturbing the registry state that
        :meth:`has_recent_human` already maintains.
        """
        cutoff = now - self.validity_s
        for i in reversed(self._interactions):
            if i.human and i.app_package == app_package and cutoff <= i.verified_at <= now:
                return i
        return None

    # -- durable state ------------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """Serialise the registry + channel state (versioned, JSON-native).

        Covers the validated-interaction registry, the channel's replay
        cache (the state closing the QUIC 0-RTT replay window) and the
        rejection/acceptance tallies.  The keystore and the trained
        humanness validator are *not* serialised: they live in the TEE
        and on disk respectively and survive a process death on their
        own — only volatile memory needs the journal.
        """
        return {
            "v": _STATE_VERSION,
            "validity_s": self.validity_s,
            "max_interactions": self.max_interactions,
            "interactions": [asdict(i) for i in self._interactions],
            "n_rejected_channel": self.n_rejected_channel,
            "n_non_human": self.n_non_human,
            "n_pruned": self.n_pruned,
            "receiver": {
                "freshness_window_s": self.receiver.freshness_window_s,
                "rejections": list(self.receiver.rejections),
                "replay_cache": self.receiver.replay_cache.to_state(),
            },
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Load :meth:`to_state` output into this (freshly built) service."""
        if state.get("v") != _STATE_VERSION:
            raise ValueError(
                f"unsupported HumanValidationService state version: {state.get('v')!r}"
            )
        self.validity_s = float(state["validity_s"])
        self.max_interactions = int(state["max_interactions"])
        self._interactions = [
            ValidatedInteraction(
                app_package=str(i["app_package"]),
                device_id=str(i["device_id"]),
                verified_at=float(i["verified_at"]),
                human=bool(i["human"]),
                trace_id=str(i.get("trace_id", "")),
            )
            for i in state["interactions"]  # type: ignore[union-attr]
        ]
        self.n_rejected_channel = int(state["n_rejected_channel"])
        self.n_non_human = int(state["n_non_human"])
        self.n_pruned = int(state["n_pruned"])
        receiver_state: Dict[str, object] = state["receiver"]  # type: ignore[assignment]
        self.receiver.freshness_window_s = float(receiver_state["freshness_window_s"])
        self.receiver.rejections = [str(r) for r in receiver_state["rejections"]]  # type: ignore[union-attr]
        self.receiver.replay_cache = ReplayCache.from_state(
            receiver_state["replay_cache"]  # type: ignore[arg-type]
        )

    def prune(self, now: float) -> None:
        """Drop interactions older than the validity window.

        Called opportunistically by :meth:`ingest` and
        :meth:`has_recent_human`, so the registry stays bounded by the
        arrival rate within one validity window (plus the
        ``max_interactions`` hard cap against bursts).
        """
        cutoff = now - self.validity_s
        kept = [i for i in self._interactions if i.verified_at >= cutoff]
        self.n_pruned += len(self._interactions) - len(kept)
        self._interactions = kept
