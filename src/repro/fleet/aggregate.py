"""Population-level aggregation: a stream of :class:`HomeResult`s → one report.

The fleet report answers the questions one home cannot: how accuracy is
*distributed* across a population (percentiles, not a single Table-6
row), what the per-traffic-class confusion totals look like fleet-wide,
how alerts roll up, and what the merged metrics registry of all shards
says.  Merging rides on :meth:`repro.obs.MetricsSnapshot.merge` — the
fleet is the first real consumer of the sharded-deployment contract the
registry was designed around.

Bounded memory: the fold is *incremental* (:class:`FleetAggregator`),
never a terminal pass over an O(homes) result list.  Three devices keep
the running state O(1) in fleet size:

* population percentiles use a deterministic fixed-size reservoir
  (:class:`SampleReservoir`) — exact up to ``RESERVOIR_CAP`` samples,
  a uniform without-replacement subsample beyond it;
* per-home report rows are kept only for ``ok`` homes in the first
  ``HOME_ROWS_CAP`` spec positions (every failed home's row is always
  kept — failure detail must never be truncated away); the report's
  ``coverage`` block states how many rows were dropped, so truncation
  is never silent;
* fleet metrics merge through a :class:`~repro.obs.mergetree.SnapshotMergeTree`
  — a binomial forest of exact (rational-sum) partial accumulators,
  ``O(log n)`` of them, replacing the old linear
  ``MetricsSnapshot.merge`` left fold; sums are correctly rounded once
  at render time instead of once per shard, and the merge is
  associative, which is what the shard → group → fleet hierarchy (and
  multi-machine merge-final) requires.

Determinism contract: results fold strictly in spec order, so the
report is a pure function of the ``(spec, per-home results)`` sequence
— byte-identical whether the homes ran serially, on 2 workers or on
32, and byte-identical across a checkpoint/resume boundary (the
aggregator state round-trips exactly through
:meth:`FleetAggregator.to_state`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import MetricsSnapshot
from ..obs.mergetree import SnapshotMergeTree
from ..util import spawn_seed
from .spec import FleetSpec
from .worker import HomeResult

__all__ = [
    "FleetAggregator",
    "FleetReport",
    "SampleReservoir",
    "aggregate",
    "percentile",
    "RESERVOIR_CAP",
    "HOME_ROWS_CAP",
]

#: Per-device accuracy fields summarised across the population.
POPULATION_FIELDS = (
    "manual_precision",
    "manual_recall",
    "non_manual_precision",
    "non_manual_recall",
    "fp_manual_blocked",
    "fp_non_manual_blocked",
    "false_negative",
)

#: Quantiles reported per population field.
PERCENTILES = (0.1, 0.5, 0.9)

#: Samples kept per population field before reservoir subsampling
#: begins.  Exactness bound: percentiles are exact for populations of
#: up to this many device rows; beyond it they are computed over a
#: uniform without-replacement sample of this size, whose quantile
#: standard error is ~sqrt(q(1-q)/cap) — about 0.008 at the median.
#: Means and counts stay exact at any scale (running sum).
RESERVOIR_CAP = 4096

#: ``ok`` home rows retained in the report, by spec position.
HOME_ROWS_CAP = 256


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of a sequence (deterministic, pure).

    Matches ``numpy.percentile``'s default ``linear`` method but stays
    in plain Python floats so the report bytes never depend on numpy
    version or dtype promotion rules.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be within [0, 1], got {q}")
    if not values:
        return 0.0
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    within = rank - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * within


class SampleReservoir:
    """Deterministic bounded sample of one population field.

    The first ``cap`` values are kept exactly; from value ``i >= cap``
    on, Algorithm-R replacement is driven by
    ``spawn_seed(root, "reservoir", key, i) % (i + 1)`` — a *stateless*
    per-item decision, so the reservoir content is a pure function of
    the value sequence.  That property is what makes it checkpointable:
    serialising ``(values, n_seen, total)`` and resuming mid-stream
    reproduces the uninterrupted reservoir bit for bit, and the fold
    order (spec order) is identical across backends.
    """

    __slots__ = ("root", "key", "cap", "values", "n_seen", "total")

    def __init__(self, root: int, key: str, cap: int = RESERVOIR_CAP) -> None:
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")
        self.root = int(root)
        self.key = key
        self.cap = cap
        self.values: List[float] = []
        self.n_seen = 0
        self.total = 0.0

    @property
    def exact(self) -> bool:
        """Whether the reservoir still holds every value seen."""
        return self.n_seen <= self.cap

    def add(self, value: float) -> None:
        value = float(value)
        if self.n_seen < self.cap:
            self.values.append(value)
        else:
            slot = spawn_seed(self.root, "reservoir", self.key, self.n_seen) % (
                self.n_seen + 1
            )
            if slot < self.cap:
                self.values[slot] = value
        self.n_seen += 1
        self.total += value

    def stats(self) -> Dict[str, float]:
        """The report's per-field stats block (mean/count always exact)."""
        stats = {f"p{int(q * 100)}": percentile(self.values, q) for q in PERCENTILES}
        stats["mean"] = self.total / self.n_seen if self.n_seen else 0.0
        stats["n"] = float(self.n_seen)
        return stats

    def to_state(self) -> Dict[str, object]:
        """JSON-safe state (exact round trip; ``root``/``key`` are config)."""
        return {"values": list(self.values), "n_seen": self.n_seen, "total": self.total}

    def restore(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`to_state`."""
        self.values = [float(v) for v in state.get("values", [])]
        self.n_seen = int(state.get("n_seen", len(self.values)))
        self.total = float(state.get("total", 0.0))


class FleetAggregator:
    """Incremental spec-order fold of :class:`HomeResult`s.

    The durable-runs core: ``add`` one result at a time, ``to_state``/
    ``from_state`` round-trip the whole running aggregate through a
    checkpoint, ``report`` renders the current fold as a
    :class:`FleetReport`.  Re-folding an index that previously failed
    *replaces* the failure (the quarantine-retry path): the old failed
    row is un-counted before the new result is applied, so checkpoint
    replay of a retried home is naturally idempotent.
    """

    STATE_FORMAT = 2

    def __init__(
        self,
        name: str,
        seed: int,
        home_rows_cap: int = HOME_ROWS_CAP,
        reservoir_cap: int = RESERVOIR_CAP,
    ) -> None:
        self.name = name
        self.seed = seed
        self.home_rows_cap = home_rows_cap
        #: results folded so far (monotonic; checkpoint records carry it)
        self.epoch = 0
        self.n_ok = 0
        self.n_failed = 0
        self.n_ok_rows_dropped = 0
        self.max_idx = -1
        self.ok_rows: Dict[int, Dict[str, object]] = {}
        self.failed_rows: Dict[int, Dict[str, object]] = {}
        self.samples: Dict[str, SampleReservoir] = {
            field_name: SampleReservoir(seed, field_name, reservoir_cap)
            for field_name in POPULATION_FIELDS
        }
        self.class_counts: Dict[str, Dict[str, int]] = {}
        self.alerts: Dict[str, int] = {}
        self.merge_tree = SnapshotMergeTree()

    @property
    def completed(self) -> int:
        """Homes folded (ok + failed), net of quarantine re-folds."""
        return self.n_ok + self.n_failed

    @property
    def quarantined(self) -> List[Tuple[int, str]]:
        """``(idx, home_id)`` of every home currently failed, spec order."""
        return [
            (idx, str(self.failed_rows[idx]["home_id"]))
            for idx in sorted(self.failed_rows)
        ]

    def add(self, idx: int, result: HomeResult) -> None:
        """Fold one result at spec position ``idx`` (spec order!)."""
        self._fold(idx, result, fold_metrics=True)

    def absorb_range(
        self,
        start_idx: int,
        results: "Sequence[HomeResult]",
        merge_tree_state: Optional[Dict[str, object]] = None,
    ) -> None:
        """Fold a contiguous result range, absorbing its metrics subtree.

        The distributed-fleet merge step: ``results[k]`` is the result
        for spec position ``start_idx + k``.  Rows, reservoirs, class
        counts and alerts are re-folded here in spec order (the sample
        reservoirs key replacement on the *global* fold count, so they
        cannot be merged from per-range state), while the metrics union
        arrives pre-reduced as ``merge_tree_state`` — the serialized
        :class:`SnapshotMergeTree` the range's machine built over its
        own ok results, absorbed wholesale.  Because the accumulator
        merge is exact, absorbing per-range subtrees in spec order
        yields bit-identical metrics to folding every home one by one.

        Fail-closed: the shipped subtree must cover exactly the ok
        results of the range, else :class:`ValueError`.  With
        ``merge_tree_state=None`` the metrics are re-folded locally
        (offline merges of raw results logs).
        """
        results = list(results)
        tree: Optional[SnapshotMergeTree] = None
        if merge_tree_state is not None:
            tree = SnapshotMergeTree.from_state(merge_tree_state)
            n_ok = sum(1 for result in results if result.ok)
            if tree.n_shards != n_ok:
                raise ValueError(
                    f"range merge tree covers {tree.n_shards} ok shards, "
                    f"but the range [{start_idx}, {start_idx + len(results)}) "
                    f"has {n_ok}"
                )
        for offset, result in enumerate(results):
            self._fold(start_idx + offset, result, fold_metrics=tree is None)
        if tree is not None:
            self.merge_tree.absorb(tree)

    def _fold(self, idx: int, result: HomeResult, fold_metrics: bool) -> None:
        self.epoch += 1
        self.max_idx = max(self.max_idx, idx)
        if idx in self.failed_rows:  # quarantined home re-run: replace
            del self.failed_rows[idx]
            self.n_failed -= 1
        if not result.ok:
            self.n_failed += 1
            self.failed_rows[idx] = result.to_dict()
            return
        self.n_ok += 1
        if idx < self.home_rows_cap:
            self.ok_rows[idx] = result.to_dict()
        else:
            self.n_ok_rows_dropped += 1
        for row in result.devices.values():
            for field_name in POPULATION_FIELDS:
                self.samples[field_name].add(float(row[field_name]))
        for cls_name, tally in result.class_counts.items():
            target = self.class_counts.setdefault(cls_name, {"events": 0, "blocked": 0})
            target["events"] += int(tally["events"])
            target["blocked"] += int(tally["blocked"])
        for kind, count in result.alerts.items():
            self.alerts[kind] = self.alerts.get(kind, 0) + int(count)
        if fold_metrics:
            self.merge_tree.add(result.snapshot())

    @property
    def merged(self) -> MetricsSnapshot:
        """The merged fleet metrics of every ok shard folded so far."""
        return self.merge_tree.result()

    # -- checkpoint round trip ---------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """JSON-safe running state; exact float round trip by contract."""
        return {
            "format": self.STATE_FORMAT,
            "epoch": self.epoch,
            "n_ok": self.n_ok,
            "n_failed": self.n_failed,
            "n_ok_rows_dropped": self.n_ok_rows_dropped,
            "max_idx": self.max_idx,
            # JSON objects key by string; idx round-trips through str()
            "ok_rows": {str(idx): row for idx, row in self.ok_rows.items()},
            "failed_rows": {str(idx): row for idx, row in self.failed_rows.items()},
            "samples": {name: r.to_state() for name, r in self.samples.items()},
            "class_counts": self.class_counts,
            "alerts": self.alerts,
            # The exact forest, not a rounded snapshot: resuming from a
            # checkpoint must reproduce the uninterrupted merge bit for
            # bit, including the deferred single rounding step.
            "merge_tree": self.merge_tree.to_state(),
        }

    @classmethod
    def from_state(
        cls,
        state: Dict[str, object],
        name: str,
        seed: int,
        home_rows_cap: int = HOME_ROWS_CAP,
        reservoir_cap: int = RESERVOIR_CAP,
    ) -> "FleetAggregator":
        """Inverse of :meth:`to_state`."""
        state_format = int(state.get("format", -1))
        if state_format not in (1, cls.STATE_FORMAT):
            raise ValueError(
                f"unsupported aggregator state format {state.get('format')!r}"
            )
        agg = cls(name, seed, home_rows_cap=home_rows_cap, reservoir_cap=reservoir_cap)
        agg.epoch = int(state["epoch"])
        agg.n_ok = int(state["n_ok"])
        agg.n_failed = int(state["n_failed"])
        agg.n_ok_rows_dropped = int(state.get("n_ok_rows_dropped", 0))
        agg.max_idx = int(state.get("max_idx", -1))
        agg.ok_rows = {int(idx): dict(row) for idx, row in state["ok_rows"].items()}
        agg.failed_rows = {
            int(idx): dict(row) for idx, row in state["failed_rows"].items()
        }
        for name_, reservoir_state in state.get("samples", {}).items():
            if name_ in agg.samples:
                agg.samples[name_].restore(reservoir_state)
        agg.class_counts = {
            cls_name: {k: int(v) for k, v in tally.items()}
            for cls_name, tally in state.get("class_counts", {}).items()
        }
        agg.alerts = {k: int(v) for k, v in state.get("alerts", {}).items()}
        if state_format == 1:
            # Pre-tree checkpoint: lift the already-rounded snapshot as a
            # single range so an old state dir stays resumable.
            metrics = state.get("metrics", {})
            snapshot = MetricsSnapshot(
                counters=dict(metrics.get("counters", {})),
                gauges=dict(metrics.get("gauges", {})),
                histograms=dict(metrics.get("histograms", {})),
            )
            if any((snapshot.counters, snapshot.gauges, snapshot.histograms)):
                agg.merge_tree.add(snapshot)
        else:
            agg.merge_tree = SnapshotMergeTree.from_state(state["merge_tree"])
        return agg

    # -- rendering ---------------------------------------------------------------

    def report(
        self, n_planned: Optional[int] = None, partial: bool = False
    ) -> "FleetReport":
        """Render the current fold as a :class:`FleetReport`."""
        planned = self.completed if n_planned is None else int(n_planned)
        population = {
            name: reservoir.stats()
            for name, reservoir in self.samples.items()
            if reservoir.n_seen
        }
        rows = [
            self.ok_rows.get(idx, self.failed_rows.get(idx))
            for idx in sorted({*self.ok_rows, *self.failed_rows})
        ]
        quarantined = [home_id for _, home_id in self.quarantined]
        merged = self.merge_tree.result()
        return FleetReport(
            name=self.name,
            seed=self.seed,
            n_homes=planned,
            n_ok=self.n_ok,
            n_failed=self.n_failed,
            homes=rows,
            population=population,
            class_counts={k: dict(v) for k, v in self.class_counts.items()},
            alerts=dict(self.alerts),
            metrics={
                "counters": merged.counters,
                "gauges": merged.gauges,
                "histograms": merged.histograms,
            },
            quarantined=quarantined,
            coverage={
                "planned": planned,
                "completed": self.completed,
                "ok": self.n_ok,
                "failed": self.n_failed,
                "quarantined": len(quarantined),
                "ok_rows_dropped": self.n_ok_rows_dropped,
                "partial": bool(partial or self.completed < planned),
            },
        )


@dataclass
class FleetReport:
    """The population report: per-home rows plus fleet-level rollups."""

    name: str
    seed: int
    n_homes: int
    n_ok: int
    n_failed: int
    #: one :class:`HomeResult` encoding per retained home, in spec order
    #: (all failed homes + ok homes within the first ``HOME_ROWS_CAP``
    #: spec positions; ``coverage["ok_rows_dropped"]`` counts the rest)
    homes: List[Dict[str, object]] = field(default_factory=list)
    #: accuracy distribution per field: ``{"p10":…, "p50":…, "p90":…, "mean":…, "n":…}``
    population: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: fleet-wide per-ground-truth-class decision tallies
    class_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: alert tallies by kind across all homes
    alerts: Dict[str, int] = field(default_factory=dict)
    #: merged deterministic :class:`MetricsSnapshot` of every ok shard
    metrics: Dict[str, object] = field(default_factory=dict)
    #: homes that exhausted their retry budget, in spec order —
    #: reattemptable with ``--resume --retry-quarantined``
    quarantined: List[str] = field(default_factory=list)
    #: explicit coverage counts (the partial-report contract): planned/
    #: completed/ok/failed/quarantined homes, dropped ok rows, and
    #: whether the run ended early (``partial``)
    coverage: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every home completed."""
        return self.n_failed == 0 and not bool(self.coverage.get("partial"))

    @property
    def failed_homes(self) -> List[str]:
        """IDs of homes that did not complete, in spec order."""
        return [str(h["home_id"]) for h in self.homes if h["status"] != "ok"]

    def snapshot(self) -> MetricsSnapshot:
        """Rehydrate the merged fleet metrics snapshot."""
        return MetricsSnapshot(
            counters=dict(self.metrics.get("counters", {})),
            gauges=dict(self.metrics.get("gauges", {})),
            histograms=dict(self.metrics.get("histograms", {})),
        )

    def to_json(self, indent: int = 2) -> str:
        """Canonical JSON encoding — the fleet determinism artifact.

        Sorted keys and a fixed field set: two runs of the same spec
        must produce byte-identical files regardless of backend or
        ``--jobs`` — and a killed-and-resumed run must produce the same
        bytes as an uninterrupted one.  CI diffs exactly these bytes.
        """
        return json.dumps(
            {
                "name": self.name,
                "seed": self.seed,
                "n_homes": self.n_homes,
                "n_ok": self.n_ok,
                "n_failed": self.n_failed,
                "homes": self.homes,
                "population": self.population,
                "class_counts": self.class_counts,
                "alerts": self.alerts,
                "metrics": self.metrics,
                "quarantined": self.quarantined,
                "coverage": self.coverage,
            },
            indent=indent,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FleetReport":
        """Inverse of :meth:`to_json`."""
        data = json.loads(text)
        return cls(
            name=str(data["name"]),
            seed=int(data["seed"]),
            n_homes=int(data["n_homes"]),
            n_ok=int(data["n_ok"]),
            n_failed=int(data["n_failed"]),
            homes=list(data.get("homes", [])),
            population=dict(data.get("population", {})),
            class_counts=dict(data.get("class_counts", {})),
            alerts=dict(data.get("alerts", {})),
            metrics=dict(data.get("metrics", {})),
            quarantined=list(data.get("quarantined", [])),
            coverage=dict(data.get("coverage", {})),
        )

    def render(self, top: int = 8) -> str:
        """Human-readable digest (the CLI's stdout view)."""
        lines = [
            f"fleet {self.name!r} (seed {self.seed}): "
            f"{self.n_ok}/{self.n_homes} homes ok"
        ]
        if self.coverage.get("partial"):
            lines.append(
                f"  PARTIAL: {self.coverage.get('completed', 0)}/"
                f"{self.coverage.get('planned', self.n_homes)} homes completed"
            )
        if self.n_failed:
            lines.append(f"  failed: {', '.join(self.failed_homes)}")
        if self.quarantined:
            lines.append(
                f"  quarantined ({len(self.quarantined)}): "
                f"{', '.join(self.quarantined)} — rerun with --resume --retry-quarantined"
            )
        if self.population:
            lines.append(f"  {'accuracy field':24s} {'p10':>7s} {'p50':>7s} {'p90':>7s} {'mean':>7s}")
            for name in POPULATION_FIELDS:
                stats = self.population.get(name)
                if stats:
                    lines.append(
                        f"  {name:24s} {stats['p10']:7.3f} {stats['p50']:7.3f} "
                        f"{stats['p90']:7.3f} {stats['mean']:7.3f}"
                    )
        if self.class_counts:
            for cls_name in sorted(self.class_counts):
                tally = self.class_counts[cls_name]
                lines.append(
                    f"  {cls_name:10s} {tally['events']:6d} events, "
                    f"{tally['blocked']:6d} blocked"
                )
        if self.alerts:
            rollup = ", ".join(f"{k}={v}" for k, v in sorted(self.alerts.items()))
            lines.append(f"  alerts: {rollup}")
        rows = [
            (str(h["home_id"]), str(h["status"]), h)
            for h in self.homes
        ]
        for home_id, status, home in rows[:top]:
            detail = (
                f"{len(home.get('devices', {}))} devices, "
                f"{home.get('n_decisions', 0)} decisions"
                if status == "ok"
                else str(home.get("error", ""))
            )
            lines.append(f"  {home_id:12s} {status:7s} {detail}")
        if len(rows) > top:
            lines.append(f"  ... {len(rows) - top} more homes (see the JSON report)")
        dropped = int(self.coverage.get("ok_rows_dropped", 0) or 0)
        if dropped:
            lines.append(f"  ({dropped} ok home rows beyond the retention cap omitted)")
        return "\n".join(lines)


def aggregate(spec: FleetSpec, results: Sequence[HomeResult]) -> FleetReport:
    """Fold per-home results (in spec order) into one :class:`FleetReport`.

    The materialised convenience form of :class:`FleetAggregator` for
    callers that already hold every result (tests, small fleets); the
    runner itself folds incrementally and never builds ``results``.
    """
    if len(results) != len(spec.homes):
        raise ValueError(
            f"expected {len(spec.homes)} results for fleet {spec.name!r}, "
            f"got {len(results)}"
        )
    for home, result in zip(spec.homes, results):
        if home.home_id != result.home_id:
            raise ValueError(
                f"result order mismatch: spec {home.home_id!r} vs "
                f"result {result.home_id!r}"
            )
    agg = FleetAggregator(spec.name, spec.seed)
    for idx, result in enumerate(results):
        agg.add(idx, result)
    return agg.report(n_planned=len(spec.homes))
