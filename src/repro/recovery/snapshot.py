"""Atomic, checksummed state snapshots.

A snapshot is the full serialised security state of the proxy stack at
one instant; together with the journal segment opened at the same
moment it forms one *epoch*: ``recover = load(snapshot) +
replay(journal)``.  Snapshots bound journal replay time and enable
compaction (older epochs are deleted once a newer snapshot is durable).

File format: a single header line ``<crc32-hex8>`` followed by the
canonical JSON document the CRC covers.  Writes go to a temp file that
is atomically renamed into place (``os.replace``), so a crash mid-write
never destroys the previous epoch's snapshot — the reader simply rejects
a half-written file and recovery falls back to the prior epoch.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, Optional

__all__ = ["SNAPSHOT_FORMAT_VERSION", "write_snapshot", "read_snapshot"]

#: Version of the snapshot *container* (component schemas carry their own).
SNAPSHOT_FORMAT_VERSION = 1


def write_snapshot(path: str, state: Dict[str, object]) -> int:
    """Atomically write ``state`` as a checksummed snapshot file.

    Returns the number of bytes written.  The payload must be
    JSON-native (the component ``to_state()`` contract).
    """
    document = {"format": SNAPSHOT_FORMAT_VERSION, "state": state}
    payload = json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")
    blob = f"{zlib.crc32(payload):08x}\n".encode("ascii") + payload
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return len(blob)


def read_snapshot(path: str) -> Optional[Dict[str, object]]:
    """Load a snapshot's state; ``None`` when missing or corrupt.

    Corruption (bad CRC, truncation, unparsable JSON, unknown container
    format) is never an error — recovery treats an unreadable snapshot
    exactly like a missing one and falls back to an older epoch.
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError:
        return None
    newline = blob.find(b"\n")
    if newline < 0:
        return None
    try:
        expected = int(blob[:newline], 16)
    except ValueError:
        return None
    payload = blob[newline + 1 :]
    if zlib.crc32(payload) != expected:
        return None
    try:
        document = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(document, dict) or document.get("format") != SNAPSHOT_FORMAT_VERSION:
        return None
    state = document.get("state")
    return state if isinstance(state, dict) else None
