"""Figure 2: predictability of control/automated/manual traffic per device.

Reproduces the testbed measurement (PortLess definition): control
~98 % predictable everywhere except the Nest-E outlier (90.7 % from its
drifting motion-sensor wakeups); automated ~90 % except the plugs
(SP10/WP3 at 0 %: their automations are only 2 notification packets);
manual lowest, except cameras (60-65 % thanks to constant-rate video).
"""

from repro.net import FlowDefinition, TrafficClass
from repro.predictability import analyze_trace

from benchmarks._helpers import print_table


def _fmt(value):
    return "-" if value is None else f"{value:.2f}"


def test_fig2_per_device_per_class(benchmark, testbed_household):
    trace = testbed_household.trace
    report = benchmark.pedantic(
        lambda: analyze_trace(trace, FlowDefinition.PORTLESS, dns=testbed_household.cloud.dns),
        rounds=1,
        iterations=1,
    )

    rows = []
    for device in sorted(report.devices):
        entry = report.devices[device]
        rows.append(
            (
                device,
                _fmt(entry.class_fraction(TrafficClass.CONTROL)),
                _fmt(entry.class_fraction(TrafficClass.AUTOMATED)),
                _fmt(entry.class_fraction(TrafficClass.MANUAL)),
                f"{entry.fraction:.2f}",
            )
        )
    print_table(
        "Fig 2 — testbed predictability per device and class, PortLess "
        "(paper: control ~98 %, Nest-E outlier 90.7 %; automated ~90 %, "
        "plugs 0 %; manual lowest, cameras 60-65 %)",
        ("device", "control", "automated", "manual", "overall"),
        rows,
    )

    devices = report.devices
    # control traffic ~98 % everywhere...
    for name, entry in devices.items():
        control = entry.class_fraction(TrafficClass.CONTROL)
        assert control is not None and control > 0.88, name
    # ...with Nest-E as the weakest control predictability (the outlier)
    nest_control = devices["Nest-E"].class_fraction(TrafficClass.CONTROL)
    others = [
        e.class_fraction(TrafficClass.CONTROL)
        for n, e in devices.items()
        if n != "Nest-E"
    ]
    assert nest_control <= min(others) + 0.02

    # plugs: automated and manual fully unpredictable
    for plug in ("SP10", "WP3"):
        manual = devices[plug].class_fraction(TrafficClass.MANUAL)
        assert manual in (None, 0.0), plug

    # cameras: manual 40-90 % (the video-stream effect)
    for camera in ("WyzeCam", "Blink"):
        manual = devices[camera].class_fraction(TrafficClass.MANUAL)
        assert manual is not None and 0.4 < manual < 0.9, camera

    # speakers: manual clearly below control
    for speaker in ("EchoDot4", "HomeMini", "Home", "EchoDot3"):
        entry = devices[speaker]
        manual = entry.class_fraction(TrafficClass.MANUAL)
        control = entry.class_fraction(TrafficClass.CONTROL)
        assert manual is not None and manual < control - 0.3, speaker
