"""Model inspection: permutation feature importance (paper §4.3, Table 4).

For each feature, its values are shuffled across samples and the drop in
a reference score (F1 on the manual class in the paper) is recorded; the
paper repeats the shuffle 50 times per feature for stable estimates.  A
feature whose permutation does not hurt the score — e.g. destination-IP
octets in Table 4 — is unimportant, which is the paper's evidence that
the event classifier transfers across locations.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from .base import Classifier, check_Xy
from .metrics import f1_score

__all__ = ["permutation_importance", "rank_features"]


def permutation_importance(
    estimator: Classifier,
    X: Any,
    y: Any,
    scoring: Optional[Callable[[Classifier, np.ndarray, np.ndarray], float]] = None,
    n_repeats: int = 50,
    seed: Optional[int] = 0,
) -> Dict[str, np.ndarray]:
    """Permutation importances of a *fitted* estimator on ``(X, y)``.

    Parameters
    ----------
    estimator:
        Already-fitted classifier.
    scoring:
        Callable ``(estimator, X, y) -> float``; defaults to accuracy via
        ``estimator.score``.
    n_repeats:
        Shuffles per feature (paper: 50).

    Returns
    -------
    dict with ``importances_mean``, ``importances_std`` (per feature) and
    ``baseline_score``.
    """
    X, y = check_Xy(X, y)
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    score = scoring if scoring is not None else (lambda est, X_, y_: est.score(X_, y_))
    rng = np.random.default_rng(seed)
    baseline = float(score(estimator, X, y))
    n_features = X.shape[1]
    drops = np.zeros((n_features, n_repeats))
    for feature in range(n_features):
        for repeat in range(n_repeats):
            shuffled = X.copy()
            rng.shuffle(shuffled[:, feature])
            drops[feature, repeat] = baseline - float(score(estimator, shuffled, y))
    return {
        "importances_mean": drops.mean(axis=1),
        "importances_std": drops.std(axis=1),
        "baseline_score": np.asarray(baseline),
    }


def manual_f1_scorer(positive: Any) -> Callable[[Classifier, np.ndarray, np.ndarray], float]:
    """Scorer measuring F1 of one positive class (Table 4 uses manual F1)."""

    def scorer(estimator: Classifier, X: np.ndarray, y: np.ndarray) -> float:
        return f1_score(y, estimator.predict(X), positive)

    return scorer


def rank_features(
    importances: np.ndarray, feature_names: Sequence[str]
) -> List[tuple]:
    """Sort ``(name, importance)`` pairs by decreasing importance."""
    if len(importances) != len(feature_names):
        raise ValueError("importances and feature_names lengths differ")
    pairs = list(zip(feature_names, (float(v) for v in importances)))
    return sorted(pairs, key=lambda item: item[1], reverse=True)


def sampling_shapley_importance(
    estimator: Classifier,
    X: Any,
    y: Any,
    scoring: Optional[Callable[[Classifier, np.ndarray, np.ndarray], float]] = None,
    n_permutations: int = 20,
    seed: Optional[int] = 0,
) -> Dict[str, np.ndarray]:
    """Sampling approximation of Shapley feature importances (paper §7).

    The paper's future work proposes SHAP-style attributions to
    "verify/measure the effectiveness of each feature".  This implements
    the classical permutation-sampling Shapley estimator (Castro et al.;
    the model-agnostic core of SHAP): for random feature orderings, a
    feature's marginal contribution is the score gain from *revealing*
    its true column on top of the coalition of features revealed before
    it (unrevealed features stay shuffled).  Averaged over orderings,
    the estimates converge to Shapley values of the score game.

    Returns ``{"shapley_mean", "shapley_std", "baseline_score"}``;
    ``shapley_mean`` sums (in expectation) to
    ``score(full) - score(all shuffled)``.
    """
    X, y = check_Xy(X, y)
    if n_permutations < 1:
        raise ValueError("n_permutations must be >= 1")
    score = scoring if scoring is not None else (lambda est, X_, y_: est.score(X_, y_))
    rng = np.random.default_rng(seed)
    n_features = X.shape[1]
    contributions = np.zeros((n_features, n_permutations))

    shuffled_base = X.copy()
    for feature in range(n_features):
        rng.shuffle(shuffled_base[:, feature])

    for repeat in range(n_permutations):
        order = rng.permutation(n_features)
        current = shuffled_base.copy()
        previous_score = float(score(estimator, current, y))
        for feature in order:
            current[:, feature] = X[:, feature]
            new_score = float(score(estimator, current, y))
            contributions[feature, repeat] = new_score - previous_score
            previous_score = new_score

    return {
        "shapley_mean": contributions.mean(axis=1),
        "shapley_std": contributions.std(axis=1),
        "baseline_score": np.asarray(float(score(estimator, X, y))),
    }
