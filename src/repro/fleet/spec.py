"""Declarative fleet specifications: many homes, one JSON document.

A :class:`FleetSpec` is to the fleet what a scenario document is to one
deployment (:mod:`repro.scenarios`): plain data that fully determines
the run.  Each :class:`HomeSpec` describes one independent household —
device mix, routine intensity (the §6 workload volumes), attack mix,
optional fault plan — plus the home's seed.

Seeds are *derived*, never chosen: :func:`home_seed` hashes
``(fleet_seed, home_id)`` through :func:`repro.util.spawn_seed`, so two
homes of one fleet (or the same home across serial and process
backends) can never share an RNG stream.  ``seed + i`` offsets are
forbidden here by construction — they collide with the component
streams other subsystems derive from their own roots.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..testbed.devices import TESTBED
from ..util import spawn_seed

__all__ = [
    "HomeSpec",
    "FleetSpec",
    "SpecStream",
    "MemorySpecStream",
    "JsonlSpecStream",
    "home_seed",
    "generate_fleet",
    "iter_generate_fleet",
    "open_spec",
    "write_spec_jsonl",
]

#: Rule devices (no ML training): the cheap default pool for large fleets.
RULE_DEVICES: Tuple[str, ...] = ("SP10", "WP3")


def home_seed(fleet_seed: int, home_id: str) -> int:
    """The derived seed of one home — a stable hash, not an offset."""
    return spawn_seed(fleet_seed, "home", home_id)


@dataclass(frozen=True)
class HomeSpec:
    """One household of a fleet: device mix, workload, attack mix, faults."""

    home_id: str
    devices: Tuple[str, ...]
    #: derived via :func:`home_seed`; carried explicitly so a spec file
    #: is self-contained and a worker needs no access to the fleet root
    seed: int
    #: §6 workload volumes (routine intensity scales these)
    n_manual: int = 6
    n_non_manual: int = 12
    n_attacks: int = 6
    #: fraction of attackers shipping a spyware still-phone proof
    attack_with_proof: float = 0.3
    n_training_events: int = 120
    location: str = "US"
    #: kwargs for :class:`repro.faults.FaultPlan` (``None`` = clean home)
    faults: Optional[Dict[str, object]] = None
    #: journal this home's security state under the fleet state root
    recover: bool = False
    #: testing hook: the worker raises instead of running the home
    #: (``"raise"``), kills its own process (``"exit"``), wedges forever
    #: (``"hang"``), or fails exactly once then succeeds (``"flaky"``)
    poison: str = ""

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError(f"home {self.home_id!r} needs at least one device")
        unknown = [d for d in self.devices if d not in TESTBED]
        if unknown:
            raise ValueError(f"home {self.home_id!r}: unknown devices {unknown}")
        if not isinstance(self.devices, tuple):
            object.__setattr__(self, "devices", tuple(self.devices))
        if self.poison not in ("", "raise", "exit", "hang", "flaky"):
            raise ValueError(
                f"poison must be '', 'raise', 'exit', 'hang' or 'flaky', "
                f"got {self.poison!r}"
            )
        for name in ("n_manual", "n_non_manual", "n_attacks"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding (devices as a list, defaults included)."""
        data = asdict(self)
        data["devices"] = list(self.devices)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HomeSpec":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        payload = dict(data)
        payload["devices"] = tuple(payload.get("devices", ()))
        if payload.get("faults") is not None:
            payload["faults"] = dict(payload["faults"])
        return cls(**payload)


@dataclass(frozen=True)
class FleetSpec:
    """A population of independent homes plus the fleet-level seed."""

    name: str = "fleet"
    seed: int = 0
    homes: Tuple[HomeSpec, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.homes, tuple):
            object.__setattr__(self, "homes", tuple(self.homes))
        seen: Dict[str, None] = {}
        for home in self.homes:
            if home.home_id in seen:
                raise ValueError(f"duplicate home_id {home.home_id!r}")
            seen[home.home_id] = None

    def __len__(self) -> int:
        return len(self.homes)

    # -- serialisation -----------------------------------------------------------

    def to_json(self, indent: int = 2) -> str:
        """Canonical JSON encoding of the whole fleet."""
        return json.dumps(
            {
                "name": self.name,
                "seed": self.seed,
                "homes": [home.to_dict() for home in self.homes],
            },
            indent=indent,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FleetSpec":
        """Inverse of :meth:`to_json`.

        Homes missing a ``seed`` get the canonical derived one; homes
        carrying a seed keep it verbatim (a spec file is authoritative).
        """
        data = json.loads(text)
        fleet_seed = int(data.get("seed", 0))
        homes = []
        for entry in data.get("homes", []):
            entry = dict(entry)
            entry.setdefault("seed", home_seed(fleet_seed, str(entry.get("home_id"))))
            homes.append(HomeSpec.from_dict(entry))
        return cls(name=str(data.get("name", "fleet")), seed=fleet_seed, homes=tuple(homes))

    @classmethod
    def load(cls, path: str) -> "FleetSpec":
        """Read a fleet spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def dump(self, path: str) -> None:
        """Write the fleet spec to a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    def stream(self) -> "MemorySpecStream":
        """This spec as a :class:`SpecStream` (the runner's input type)."""
        return MemorySpecStream(self)


class SpecStream:
    """Bounded-memory source of one fleet's homes.

    The :class:`~repro.fleet.runner.FleetRunner` consumes specs through
    this interface so a million-home fleet never has to materialise a
    million :class:`HomeSpec`s at once.  A stream carries the fleet
    header (``name``, ``seed``, ``n_homes`` when known) plus a stable
    ``digest`` of the underlying document — the fleet checkpoint layer
    records the digest so a ``--resume`` against a *different* spec is
    rejected instead of silently merging two populations.

    ``iter_homes`` must be re-iterable (each call starts from home 0):
    a resumed run walks the stream again to find the homes it skipped.
    """

    name: str = "fleet"
    seed: int = 0
    #: total homes when the source declares it (``None`` = unknown)
    n_homes: Optional[int] = None
    #: SHA-256 hex digest of the spec document
    digest: str = ""

    def iter_homes(self) -> Iterator[HomeSpec]:
        """Yield every home in spec order, from the top."""
        raise NotImplementedError


class MemorySpecStream(SpecStream):
    """A materialised :class:`FleetSpec` exposed as a stream."""

    def __init__(self, spec: FleetSpec) -> None:
        self.spec = spec
        self.name = spec.name
        self.seed = spec.seed
        self.n_homes = len(spec)
        self.digest = hashlib.sha256(spec.to_json().encode("utf-8")).hexdigest()

    def iter_homes(self) -> Iterator[HomeSpec]:
        return iter(self.spec.homes)


class JsonlSpecStream(SpecStream):
    """A fleet spec streamed line-by-line from a JSONL file.

    Format: the first line is the fleet header
    ``{"fleet": {"name": …, "seed": …, "n_homes": …}}``; every further
    line is one :meth:`HomeSpec.to_dict` document.  Homes missing a
    ``seed`` get the canonical derived one (same rule as
    :meth:`FleetSpec.from_json`).  Unlike the in-memory path, the
    streaming reader does *not* enforce fleet-wide ``home_id``
    uniqueness — that check is O(homes) memory, exactly what this
    reader exists to avoid; generators are responsible for unique IDs.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        digest = hashlib.sha256()
        with open(path, "rb") as handle:
            header_line = handle.readline()
            digest.update(header_line)
            n_homes = 0
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
                n_homes += chunk.count(b"\n")
        try:
            header = json.loads(header_line.decode("utf-8"))["fleet"]
        except (ValueError, KeyError, UnicodeDecodeError) as error:
            raise ValueError(
                f"{path}: first line must be a {{\"fleet\": …}} header ({error})"
            ) from error
        self.name = str(header.get("name", "fleet"))
        self.seed = int(header.get("seed", 0))
        declared = header.get("n_homes")
        self.n_homes = int(declared) if declared is not None else n_homes
        self.digest = digest.hexdigest()

    def iter_homes(self) -> Iterator[HomeSpec]:
        with open(self.path, "r", encoding="utf-8") as handle:
            handle.readline()  # header
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                entry = json.loads(line)
                entry.setdefault("seed", home_seed(self.seed, str(entry.get("home_id"))))
                yield HomeSpec.from_dict(entry)


def open_spec(path: str) -> SpecStream:
    """Open a spec file as a stream — ``.jsonl`` streamed, else loaded."""
    if path.endswith(".jsonl"):
        return JsonlSpecStream(path)
    return FleetSpec.load(path).stream()


def write_spec_jsonl(
    path: str,
    homes: "Iterator[HomeSpec] | Sequence[HomeSpec]",
    name: str = "fleet",
    seed: int = 0,
    n_homes: Optional[int] = None,
) -> int:
    """Stream a fleet to a JSONL spec file; returns the homes written.

    The header is written first with the declared ``n_homes`` (when
    known up front) so readers learn the fleet size without scanning;
    homes are appended one line at a time — the writer never holds more
    than one :class:`HomeSpec` in memory.
    """
    tmp_path = path + ".tmp"
    written = 0
    with open(tmp_path, "w", encoding="utf-8") as handle:
        header = {"fleet": {"name": name, "seed": seed, "n_homes": n_homes}}
        handle.write(json.dumps(header, sort_keys=True, separators=(",", ":")) + "\n")
        for home in homes:
            handle.write(
                json.dumps(home.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"
            )
            written += 1
    if n_homes is not None and written != n_homes:
        os.unlink(tmp_path)
        raise ValueError(f"declared n_homes={n_homes} but wrote {written} homes")
    os.replace(tmp_path, path)
    return written


def generate_fleet(
    n_homes: int,
    seed: int = 0,
    name: str = "fleet",
    device_pool: Optional[Sequence[str]] = None,
    min_devices: int = 1,
    max_devices: int = 2,
    n_manual: int = 6,
    n_non_manual: int = 12,
    n_attacks: int = 6,
    n_training_events: int = 120,
    fault_fraction: float = 0.0,
) -> FleetSpec:
    """Synthesise a deterministic fleet of ``n_homes`` varied households.

    Per home, an RNG keyed by ``spawn_seed(seed, "gen", home_id)`` draws
    the device mix from ``device_pool`` (default: the cheap rule
    devices, so million-home fleets need no ML training), a routine
    intensity in [0.5, 1.5] scaling the §6 workload volumes, the attack
    mix (spyware-proof fraction), and — for ``fault_fraction`` of homes
    — a lossy-network :class:`~repro.faults.FaultPlan`.  Identical
    arguments reproduce an identical spec, byte for byte.
    """
    return FleetSpec(
        name=name,
        seed=seed,
        homes=tuple(
            iter_generate_fleet(
                n_homes,
                seed=seed,
                device_pool=device_pool,
                min_devices=min_devices,
                max_devices=max_devices,
                n_manual=n_manual,
                n_non_manual=n_non_manual,
                n_attacks=n_attacks,
                n_training_events=n_training_events,
                fault_fraction=fault_fraction,
            )
        ),
    )


def iter_generate_fleet(
    n_homes: int,
    seed: int = 0,
    device_pool: Optional[Sequence[str]] = None,
    min_devices: int = 1,
    max_devices: int = 2,
    n_manual: int = 6,
    n_non_manual: int = 12,
    n_attacks: int = 6,
    n_training_events: int = 120,
    fault_fraction: float = 0.0,
) -> Iterator[HomeSpec]:
    """Yield the homes of :func:`generate_fleet` one at a time.

    The streaming form of the generator: home ``i`` is a pure function
    of ``(seed, i)``, so a million-home population can be written to a
    JSONL spec (:func:`write_spec_jsonl`) without ever materialising
    the fleet — the memory the durable-runs bench holds against.
    """
    if n_homes < 1:
        raise ValueError("n_homes must be >= 1")
    pool = tuple(device_pool if device_pool else RULE_DEVICES)
    max_devices = min(max_devices, len(pool))
    min_devices = min(min_devices, max_devices)
    for i in range(n_homes):
        home_id = f"home-{i:04d}"
        rng = np.random.default_rng(spawn_seed(seed, "gen", home_id))
        k = int(rng.integers(min_devices, max_devices + 1))
        devices = tuple(
            sorted(str(d) for d in rng.choice(pool, size=k, replace=False))
        )
        intensity = 0.5 + float(rng.random())  # routine intensity in [0.5, 1.5)
        attack_with_proof = round(float(rng.uniform(0.0, 0.6)), 3)
        faults: Optional[Dict[str, object]] = None
        if fault_fraction > 0.0 and float(rng.random()) < fault_fraction:
            faults = {
                "seed": int(spawn_seed(seed, "faults", home_id) % (2**31)),
                "loss_rate": round(float(rng.uniform(0.05, 0.25)), 3),
                "duplicate_rate": round(float(rng.uniform(0.0, 0.1)), 3),
            }
        yield HomeSpec(
            home_id=home_id,
            devices=devices,
            seed=home_seed(seed, home_id),
            n_manual=max(1, round(n_manual * intensity)),
            n_non_manual=max(1, round(n_non_manual * intensity)),
            n_attacks=max(1, round(n_attacks * intensity)),
            attack_with_proof=attack_with_proof,
            n_training_events=n_training_events,
            faults=faults,
        )
