"""Unit tests for unpredictable-event grouping (§3.2)."""

import pytest

from repro.events import UnpredictableEvent, group_events
from repro.net import Trace, TrafficClass
from tests.conftest import make_packet


def _trace_and_mask(times_by_device):
    packets = []
    for device, times in times_by_device.items():
        packets.extend(make_packet(timestamp=t, device=device) for t in times)
    trace = Trace(packets)
    return trace, [False] * len(trace)


class TestGapRule:
    def test_packets_within_gap_merge(self):
        trace, mask = _trace_and_mask({"d": [0.0, 1.0, 4.0]})
        events = group_events(trace, mask, gap=5.0)
        assert len(events) == 1
        assert len(events[0]) == 3

    def test_gap_splits_events(self):
        trace, mask = _trace_and_mask({"d": [0.0, 1.0, 10.0, 11.0]})
        events = group_events(trace, mask, gap=5.0)
        assert [len(e) for e in events] == [2, 2]

    def test_boundary_gap_inclusive(self):
        trace, mask = _trace_and_mask({"d": [0.0, 5.0]})
        assert len(group_events(trace, mask, gap=5.0)) == 1
        trace, mask = _trace_and_mask({"d": [0.0, 5.01]})
        assert len(group_events(trace, mask, gap=5.0)) == 2

    def test_predictable_packets_skipped(self):
        trace = Trace([make_packet(timestamp=float(t), device="d") for t in range(4)])
        events = group_events(trace, [False, True, True, False], gap=5.0)
        assert len(events) == 1
        assert len(events[0]) == 2

    def test_per_device_streams_independent(self):
        trace, mask = _trace_and_mask({"a": [0.0, 1.0], "b": [0.5, 1.5]})
        events = group_events(trace, mask, gap=5.0)
        assert len(events) == 2
        assert {e.device for e in events} == {"a", "b"}

    def test_global_stream_when_disabled(self):
        trace, mask = _trace_and_mask({"a": [0.0], "b": [1.0]})
        events = group_events(trace, mask, gap=5.0, per_device=False)
        assert len(events) == 1


class TestEventProperties:
    def test_duration_and_bytes(self):
        event = UnpredictableEvent(
            packets=[make_packet(timestamp=0.0, size=100), make_packet(timestamp=2.0, size=50)]
        )
        assert event.duration == 2.0
        assert event.total_bytes == 150

    def test_majority_class(self):
        event = UnpredictableEvent(
            packets=[
                make_packet(traffic_class=TrafficClass.CONTROL),
                make_packet(traffic_class=TrafficClass.MANUAL),
                make_packet(traffic_class=TrafficClass.MANUAL),
            ]
        )
        assert event.majority_class() is TrafficClass.MANUAL
        assert event.is_manual

    def test_tie_breaks_towards_manual(self):
        event = UnpredictableEvent(
            packets=[
                make_packet(traffic_class=TrafficClass.CONTROL),
                make_packet(traffic_class=TrafficClass.MANUAL),
            ]
        )
        assert event.majority_class() is TrafficClass.MANUAL

    def test_attack_counts_as_manual(self):
        event = UnpredictableEvent(packets=[make_packet(traffic_class=TrafficClass.ATTACK)])
        assert event.is_manual

    def test_first_n(self):
        event = UnpredictableEvent(
            packets=[make_packet(timestamp=float(i)) for i in range(10)]
        )
        assert len(event.first_n(5)) == 5
        assert len(event.first_n(20)) == 10


class TestMajorityTieBreaking:
    """Equal counts resolve by priority: attack > manual > automated > control."""

    def _event(self, *classes):
        return UnpredictableEvent(
            packets=[make_packet(traffic_class=c) for c in classes]
        )

    def test_attack_beats_manual(self):
        event = self._event(TrafficClass.MANUAL, TrafficClass.ATTACK)
        assert event.majority_class() is TrafficClass.ATTACK

    def test_manual_beats_automated(self):
        event = self._event(TrafficClass.AUTOMATED, TrafficClass.MANUAL)
        assert event.majority_class() is TrafficClass.MANUAL

    def test_automated_beats_control(self):
        event = self._event(TrafficClass.CONTROL, TrafficClass.AUTOMATED)
        assert event.majority_class() is TrafficClass.AUTOMATED

    def test_four_way_tie_picks_attack(self):
        event = self._event(
            TrafficClass.CONTROL,
            TrafficClass.AUTOMATED,
            TrafficClass.MANUAL,
            TrafficClass.ATTACK,
        )
        assert event.majority_class() is TrafficClass.ATTACK

    def test_majority_still_wins_over_priority(self):
        event = self._event(
            TrafficClass.CONTROL, TrafficClass.CONTROL, TrafficClass.ATTACK
        )
        assert event.majority_class() is TrafficClass.CONTROL


class TestSingleStreamGrouping:
    def test_per_device_false_merges_devices(self):
        trace, mask = _trace_and_mask({"a": [0.0, 2.0], "b": [1.0, 3.0]})
        merged = group_events(trace, mask, gap=5.0, per_device=False)
        assert len(merged) == 1
        assert len(merged[0]) == 4
        split = group_events(trace, mask, gap=5.0, per_device=True)
        assert [len(e) for e in split] == [2, 2]

    def test_per_device_false_gap_still_splits(self):
        trace, mask = _trace_and_mask({"a": [0.0], "b": [10.0]})
        events = group_events(trace, mask, gap=5.0, per_device=False)
        assert [e.device for e in events] == ["a", "b"]
