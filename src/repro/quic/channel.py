"""Authenticated fast channel between FIAT's app and IoT proxy (§5.3).

The channel carries *humanness proofs*: the foreground IoT app's
identity plus 48 motion features, signed with the pairing key held in
the phone's TEE.  The proxy end verifies three things before accepting
a proof: the signature (pre-authorized device), freshness (a timestamp
within a small skew window), and non-replay (QUIC 0-RTT replays are
rejected by a :class:`~repro.crypto.replay.ReplayCache`, as the paper
proposes for few-device households).
"""

from __future__ import annotations

import json
import logging
import secrets
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..crypto.keystore import SecureKeystore, SignedMessage
from ..crypto.replay import ReplayCache
from ..obs import NULL_OBS, Observability
from .transport import NetworkPath, Transport, connection_latency

__all__ = ["AuthMessage", "AuthChannel", "ChannelReceiver", "DeliveryResult"]

logger = logging.getLogger(__name__)

#: Maximum accepted age of an authentication message, seconds.
FRESHNESS_WINDOW_S = 30.0


@dataclass(frozen=True)
class AuthMessage:
    """A humanness proof: app identity + sensor features + freshness data."""

    app_package: str
    device_id: str
    sensor_features: Tuple[float, ...]
    sent_at: float
    nonce: str
    #: observability trace ID carried as wire metadata ("" = untraced).
    #: Signed with the rest of the payload, so an attacker cannot
    #: re-attribute a proof to another trace.
    trace_id: str = ""

    def to_payload(self) -> bytes:
        """Serialise for signing."""
        body = {
            "app_package": self.app_package,
            "device_id": self.device_id,
            "sensor_features": list(self.sensor_features),
            "sent_at": self.sent_at,
            "nonce": self.nonce,
            "trace_id": self.trace_id,
        }
        return json.dumps(body, sort_keys=True).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "AuthMessage":
        """Inverse of :meth:`to_payload`."""
        body = json.loads(payload.decode("utf-8"))
        return cls(
            app_package=str(body["app_package"]),
            device_id=str(body["device_id"]),
            sensor_features=tuple(float(v) for v in body["sensor_features"]),
            sent_at=float(body["sent_at"]),
            nonce=str(body["nonce"]),
            trace_id=str(body.get("trace_id", "")),
        )


@dataclass(frozen=True)
class DeliveryResult:
    """Outcome of a channel send: the wire bytes and delivery latency."""

    wire: bytes
    latency_ms: float


class AuthChannel:
    """Phone-side sender: signs and "transmits" authentication messages."""

    def __init__(
        self,
        keystore: SecureKeystore,
        key_alias: str,
        device_id: str,
        path: NetworkPath,
        transport: Transport = Transport.QUIC_0RTT,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.keystore = keystore
        self.key_alias = key_alias
        self.device_id = device_id
        self.path = path
        self.transport = transport
        self._rng = rng if rng is not None else np.random.default_rng()

    def prepare(
        self,
        app_package: str,
        sensor_features: Sequence[float],
        now: float,
        trace_id: str = "",
    ) -> bytes:
        """Sign a humanness proof without transmitting it.

        Used by the reliable sender, which retransmits the same signed
        wire bytes (same nonce) until the proxy acknowledges: a copy
        arriving after the original registered is absorbed by the replay
        cache instead of double-counting the interaction.  ``trace_id``
        rides inside the signed payload so the receiving side can link
        the proof back to its sender-side trace.
        """
        message = AuthMessage(
            app_package=app_package,
            device_id=self.device_id,
            sensor_features=tuple(float(v) for v in sensor_features),
            sent_at=now,
            nonce=secrets.token_hex(12),
            trace_id=trace_id,
        )
        return self.keystore.sign(self.key_alias, message.to_payload()).to_wire()

    def sample_latency(self) -> float:
        """Draw one connection latency for the configured transport/path."""
        return connection_latency(self.transport, self.path, self._rng)

    def send(
        self,
        app_package: str,
        sensor_features: Sequence[float],
        now: float,
        trace_id: str = "",
    ) -> DeliveryResult:
        """Sign a humanness proof and deliver it over the modelled path."""
        wire = self.prepare(app_package, sensor_features, now, trace_id=trace_id)
        return DeliveryResult(wire=wire, latency_ms=self.sample_latency())


class ChannelReceiver:
    """Proxy-side receiver: verifies signature, freshness and non-replay."""

    def __init__(
        self,
        keystore: SecureKeystore,
        replay_cache: Optional[ReplayCache] = None,
        freshness_window_s: float = FRESHNESS_WINDOW_S,
        obs: Optional[Observability] = None,
    ) -> None:
        self.keystore = keystore
        self.replay_cache = replay_cache if replay_cache is not None else ReplayCache()
        self.freshness_window_s = freshness_window_s
        self.obs = obs if obs is not None else NULL_OBS
        self.rejections: List[str] = []

    def _reject(self, reason: str, now: float, trace_id: str = "") -> None:
        self.rejections.append(reason)
        logger.debug("auth message rejected (%s) at t=%.3f", reason, now)
        self.obs.inc("auth_rejections_total", reason=reason)
        self.obs.emit("channel.reject", t=now, trace=trace_id, reason=reason)

    def receive(self, wire: bytes, now: float) -> Optional[AuthMessage]:
        """Verify an incoming proof; return it if acceptable, else ``None``.

        Rejection reasons (recorded in :attr:`rejections`):
        ``malformed`` (undecodable wire bytes or a signed payload whose
        body cannot be parsed), ``bad-signature`` (unauthorized device
        or tampering), ``stale`` (outside the freshness window) and
        ``replay``.
        """
        try:
            signed = SignedMessage.from_wire(wire)
        except (ValueError, KeyError):
            self._reject("malformed", now)
            return None
        if not self.keystore.verify(signed):
            self._reject("bad-signature", now)
            return None
        try:
            message = AuthMessage.from_payload(signed.payload)
        except (KeyError, ValueError, TypeError):
            # Signed but malformed: a buggy (or hostile) app shipped a
            # payload missing a key or carrying non-numeric features.
            self._reject("malformed", now)
            return None
        if not (now - self.freshness_window_s <= message.sent_at <= now + 1.0):
            self._reject("stale", now, message.trace_id)
            return None
        if not self.replay_cache.check_and_register(message.nonce, now):
            # Replays link back to the original proof's trace: the audit
            # stream shows retransmitted copies being absorbed here.
            self._reject("replay", now, message.trace_id)
            return None
        self.obs.inc("auth_accepted_total")
        self.obs.emit("channel.accept", t=now, trace=message.trace_id)
        return message
