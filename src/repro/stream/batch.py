"""Batched event classification: many event prefixes, one predict call.

The FIAT proxy classifies every unpredictable event's first-N packets.
In the scalar path each event costs one
:meth:`~repro.core.classifier.EventClassifier.classify_packets` call —
one feature vector, one ``(1, 66)`` predict.  When the streaming engine
has already buffered a window of packets it knows *all* the prefixes
that will be classified inside the window, so it stacks their feature
vectors and issues a single ``(n, 66)`` predict per device.

Bit-equality: feature extraction and the scaler transform are
element-wise, so rows of the stacked matrix are identical to the scalar
vectors; :class:`~repro.ml.naive_bayes.BernoulliNB` evaluates row-wise
matrix products whose per-row accumulation order matches the single-row
case, so labels come out identical (pinned by the equivalence tests).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.classifier import EventClassifier
from ..events.grouping import UnpredictableEvent
from ..features.packet_features import event_features
from ..net.packet import Packet

__all__ = ["classify_events_batch"]


def classify_events_batch(
    classifier: EventClassifier,
    prefixes: Sequence[Sequence[Packet]],
) -> List[str]:
    """Classify many event prefixes of one device in a single predict call.

    Returns one ``control``/``automated``/``manual`` label per prefix,
    identical to calling
    :meth:`~repro.core.classifier.EventClassifier.classify_packets` on
    each prefix individually.  Rule classifiers have no model to batch —
    their per-prefix evaluation is a size comparison — so they loop.
    """
    if not prefixes:
        return []
    if classifier.rule is not None:
        return [
            "manual" if classifier.rule.is_manual_packets(prefix) else "automated"
            for prefix in prefixes
        ]
    assert classifier.model is not None
    rows = [
        event_features(UnpredictableEvent(packets=list(prefix)), classifier.first_n)
        for prefix in prefixes
    ]
    features = np.vstack(rows)
    if classifier.scaler is not None:
        features = classifier.scaler.transform(features)
    labels = classifier.model.timed_predict(
        features, obs=classifier.obs, device=classifier.device
    )
    return [str(label) for label in labels]
