"""End-to-end integration: FIAT over a live household trace with bootstrap."""

import numpy as np
import pytest

from repro.core import (
    FiatConfig,
    FiatProxy,
    HumanValidationService,
    train_event_classifier,
)
from repro.crypto import pair
from repro.net import TrafficClass
from repro.sensors import HumannessValidator
from repro.testbed import (
    APP_PACKAGES,
    Household,
    HouseholdConfig,
    TESTBED,
    generate_labeled_events,
    profile_for,
)


@pytest.fixture(scope="module")
def deployment():
    """A household simulated for 50 minutes with a 20-minute bootstrap."""
    config = HouseholdConfig(duration_s=3000.0, seed=13)
    result = Household(["EchoDot4", "SP10"], config).simulate()

    _, proxy_ks = pair("phone", "proxy")
    classifiers = {}
    for name in ("EchoDot4", "SP10"):
        profile = profile_for(name)
        training = None
        if not profile.uses_simple_rules:
            training = generate_labeled_events(
                profile, n_manual=60, n_automated=100, n_control=100, seed=99,
                cloud=result.cloud,
            )
        classifiers[name] = train_event_classifier(profile, training)
    proxy = FiatProxy(
        config=FiatConfig(bootstrap_s=1200.0),
        dns=result.cloud.dns,
        classifiers=classifiers,
        validation=HumanValidationService(
            proxy_ks, validator=HumannessValidator(n_train_per_class=100, seed=0).fit()
        ),
        app_for_device=dict(APP_PACKAGES),
    )
    outcomes = [(p, proxy.process(p)) for p in result.trace]
    proxy.flush()
    return result, proxy, outcomes


class TestBootstrapPhase:
    def test_everything_allowed_during_bootstrap(self, deployment):
        _, _, outcomes = deployment
        assert all(allowed for p, allowed in outcomes if p.timestamp < 1200.0)

    def test_rules_frozen_after_bootstrap(self, deployment):
        _, proxy, _ = deployment
        assert proxy.rules is not None
        assert len(proxy.rules) > 5


class TestEnforcementPhase:
    def test_control_traffic_mostly_allowed(self, deployment):
        _, _, outcomes = deployment
        post = [
            allowed
            for p, allowed in outcomes
            if p.timestamp >= 1200.0 and p.traffic_class is TrafficClass.CONTROL
        ]
        assert np.mean(post) > 0.95

    def test_manual_traffic_without_proofs_blocked(self, deployment):
        """No FIAT app ran in this deployment: manual tails must drop."""
        _, proxy, _ = deployment
        manual_decisions = [
            d for d in proxy.decisions if d.truth == "manual" and d.predicted_manual
        ]
        assert manual_decisions, "some manual events must be classified"
        assert all(d.blocked for d in manual_decisions)

    def test_alerts_raised_for_unverified_manual(self, deployment):
        _, proxy, _ = deployment
        assert any("unverified" in a.reason for a in proxy.alerts)

    def test_automated_events_pass(self, deployment):
        _, proxy, _ = deployment
        automated = [d for d in proxy.decisions if d.truth == "automated"]
        if automated:
            allowed = sum(not d.blocked for d in automated)
            assert allowed / len(automated) > 0.7

    def test_decision_log_covers_both_devices(self, deployment):
        _, proxy, _ = deployment
        devices = {d.device for d in proxy.decisions}
        assert "EchoDot4" in devices
