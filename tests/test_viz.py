"""Tests for the figure-data exporters."""

import csv

import numpy as np
import pytest

from repro.net import FlowDefinition, Trace
from repro.viz import fig1a_flow_series, fig1b_cdf_series, fig1c_interval_cdf, fig2_bars, write_csv
from tests.conftest import make_packet


class TestFig1a:
    def test_series_structure(self, periodic_trace):
        series = fig1a_flow_series(periodic_trace, min_packets=5)
        assert len(series) == 1
        record = series[0]
        assert len(record["timestamps"]) == 10
        assert record["predictable_share"] == 1.0
        assert "B" in record["flow"]

    def test_min_packets_filter(self, periodic_trace):
        noisy = periodic_trace.merge(Trace([make_packet(timestamp=3.0, size=999)]))
        series = fig1a_flow_series(noisy, min_packets=5)
        assert len(series) == 1  # singleton flow filtered out

    def test_sorted_by_count(self, small_household_result):
        series = fig1a_flow_series(small_household_result.trace, min_packets=5)
        counts = [len(r["timestamps"]) for r in series]
        assert counts == sorted(counts, reverse=True)


class TestCdfSeries:
    def test_fig1b_shapes(self, small_household_result):
        x, y = fig1b_cdf_series(small_household_result.trace)
        assert len(x) == len(y) == len(small_household_result.trace.devices())
        assert np.all((0 <= x) & (x <= 1))

    def test_fig1c_positive_intervals(self, small_household_result):
        x, y = fig1c_interval_cdf(small_household_result.trace)
        assert np.all(x > 0)
        assert len(x) > 0


class TestFig2Bars:
    def test_bars_per_device(self, small_household_result):
        bars = fig2_bars(small_household_result.trace)
        devices = [b["device"] for b in bars]
        assert devices == sorted(devices)
        for bar in bars:
            assert 0.0 <= bar["overall"] <= 1.0
            assert bar["control"] is not None


class TestCsv:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "out.csv")
        n = write_csv(path, ["a", "b"], [[1, 2], [3, 4]])
        assert n == 2
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_empty(self, tmp_path):
        path = str(tmp_path / "empty.csv")
        assert write_csv(path, ["x"], []) == 0
