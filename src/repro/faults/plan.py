"""Deterministic fault schedules for resilience experiments.

The paper's FIAT prototype ran on a real home network where humanness
proofs are lost, delayed, duplicated, corrupted and replayed, and where
individual components (a per-device classifier, the humanness validation
service, the phone's sensors) fail independently of the network.  This
module describes such conditions as *data*: a :class:`FaultPlan` is a
frozen, seeded schedule of channel faults and component outages that the
rest of the system consumes.  Determinism is the point — the same plan
and seed must reproduce byte-identical proxy decision logs, so every
random draw derives from :meth:`FaultPlan.stream`, a label-keyed RNG
factory independent of wall clock and call interleaving across streams.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

__all__ = ["OutageWindow", "CrashWindow", "MachineFault", "FaultPlan"]

#: Component name of the proxy-side humanness validation service.
VALIDATION_COMPONENT = "validation"
#: Component name of the phone's motion sensors.
SENSOR_COMPONENT = "sensor"


def classifier_component(device: str) -> str:
    """Component name of one device's manual-event classifier."""
    return f"classifier:{device}"


@dataclass(frozen=True)
class OutageWindow:
    """A half-open interval ``[start, end)`` during which a component is down.

    ``component`` names what fails: ``"validation"`` (the humanness
    validation service), ``"classifier:<device>"`` (one per-device
    manual-event classifier) or ``"sensor"`` (the phone's motion
    sensors).
    """

    component: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"outage ends before it starts: {self}")

    def covers(self, component: str, t: float) -> bool:
        """Whether ``component`` is down at time ``t`` under this window."""
        return self.component == component and self.start <= t < self.end


@dataclass(frozen=True)
class CrashWindow:
    """One scheduled proxy crash: kill at ``at``, restart after ``downtime_s``.

    Models a power cut or process death of the router running the FIAT
    proxy.  Inputs arriving during ``[at, at + downtime_s)`` are lost
    with the process; on restart the supervisor rebuilds state from the
    snapshot + journal (see :class:`~repro.recovery.RecoveryManager`).
    ``corrupt_tail_bytes`` flips that many bytes at the end of the active
    journal segment, modelling an un-synced page torn by the power cut —
    recovery must discard the corrupted suffix, never trust it.
    """

    at: float
    downtime_s: float = 0.0
    corrupt_tail_bytes: int = 0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"crash time must be non-negative, got {self.at}")
        if self.downtime_s < 0:
            raise ValueError(f"downtime must be non-negative, got {self.downtime_s}")
        if self.corrupt_tail_bytes < 0:
            raise ValueError(
                f"corrupt_tail_bytes must be non-negative, got {self.corrupt_tail_bytes}"
            )

    @property
    def restart_at(self) -> float:
        """Simulated instant the supervisor brings the proxy back."""
        return self.at + self.downtime_s


#: Ways a fleet machine can misbehave (see :class:`MachineFault`).
MACHINE_FAULT_KINDS = ("kill", "stall", "drop")


@dataclass(frozen=True)
class MachineFault:
    """One scheduled failure of a distributed-fleet machine.

    Consumed by :mod:`repro.fleet.distrib`: the machine wrapper arms the
    fault when it holds lease ``epoch`` on range ``range_index`` and
    fires it after logging ``after_homes`` home results this process
    (``after_homes=0`` fires before the first home runs).

    ``kind``
        ``"kill"`` — SIGKILL the machine process (a powered-off box).
        ``"stall"`` — freeze the machine (heartbeats included) for
        ``duration_s`` seconds, then let it keep working as a zombie.
        ``"drop"`` — network partition: the machine keeps working at
        full speed but all its telemetry frames stop reaching the
        coordinator, permanently.
    """

    kind: str
    range_index: int
    after_homes: int = 1
    duration_s: float = 8.0
    epoch: int = 1

    def __post_init__(self) -> None:
        if self.kind not in MACHINE_FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {MACHINE_FAULT_KINDS}, got {self.kind!r}"
            )
        if self.range_index < 0:
            raise ValueError(f"range_index must be >= 0, got {self.range_index}")
        if self.after_homes < 0:
            raise ValueError(f"after_homes must be >= 0, got {self.after_homes}")
        if self.duration_s < 0:
            raise ValueError(f"duration_s must be >= 0, got {self.duration_s}")
        if self.epoch < 1:
            raise ValueError(f"epoch must be >= 1, got {self.epoch}")

    def to_dict(self) -> dict:
        """JSON-safe form for the machine payload file."""
        return {
            "kind": self.kind,
            "range_index": self.range_index,
            "after_homes": self.after_homes,
            "duration_s": self.duration_s,
            "epoch": self.epoch,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MachineFault":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=str(data["kind"]),
            range_index=int(data["range_index"]),
            after_homes=int(data.get("after_homes", 1)),
            duration_s=float(data.get("duration_s", 8.0)),
            epoch=int(data.get("epoch", 1)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of faults to inject.

    Channel faults (applied by :class:`~repro.faults.link.FaultyLink`):

    ``loss_rate``
        Probability an authentication message never arrives.
    ``ack_loss_rate``
        Probability the proxy's acknowledgement is lost even though the
        proof arrived (``None`` = same as ``loss_rate``).  A lost ack
        makes the sender retransmit; the replay cache absorbs the copy.
    ``duplicate_rate``
        Probability the network delivers a second copy (QUIC 0-RTT
        replays, middlebox retransmissions).
    ``corruption_rate``
        Probability a delivered copy has one byte flipped in flight;
        corrupted proofs must be rejected, never crash the receiver.
    ``extra_delay_ms`` / ``delay_jitter_ms``
        Constant plus exponentially-jittered extra one-way delay; jitter
        reorders duplicates relative to their originals.
    ``clock_skew_s``
        Offset of the receiver's clock relative to the sender's; large
        skews push honest proofs outside the freshness window.

    Component faults:

    ``sensor_dropout_rate``
        Probability a genuine human interaction yields a still-phone
        sensor window (sensor service died mid-capture).
    ``outages``
        :class:`OutageWindow` intervals during which a named component
        raises instead of answering.
    """

    seed: int = 0
    loss_rate: float = 0.0
    ack_loss_rate: "float | None" = None
    duplicate_rate: float = 0.0
    corruption_rate: float = 0.0
    extra_delay_ms: float = 0.0
    delay_jitter_ms: float = 0.0
    clock_skew_s: float = 0.0
    sensor_dropout_rate: float = 0.0
    outages: Tuple[OutageWindow, ...] = field(default_factory=tuple)
    #: Scheduled proxy crashes (kill/restart cycles) for the chaos
    #: harness; consumed by :func:`repro.recovery.chaos.chaos_sweep`.
    crashes: Tuple[CrashWindow, ...] = field(default_factory=tuple)
    #: Scheduled distributed-fleet machine failures; consumed by the
    #: :mod:`repro.fleet.distrib` machine wrapper.
    machine_faults: Tuple[MachineFault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in ("loss_rate", "duplicate_rate", "corruption_rate", "sensor_dropout_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if self.ack_loss_rate is not None and not 0.0 <= self.ack_loss_rate <= 1.0:
            raise ValueError(f"ack_loss_rate must be within [0, 1], got {self.ack_loss_rate}")
        if self.extra_delay_ms < 0 or self.delay_jitter_ms < 0:
            raise ValueError("delays must be non-negative")
        # Tolerate lists passed for ``outages`` / ``crashes``.
        if not isinstance(self.outages, tuple):
            object.__setattr__(self, "outages", tuple(self.outages))
        if not isinstance(self.crashes, tuple):
            object.__setattr__(self, "crashes", tuple(self.crashes))
        if not isinstance(self.machine_faults, tuple):
            object.__setattr__(self, "machine_faults", tuple(self.machine_faults))

    @property
    def effective_ack_loss_rate(self) -> float:
        """Ack loss rate, defaulting to the forward loss rate."""
        return self.loss_rate if self.ack_loss_rate is None else self.ack_loss_rate

    def stream(self, label: str) -> np.random.Generator:
        """A deterministic RNG for one named consumer of this plan.

        Keyed by ``(seed, crc32(label))`` so independent subsystems
        (link draws, sensor dropout, ...) never perturb each other's
        schedules regardless of call order between them.
        """
        return np.random.default_rng([self.seed, zlib.crc32(label.encode("utf-8"))])

    def is_down(self, component: str, t: float) -> bool:
        """Whether ``component`` is inside any outage window at ``t``."""
        return any(o.covers(component, t) for o in self.outages)

    def outages_for(self, component: str) -> Tuple[OutageWindow, ...]:
        """All outage windows scheduled for one component."""
        return tuple(o for o in self.outages if o.component == component)
