"""Motion-sensor substrate: synthetic traces and humanness validation."""

from .humanness import HumannessValidator, generate_humanness_dataset
from .motion import GRAVITY, SAMPLE_RATE_HZ, MotionKind, synthesize_window

__all__ = [
    "MotionKind",
    "synthesize_window",
    "SAMPLE_RATE_HZ",
    "GRAVITY",
    "HumannessValidator",
    "generate_humanness_dataset",
]
