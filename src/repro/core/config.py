"""FIAT configuration (defaults follow the paper's deployed settings)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.flows import FlowDefinition
from ..obs import NULL_OBS, Observability

__all__ = ["FiatConfig"]


@dataclass
class FiatConfig:
    """Tunable parameters of a FIAT deployment.

    Defaults mirror the paper: a 20-minute bootstrap (2x the largest
    predictable-flow interval of Fig 1c), the PortLess flow definition
    (superior in Fig 1b), the 5-second event gap (§3.2), features over
    the first 5 packets (§4.1), and a brute-force lockout after repeated
    unauthorized manual events in a short window (§5.4).
    """

    #: Seconds of all-allow learning before enforcement starts.
    bootstrap_s: float = 1200.0
    #: Flow definition used for rules (PortLess deployed by the paper).
    flow_definition: FlowDefinition = FlowDefinition.PORTLESS
    #: IAT quantisation resolution of the bucket heuristic, seconds.
    iat_resolution: float = 0.25
    #: Gap closing an unpredictable event, seconds.
    event_gap_s: float = 5.0
    #: Packets of an unpredictable event allowed through / featurised.
    first_n_packets: int = 5
    #: How long a verified humanness proof authorizes manual traffic, s.
    human_validity_s: float = 60.0
    #: Unauthorized manual events within ``lockout_window_s`` before the
    #: device is disconnected pending manual re-authorization.
    lockout_threshold: int = 3
    lockout_window_s: float = 300.0
    #: Freshness window of the authentication channel, seconds.
    channel_freshness_s: float = 30.0
    #: Drift adaptation (§7): refresh the rule table from the live
    #: predictor every this many seconds (``None`` = freeze at bootstrap,
    #: the paper's prototype behaviour).
    rule_refresh_s: "float | None" = None
    #: Drift adaptation: expire rules unused for this long (``None`` =
    #: never expire).
    rule_ttl_s: "float | None" = None

    # -- resilience: proof retransmission (ack-driven, exponential backoff) --
    #: Initial retransmission timeout of the FIAT app, milliseconds.
    retry_initial_rto_ms: float = 120.0
    #: Multiplicative backoff applied to the RTO after each miss.
    retry_backoff: float = 2.0
    #: Upper bound on the RTO, milliseconds.
    retry_max_rto_ms: float = 1500.0
    #: Maximum uniform jitter added to each backoff step, milliseconds.
    retry_jitter_ms: float = 40.0
    #: Delivery deadline: the app gives up retransmitting a proof this
    #: many milliseconds after the first send.
    retry_deadline_ms: float = 4000.0

    # -- resilience: circuit breakers + degraded-mode policy ------------------
    #: Consecutive component failures before a circuit breaker opens.
    breaker_failure_threshold: int = 3
    #: Seconds an open breaker waits before sending a recovery probe.
    breaker_recovery_s: float = 60.0
    #: Proxy policy while the validation service is down: ``fail-closed``
    #: drops manual events (no unauthenticated manual traffic — the safe
    #: default), ``fail-open`` allows them (availability over security).
    validation_outage_policy: str = "fail-closed"
    #: Proxy policy while a device's classifier is broken and only the
    #: predictability rules remain: ``assume-manual`` treats every
    #: unpredictable event as manual-shaped (requires a humanness proof),
    #: ``allow`` waves unpredictable events through unclassified.
    classifier_fallback: str = "assume-manual"
    #: Hard cap on the validation service's interaction registry.
    max_validated_interactions: int = 4096

    # -- durability: crash-safe state (repro.recovery) ------------------------
    #: Seconds of simulated time between state snapshots when a
    #: :class:`~repro.recovery.RecoveryManager` journals the deployment.
    #: Each snapshot compacts the write-ahead journal (bounded replay).
    snapshot_interval_s: float = 300.0
    #: Whether every journal append is fsync'd to stable storage.  Off by
    #: default: the crash harness models the un-synced tail as journal
    #: corruption/truncation, which recovery must tolerate either way.
    journal_fsync: bool = False
    #: How recovery treats events left open by a crash: ``fail-closed``
    #: drops undecided/manual-shaped open events (no packet rides through
    #: on pre-crash optimism — the safe default), ``resume`` leaves them
    #: open and lets the event-gap rule close them naturally.
    recovery_reconcile: str = "fail-closed"

    # -- streaming engine (repro.stream) --------------------------------------
    #: Route packets through the vectorized streaming engine instead of
    #: the scalar per-packet path.  The decision log is byte-identical
    #: either way (the repro.stream equivalence contract); streaming
    #: trades per-packet latency for throughput.
    streaming: bool = False
    #: Packets buffered per streaming window before a vectorized flush.
    stream_window: int = 1024

    # -- observability --------------------------------------------------------
    #: Shared :class:`~repro.obs.Observability` handle (metrics registry,
    #: trace-ID minter, optional JSONL audit sink).  ``None`` disables all
    #: instrumentation; enabling it never changes behaviour — the decision
    #: log stays byte-identical either way.
    obs: "Optional[Observability]" = None

    @property
    def observability(self) -> Observability:
        """The configured handle, or the shared disabled one."""
        return self.obs if self.obs is not None else NULL_OBS

    def __post_init__(self) -> None:
        if self.validation_outage_policy not in ("fail-closed", "fail-open"):
            raise ValueError(
                f"validation_outage_policy must be 'fail-closed' or 'fail-open', "
                f"got {self.validation_outage_policy!r}"
            )
        if self.classifier_fallback not in ("assume-manual", "allow"):
            raise ValueError(
                f"classifier_fallback must be 'assume-manual' or 'allow', "
                f"got {self.classifier_fallback!r}"
            )
        if self.recovery_reconcile not in ("fail-closed", "resume"):
            raise ValueError(
                f"recovery_reconcile must be 'fail-closed' or 'resume', "
                f"got {self.recovery_reconcile!r}"
            )
        if self.snapshot_interval_s <= 0:
            raise ValueError("snapshot_interval_s must be positive")
        if self.stream_window < 1:
            raise ValueError("stream_window must be >= 1")
