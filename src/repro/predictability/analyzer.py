"""Trace-level predictability analysis (paper §2.2, §3.2, Fig 1-2).

Builds on :func:`repro.predictability.buckets.label_predictable` to
compute the statistics reported in the paper:

* fraction of predictable traffic per device (Fig 1b and Fig 2);
* per-traffic-class breakdown — control / automated / manual (Fig 2);
* maximum intervals of predictable flows (Fig 1c), which justify the
  20-minute bootstrap window (2x the observed 10-minute maximum);
* generic CDF helper used by the figure benches.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..net.dns import DnsTable
from ..net.flows import FlowDefinition, flow_key
from ..net.packet import TrafficClass
from ..net.trace import Trace
from .buckets import DEFAULT_RESOLUTION, label_predictable

__all__ = [
    "DevicePredictability",
    "PredictabilityReport",
    "analyze_trace",
    "max_predictable_intervals",
    "cdf",
]


@dataclass
class DevicePredictability:
    """Predictability breakdown for one device."""

    device: str
    n_packets: int
    n_predictable: int
    per_class: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def fraction(self) -> float:
        """Overall fraction of predictable packets (0 when empty)."""
        return self.n_predictable / self.n_packets if self.n_packets else 0.0

    def class_fraction(self, traffic_class: TrafficClass) -> Optional[float]:
        """Predictable fraction for one traffic class, ``None`` if absent."""
        entry = self.per_class.get(traffic_class.value)
        if entry is None or entry[0] == 0:
            return None
        total, predictable = entry
        return predictable / total


@dataclass
class PredictabilityReport:
    """Per-device predictability for a whole trace."""

    definition: FlowDefinition
    devices: Dict[str, DevicePredictability]

    def fractions(self) -> List[float]:
        """Overall predictable fractions across devices (for CDF plots)."""
        return [entry.fraction for entry in self.devices.values()]

    def fraction_for(self, device: str) -> float:
        """Overall predictable fraction of one device."""
        return self.devices[device].fraction


def analyze_trace(
    trace: Trace,
    definition: FlowDefinition = FlowDefinition.PORTLESS,
    dns: Optional[DnsTable] = None,
    resolution: float = DEFAULT_RESOLUTION,
) -> PredictabilityReport:
    """Label a trace and aggregate predictability per device and class."""
    labels = label_predictable(trace, definition, dns=dns, resolution=resolution)
    per_device: Dict[str, DevicePredictability] = {}
    for packet, predictable in zip(trace, labels):
        entry = per_device.get(packet.device)
        if entry is None:
            entry = DevicePredictability(device=packet.device, n_packets=0, n_predictable=0)
            per_device[packet.device] = entry
        entry.n_packets += 1
        entry.n_predictable += int(predictable)
        total, pred = entry.per_class.get(packet.traffic_class.value, (0, 0))
        entry.per_class[packet.traffic_class.value] = (total + 1, pred + int(predictable))
    return PredictabilityReport(definition=definition, devices=per_device)


def max_predictable_intervals(
    trace: Trace,
    definition: FlowDefinition = FlowDefinition.PORTLESS,
    dns: Optional[DnsTable] = None,
    resolution: float = DEFAULT_RESOLUTION,
) -> Dict[Tuple[Hashable, ...], float]:
    """Maximum interval between consecutive predictable packets per flow.

    For every flow bucket that contains predictable packets, return the
    largest gap between consecutive predictable packets of the bucket.
    Fig 1(c) plots the CDF of these values: 80-90 % fall below 5 minutes
    and the maximum is 10 minutes, motivating FIAT's 20-minute bootstrap.
    """
    dns = dns if dns is not None else trace.dns
    labels = label_predictable(trace, definition, dns=dns, resolution=resolution)
    last_predictable: Dict[Tuple[Hashable, ...], float] = {}
    max_interval: Dict[Tuple[Hashable, ...], float] = defaultdict(float)
    for packet, predictable in zip(trace, labels):
        if not predictable:
            continue
        key = flow_key(packet, definition, dns)
        if key in last_predictable:
            gap = packet.timestamp - last_predictable[key]
            if gap > max_interval[key]:
                max_interval[key] = gap
        else:
            max_interval.setdefault(key, 0.0)
        last_predictable[key] = packet.timestamp
    return dict(max_interval)


def cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of ``values``: sorted x and cumulative fractions y."""
    if len(values) == 0:
        return np.array([]), np.array([])
    x = np.sort(np.asarray(values, dtype=float))
    y = np.arange(1, len(x) + 1) / len(x)
    return x, y
