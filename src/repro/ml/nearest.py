"""Distance-based classifiers: Nearest Centroid and k-Nearest Neighbours.

The Nearest Centroid Classifier with the **Chebyshev** metric is the
paper's best manual-event classifier (Table 2, balanced accuracy 0.931);
kNN with Euclidean distance and ``k = 5`` is its worst (0.621).  Both
support the three metrics the paper sweeps: Euclidean, Manhattan and
Chebyshev.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from .base import Classifier, check_X, check_Xy

__all__ = ["NearestCentroidClassifier", "KNeighborsClassifier", "pairwise_distances"]

_METRICS = ("euclidean", "manhattan", "chebyshev")


def pairwise_distances(A: np.ndarray, B: np.ndarray, metric: str) -> np.ndarray:
    """Distance matrix ``D[i, j] = d(A[i], B[j])`` for a supported metric."""
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {_METRICS}, got {metric!r}")
    diff = A[:, None, :] - B[None, :, :]
    if metric == "euclidean":
        return np.sqrt(np.sum(diff * diff, axis=2))
    if metric == "manhattan":
        return np.sum(np.abs(diff), axis=2)
    return np.max(np.abs(diff), axis=2)  # chebyshev


class NearestCentroidClassifier(Classifier):
    """Assign each sample to the class with the nearest centroid.

    Parameters
    ----------
    metric:
        ``"euclidean"``, ``"manhattan"`` or ``"chebyshev"`` (the paper's
        best choice for this classifier).
    """

    def __init__(self, metric: str = "chebyshev") -> None:
        if metric not in _METRICS:
            raise ValueError(f"metric must be one of {_METRICS}, got {metric!r}")
        self.metric = metric
        self.centroids_: Optional[np.ndarray] = None

    def fit(self, X: Any, y: Any) -> "NearestCentroidClassifier":
        """Compute one centroid (feature-wise mean) per class."""
        X, y = check_Xy(X, y)
        indices = self._store_classes(y)
        centroids = np.empty((len(self.classes_), X.shape[1]))
        for k in range(len(self.classes_)):
            members = X[indices == k]
            centroids[k] = members.mean(axis=0)
        self.centroids_ = centroids
        return self

    def predict(self, X: Any) -> np.ndarray:
        """Label of the nearest centroid under the configured metric."""
        if self.centroids_ is None:
            raise RuntimeError("classifier must be fitted before predict")
        X = check_X(X)
        distances = pairwise_distances(X, self.centroids_, self.metric)
        return self.classes_[np.argmin(distances, axis=1)]

    def predict_proba(self, X: Any) -> np.ndarray:
        """Soft-max of negative distances (a convenience, not calibrated)."""
        if self.centroids_ is None:
            raise RuntimeError("classifier must be fitted before predict_proba")
        X = check_X(X)
        distances = pairwise_distances(X, self.centroids_, self.metric)
        logits = -distances
        logits -= logits.max(axis=1, keepdims=True)
        expd = np.exp(logits)
        return expd / expd.sum(axis=1, keepdims=True)


class KNeighborsClassifier(Classifier):
    """Majority vote over the ``k`` nearest training samples.

    The paper sweeps ``k`` from 3 to 15 and distance metrics, finding
    Euclidean with ``k = 5`` best for its data (still the weakest model
    overall).  Ties are broken towards the closer neighbour's class.
    """

    def __init__(self, n_neighbors: int = 5, metric: str = "euclidean") -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if metric not in _METRICS:
            raise ValueError(f"metric must be one of {_METRICS}, got {metric!r}")
        self.n_neighbors = n_neighbors
        self.metric = metric
        self._X: Optional[np.ndarray] = None
        self._y_idx: Optional[np.ndarray] = None

    def fit(self, X: Any, y: Any) -> "KNeighborsClassifier":
        """Memorise the training set."""
        X, y = check_Xy(X, y)
        self._y_idx = self._store_classes(y)
        self._X = X
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        """Per-class neighbour vote shares."""
        if self._X is None or self._y_idx is None:
            raise RuntimeError("classifier must be fitted before predict")
        X = check_X(X)
        k = min(self.n_neighbors, len(self._X))
        distances = pairwise_distances(X, self._X, self.metric)
        # argpartition is O(n); stable ordering of ties not required for votes
        nearest = np.argpartition(distances, kth=k - 1, axis=1)[:, :k]
        proba = np.zeros((X.shape[0], len(self.classes_)))
        for row, neighbors in enumerate(nearest):
            votes = np.bincount(self._y_idx[neighbors], minlength=len(self.classes_))
            proba[row] = votes / k
        return proba
