"""Unit tests for flow-key definitions (Classic vs PortLess)."""

import pytest

from repro.net import Direction, DnsTable, FlowDefinition, classic_key, flow_key, portless_key
from repro.net.flows import flow_pretty
from tests.conftest import make_packet


class TestClassicKey:
    def test_contains_all_six_fields(self):
        packet = make_packet(size=321)
        key = classic_key(packet)
        assert key == (
            packet.src_ip,
            packet.dst_ip,
            packet.src_port,
            packet.dst_port,
            "tcp",
            321,
        )

    def test_different_ports_different_buckets(self):
        a = make_packet(src_port=40000)
        b = make_packet(src_port=40001)
        assert classic_key(a) != classic_key(b)


class TestPortlessKey:
    def test_ports_ignored(self):
        a = make_packet(src_port=40000, dst_port=443)
        b = make_packet(src_port=50123, dst_port=8883)
        assert portless_key(a) == portless_key(b)

    def test_domain_substitution(self):
        dns = DnsTable([("172.1.2.3", "api.vendor.com")])
        packet = make_packet(dst_ip="172.1.2.3")
        key = portless_key(packet, dns)
        assert "api.vendor.com" in key
        assert "172.1.2.3" not in key

    def test_two_ips_same_domain_same_bucket(self):
        dns = DnsTable([("172.1.2.3", "api.vendor.com"), ("172.9.9.9", "api.vendor.com")])
        a = make_packet(dst_ip="172.1.2.3")
        b = make_packet(dst_ip="172.9.9.9")
        assert portless_key(a, dns) == portless_key(b, dns)

    def test_unresolvable_ip_falls_back(self):
        key = portless_key(make_packet(dst_ip="1.2.3.4"), DnsTable())
        assert "1.2.3.4" in key

    def test_direction_distinguishes(self):
        out = make_packet(direction=Direction.OUTBOUND)
        inb = make_packet(
            direction=Direction.INBOUND, src_ip="172.1.2.3", dst_ip="192.168.1.10"
        )
        assert portless_key(out) != portless_key(inb)


class TestDispatchAndPretty:
    def test_flow_key_dispatch(self):
        packet = make_packet()
        assert flow_key(packet, FlowDefinition.CLASSIC) == classic_key(packet)
        assert flow_key(packet, FlowDefinition.PORTLESS) == portless_key(packet)

    def test_pretty_renders(self):
        packet = make_packet(size=99)
        text = flow_pretty(classic_key(packet), FlowDefinition.CLASSIC)
        assert "99B" in text
        text = flow_pretty(portless_key(packet), FlowDefinition.PORTLESS)
        assert "99B" in text
