"""Unit tests for splitting and cross-validation."""

import numpy as np
import pytest

from repro.ml import (
    BernoulliNB,
    NearestCentroidClassifier,
    StratifiedKFold,
    cross_val_score,
    cross_validate,
    train_test_split,
)


def _toy(n_per_class=30, seed=0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(loc=0.0, size=(n_per_class, 3))
    X1 = rng.normal(loc=3.0, size=(n_per_class, 3))
    X = np.vstack([X0, X1])
    y = np.array([0] * n_per_class + [1] * n_per_class)
    return X, y


class TestStratifiedKFold:
    def test_folds_partition_everything(self):
        X, y = _toy()
        seen = []
        for train, test in StratifiedKFold(n_splits=5).split(X, y):
            seen.extend(test.tolist())
            assert set(train) & set(test) == set()
        assert sorted(seen) == list(range(len(y)))

    def test_stratification(self):
        X, y = _toy(n_per_class=25)
        for _, test in StratifiedKFold(n_splits=5).split(X, y):
            # each fold gets 5 of each class
            assert np.sum(y[test] == 0) == 5
            assert np.sum(y[test] == 1) == 5

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            StratifiedKFold(n_splits=1)

    def test_deterministic_with_seed(self):
        X, y = _toy()
        a = [t.tolist() for _, t in StratifiedKFold(seed=3).split(X, y)]
        b = [t.tolist() for _, t in StratifiedKFold(seed=3).split(X, y)]
        assert a == b


class TestTrainTestSplit:
    def test_sizes(self):
        X, y = _toy(n_per_class=20)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.25, seed=0)
        assert len(X_te) == 10  # 25% of 40, stratified 5+5
        assert len(X_tr) + len(X_te) == 40

    def test_stratified_class_balance(self):
        X, y = _toy(n_per_class=20)
        _, _, _, y_te = train_test_split(X, y, test_size=0.5, seed=0)
        assert np.sum(y_te == 0) == np.sum(y_te == 1)

    def test_invalid_test_size(self):
        X, y = _toy()
        with pytest.raises(ValueError):
            train_test_split(X, y, test_size=1.5)


class TestCrossValidate:
    def test_separable_data_scores_high(self):
        X, y = _toy()
        result = cross_validate(NearestCentroidClassifier("euclidean"), X, y, n_splits=5)
        assert result["mean"] > 0.95
        assert len(result["scores"]) == 5

    def test_scoring_strings(self):
        X, y = _toy()
        for scoring in ("accuracy", "balanced_accuracy", "f1:1"):
            result = cross_validate(BernoulliNB(), X, y, n_splits=3, scoring=scoring)
            assert 0.0 <= result["mean"] <= 1.0

    def test_callable_scoring(self):
        X, y = _toy()
        result = cross_validate(
            BernoulliNB(), X, y, n_splits=3, scoring=lambda est, X_, y_: 0.42
        )
        assert result["mean"] == pytest.approx(0.42)

    def test_unknown_scoring_rejected(self):
        X, y = _toy()
        with pytest.raises(ValueError, match="unknown scoring"):
            cross_validate(BernoulliNB(), X, y, scoring="roc_auc")

    def test_cross_val_score_returns_list(self):
        X, y = _toy()
        scores = cross_val_score(BernoulliNB(), X, y, n_splits=4)
        assert len(scores) == 4

    def test_estimator_not_mutated(self):
        X, y = _toy()
        est = BernoulliNB()
        cross_validate(est, X, y, n_splits=3)
        assert est.feature_log_prob_ is None  # original stays unfitted
