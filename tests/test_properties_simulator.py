"""Property-based tests on the traffic simulator's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import TrafficClass
from repro.testbed import Household, HouseholdConfig, TESTBED, generate_labeled_events

DEVICE_NAMES = sorted(TESTBED)


class TestEventGeneration:
    @given(
        device=st.sampled_from(DEVICE_NAMES),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(deadline=None, max_examples=15)
    def test_event_counts_and_labels(self, device, seed):
        events = generate_labeled_events(
            device, n_manual=5, n_automated=5, n_control=5, seed=seed
        )
        assert len(events) == 15
        for event in events:
            assert len(event) >= 1
            # packets within one event are time-ordered
            times = [p.timestamp for p in event]
            assert times == sorted(times)
            # the whole event carries one ground-truth event id
            ids = {p.event_id for p in event}
            assert len(ids) == 1

    @given(
        device=st.sampled_from(DEVICE_NAMES),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(deadline=None, max_examples=10)
    def test_events_never_merge_under_gap_rule(self, device, seed):
        events = generate_labeled_events(
            device, n_manual=4, n_automated=4, n_control=4, seed=seed
        )
        for earlier, later in zip(events, events[1:]):
            assert later.start - earlier.end > 5.0

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(deadline=None, max_examples=8)
    def test_rule_devices_emit_signature_sizes(self, seed):
        events = generate_labeled_events(
            "SP10", n_manual=5, n_automated=0, n_control=0, seed=seed
        )
        assert all(e.packets[0].size == 235 for e in events)


class TestHouseholdInvariants:
    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(deadline=None, max_examples=5)
    def test_short_simulation_wellformed(self, seed):
        config = HouseholdConfig(duration_s=300.0, seed=seed)
        result = Household(["SP10"], config).simulate()
        assert len(result.trace) > 0
        times = [p.timestamp for p in result.trace]
        assert times == sorted(times)
        # every packet belongs to the simulated device
        assert set(result.trace.devices()) == {"SP10"}
        # ground truth classes are a subset of the legitimate ones
        classes = {p.traffic_class for p in result.trace}
        assert classes <= {
            TrafficClass.CONTROL,
            TrafficClass.AUTOMATED,
            TrafficClass.MANUAL,
        }
