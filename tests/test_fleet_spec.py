"""Tests for fleet specifications: derivation, validation, round-trips."""

import json

import pytest

from repro.fleet import (
    FleetSpec,
    HomeSpec,
    JsonlSpecStream,
    MemorySpecStream,
    generate_fleet,
    home_seed,
    iter_generate_fleet,
    open_spec,
    write_spec_jsonl,
)
from repro.util import spawn_seed


def _home(home_id="h1", **kwargs):
    kwargs.setdefault("devices", ("SP10",))
    kwargs.setdefault("seed", home_seed(0, home_id))
    return HomeSpec(home_id=home_id, **kwargs)


class TestHomeSpec:
    def test_requires_devices(self):
        with pytest.raises(ValueError, match="at least one device"):
            HomeSpec(home_id="h", devices=(), seed=1)

    def test_rejects_unknown_devices(self):
        with pytest.raises(ValueError, match="unknown devices"):
            HomeSpec(home_id="h", devices=("Toaster9000",), seed=1)

    def test_rejects_bad_poison(self):
        with pytest.raises(ValueError, match="poison"):
            _home(poison="explode")

    def test_rejects_negative_volumes(self):
        with pytest.raises(ValueError, match="non-negative"):
            _home(n_manual=-1)

    def test_dict_round_trip(self):
        home = _home(faults={"seed": 3, "loss_rate": 0.1}, n_manual=9)
        assert HomeSpec.from_dict(home.to_dict()) == home


class TestHomeSeedDerivation:
    def test_hash_derived_not_offsets(self):
        assert home_seed(0, "home-0001") == spawn_seed(0, "home", "home-0001")
        assert home_seed(0, "home-0001") != 1

    def test_adjacent_fleet_seeds_do_not_collide(self):
        seeds = {
            home_seed(fleet_seed, f"home-{i:04d}")
            for fleet_seed in range(5)
            for i in range(50)
        }
        assert len(seeds) == 5 * 50


class TestFleetSpec:
    def test_rejects_duplicate_home_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            FleetSpec(homes=(_home("a"), _home("a")))

    def test_json_round_trip(self):
        spec = generate_fleet(5, seed=9, fault_fraction=0.5)
        assert FleetSpec.from_json(spec.to_json()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = generate_fleet(3, seed=2)
        path = str(tmp_path / "fleet.json")
        spec.dump(path)
        assert FleetSpec.load(path) == spec

    def test_missing_seed_filled_with_derived(self):
        document = {
            "name": "f",
            "seed": 4,
            "homes": [{"home_id": "home-x", "devices": ["SP10"]}],
        }
        spec = FleetSpec.from_json(json.dumps(document))
        assert spec.homes[0].seed == home_seed(4, "home-x")


class TestGenerateFleet:
    def test_deterministic(self):
        assert generate_fleet(6, seed=1).to_json() == generate_fleet(6, seed=1).to_json()

    def test_seed_changes_fleet(self):
        assert generate_fleet(6, seed=1).to_json() != generate_fleet(6, seed=2).to_json()

    def test_homes_are_varied(self):
        spec = generate_fleet(12, seed=0)
        assert len({home.n_manual for home in spec.homes}) > 1
        assert len({home.attack_with_proof for home in spec.homes}) > 1

    def test_fault_fraction(self):
        clean = generate_fleet(10, seed=0)
        faulty = generate_fleet(10, seed=0, fault_fraction=1.0)
        assert all(h.faults is None for h in clean.homes)
        assert all(h.faults is not None for h in faulty.homes)

    def test_home_seeds_unique(self):
        spec = generate_fleet(40, seed=0)
        seeds = [home.seed for home in spec.homes]
        assert len(set(seeds)) == len(seeds)

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            generate_fleet(0)


class TestSpecStreams:
    def test_memory_stream_header_and_digest(self):
        spec = generate_fleet(3, seed=2)
        stream = spec.stream()
        assert (stream.name, stream.seed, stream.n_homes) == (spec.name, spec.seed, 3)
        assert stream.digest == spec.stream().digest
        assert stream.digest != generate_fleet(3, seed=3).stream().digest

    def test_memory_stream_is_reiterable(self):
        stream = generate_fleet(3, seed=2).stream()
        first = list(stream.iter_homes())
        second = list(stream.iter_homes())
        assert first == second and len(first) == 3

    def test_jsonl_round_trip(self, tmp_path):
        spec = generate_fleet(5, seed=9, fault_fraction=0.5)
        path = str(tmp_path / "fleet.jsonl")
        written = write_spec_jsonl(
            path, iter(spec.homes), name=spec.name, seed=spec.seed, n_homes=5
        )
        assert written == 5
        stream = JsonlSpecStream(path)
        assert (stream.name, stream.seed, stream.n_homes) == (spec.name, spec.seed, 5)
        assert tuple(stream.iter_homes()) == spec.homes
        # re-iterable: a resumed run walks the stream again from home 0
        assert tuple(stream.iter_homes()) == spec.homes

    def test_jsonl_digest_tracks_content(self, tmp_path):
        spec = generate_fleet(3, seed=1)
        a_path, b_path = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        write_spec_jsonl(a_path, iter(spec.homes), seed=1)
        write_spec_jsonl(b_path, iter(spec.homes[:2]), seed=1)
        assert JsonlSpecStream(a_path).digest == JsonlSpecStream(a_path).digest
        assert JsonlSpecStream(a_path).digest != JsonlSpecStream(b_path).digest

    def test_jsonl_missing_seed_filled_with_derived(self, tmp_path):
        path = str(tmp_path / "fleet.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"fleet": {"name": "f", "seed": 4}}) + "\n")
            handle.write(
                json.dumps({"home_id": "home-x", "devices": ["SP10"]}) + "\n"
            )
        stream = JsonlSpecStream(path)
        (home,) = tuple(stream.iter_homes())
        assert home.seed == home_seed(4, "home-x")
        assert stream.n_homes == 1  # counted, not declared

    def test_jsonl_rejects_missing_header(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"home_id": "h", "devices": ["SP10"]}) + "\n")
        with pytest.raises(ValueError, match="header"):
            JsonlSpecStream(path)

    def test_write_rejects_wrong_declared_count(self, tmp_path):
        spec = generate_fleet(3, seed=1)
        path = str(tmp_path / "fleet.jsonl")
        with pytest.raises(ValueError, match="declared n_homes"):
            write_spec_jsonl(path, iter(spec.homes), n_homes=4)
        assert not any(tmp_path.iterdir())  # no partial file left behind

    def test_open_spec_dispatches_on_extension(self, tmp_path):
        spec = generate_fleet(2, seed=3)
        json_path = str(tmp_path / "fleet.json")
        jsonl_path = str(tmp_path / "fleet.jsonl")
        spec.dump(json_path)
        write_spec_jsonl(
            jsonl_path, iter(spec.homes), name=spec.name, seed=spec.seed
        )
        assert isinstance(open_spec(json_path), MemorySpecStream)
        assert isinstance(open_spec(jsonl_path), JsonlSpecStream)
        assert tuple(open_spec(jsonl_path).iter_homes()) == spec.homes

    def test_iter_generate_matches_materialised(self):
        spec = generate_fleet(6, seed=7, fault_fraction=0.3)
        streamed = tuple(iter_generate_fleet(6, seed=7, fault_fraction=0.3))
        assert streamed == spec.homes
