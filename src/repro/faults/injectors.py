"""Fault injectors: wrappers that make healthy components fail on schedule.

These wrappers sit where the real failure would occur — around a
per-device :class:`~repro.core.classifier.EventClassifier` and around the
:class:`~repro.core.validation.HumanValidationService` — and raise
:class:`ComponentOutage` whenever the wrapped component's name falls
inside one of the plan's outage windows.  They are duck-typed (no import
of ``repro.core``), so the fault layer stays dependency-free and the
proxy's circuit breakers see exactly what a crashed process would look
like: an exception, not a polite error code.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from .plan import FaultPlan, VALIDATION_COMPONENT, classifier_component

__all__ = ["ComponentOutage", "FlakyClassifier", "FlakyValidationService"]


class ComponentOutage(RuntimeError):
    """Raised by an injector while its component is scheduled as down."""

    def __init__(self, component: str, at: float) -> None:
        super().__init__(f"{component} is down at t={at:.3f}")
        self.component = component
        self.at = at


class FlakyClassifier:
    """An event classifier that raises during scheduled outage windows.

    Exposes the :class:`~repro.core.classifier.EventClassifier` surface
    the proxy relies on (``device``, ``uses_rules``, ``is_manual``,
    ``classify_packets``); attribute access falls through to the wrapped
    classifier.
    """

    def __init__(self, inner: Any, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.component = classifier_component(inner.device)
        self.n_faults = 0

    @property
    def device(self) -> str:
        return self.inner.device

    @property
    def uses_rules(self) -> bool:
        return self.inner.uses_rules

    def _check(self, at: float) -> None:
        if self.plan.is_down(self.component, at):
            self.n_faults += 1
            raise ComponentOutage(self.component, at)

    def _event_time(self, packets: Sequence[Any]) -> float:
        return float(packets[-1].timestamp) if packets else 0.0

    def classify_packets(self, packets: Sequence[Any]) -> str:
        self._check(self._event_time(packets))
        return self.inner.classify_packets(packets)

    def is_manual(self, packets: Sequence[Any]) -> bool:
        self._check(self._event_time(packets))
        return self.inner.is_manual(packets)

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)


class FlakyValidationService:
    """A humanness validation service that raises while scheduled down.

    Wraps :class:`~repro.core.validation.HumanValidationService`:
    ``ingest`` and ``has_recent_human`` raise :class:`ComponentOutage`
    inside a ``"validation"`` outage window; everything else (receiver,
    counters, registry) falls through to the wrapped service.
    """

    def __init__(self, inner: Any, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.component = VALIDATION_COMPONENT
        self.n_faults = 0

    def _check(self, at: float) -> None:
        if self.plan.is_down(self.component, at):
            self.n_faults += 1
            raise ComponentOutage(self.component, at)

    def ingest(self, wire: bytes, now: float) -> Optional[Any]:
        self._check(now)
        return self.inner.ingest(wire, now)

    def has_recent_human(self, app_package: str, now: float) -> bool:
        self._check(now)
        return self.inner.has_recent_human(app_package, now)

    def prune(self, now: float) -> None:
        self.inner.prune(now)

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)
