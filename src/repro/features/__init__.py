"""Feature extraction: 66 packet-event features and 48 sensor features."""

from .packet_features import (
    FEATURE_NAMES,
    FIRST_N_PACKETS,
    N_FEATURES,
    event_features,
    event_labels,
    event_sequences,
    events_to_matrix,
)
from .sensor_features import (
    AXIS_STATS,
    N_SENSOR_FEATURES,
    SENSOR_AXES,
    SENSOR_FEATURE_NAMES,
    axis_statistics,
    sensor_features,
    windows_to_matrix,
)

__all__ = [
    "FEATURE_NAMES",
    "N_FEATURES",
    "FIRST_N_PACKETS",
    "event_features",
    "events_to_matrix",
    "event_sequences",
    "event_labels",
    "SENSOR_AXES",
    "AXIS_STATS",
    "SENSOR_FEATURE_NAMES",
    "N_SENSOR_FEATURES",
    "axis_statistics",
    "sensor_features",
    "windows_to_matrix",
]
