"""48-feature extraction from motion-sensor windows (paper §5.4).

FIAT's humanness validator follows zkSENSE: a decision-tree classifier
over **48 features extracted from the gyroscope and accelerometer**.
With 6 axes (accelerometer x/y/z + gyroscope x/y/z) and 8 statistics per
axis, the vector is 6 x 8 = 48 features:

``mean``, ``std``, ``min``, ``max``, ``range``, ``rms`` (signal energy),
``mad`` (mean absolute successive difference — captures jerk) and
``peaks`` (count of local maxima above one standard deviation — captures
discrete touch impulses).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "SENSOR_AXES",
    "AXIS_STATS",
    "SENSOR_FEATURE_NAMES",
    "N_SENSOR_FEATURES",
    "axis_statistics",
    "sensor_features",
    "windows_to_matrix",
]

#: Sensor axes in feature order.
SENSOR_AXES: Tuple[str, ...] = ("acc-x", "acc-y", "acc-z", "gyro-x", "gyro-y", "gyro-z")

#: Per-axis statistics in feature order.
AXIS_STATS: Tuple[str, ...] = ("mean", "std", "min", "max", "range", "rms", "mad", "peaks")

#: Canonical 48 feature names, ``<axis>-<stat>``.
SENSOR_FEATURE_NAMES: Tuple[str, ...] = tuple(
    f"{axis}-{stat}" for axis in SENSOR_AXES for stat in AXIS_STATS
)

#: Sensor feature vector length (48, matching zkSENSE).
N_SENSOR_FEATURES = len(SENSOR_FEATURE_NAMES)


def _count_peaks(samples: np.ndarray) -> int:
    """Local maxima exceeding mean + 1 std (discrete touch impulses)."""
    if len(samples) < 3:
        return 0
    threshold = samples.mean() + samples.std()
    interior = samples[1:-1]
    is_peak = (interior > samples[:-2]) & (interior > samples[2:]) & (interior > threshold)
    return int(np.count_nonzero(is_peak))


def axis_statistics(samples: np.ndarray) -> List[float]:
    """The 8 per-axis statistics, in :data:`AXIS_STATS` order."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        return [0.0] * len(AXIS_STATS)
    diffs = np.abs(np.diff(samples)) if samples.size > 1 else np.zeros(1)
    return [
        float(samples.mean()),
        float(samples.std()),
        float(samples.min()),
        float(samples.max()),
        float(samples.max() - samples.min()),
        float(np.sqrt(np.mean(samples**2))),
        float(diffs.mean()),
        float(_count_peaks(samples)),
    ]


def sensor_features(window: np.ndarray) -> np.ndarray:
    """48-dimensional feature vector of one sensor window.

    Parameters
    ----------
    window:
        Array of shape ``(n_samples, 6)``: columns are accelerometer
        x/y/z then gyroscope x/y/z, sampled at a fixed rate (the paper
        samples at 250 Hz).
    """
    window = np.asarray(window, dtype=float)
    if window.ndim != 2 or window.shape[1] != len(SENSOR_AXES):
        raise ValueError(
            f"window must have shape (n, {len(SENSOR_AXES)}), got {window.shape}"
        )
    row: List[float] = []
    for axis in range(window.shape[1]):
        row.extend(axis_statistics(window[:, axis]))
    return np.asarray(row, dtype=float)


def windows_to_matrix(windows: Sequence[np.ndarray]) -> np.ndarray:
    """Stack sensor windows into an ``(n_windows, 48)`` feature matrix."""
    if not windows:
        return np.empty((0, N_SENSOR_FEATURES))
    return np.vstack([sensor_features(window) for window in windows])
