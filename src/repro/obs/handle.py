"""The injectable ``Observability`` handle shared by every component.

One handle bundles the three observability channels: the metrics
registry (counters/gauges/histograms), the deterministic trace-ID
minter, and an optional JSONL audit sink.  It travels on
:attr:`repro.core.config.FiatConfig.obs`; components fall back to the
module-level :data:`NULL_OBS` when none is configured, so call sites
never branch on ``None``.

Instrumentation is behaviour-neutral by construction: a disabled handle
turns every operation into a no-op, enabled handles only write to the
registry/audit stream (never into simulation state), and trace IDs come
from a seeded counter — ``FiatProxy.decision_log()`` stays
byte-identical with observability on or off.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from .exporter import JsonlAuditSink, MemoryAuditSink
from .registry import MetricsRegistry, MetricsSnapshot
from .timing import NULL_TIMER, LatencyTimer
from .tracing import Span, TraceIdMinter

__all__ = ["Observability", "NULL_OBS"]

AuditSink = Union[JsonlAuditSink, MemoryAuditSink]


class Observability:
    """Metrics registry + trace minter + audit sink behind one switch."""

    def __init__(
        self,
        enabled: bool = True,
        registry: Optional[MetricsRegistry] = None,
        audit: Optional[AuditSink] = None,
        trace_seed: int = 0,
    ) -> None:
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        self.audit = audit
        self.minter = TraceIdMinter(seed=trace_seed)

    # -- metrics -----------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        """Increment a counter (no-op when disabled)."""
        if self.enabled:
            self.registry.inc(name, value, **labels)

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Set a gauge (no-op when disabled)."""
        if self.enabled:
            self.registry.set_gauge(name, value, **labels)

    def observe(
        self,
        name: str,
        value: float,
        boundaries: Optional[Tuple[float, ...]] = None,
        **labels: object,
    ) -> None:
        """Record a histogram observation (no-op when disabled)."""
        if self.enabled:
            self.registry.observe(name, value, boundaries=boundaries, **labels)

    def timer(self, name: str, **labels: object):
        """A latency timer context manager (shared no-op when disabled)."""
        if not self.enabled:
            return NULL_TIMER
        return LatencyTimer(self.registry, name, labels)

    def snapshot(self) -> MetricsSnapshot:
        """Snapshot the registry (empty snapshot when disabled)."""
        return self.registry.snapshot()

    # -- tracing -----------------------------------------------------------------

    def mint_trace(self, kind: str = "trace") -> str:
        """Mint a deterministic trace ID; empty string when disabled.

        The empty string is the "no trace" sentinel everywhere: wire
        metadata omits it, audit emission skips it, and consumers treat
        it as absent — so disabled runs carry zero tracing overhead.
        """
        if not self.enabled:
            return ""
        return self.minter.mint(kind)

    # -- audit stream ------------------------------------------------------------

    def emit(
        self,
        kind: str,
        t: Optional[float] = None,
        trace: Optional[str] = None,
        **attrs: object,
    ) -> None:
        """Append one record to the audit stream, if one is attached.

        ``t`` is simulated time; never pass wall-clock readings (they
        would break run-to-run reproducibility of the stream).
        """
        if not self.enabled or self.audit is None:
            return
        record: Dict[str, object] = {"kind": kind}
        if t is not None:
            record["t"] = t
        if trace:
            record["trace"] = trace
        record.update(attrs)
        self.audit.emit(record)

    def emit_span(self, span: Span) -> None:
        """Emit a finished :class:`~repro.obs.tracing.Span`."""
        if not self.enabled or self.audit is None:
            return
        self.audit.emit(span.to_record())


#: Shared disabled handle: every operation is a no-op, so components can
#: unconditionally call through it.  Do not enable or mutate it.
NULL_OBS = Observability(enabled=False)
