"""Ablation: the bootstrap window length (§5.4, Fig 1c).

FIAT learns allow rules during a bootstrap of 20 minutes — twice the
maximum interval of predictable flows (10 min, Fig 1c).  This bench
sweeps the bootstrap from 5 to 40 minutes on the testbed and measures
the rule table's hit rate on *control* traffic observed afterwards:
too-short bootstraps miss slow flows (rule misses on legitimate control
traffic, i.e. false-positive pressure); beyond ~2x the slowest period
the hit rate saturates — the paper's sizing rule.
"""

import numpy as np

from repro.core import RuleTable
from repro.net import FlowDefinition, TrafficClass
from repro.predictability import BucketPredictor

from benchmarks._helpers import print_table


def test_ablation_bootstrap_window(benchmark, testbed_household):
    trace = testbed_household.trace
    dns = testbed_household.cloud.dns
    control = [p for p in trace if p.traffic_class is TrafficClass.CONTROL]

    def hit_rate_for(bootstrap_s):
        predictor = BucketPredictor(FlowDefinition.PORTLESS, dns=dns)
        learning = [p for p in control if p.timestamp < bootstrap_s]
        testing = [p for p in control if bootstrap_s <= p.timestamp < bootstrap_s + 1800.0]
        predictor.learn_trace(learning)
        table = RuleTable.from_predictor(predictor)
        hits = sum(table.matches(p) for p in testing)
        return hits / len(testing) if testing else 0.0

    benchmark.pedantic(lambda: hit_rate_for(1200.0), rounds=1, iterations=1)

    sweep = {minutes: hit_rate_for(minutes * 60.0) for minutes in (5, 10, 20, 30, 40)}
    print_table(
        "Ablation — bootstrap window (paper: 20 min = 2 x max flow interval)",
        ("bootstrap (min)", "control-traffic rule hit rate"),
        [(m, f"{rate:.3f}") for m, rate in sweep.items()],
    )

    # Longer bootstraps help, then saturate at/after the deployed 20 min.
    assert sweep[20] >= sweep[5]
    assert sweep[20] > 0.85
    assert sweep[40] - sweep[20] < 0.08
