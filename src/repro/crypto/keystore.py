"""TEE-backed keystore, pairing and message signing (paper §5.3-5.4).

FIAT stores a pre-shared key agreed at pairing time inside the phone's
trusted execution environment (Android secure keystore) and the proxy's
SGX enclave; the threat model assumes attackers cannot extract it.  This
module models that contract: :class:`SecureKeystore` never exposes key
bytes through its public API (they live in a private attribute, standing
in for TEE isolation), and exposes only ``sign``/``verify`` operations
(HMAC-SHA256).  :func:`pair` performs the local pairing step — e.g.
scanning a QR code on the proxy — producing two keystores sharing a key.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import secrets
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, Optional, Tuple

from ..obs import NULL_OBS, Observability

__all__ = ["SecureKeystore", "SignedMessage", "pair", "KeystoreError"]


class KeystoreError(Exception):
    """Raised on signing/verification misuse (unknown key, bad alias)."""


@dataclass(frozen=True)
class SignedMessage:
    """A serialised payload plus its authentication tag."""

    payload: bytes
    signature: str
    key_alias: str

    def to_wire(self) -> bytes:
        """Encode for transmission over the QUIC channel."""
        envelope = {
            "payload": self.payload.hex(),
            "signature": self.signature,
            "key_alias": self.key_alias,
        }
        return json.dumps(envelope, sort_keys=True).encode("utf-8")

    @classmethod
    def from_wire(cls, wire: bytes) -> "SignedMessage":
        """Decode a message received from the channel."""
        envelope = json.loads(wire.decode("utf-8"))
        return cls(
            payload=bytes.fromhex(envelope["payload"]),
            signature=str(envelope["signature"]),
            key_alias=str(envelope["key_alias"]),
        )


class SecureKeystore:
    """Hardware-keystore stand-in: holds keys, exposes only sign/verify.

    Keys are referenced by alias; raw key material is kept in a private
    mapping and deliberately not reachable via any public method,
    mirroring the TEE guarantee FIAT relies on.
    """

    def __init__(self, owner: str, obs: Optional[Observability] = None) -> None:
        self.owner = owner
        self.obs = obs if obs is not None else NULL_OBS
        self.__keys: Dict[str, bytes] = {}

    def generate_key(self, alias: str) -> None:
        """Create a fresh random 256-bit key under ``alias``."""
        self.__keys[alias] = secrets.token_bytes(32)

    def install_key(self, alias: str, key: bytes) -> None:
        """Install externally agreed key material (pairing only)."""
        if len(key) < 16:
            raise KeystoreError("key material too short (min 16 bytes)")
        self.__keys[alias] = bytes(key)

    def has_key(self, alias: str) -> bool:
        """Whether a key exists under ``alias``."""
        return alias in self.__keys

    def _key(self, alias: str) -> bytes:
        try:
            return self.__keys[alias]
        except KeyError:
            raise KeystoreError(f"no key under alias {alias!r}") from None

    def sign(self, alias: str, payload: bytes) -> SignedMessage:
        """HMAC-SHA256 sign ``payload`` with the key under ``alias``."""
        tag = hmac.new(self._key(alias), payload, hashlib.sha256).hexdigest()
        return SignedMessage(payload=payload, signature=tag, key_alias=alias)

    def verify(self, message: SignedMessage) -> bool:
        """Constant-time verification of a signed message.

        Unknown aliases verify as ``False`` (an unauthorized device), not
        as an error: the proxy must reject, not crash, on foreign input.
        """
        obs = self.obs
        if not obs.enabled:
            return self._verify(message)
        t0 = perf_counter()
        ok = self._verify(message)
        obs.observe("keystore_verify_latency_ms", (perf_counter() - t0) * 1000.0)
        obs.inc("keystore_verifications_total", outcome="ok" if ok else "rejected")
        return ok

    def _verify(self, message: SignedMessage) -> bool:
        if message.key_alias not in self.__keys:
            return False
        expected = hmac.new(
            self._key(message.key_alias), message.payload, hashlib.sha256
        ).hexdigest()
        return hmac.compare_digest(expected, message.signature)


def pair(
    phone_owner: str,
    proxy_owner: str,
    alias: str = "fiat-pairing",
    obs: Optional[Observability] = None,
) -> Tuple[SecureKeystore, SecureKeystore]:
    """Local pairing: create two keystores sharing a fresh key.

    Models the QR-code / audio pairing of §5.4: the shared secret is
    produced once and installed into both TEEs; it never travels over
    the network afterwards.
    """
    shared = secrets.token_bytes(32)
    phone = SecureKeystore(phone_owner, obs=obs)
    proxy = SecureKeystore(proxy_owner, obs=obs)
    phone.install_key(alias, shared)
    proxy.install_key(alias, shared)
    return phone, proxy


def payload_digest(payload: Any) -> str:
    """Stable SHA-256 digest of a JSON-serialisable payload (for replay IDs)."""
    blob = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()
