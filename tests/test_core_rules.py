"""Unit tests for the bootstrap rule table."""

import pytest

from repro.core import RuleTable
from repro.net import FlowDefinition
from repro.predictability import BucketPredictor
from tests.conftest import make_packet


def _bootstrapped_table():
    predictor = BucketPredictor()
    for t in range(0, 100, 10):
        predictor.observe(make_packet(timestamp=float(t)))
    return RuleTable.from_predictor(predictor)


class TestRuleCreation:
    def test_recurring_flow_becomes_rule(self):
        table = _bootstrapped_table()
        assert len(table) == 1

    def test_single_occurrence_no_rule(self):
        predictor = BucketPredictor()
        predictor.observe(make_packet(timestamp=0.0))
        predictor.observe(make_packet(timestamp=7.0, size=999))
        table = RuleTable.from_predictor(predictor)
        assert len(table) == 0

    def test_irregular_flow_no_rule(self):
        predictor = BucketPredictor()
        for t in (0.0, 3.0, 11.0, 30.0):
            predictor.observe(make_packet(timestamp=t))
        assert len(RuleTable.from_predictor(predictor)) == 0


class TestMatching:
    def test_matching_packet_hits(self):
        table = _bootstrapped_table()
        assert table.matches(make_packet(timestamp=200.0))  # first: bucket-only
        assert table.matches(make_packet(timestamp=210.0))  # right IAT
        assert table.hit_rate == 1.0

    def test_wrong_iat_misses(self):
        table = _bootstrapped_table()
        table.matches(make_packet(timestamp=200.0))
        assert not table.matches(make_packet(timestamp=203.0))
        assert table.n_misses == 1

    def test_unknown_bucket_misses(self):
        table = _bootstrapped_table()
        assert not table.matches(make_packet(timestamp=0.0, size=4444))

    def test_neighbor_bin_tolerance(self):
        table = _bootstrapped_table()
        table.matches(make_packet(timestamp=200.0))
        assert table.matches(make_packet(timestamp=210.2))

    def test_manual_rule_injection(self):
        # §7's DAG extension: manually allow a flow.
        table = _bootstrapped_table()
        packet = make_packet(timestamp=0.0, size=777)
        from repro.net.flows import flow_key

        key = flow_key(packet, table.definition, table.dns)
        table.add_rule(key, {40})
        assert table.matches(packet)

    def test_hit_rate_empty(self):
        table = _bootstrapped_table()
        assert table.hit_rate == 0.0
