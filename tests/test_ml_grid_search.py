"""Unit tests for the grid-search helper (§4.1's hyperparameter protocol)."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier, KNeighborsClassifier, grid_search


def _blobs(seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack(
        [rng.normal(loc=-2.0, size=(40, 3)), rng.normal(loc=2.0, size=(40, 3))]
    )
    y = np.array([0] * 40 + [1] * 40)
    return X, y


class TestGridSearch:
    def test_finds_best_combination(self):
        X, y = _blobs()
        result = grid_search(
            lambda max_depth: DecisionTreeClassifier(max_depth=max_depth),
            {"max_depth": [1, 3, 6]},
            X,
            y,
            n_splits=3,
        )
        assert result["best_params"]["max_depth"] in (1, 3, 6)
        assert 0.8 < result["best_score"] <= 1.0
        assert len(result["results"]) == 3

    def test_cartesian_product(self):
        X, y = _blobs()
        result = grid_search(
            lambda n_neighbors, metric: KNeighborsClassifier(
                n_neighbors=n_neighbors, metric=metric
            ),
            {"n_neighbors": [1, 3], "metric": ["euclidean", "manhattan"]},
            X,
            y,
            n_splits=3,
        )
        assert len(result["results"]) == 4

    def test_best_score_is_max(self):
        X, y = _blobs()
        result = grid_search(
            lambda max_depth: DecisionTreeClassifier(max_depth=max_depth),
            {"max_depth": [1, 2, 4]},
            X,
            y,
            n_splits=3,
        )
        assert result["best_score"] == pytest.approx(
            max(score for _, score in result["results"])
        )

    def test_empty_grid_rejected(self):
        X, y = _blobs()
        with pytest.raises(ValueError):
            grid_search(lambda: None, {}, X, y)
        with pytest.raises(ValueError):
            grid_search(lambda max_depth: None, {"max_depth": []}, X, y)

    def test_deterministic(self):
        X, y = _blobs()
        kwargs = dict(n_splits=3, seed=5)
        a = grid_search(
            lambda max_depth: DecisionTreeClassifier(max_depth=max_depth, seed=0),
            {"max_depth": [2, 4]}, X, y, **kwargs,
        )
        b = grid_search(
            lambda max_depth: DecisionTreeClassifier(max_depth=max_depth, seed=0),
            {"max_depth": [2, 4]}, X, y, **kwargs,
        )
        assert a["best_params"] == b["best_params"]
        assert a["results"] == b["results"]
