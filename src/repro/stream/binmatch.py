"""Vectorized flow-bucket / IAT-bin primitives shared by the streaming paths.

This module is the NumPy inner loop behind three consumers:

* the :class:`~repro.stream.engine.StreamingEngine`'s batched rule
  matching (many packets against the frozen
  :class:`~repro.core.rules.RuleTable` at once);
* :meth:`~repro.predictability.buckets.BucketPredictor.observe_batch`,
  the bulk bootstrap-learning path;
* the offline :func:`~repro.predictability.buckets.label_predictable`
  pass, so offline and online labelling share one bin-matching
  implementation.

Everything here is **bit-equal** to the scalar reference code: the same
IEEE-754 expression as :func:`~repro.predictability.buckets.quantize_iat`
evaluated element-wise, and per-bucket predecessor chains recovered with
a stable argsort so within-bucket order matches the scalar feed order
exactly.

Buckets and bins are packed into a single int64 *pair code*
``kid * PAIR_SHIFT + bin`` for sorted-array membership and counting
(``np.searchsorted``).  Callers must guard with :func:`codes_safe` and
fall back to the scalar path for pathological bins (an IAT of weeks at a
micro-second resolution); real traffic never gets close.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..net.dns import DnsTable
from ..net.flows import FlowDefinition, flow_key
from ..net.packet import Direction, Packet

__all__ = [
    "PAIR_SHIFT",
    "KeyInterner",
    "quantize_iat_array",
    "chain_prev",
    "codes_safe",
    "pair_codes",
    "neighbor_any",
    "neighbor_counts",
    "last_index_per_kid",
    "first_last_per_kid",
]

#: Bins per bucket id in the packed pair code.  2**21 bins covers IATs of
#: ~6 days at the default 0.25 s resolution; anything beyond trips
#: :func:`codes_safe` and the caller's scalar fallback.
PAIR_SHIFT = 1 << 21


class KeyInterner:
    """Memoised flow-key computation: packet -> small integer bucket id.

    Interning happens in feed order, so bucket ids are assigned in first
    occurrence order of the *flow key* — the same order in which the
    scalar code would create bucket state.  The raw-attribute memo skips
    the :func:`~repro.net.flows.flow_key` call (and its DNS lookup) for
    repeat flows; it is invalidated whenever the DNS table mutates (an
    IP remap would silently change a memoised PortLess key otherwise).
    """

    __slots__ = ("definition", "dns", "memo", "keys", "_key_ids", "_dns_version", "_classic")

    def __init__(self, definition: FlowDefinition, dns: Optional[DnsTable]) -> None:
        self.definition = definition
        self.dns = dns
        #: raw attribute tuple -> bucket id (cleared on DNS mutation)
        self.memo: Dict[Tuple[Hashable, ...], int] = {}
        #: bucket id -> flow key (append-only; ids are stable for life)
        self.keys: List[Tuple[Hashable, ...]] = []
        self._key_ids: Dict[Tuple[Hashable, ...], int] = {}
        self._dns_version = dns.version if dns is not None else 0
        self._classic = definition is FlowDefinition.CLASSIC

    @property
    def n(self) -> int:
        """Number of distinct flow keys interned so far."""
        return len(self.keys)

    def check_dns(self) -> None:
        """Drop memoised resolutions if the DNS table changed.

        Bucket ids and interned keys survive — only the raw -> id
        shortcut is rebuilt, so ids stay stable across invalidations.
        """
        dns = self.dns
        if dns is not None and dns.version != self._dns_version:
            self.memo.clear()
            self._dns_version = dns.version

    def raw(self, packet: Packet) -> Tuple[Hashable, ...]:
        """Memo key: the packet attributes the flow key depends on."""
        if self._classic:
            return (
                packet.src_ip,
                packet.dst_ip,
                packet.src_port,
                packet.dst_port,
                packet.protocol,
                packet.size,
            )
        # PortLess: ports are irrelevant; direction disambiguates which
        # address is the device and which the (DNS-resolved) remote.  It
        # is stored as a bool — hashing an Enum member runs its
        # Python-level __hash__ on every memo probe, and this tuple is
        # hashed once per packet.
        return (
            packet.src_ip,
            packet.dst_ip,
            packet.direction is Direction.OUTBOUND,
            packet.protocol,
            packet.size,
        )

    def intern(self, packet: Packet) -> int:
        """Bucket id of a packet (interning it on first sight)."""
        rk = self.raw(packet)
        kid = self.memo.get(rk)
        if kid is None:
            kid = self.intern_slow(packet, rk)
        return kid

    def intern_slow(self, packet: Packet, rk: Tuple[Hashable, ...]) -> int:
        """Memo miss: compute the flow key and assign / reuse its id."""
        key = flow_key(packet, self.definition, self.dns)
        kid = self._key_ids.get(key)
        if kid is None:
            kid = len(self.keys)
            self.keys.append(key)
            self._key_ids[key] = kid
        self.memo[rk] = kid
        return kid

    def intern_key(self, key: Tuple[Hashable, ...]) -> int:
        """Id of an already-computed flow key (e.g. a rule-table key)."""
        kid = self._key_ids.get(key)
        if kid is None:
            kid = len(self.keys)
            self.keys.append(key)
            self._key_ids[key] = kid
        return kid


def quantize_iat_array(iats: np.ndarray, resolution: float) -> np.ndarray:
    """Vectorized :func:`~repro.predictability.buckets.quantize_iat`.

    Bit-equal to the scalar reference: the same ``floor(iat/res + 0.5)``
    double-precision expression, with non-positive (and NaN — "no
    predecessor", masked by callers) IATs clamped to bin 0.
    """
    iats = np.asarray(iats, dtype=np.float64)
    with np.errstate(invalid="ignore"):
        bins = np.floor(iats / resolution + 0.5)
        positive = iats > 0
    return np.where(positive, bins, 0.0).astype(np.int64)


def chain_prev(kids: np.ndarray, timestamps: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-packet predecessor within its bucket, preserving feed order.

    Returns ``(prev_index, prev_ts)``: for each packet, the index and
    timestamp of the previous packet with the same bucket id, or
    ``(-1, NaN)`` for the first packet of a bucket in this batch.  A
    stable argsort groups packets by bucket while keeping feed order
    within each bucket — exactly the order the scalar per-bucket
    ``last_timestamp`` update would see.
    """
    n = len(kids)
    prev_index = np.full(n, -1, dtype=np.int64)
    prev_ts = np.full(n, np.nan, dtype=np.float64)
    if n == 0:
        return prev_index, prev_ts
    order = np.argsort(kids, kind="stable")
    k_sorted = kids[order]
    first = np.empty(n, dtype=bool)
    first[0] = True
    np.not_equal(k_sorted[1:], k_sorted[:-1], out=first[1:])
    prev_sorted = np.empty(n, dtype=np.int64)
    prev_sorted[0] = -1
    prev_sorted[1:] = order[:-1]
    prev_sorted[first] = -1
    prev_index[order] = prev_sorted
    with_prev = prev_index >= 0
    prev_ts[with_prev] = timestamps[prev_index[with_prev]]
    return prev_index, prev_ts


def codes_safe(kids: np.ndarray, bins: np.ndarray, neighbor_bins: int) -> bool:
    """Whether (kid, bin) pairs pack into int64 codes without collision."""
    if len(bins) == 0:
        return True
    max_bin = int(bins.max())
    if max_bin >= PAIR_SHIFT - neighbor_bins:
        return False
    max_kid = int(kids.max()) if len(kids) else 0
    return max_kid < (2**62) // PAIR_SHIFT


def pair_codes(kids: np.ndarray, bins: np.ndarray) -> np.ndarray:
    """Pack (bucket id, bin) pairs into sortable int64 codes."""
    return kids * PAIR_SHIFT + bins


def _member(codes_sorted: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Membership of each target in a sorted code array."""
    if len(codes_sorted) == 0:
        return np.zeros(len(targets), dtype=bool)
    pos = np.searchsorted(codes_sorted, targets)
    pos_clipped = np.minimum(pos, len(codes_sorted) - 1)
    return (pos < len(codes_sorted)) & (codes_sorted[pos_clipped] == targets)


def neighbor_any(
    codes_sorted: np.ndarray,
    kids: np.ndarray,
    bins: np.ndarray,
    neighbor_bins: int,
) -> np.ndarray:
    """Whether any bin within ±``neighbor_bins`` of each pair is present."""
    base = pair_codes(kids, bins)
    hit = np.zeros(len(base), dtype=bool)
    for delta in range(-neighbor_bins, neighbor_bins + 1):
        hit |= _member(codes_sorted, base + delta)
    return hit


def neighbor_counts(
    uniq_codes: np.ndarray,
    counts: np.ndarray,
    kids: np.ndarray,
    bins: np.ndarray,
    neighbor_bins: int,
) -> np.ndarray:
    """Summed occurrence counts over the ±``neighbor_bins`` window.

    ``uniq_codes``/``counts`` come from ``np.unique(..., return_counts)``
    over the batch's pair codes; the result is, per queried (kid, bin),
    the total number of occurrences of any neighbouring bin in the same
    bucket — the quantity the offline labelling pass thresholds at 2.
    """
    base = pair_codes(kids, bins)
    total = np.zeros(len(base), dtype=np.int64)
    if len(uniq_codes) == 0:
        return total
    for delta in range(-neighbor_bins, neighbor_bins + 1):
        targets = base + delta
        pos = np.searchsorted(uniq_codes, targets)
        pos_clipped = np.minimum(pos, len(uniq_codes) - 1)
        present = (pos < len(uniq_codes)) & (uniq_codes[pos_clipped] == targets)
        total += np.where(present, counts[pos_clipped], 0)
    return total


def last_index_per_kid(kids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Unique bucket ids and the index of each one's *last* occurrence."""
    if len(kids) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    uniq, first_in_reversed = np.unique(kids[::-1], return_index=True)
    return uniq, len(kids) - 1 - first_in_reversed


def first_last_per_kid(
    kids: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unique ids plus each one's first and last occurrence, in one sort.

    Returns ``(uniq, first, last)`` — ``uniq`` sorted ascending, the
    positional ``first``/``last`` aligned with it.  One stable argsort
    instead of the two ``np.unique`` passes the naive version needs.
    """
    n = len(kids)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    order = np.argsort(kids, kind="stable")
    k_sorted = kids[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(k_sorted[1:], k_sorted[:-1], out=boundary[1:])
    starts = np.nonzero(boundary)[0]
    ends = np.empty_like(starts)
    ends[:-1] = starts[1:] - 1
    ends[-1] = n - 1
    return k_sorted[starts], order[starts], order[ends]
