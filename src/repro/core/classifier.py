"""Per-device manual-event classifier (paper §4, deployed per §6 fn. 2).

Two flavours, exactly as the paper deploys them:

* **simple rules** for SP10, WP3 and Nest-E: their manual notification
  packets have a distinctive size (235 / 239 / 267 bytes), so the first
  packet's size decides;
* **BernoulliNB** (sklearn defaults; here :class:`repro.ml.BernoulliNB`)
  over the 66 features of the first 5 packets for every other device,
  chosen over the slightly-more-accurate NCC for its better
  cross-location transferability (§4.3).

The classifier is three-way (control / automated / manual) but the proxy
only cares about manual vs non-manual; :meth:`EventClassifier.is_manual`
collapses accordingly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..events.grouping import UnpredictableEvent
from ..features.packet_features import event_features, event_labels, events_to_matrix
from ..ml.base import Classifier
from ..ml.naive_bayes import BernoulliNB
from ..ml.preprocessing import StandardScaler
from ..net.packet import Packet
from ..obs import NULL_OBS, Observability
from ..testbed.devices import DeviceProfile

__all__ = ["EventClassifier", "SimpleRuleClassifier", "train_event_classifier"]


class SimpleRuleClassifier:
    """First-packet-size rule for simple devices (§4, first paragraph)."""

    def __init__(self, manual_size: int, tolerance: int = 0) -> None:
        self.manual_size = manual_size
        self.tolerance = tolerance

    def is_manual_packets(self, packets: Sequence[Packet]) -> bool:
        """Manual iff the first packet has the distinctive size."""
        if not packets:
            return False
        return abs(packets[0].size - self.manual_size) <= self.tolerance


class EventClassifier:
    """Deployable per-device classifier: rules or scaled BernoulliNB."""

    def __init__(
        self,
        device: str,
        first_n: int = 5,
        rule: Optional[SimpleRuleClassifier] = None,
        model: Optional[Classifier] = None,
        scaler: Optional[StandardScaler] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        if rule is None and model is None:
            raise ValueError("either a rule or a trained model is required")
        self.device = device
        self.first_n = first_n
        self.rule = rule
        self.model = model
        self.scaler = scaler
        self.obs = obs if obs is not None else NULL_OBS

    @property
    def uses_rules(self) -> bool:
        """Whether this classifier is the simple size rule."""
        return self.rule is not None

    def classify_packets(self, packets: Sequence[Packet]) -> str:
        """Label an event prefix: ``control``/``automated``/``manual``."""
        if self.rule is not None:
            return "manual" if self.rule.is_manual_packets(packets) else "automated"
        event = UnpredictableEvent(packets=list(packets))
        features = event_features(event, self.first_n).reshape(1, -1)
        if self.scaler is not None:
            features = self.scaler.transform(features)
        assert self.model is not None
        return str(self.model.timed_predict(features, obs=self.obs, device=self.device)[0])

    def is_manual(self, packets: Sequence[Packet]) -> bool:
        """Collapse to the manual / non-manual decision the proxy needs."""
        return self.classify_packets(packets) == "manual"


def train_event_classifier(
    profile: DeviceProfile,
    training_events: Optional[Sequence[UnpredictableEvent]] = None,
    first_n: int = 5,
    model: Optional[Classifier] = None,
    obs: Optional[Observability] = None,
) -> EventClassifier:
    """Build a device's classifier the way the paper deploys it.

    Rule devices need no training data; ML devices train (by default)
    a BernoulliNB on scaled features of the provided labelled events.
    """
    if profile.uses_simple_rules:
        assert profile.simple_rule_size is not None
        return EventClassifier(
            device=profile.name,
            first_n=first_n,
            rule=SimpleRuleClassifier(profile.simple_rule_size),
            obs=obs,
        )
    if not training_events:
        raise ValueError(f"{profile.name} needs labelled training events")
    X = events_to_matrix(training_events, first_n)
    y = event_labels(training_events)
    scaler = StandardScaler()
    Xs = scaler.fit_transform(X)
    estimator = model if model is not None else BernoulliNB()
    estimator.fit(Xs, y)
    return EventClassifier(
        device=profile.name, first_n=first_n, model=estimator, scaler=scaler, obs=obs
    )
