"""Tests for crash-safe durability: journal, snapshots, recovery, chaos."""

import json
import os

import pytest

from repro.core import FiatConfig
from repro.core.pipeline import FiatSystem
from repro.crypto.replay import ReplayCache
from repro.faults import CrashWindow
from repro.faults.breaker import CircuitBreaker
from repro.predictability import BucketPredictor
from repro.recovery import (
    JournalWriter,
    RecoveryManager,
    frame_record,
    read_journal,
    read_snapshot,
    write_snapshot,
)
from repro.recovery.chaos import build_chaos_workload, run_crashed, run_uninterrupted
from tests.conftest import make_packet


class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with JournalWriter(path) as writer:
            writer.append({"k": "pkt", "n": 1})
            writer.append({"k": "auth", "n": 2})
        result = read_journal(path)
        assert [r["n"] for r in result.records] == [1, 2]
        assert not result.torn
        assert result.valid_bytes == os.path.getsize(path)

    def test_missing_file_reads_empty(self, tmp_path):
        result = read_journal(str(tmp_path / "absent.jsonl"))
        assert result.records == [] and not result.torn

    def test_truncated_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with JournalWriter(path) as writer:
            writer.append({"n": 1})
            writer.append({"n": 2})
        with open(path, "rb+") as handle:
            handle.truncate(os.path.getsize(path) - 3)
        result = read_journal(path)
        assert [r["n"] for r in result.records] == [1]
        assert result.torn and result.torn_reason == "truncated"

    def test_corrupt_frame_ends_replay_fail_closed(self, tmp_path):
        """Records after a bad frame are discarded, not resynced."""
        path = str(tmp_path / "j.jsonl")
        frames = [frame_record({"n": i}) for i in range(3)]
        data = bytearray(b"".join(frames))
        offset = len(frames[0]) + 2
        data[offset] ^= 0xFF  # flip one byte inside record 1
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        result = read_journal(path)
        assert [r["n"] for r in result.records] == [0]
        assert result.torn and result.torn_reason == "bad-frame"
        assert result.valid_bytes == len(frames[0])

    def test_sync_tracks_durable_prefix(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        writer = JournalWriter(path)
        writer.append({"n": 1})
        assert writer.synced_bytes == 0
        writer.append({"n": 2}, sync=True)
        synced = writer.synced_bytes
        assert synced == os.path.getsize(path)
        writer.append({"n": 3})
        assert writer.synced_bytes == synced
        writer.close()

    def test_closed_writer_rejects_appends(self, tmp_path):
        writer = JournalWriter(str(tmp_path / "j.jsonl"))
        writer.close()
        with pytest.raises(ValueError):
            writer.append({"n": 1})


class TestSnapshot:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "s.json")
        state = {"a": 1, "nested": {"b": [1, 2, 3]}}
        write_snapshot(path, state)
        assert read_snapshot(path) == state

    def test_missing_reads_none(self, tmp_path):
        assert read_snapshot(str(tmp_path / "absent.json")) is None

    def test_corrupt_reads_none(self, tmp_path):
        path = str(tmp_path / "s.json")
        write_snapshot(path, {"a": 1})
        with open(path, "rb+") as handle:
            handle.seek(os.path.getsize(path) // 2)
            handle.write(b"\xff\xff")
        assert read_snapshot(path) is None

    def test_write_is_atomic(self, tmp_path):
        """No temp file survives, even across overwrites."""
        path = str(tmp_path / "s.json")
        write_snapshot(path, {"a": 1})
        write_snapshot(path, {"a": 2})
        assert read_snapshot(path) == {"a": 2}
        assert os.listdir(str(tmp_path)) == ["s.json"]


class TestComponentStateSchemas:
    def test_replay_cache_roundtrip_preserves_order(self):
        cache = ReplayCache(window_seconds=60.0, max_entries=8)
        for i in range(5):
            cache.check_and_register(f"n{i}", now=float(i))
        cache.check_and_register("n0", now=5.0)  # a detected replay
        restored = ReplayCache.from_state(cache.to_state())
        assert restored.to_state() == cache.to_state()
        assert restored.n_replays_detected == 1
        assert not restored.check_and_register("n4", now=6.0)

    def test_breaker_roundtrip_preserves_timer(self):
        breaker = CircuitBreaker("c", failure_threshold=1, recovery_timeout_s=30.0)
        breaker.record_failure(10.0)
        restored = CircuitBreaker.from_state(breaker.to_state())
        assert not restored.allow_request(39.9)
        assert restored.allow_request(40.0)

    def test_predictor_roundtrip(self):
        predictor = BucketPredictor()
        for t in range(0, 100, 10):
            predictor.observe(make_packet(timestamp=float(t)))
        restored = BucketPredictor.from_state(predictor.to_state())
        assert restored.to_state() == predictor.to_state()
        assert list(restored.recurring_buckets()) == list(predictor.recurring_buckets())

    @pytest.mark.parametrize(
        "cls", [ReplayCache, CircuitBreaker, BucketPredictor]
    )
    def test_unknown_version_rejected(self, cls):
        with pytest.raises(ValueError):
            cls.from_state({"v": 999})


@pytest.fixture(scope="module")
def chaos_system():
    """A small deployment shared by the recovery/chaos tests."""
    return FiatSystem(
        ["SP10", "WP3"],
        config=FiatConfig(
            bootstrap_s=60.0, snapshot_interval_s=20.0, lockout_threshold=10
        ),
        seed=3,
    )


class TestRecoveryManager:
    def test_start_refuses_nonempty_state_dir(self, tmp_path, chaos_system):
        state_dir = str(tmp_path / "state")
        manager = RecoveryManager(state_dir, chaos_system.build_stack)
        proxy, validation = chaos_system.build_stack()
        manager.start(proxy, validation)
        manager.close()
        other = RecoveryManager(state_dir, chaos_system.build_stack)
        with pytest.raises(ValueError):
            other.start(proxy, validation)

    def test_journal_then_recover_restores_state(self, tmp_path, chaos_system):
        manager = RecoveryManager(str(tmp_path / "state"), chaos_system.build_stack)
        proxy, validation = chaos_system.build_stack()
        manager.start(proxy, validation)
        packets = [
            make_packet(timestamp=float(t), device="SP10") for t in range(0, 40, 5)
        ]
        for packet in packets:
            manager.journal_packet(packet)
            proxy.process(packet)
        manager.simulate_crash()
        recovered, _validation, report = manager.recover(restart_t=40.0)
        assert report.n_replayed == len(packets)
        assert report.horizon_t == packets[-1].timestamp
        assert not report.torn_tail
        # the recovered predictor saw exactly the journaled packets
        assert recovered.snapshot()["predictor"] == proxy.snapshot()["predictor"]

    def test_checkpoint_compacts_old_epochs(self, tmp_path, chaos_system):
        state_dir = str(tmp_path / "state")
        manager = RecoveryManager(state_dir, chaos_system.build_stack)
        proxy, validation = chaos_system.build_stack()
        manager.start(proxy, validation)
        for t in (0.0, 10.0, 20.0):
            manager.journal_packet(make_packet(timestamp=t, device="SP10"))
            proxy.process(make_packet(timestamp=t, device="SP10"))
            manager.checkpoint(t)
        names = sorted(os.listdir(state_dir))
        assert names == ["journal-000004.jsonl", "snapshot-000004.json"]

    def test_corrupt_snapshot_falls_back_to_journal_replay(
        self, tmp_path, chaos_system
    ):
        state_dir = str(tmp_path / "state")
        manager = RecoveryManager(state_dir, chaos_system.build_stack)
        proxy, validation = chaos_system.build_stack()
        manager.start(proxy, validation)
        packet = make_packet(timestamp=1.0, device="SP10")
        manager.journal_packet(packet)
        proxy.process(packet)
        manager.simulate_crash()
        # Destroy the only snapshot: recovery must cold-start and still
        # replay the journal rather than trust a corrupt snapshot.
        snapshot_path = os.path.join(state_dir, "snapshot-000001.json")
        with open(snapshot_path, "w") as handle:
            handle.write("garbage")
        recovered, _validation, report = manager.recover(restart_t=2.0)
        assert report.snapshot_epoch == 0
        assert report.n_replayed == 1
        assert recovered.snapshot()["predictor"] == proxy.snapshot()["predictor"]

    def test_fresh_manager_recovers_twice(self, tmp_path, chaos_system):
        """Back-to-back real process restarts must not resurrect stale state.

        A real restart constructs a *new* manager over the existing
        state dir, so its epoch counter starts at 0.  Unless recover()
        syncs it to the newest on-disk epoch, the post-recovery rotation
        lands below the pre-crash files: compaction deletes nothing, and
        the NEXT recovery restores the stale pre-crash snapshot —
        silently dropping everything journaled since, including the
        consumed-proof replay cache.
        """
        state_dir = str(tmp_path / "state")
        manager = RecoveryManager(state_dir, chaos_system.build_stack)
        proxy, validation = chaos_system.build_stack()
        manager.start(proxy, validation)
        interaction = chaos_system.phone.interact("SP10", 1.0, human=True)
        attempt = chaos_system.app.authenticate(interaction, 1.0)
        manager.journal_auth(attempt.wire, 1.5)
        proxy.receive_auth(attempt.wire, 1.5)
        manager.simulate_crash()

        # First restart: brand-new manager over the existing state dir.
        second = RecoveryManager(state_dir, chaos_system.build_stack)
        recovered, _validation, report = second.recover(restart_t=2.0)
        assert report.n_replayed == 1
        assert second.epoch > manager.epoch  # rotated above the old files
        packet = make_packet(timestamp=3.0, device="SP10")
        second.journal_packet(packet)
        recovered.process(packet)
        second.simulate_crash()

        # Second restart: state journaled after the first recovery must
        # survive — no stale snapshot, no reopened replay window.
        third = RecoveryManager(state_dir, chaos_system.build_stack)
        recovered2, rec_validation, report2 = third.recover(restart_t=4.0)
        assert report2.n_replayed == 1  # the post-recovery packet
        assert recovered2.snapshot()["predictor"] == recovered.snapshot()["predictor"]
        assert recovered2.receive_auth(attempt.wire, 4.0) is None
        assert "replay" in rec_validation.receiver.rejections
        # Only the newest epoch survives: the stale pair was compacted.
        assert sorted(os.listdir(state_dir)) == [
            "journal-000003.jsonl",
            "snapshot-000003.json",
        ]

    def test_synced_auth_record_survives_tail_corruption(
        self, tmp_path, chaos_system
    ):
        manager = RecoveryManager(str(tmp_path / "state"), chaos_system.build_stack)
        proxy, validation = chaos_system.build_stack()
        manager.start(proxy, validation)
        interaction = chaos_system.phone.interact("SP10", 1.0, human=True)
        attempt = chaos_system.app.authenticate(interaction, 1.0)
        manager.journal_auth(attempt.wire, 1.5)
        proxy.receive_auth(attempt.wire, 1.5)
        packet = make_packet(timestamp=2.0, device="SP10")
        manager.journal_packet(packet)
        proxy.process(packet)
        manager.simulate_crash(corrupt_tail_bytes=10_000)
        recovered, rec_validation, report = manager.recover(restart_t=3.0)
        # The un-synced packet record is torn off, but the synced auth
        # record survives: the replay window stays closed.
        assert report.torn_tail
        assert recovered.receive_auth(attempt.wire, 3.0) is None
        assert "replay" in rec_validation.receiver.rejections


class TestProxyHealthState:
    def test_health_counters_survive_restore(self, chaos_system):
        """snapshot()/restore() carry the operational health tallies."""
        proxy, _validation = chaos_system.build_stack()
        proxy.process(make_packet(timestamp=-5.0, device="SP10"))  # pre-start
        assert proxy.health["pre_start_packets"] == 1
        state = json.loads(json.dumps(proxy.snapshot()))
        resumed, _ = chaos_system.build_stack()
        resumed.restore(state)
        assert resumed.health.as_dict() == proxy.health.as_dict()


class TestSnapshotCutPointNeutrality:
    """Satellite: snapshot/restore at any cut point is behaviour-neutral."""

    def test_every_cut_point_reproduces_the_log(self, chaos_system):
        ops = build_chaos_workload(
            chaos_system, duration_s=120.0, event_spacing_s=25.0, seed=11
        )
        baseline = run_uninterrupted(ops, chaos_system.build_stack)
        expected = baseline.decision_log()
        assert len(baseline.decisions) >= 2  # the workload must decide things
        for cut in range(len(ops) + 1):
            proxy, validation = chaos_system.build_stack()
            for op in ops[:cut]:
                _apply_op(proxy, op)
            state = {"proxy": proxy.snapshot(), "validation": validation.to_state()}
            # JSON roundtrip: what recovery persists is what must restore.
            state = json.loads(json.dumps(state))
            resumed, resumed_validation = chaos_system.build_stack()
            resumed.restore(state["proxy"])
            resumed_validation.restore(state["validation"])
            for op in ops[cut:]:
                _apply_op(resumed, op)
            resumed.flush()
            assert resumed.decision_log() == expected, f"cut at op {cut} diverged"


def _apply_op(proxy, op):
    if op.kind == "pkt":
        proxy.process(op.packet)
    elif op.kind == "auth":
        proxy.receive_auth(op.wire, op.t)
    else:
        proxy.unlock(op.device)


class TestChaosSweep:
    def test_sweep_green_with_corruption_and_determinism(self, chaos_system):
        report = chaos_system.chaos_sweep(
            n_trials=8, seed=1, corrupt_fraction=1.0, determinism_every=4
        )
        assert report.ok, [t.failure for t in report.failures()]
        assert report.n_corrupted_tail == 8
        checked = [t for t in report.trials if t.determinism_checked]
        assert checked and all(t.deterministic for t in checked)

    def test_replay_probe_rejects_after_restart(self, chaos_system):
        ops = build_chaos_workload(chaos_system, duration_s=240.0, seed=1)
        auth_ts = [op.t for op in ops if op.kind == "auth"]
        crash = CrashWindow(at=auth_ts[0] + 1.0, downtime_s=2.0)
        import tempfile

        _proxy, report, probe = run_crashed(
            ops,
            chaos_system.build_stack,
            tempfile.mkdtemp(prefix="fiat-probe-"),
            crash,
            snapshot_interval_s=20.0,
        )
        assert probe in ("replay", "stale")
        assert report.n_replayed > 0

    def test_fail_closed_reconciliation_drops_open_manual_event(self, chaos_system):
        """A crash mid-manual-event must not let its tail ride through."""
        ops = build_chaos_workload(chaos_system, duration_s=240.0, seed=1)
        manual_starts = [
            op.t
            for op in ops
            if op.kind == "pkt" and op.packet.event_id and "-manual-" in op.packet.event_id
        ]
        crash = CrashWindow(at=manual_starts[0] + 0.4, downtime_s=2.0)
        import tempfile

        proxy, report, _probe = run_crashed(
            ops,
            chaos_system.build_stack,
            tempfile.mkdtemp(prefix="fiat-reconcile-"),
            crash,
            snapshot_interval_s=20.0,
        )
        reconciled = [
            d
            for d in proxy.decisions
            if d.degraded is not None and "recovery:fail-closed" in d.degraded
        ]
        assert report.n_reconciled >= 1
        assert reconciled and all(d.action == "drop" for d in reconciled)


class TestPipelineRecoveryWiring:
    def test_evaluate_run_journals_and_checkpoints(self, tmp_path):
        system = FiatSystem(
            ["SP10"],
            config=FiatConfig(bootstrap_s=0.0, snapshot_interval_s=60.0),
            seed=0,
            n_training_events=40,
        )
        state_dir = str(tmp_path / "state")
        manager = system.enable_recovery(state_dir)
        system.run_accuracy(n_manual=2, n_non_manual=4, n_attacks=2)
        assert manager.epoch >= 2  # at least one interval checkpoint fired
        names = sorted(os.listdir(state_dir))
        assert any(n.startswith("snapshot-") for n in names)
        assert any(n.startswith("journal-") for n in names)
        # the live epoch's journal replays cleanly
        journals = [n for n in names if n.startswith("journal-")]
        result = read_journal(os.path.join(state_dir, journals[-1]))
        assert not result.torn

    def test_cold_restart_shares_durable_parts(self):
        system = FiatSystem(["SP10"], config=FiatConfig(bootstrap_s=0.0), seed=0)
        old_validator = system.validation.validator
        old_classifiers = system.classifiers
        proxy, validation = system.cold_restart()
        assert system.proxy is proxy and system.validation is validation
        assert validation.validator is old_validator
        assert proxy.classifiers is old_classifiers
        # pairing survives: a proof signed before the restart verifies after
        interaction = system.phone.interact("SP10", 1.0, human=True)
        attempt = system.app.authenticate(interaction, 1.0)
        assert proxy.receive_auth(attempt.wire, 1.1) is not None
