"""Setup shim for environments whose pip lacks PEP 517 wheel support."""
from setuptools import setup

setup()
