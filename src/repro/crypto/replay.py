"""Replay protection for QUIC 0-RTT authentication messages (paper §5.3).

QUIC 0-RTT is vulnerable to replay: an adversary can resend a previously
captured early-data packet unmodified.  The paper argues that, because
only a few devices are authorized per household, the IoT proxy can keep
state of all previously seen connections and reject replays.
:class:`ReplayCache` implements that state: a bounded, time-windowed set
of message identifiers (nonce or payload digest); re-observing an
identifier within the window is a replay.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

__all__ = ["ReplayCache"]

#: Version of the serialised state schema (see :meth:`ReplayCache.to_state`).
_STATE_VERSION = 1


class ReplayCache:
    """Time-windowed duplicate detector for authentication messages.

    Parameters
    ----------
    window_seconds:
        How long an identifier stays "hot".  Within the window, a second
        occurrence is flagged as replay; afterwards the identifier is
        evicted (the accompanying freshness timestamp check makes stale
        replays useless anyway).
    max_entries:
        Hard memory bound; the oldest entries are evicted first.
    """

    def __init__(self, window_seconds: float = 600.0, max_entries: int = 100_000) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.window_seconds = window_seconds
        self.max_entries = max_entries
        self._seen: "OrderedDict[str, float]" = OrderedDict()
        self.n_replays_detected = 0

    def _evict(self, now: float) -> None:
        # Entries are kept in insertion order, which is *not* time order
        # when ``now`` regresses (clock-skew faults): a stale entry can
        # sit behind a fresher head.  Scan the whole cache instead of
        # stopping at the first fresh entry, so out-of-order heads never
        # shield expired entries from eviction.
        expired = [
            identifier
            for identifier, seen_at in self._seen.items()
            if now - seen_at > self.window_seconds
        ]
        for identifier in expired:
            del self._seen[identifier]

    def check_and_register(self, identifier: str, now: float) -> bool:
        """Register an identifier; return ``True`` if it is fresh.

        ``False`` means the identifier was already seen inside the window
        — a replay.  Fresh identifiers are recorded.
        """
        self._evict(now)
        if identifier in self._seen and now - self._seen[identifier] <= self.window_seconds:
            self.n_replays_detected += 1
            return False
        self._seen[identifier] = now
        self._seen.move_to_end(identifier)
        # Enforce the memory bound *after* the insert too, so the cache
        # never exceeds ``max_entries`` even between calls.
        while len(self._seen) > self.max_entries:
            self._seen.popitem(last=False)
        return True

    def __len__(self) -> int:
        return len(self._seen)

    def clear(self) -> None:
        """Drop all state (e.g. on re-pairing)."""
        self._seen.clear()

    # -- durable state ------------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """Serialise to a JSON-native dict (versioned schema).

        Entry order is preserved: it is the eviction order, so a
        restored cache evicts identically to one that never restarted.
        The replay window closed by this state is exactly why it must
        survive restarts — losing it re-opens the QUIC 0-RTT replay
        window for every previously seen proof.
        """
        return {
            "v": _STATE_VERSION,
            "window_seconds": self.window_seconds,
            "max_entries": self.max_entries,
            "seen": [[identifier, seen_at] for identifier, seen_at in self._seen.items()],
            "n_replays_detected": self.n_replays_detected,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "ReplayCache":
        """Rebuild a cache from :meth:`to_state` output."""
        if state.get("v") != _STATE_VERSION:
            raise ValueError(f"unsupported ReplayCache state version: {state.get('v')!r}")
        cache = cls(
            window_seconds=float(state["window_seconds"]),
            max_entries=int(state["max_entries"]),
        )
        entries: List[List[object]] = state["seen"]  # type: ignore[assignment]
        for identifier, seen_at in entries:
            cache._seen[str(identifier)] = float(seen_at)
        cache.n_replays_detected = int(state["n_replays_detected"])
        return cache
