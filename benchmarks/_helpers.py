"""Shared helpers and constants for the benchmark harness."""

import os


def bench_out_path(filename):
    """Where a machine-readable ``BENCH_*.json`` result file lands.

    The directory comes from the ``FIAT_BENCH_OUT`` environment variable
    (default: current working directory) and is created if missing, so
    CI can collect every bench's snapshot as one artifact.
    """
    directory = os.environ.get("FIAT_BENCH_OUT", ".")
    os.makedirs(directory, exist_ok=True)
    return os.path.join(directory, filename)

#: Device-location datasets evaluated in Table 3 (13 rows).
TABLE3_DATASETS = [
    ("EchoDot4", "US"),
    ("EchoDot4", "JP"),
    ("EchoDot4", "DE"),
    ("HomeMini", "US"),
    ("HomeMini", "JP"),
    ("HomeMini", "DE"),
    ("WyzeCam", "US"),
    ("WyzeCam", "JP"),
    ("WyzeCam", "DE"),
    ("Home", "US"),
    ("EchoDot3", "US"),
    ("E4", "US"),
    ("Blink", "US"),
]

#: Devices classified with ML (rule devices SP10/WP3/Nest-E excluded, §4).
ML_DEVICES = ["EchoDot4", "HomeMini", "WyzeCam", "Home", "EchoDot3", "E4", "Blink"]


def print_table(title, header, rows):
    """Render one reproduced table to stdout (shown with ``pytest -s``)."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(header)
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
