"""Figure 1(b): CDFs of predictable-traffic share across devices.

Reproduces the paper's headline measurement: in YourThings, more than
80 % of the traffic of ~80 % of devices is predictable under PortLess
(Classic is visibly worse); in Mon(IoT)r, idle (control-only) traffic is
predictable for up to 90 % of traffic for 90 % of devices, while active
captures drop substantially.
"""

import numpy as np

from repro.net import FlowDefinition
from repro.predictability import analyze_trace, cdf

from benchmarks._helpers import print_table


def _percentiles(fractions):
    values = np.asarray(sorted(fractions))
    return {
        "p10": float(np.percentile(values, 10)),
        "p50": float(np.percentile(values, 50)),
        "p80": float(np.percentile(values, 80)),
        "share>0.8": float(np.mean(values > 0.8)),
    }


def test_fig1b_yourthings(benchmark, yourthings_corpus):
    report = benchmark.pedantic(
        lambda: analyze_trace(yourthings_corpus, FlowDefinition.PORTLESS),
        rounds=1,
        iterations=1,
    )
    portless = _percentiles(report.fractions())
    classic = _percentiles(
        analyze_trace(yourthings_corpus, FlowDefinition.CLASSIC).fractions()
    )
    rows = [
        ("PortLess", *(f"{portless[k]:.2f}" for k in ("p10", "p50", "p80", "share>0.8"))),
        ("Classic", *(f"{classic[k]:.2f}" for k in ("p10", "p50", "p80", "share>0.8"))),
    ]
    print_table(
        "Fig 1(b) — YourThings predictability CDF "
        "(paper: >80 % of traffic predictable for ~80 % of devices, PortLess > Classic)",
        ("definition", "p10", "p50", "p80", "share of devices > 0.8"),
        rows,
    )
    # Shape assertions matching the published curve.
    assert portless["share>0.8"] >= 0.6
    assert portless["p50"] >= classic["p50"]

    x, y = cdf(report.fractions())
    assert len(x) == len(yourthings_corpus.devices())


def test_fig1b_moniotr_idle_vs_active(benchmark, moniotr_corpora):
    idle, active = moniotr_corpora

    idle_report = benchmark.pedantic(
        lambda: analyze_trace(idle, FlowDefinition.PORTLESS), rounds=1, iterations=1
    )
    active_report = analyze_trace(active, FlowDefinition.PORTLESS)
    idle_stats = _percentiles(idle_report.fractions())
    active_stats = _percentiles(active_report.fractions())

    rows = [
        ("idle (control only)", *(f"{idle_stats[k]:.2f}" for k in ("p10", "p50", "p80", "share>0.8"))),
        ("active (manual mixed)", *(f"{active_stats[k]:.2f}" for k in ("p10", "p50", "p80", "share>0.8"))),
    ]
    print_table(
        "Fig 1(b) — Mon(IoT)r predictability, idle vs active "
        "(paper: idle ~90 % for 90 % of devices; active reduced)",
        ("split", "p10", "p50", "p80", "share of devices > 0.8"),
        rows,
    )
    assert idle_stats["p50"] > 0.85
    assert active_stats["p50"] < idle_stats["p50"]
