"""Distribution-level tests of the testbed's traffic rendering internals."""

import numpy as np
import pytest

from repro.net import Direction, TrafficClass
from repro.testbed import CloudDirectory, Location, profile_for
from repro.testbed.household import _render_burst, _render_stream, render_event


@pytest.fixture
def cloud():
    return CloudDirectory(seed=3)


def _endpoints(cloud, profile, template):
    return {s: cloud.endpoint(profile.vendor, s, Location.US) for s in template.services()}


def _render_many(profile, template, cloud, n=300, seed=0):
    rng = np.random.default_rng(seed)
    endpoints = _endpoints(cloud, profile, template)
    events = []
    t = 0.0
    for _ in range(n):
        packets = render_event(
            profile, template, t, TrafficClass.MANUAL, "192.168.1.10", endpoints, rng
        )
        events.append(packets)
        t += 100.0
    return events


class TestEventRendering:
    def test_n_packets_within_template_range(self, cloud):
        profile = profile_for("EchoDot4")
        events = _render_many(profile, profile.manual, cloud, n=100)
        lo, hi = profile.manual.n_packets
        assert all(lo <= len(e) <= hi for e in events)

    def test_first_inbound_probability(self, cloud):
        profile = profile_for("EchoDot4")
        events = _render_many(profile, profile.manual, cloud, n=400)
        inbound = np.mean([e[0].direction is Direction.INBOUND for e in events])
        assert abs(inbound - profile.manual.first_inbound_prob) < 0.06

    def test_wyzecam_udp_opener(self, cloud):
        profile = profile_for("WyzeCam")
        events = _render_many(profile, profile.manual, cloud, n=300)
        udp_first = np.mean([e[0].protocol == "udp" for e in events])
        assert abs(udp_first - profile.manual.first_udp_prob) < 0.07

    def test_bimodal_sizes(self, cloud):
        profile = profile_for("EchoDot4")
        events = _render_many(profile, profile.manual, cloud, n=200)
        sizes = np.array([p.size for e in events for p in e])
        big = np.mean(sizes > 550)
        assert abs(big - profile.manual.size_big_prob) < 0.08

    def test_port_marker_mixture(self, cloud):
        profile = profile_for("EchoDot4")
        events = _render_many(profile, profile.manual, cloud, n=200)
        high = np.mean([p.remote_port == 8883 for e in events for p in e])
        assert abs(high - profile.manual.port_high_prob) < 0.08

    def test_udp_packets_carry_no_tls(self, cloud):
        profile = profile_for("WyzeCam")
        events = _render_many(profile, profile.manual, cloud, n=100)
        for event in events:
            for packet in event:
                if packet.protocol == "udp":
                    assert packet.tls_version == 0
                    assert packet.tcp_flags == 0

    def test_fixed_first_size_devices(self, cloud):
        profile = profile_for("WP3")
        events = _render_many(profile, profile.manual, cloud, n=50)
        assert all(e[0].size == profile.simple_rule_size for e in events)

    def test_remote_ips_drawn_from_pool(self, cloud):
        profile = profile_for("EchoDot4")
        events = _render_many(profile, profile.manual, cloud, n=150)
        relay = cloud.endpoint(profile.vendor, "relay", Location.US)
        observed = {
            p.remote_ip for e in events for p in e if p.remote_port == relay.port
        }
        assert observed <= set(relay.ips)
        assert len(observed) > 3  # rotation across events


class TestBurstAndStream:
    def test_burst_constant_size_and_pace(self, cloud):
        profile = profile_for("EchoDot4")
        burst = profile.automated_burst
        endpoint = cloud.endpoint(profile.vendor, burst.service, Location.US)
        packets = _render_burst(
            profile, burst, 0.0, TrafficClass.AUTOMATED, "192.168.1.10",
            endpoint, np.random.default_rng(0),
        )
        assert len(packets) == burst.n_packets
        assert len({p.size for p in packets}) == 1
        diffs = np.diff([p.timestamp for p in packets])
        assert np.allclose(diffs, burst.iat_s, atol=0.05)

    def test_stream_rate(self, cloud):
        profile = profile_for("WyzeCam")
        stream = profile.manual_stream
        endpoint = cloud.endpoint(profile.vendor, stream.service, Location.US)
        packets = _render_stream(
            profile, stream, 0.0, "192.168.1.10", endpoint, np.random.default_rng(0)
        )
        duration = packets[-1].timestamp - packets[0].timestamp
        rate = (len(packets) - 1) / duration
        assert rate == pytest.approx(stream.rate_pps, rel=0.1)
        assert all(p.direction is Direction.OUTBOUND for p in packets)
        assert all(p.traffic_class is TrafficClass.MANUAL for p in packets)
