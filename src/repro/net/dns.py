"""DNS name resolution table for the PortLess flow definition.

The paper obtains the remote domain name either from DNS requests present
in the trace or through a reverse DNS lookup sent to a fixed recursive
resolver (so one IP always maps to one name).  :class:`DnsTable` models
both sources: exact mappings learned from (simulated) DNS responses, and a
deterministic reverse-lookup fallback that may return a coarser *alias*
(the paper notes reverse lookups are less accurate because of domain
aliases; the ``alias_of`` mechanism reproduces that effect).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

__all__ = ["DnsTable"]


class DnsTable:
    """Bidirectional IP <-> domain mapping with reverse-lookup fallback.

    Parameters
    ----------
    records:
        Optional initial ``(ip, domain)`` pairs, as if observed in DNS
        responses in the trace.
    """

    def __init__(self, records: Optional[Iterable[Tuple[str, str]]] = None) -> None:
        self._ip_to_domain: Dict[str, str] = {}
        self._reverse: Dict[str, str] = {}
        self._aliases: Dict[str, str] = {}
        #: bumped on every mutation; flow-key caches (repro.stream) use it
        #: to invalidate memoised ip -> domain resolutions.
        self.version = 0
        if records:
            for ip, domain in records:
                self.add_record(ip, domain)

    def add_record(self, ip: str, domain: str) -> None:
        """Register a forward DNS record (authoritative for this table)."""
        self._ip_to_domain[ip] = domain
        self.version += 1

    def add_reverse_record(self, ip: str, domain: str) -> None:
        """Register a PTR record used only when no forward record exists."""
        self._reverse[ip] = domain
        self.version += 1

    def add_alias(self, domain: str, canonical: str) -> None:
        """Declare ``domain`` to be an alias (CNAME) of ``canonical``."""
        self._aliases[domain] = canonical
        self.version += 1

    def canonicalize(self, domain: str) -> str:
        """Follow alias chains to the canonical domain name."""
        seen = set()
        while domain in self._aliases and domain not in seen:
            seen.add(domain)
            domain = self._aliases[domain]
        return domain

    def domain_for(self, ip: str) -> Optional[str]:
        """Resolve an IP to a canonical domain, or ``None`` if unknown.

        Forward records (from in-trace DNS) win over reverse lookups,
        matching the paper's methodology.
        """
        domain = self._ip_to_domain.get(ip) or self._reverse.get(ip)
        if domain is None:
            return None
        return self.canonicalize(domain)

    def ips_for(self, domain: str) -> Tuple[str, ...]:
        """All IPs known to map to ``domain`` (after canonicalisation)."""
        canonical = self.canonicalize(domain)
        hits = [
            ip
            for table in (self._ip_to_domain, self._reverse)
            for ip, dom in table.items()
            if self.canonicalize(dom) == canonical
        ]
        # preserve insertion order while deduplicating
        return tuple(dict.fromkeys(hits))

    def records(self) -> Dict[str, str]:
        """All forward ip -> domain records (for serialisation)."""
        return dict(self._ip_to_domain)

    def merge(self, other: "DnsTable") -> "DnsTable":
        """Return a new table with records from both tables (other wins ties)."""
        merged = DnsTable()
        merged._ip_to_domain = {**self._ip_to_domain, **other._ip_to_domain}
        merged._reverse = {**self._reverse, **other._reverse}
        merged._aliases = {**self._aliases, **other._aliases}
        return merged

    def __len__(self) -> int:
        return len(self._ip_to_domain) + len(self._reverse)

    def __contains__(self, ip: str) -> bool:
        return ip in self._ip_to_domain or ip in self._reverse
