"""Flow-key definitions used by the predictability heuristic (paper §2.1).

The paper buckets packets under two alternative flow definitions:

* **Classic** -- the 6-tuple
  ``<ip_src, ip_dst, port_src, port_dst, proto, size>``.
* **PortLess** -- a 4-tuple that abandons both ports and replaces the
  remote IP with its *domain name* (resolved via DNS traffic or a reverse
  lookup): ``<device endpoint, remote domain, proto, size>``.

PortLess is the definition FIAT deploys because IoT devices regularly talk
to the same domain from ephemeral ports, which fragments Classic buckets.
"""

from __future__ import annotations

import enum
from typing import Hashable, Optional, Tuple

from .dns import DnsTable
from .packet import Direction, Packet

__all__ = [
    "FlowDefinition",
    "classic_key",
    "portless_key",
    "flow_key",
    "encode_flow_key",
    "decode_flow_key",
]


class FlowDefinition(enum.Enum):
    """Which flow definition to bucket packets under."""

    CLASSIC = "classic"
    PORTLESS = "portless"


def classic_key(packet: Packet) -> Tuple[Hashable, ...]:
    """Classic 6-tuple bucket key: addresses, ports, protocol and size."""
    return (
        packet.src_ip,
        packet.dst_ip,
        packet.src_port,
        packet.dst_port,
        packet.protocol,
        packet.size,
    )


def portless_key(packet: Packet, dns: Optional[DnsTable] = None) -> Tuple[Hashable, ...]:
    """PortLess bucket key: device ip, remote domain, direction, protocol, size.

    The remote IP is replaced by its domain name when ``dns`` can resolve
    it; unresolvable IPs fall back to the raw address, which — as the
    paper notes for its reverse-DNS fallback — is *at least* as precise
    as using the IP directly.
    """
    remote: Hashable = packet.remote_ip
    if dns is not None:
        remote = dns.domain_for(packet.remote_ip) or packet.remote_ip
    return (
        packet.device_ip,
        remote,
        packet.direction.value,
        packet.protocol,
        packet.size,
    )


def flow_key(
    packet: Packet,
    definition: FlowDefinition,
    dns: Optional[DnsTable] = None,
) -> Tuple[Hashable, ...]:
    """Dispatch to :func:`classic_key` or :func:`portless_key`."""
    if definition is FlowDefinition.CLASSIC:
        return classic_key(packet)
    if definition is FlowDefinition.PORTLESS:
        return portless_key(packet, dns)
    raise ValueError(f"unknown flow definition: {definition!r}")


def flow_pretty(key: Tuple[Hashable, ...], definition: FlowDefinition) -> str:
    """Human-readable rendering of a flow key for logs and figures."""
    if definition is FlowDefinition.CLASSIC:
        src, dst, sport, dport, proto, size = key
        return f"{src}:{sport} -> {dst}:{dport} {proto} {size}B"
    device, remote, direction, proto, size = key
    arrow = "->" if direction == Direction.OUTBOUND.value else "<-"
    return f"{device} {arrow} {remote} {proto} {size}B"


# -- durable-state codec ----------------------------------------------------------
#
# Flow keys are tuples of hashable scalars (strings and ints today), but
# JSON has no tuple type and dict keys must be strings.  The recovery
# subsystem serialises bucket/rule tables as ``[encoded_key, value]``
# pairs; nested tuples are tagged so decoding restores hashability.

def encode_flow_key(key: Hashable) -> object:
    """Encode a flow key (or key element) into a JSON-native value."""
    if isinstance(key, tuple):
        return {"t": [encode_flow_key(element) for element in key]}
    if key is None or isinstance(key, (str, int, float, bool)):
        return key
    raise TypeError(f"flow key element {key!r} is not JSON-encodable")


def decode_flow_key(encoded: object) -> Hashable:
    """Inverse of :func:`encode_flow_key`."""
    if isinstance(encoded, dict):
        return tuple(decode_flow_key(element) for element in encoded["t"])
    if isinstance(encoded, list):  # tolerate plain-list encodings
        return tuple(decode_flow_key(element) for element in encoded)
    return encoded  # scalar
