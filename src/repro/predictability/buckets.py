"""Bucket-based predictability heuristic (paper §2.1).

A packet is *predictable* when packets of the same size travel between
the same endpoints at a constant pace.  Concretely, every packet is
stored in a bucket identified by its flow key (Classic or PortLess, see
:mod:`repro.net.flows`); for each bucket the inter-arrival time (IAT)
between the last two packets is computed, and if that IAT matches any
previously computed IAT for the bucket, then **all** packets associated
with that IAT — previous and future — are considered predictable.

Two consumption modes are provided:

* :func:`label_predictable` — the offline, retroactive analysis used for
  the measurement study (§2, §3): returns a per-packet boolean mask.
* :class:`BucketPredictor` — an online learner used by the FIAT proxy:
  during the bootstrap window it records the recurring IATs of every
  bucket; afterwards :meth:`BucketPredictor.observe` reports whether an
  arriving packet matches a learned pattern.

IATs are quantised to a configurable resolution (default 0.25 s) so that
small scheduling jitter does not break a match, while genuinely drifting
timers — such as the Nest thermostat's motion-triggered wakeups, which
vary by several seconds — remain unpredictable, as observed in the paper.

Both the offline pass and the bulk learning path
(:meth:`BucketPredictor.observe_batch`) run on the shared vectorized
bin-matching core in :mod:`repro.stream.binmatch`, so offline and online
labelling use one implementation.
"""

from __future__ import annotations

import math
from collections import defaultdict
from time import perf_counter
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..net.dns import DnsTable
from ..net.flows import FlowDefinition, decode_flow_key, encode_flow_key, flow_key
from ..net.packet import Packet
from ..net.trace import Trace
from ..obs import NULL_OBS, Observability

__all__ = ["BucketPredictor", "label_predictable", "quantize_iat"]

#: Default IAT quantisation resolution in seconds.
DEFAULT_RESOLUTION = 0.25

#: Version of the serialised state schema (see :meth:`BucketPredictor.to_state`).
#: v2 drops the per-packet ``packets`` history unless tracking is enabled;
#: v1 states are lifted compatibly on load.
_STATE_VERSION = 2


def quantize_iat(iat: float, resolution: float = DEFAULT_RESOLUTION) -> int:
    """Quantise an inter-arrival time into an integer bin.

    IATs are rounded to the *nearest* multiple of ``resolution``
    (``floor(iat / resolution + 0.5)``), so every bin ``k >= 1`` covers
    the half-open interval ``((k - 0.5) * resolution, (k + 0.5) *
    resolution]`` while bin 0 only covers ``(0, resolution / 2]`` — at
    the default 0.25 s resolution, ``quantize_iat(0.124) == 0`` but
    ``quantize_iat(0.125) == 1``.  Non-positive IATs (possible only with
    unsorted input) are clamped to bin 0.
    """
    if iat <= 0:
        return 0
    return int(math.floor(iat / resolution + 0.5))


class _BucketState:
    """Per-bucket history: last arrival and IAT-bin occurrence counts."""

    __slots__ = ("last_timestamp", "iat_bins", "packet_bins")

    def __init__(self) -> None:
        self.last_timestamp: Optional[float] = None
        #: bin -> number of times this IAT bin was computed
        self.iat_bins: Dict[int, int] = {}
        #: per observed packet (after the first): (packet_index, bin).
        #: Only populated when the owning predictor tracks packet bins —
        #: the online proxy must stay O(buckets x bins), not O(packets).
        self.packet_bins: List[Tuple[int, int]] = []


class BucketPredictor:
    """Online predictability learner / matcher.

    Parameters
    ----------
    definition:
        Flow definition used for bucketing (PortLess by default, as
        deployed by FIAT).
    dns:
        DNS table for PortLess domain resolution.
    resolution:
        IAT quantisation resolution in seconds.
    neighbor_bins:
        A new IAT matches a learned one when its bin is within this many
        bins of a previously seen bin (0 = exact bin match).  One
        neighbour bin absorbs boundary jitter.
    track_packet_bins:
        When true, every observed packet's (index, bin) pair is kept in
        its bucket's ``packet_bins`` history — an **offline-analysis**
        aid whose memory grows per packet.  Off by default: the
        long-running online proxy must stay bounded by buckets x bins
        (this was an unbounded leak when the history was unconditional),
        and its ``to_state`` snapshots/journals shrink accordingly.
    obs:
        Optional :class:`~repro.obs.Observability` handle backing
        :meth:`timed_observe`, which feeds the
        ``bucket_lookup_latency_ms`` histogram.  :meth:`observe` itself
        is never timed: the lookup body is sub-microsecond, so even a
        per-call sampling check would dominate it — the caller (the FIAT
        proxy) decides when to route a call through the timed variant.
    """

    def __init__(
        self,
        definition: FlowDefinition = FlowDefinition.PORTLESS,
        dns: Optional[DnsTable] = None,
        resolution: float = DEFAULT_RESOLUTION,
        neighbor_bins: int = 1,
        track_packet_bins: bool = False,
        obs: Optional[Observability] = None,
    ) -> None:
        self.definition = definition
        self.dns = dns
        self.resolution = resolution
        self.neighbor_bins = neighbor_bins
        self.track_packet_bins = track_packet_bins
        self._obs = obs if obs is not None else NULL_OBS
        self._buckets: Dict[Tuple[Hashable, ...], _BucketState] = defaultdict(_BucketState)
        self._n_observed = 0
        #: lazily built flow-key interner backing :meth:`observe_batch`
        self._interner = None

    # -- online interface ---------------------------------------------------------

    def key_for(self, packet: Packet) -> Tuple[Hashable, ...]:
        """Bucket key of a packet under this predictor's flow definition."""
        return flow_key(packet, self.definition, self.dns)

    def _bin_matches(self, state: _BucketState, iat_bin: int) -> bool:
        for delta in range(-self.neighbor_bins, self.neighbor_bins + 1):
            if state.iat_bins.get(iat_bin + delta, 0) > 0:
                return True
        return False

    def timed_observe(self, packet: Packet) -> bool:
        """:meth:`observe` one packet, feeding ``bucket_lookup_latency_ms``.

        Unconditionally timed — callers are expected to sample (the FIAT
        proxy routes at most one call per
        :data:`~repro.obs.TIMING_SAMPLE_INTERVAL_S` simulated seconds
        through here), because the lookup body is sub-microsecond and a
        per-call check here would cost more than the <10 %
        instrumentation budget allows.
        """
        t0 = perf_counter()
        matched = self.observe(packet)
        self._obs.observe("bucket_lookup_latency_ms", (perf_counter() - t0) * 1000.0)
        return matched

    def observe(self, packet: Packet) -> bool:
        """Feed one packet; return ``True`` when it matches a learned IAT.

        The first packet of a bucket is never predictable online (there is
        no IAT yet), and the second is predictable only if its IAT matches
        an IAT learned from earlier traffic.
        """
        state = self._buckets[self.key_for(packet)]
        self._n_observed += 1
        if state.last_timestamp is None:
            state.last_timestamp = packet.timestamp
            return False
        iat = packet.timestamp - state.last_timestamp
        state.last_timestamp = packet.timestamp
        iat_bin = quantize_iat(iat, self.resolution)
        matched = self._bin_matches(state, iat_bin)
        state.iat_bins[iat_bin] = state.iat_bins.get(iat_bin, 0) + 1
        if self.track_packet_bins:
            state.packet_bins.append((self._n_observed - 1, iat_bin))
        return matched

    def observe_batch(
        self,
        packets: Sequence[Packet],
        kids: Optional[np.ndarray] = None,
        timestamps: Optional[np.ndarray] = None,
        keys: Optional[List[Tuple[Hashable, ...]]] = None,
    ) -> None:
        """Bulk-feed packets through the vectorized learning path.

        Produces **exactly** the learner state of calling
        :meth:`observe` once per packet in order (same bucket creation
        order, bin insertion order, last timestamps and
        ``_n_observed``), but computes all IAT bins in one NumPy pass
        and touches each distinct (bucket, bin) pair once instead of
        each packet.  Match flags are not reported — this is the
        learning path (the proxy's bootstrap window ignores them);
        enforcement-time matching lives in :mod:`repro.stream.engine`.

        ``kids``/``timestamps``/``keys`` let a caller that already
        interned the packets (the streaming engine, whose
        :class:`~repro.stream.binmatch.KeyInterner` shares this
        predictor's flow definition and DNS table) pass its bucket ids
        and ``kid -> flow key`` list instead of paying a second
        interning pass; they must be supplied together.

        Falls back to the scalar loop when per-packet history tracking
        is on (the history needs global packet indices per packet) or
        when bins overflow the packed-code range.
        """
        n = len(packets)
        if n == 0:
            return
        if self.track_packet_bins or n == 1:
            for packet in packets:
                self.observe(packet)
            return

        from ..stream.binmatch import (
            PAIR_SHIFT,
            KeyInterner,
            chain_prev,
            codes_safe,
            first_last_per_kid,
            pair_codes,
            quantize_iat_array,
        )

        if kids is None:
            interner = self._interner
            if interner is None:
                interner = self._interner = KeyInterner(self.definition, self.dns)
            interner.check_dns()
            memo_get = interner.memo.get
            raw = interner.raw
            slow = interner.intern_slow
            kid_list: List[int] = []
            append = kid_list.append
            for packet in packets:
                rk = raw(packet)
                kid = memo_get(rk)
                if kid is None:
                    kid = slow(packet, rk)
                append(kid)
            kids = np.asarray(kid_list, dtype=np.int64)
            keys = interner.keys
        assert keys is not None
        if timestamps is None:
            timestamps = np.fromiter(
                (p.timestamp for p in packets), dtype=np.float64, count=n
            )

        # Bucket states for this batch's kids, created (when new) in
        # first-occurrence order — the scalar bucket creation order.
        uniq_kids, first_idx, last_idx = first_last_per_kid(kids)
        order = np.argsort(first_idx, kind="stable")
        buckets = self._buckets
        state_by_kid: Dict[int, _BucketState] = {}
        for pos in order.tolist():
            kid = int(uniq_kids[pos])
            state_by_kid[kid] = buckets[keys[kid]]

        # Carry each bucket's pre-batch last_timestamp into the batch's
        # first packet of that bucket (at most one such packet per kid).
        _, prev_ts = chain_prev(kids, timestamps)
        firsts = np.nonzero(np.isnan(prev_ts))[0]
        if len(firsts):
            prev_ts[firsts] = [
                np.nan if last is None else last
                for last in (state_by_kid[int(kids[i])].last_timestamp for i in firsts)
            ]
        has_prev = ~np.isnan(prev_ts)

        iats = timestamps - prev_ts
        bins = quantize_iat_array(iats, self.resolution)
        if not codes_safe(kids[has_prev], bins[has_prev], self.neighbor_bins):
            for packet in packets:
                self.observe(packet)
            return

        # Per-(bucket, bin) counts, applied in first-occurrence order so
        # each bucket's bin dict lists bins exactly as the scalar loop
        # would have inserted them (serialised state stays identical).
        uniq_codes, code_first, counts = np.unique(
            pair_codes(kids[has_prev], bins[has_prev]),
            return_index=True,
            return_counts=True,
        )
        code_order = np.argsort(code_first, kind="stable")
        for pos in code_order.tolist():
            kid, iat_bin = divmod(int(uniq_codes[pos]), PAIR_SHIFT)
            iat_bins = state_by_kid[kid].iat_bins
            iat_bins[iat_bin] = iat_bins.get(iat_bin, 0) + int(counts[pos])

        for kid, i in zip(uniq_kids.tolist(), last_idx.tolist()):
            state_by_kid[kid].last_timestamp = float(timestamps[i])
        self._n_observed += n

    def learn_trace(self, trace: Iterable[Packet]) -> None:
        """Bulk-feed a (bootstrap) trace without collecting the results."""
        packets = trace if isinstance(trace, (list, tuple)) else list(trace)
        self.observe_batch(packets)

    # -- learned-state inspection ---------------------------------------------------

    @property
    def n_buckets(self) -> int:
        """Number of distinct flow buckets seen so far."""
        return len(self._buckets)

    def recurring_buckets(self) -> List[Tuple[Tuple[Hashable, ...], Set[int]]]:
        """Buckets with at least one IAT bin seen twice, with those bins.

        These are the flows the FIAT proxy converts into allow rules
        after the bootstrap window.
        """
        result = []
        for key, state in self._buckets.items():
            repeated = {b for b, count in state.iat_bins.items() if count >= 2}
            if repeated:
                result.append((key, repeated))
        return result

    def learned_bins(self, key: Tuple[Hashable, ...]) -> Set[int]:
        """All IAT bins ever computed for a bucket (empty if unseen)."""
        state = self._buckets.get(key)
        return set(state.iat_bins) if state else set()

    def last_seen(self, key: Tuple[Hashable, ...]) -> Optional[float]:
        """Timestamp of the bucket's most recent packet (None if unseen)."""
        state = self._buckets.get(key)
        return state.last_timestamp if state else None

    # -- durable state ------------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """Serialise the learned bucket tables (versioned, JSON-native).

        Bucket iteration order is preserved so a restored predictor
        freezes rules in the same order as an uninterrupted one.  The
        per-packet ``packets`` history is emitted only when tracking is
        enabled — the online learner's state is O(buckets x bins), so
        snapshots and journals stay flat no matter how long the proxy
        has been running.
        """
        buckets = []
        for key, state in self._buckets.items():
            encoded: Dict[str, object] = {
                "last": state.last_timestamp,
                "bins": {str(b): count for b, count in state.iat_bins.items()},
            }
            if self.track_packet_bins:
                encoded["packets"] = [[index, b] for index, b in state.packet_bins]
            buckets.append([encode_flow_key(key), encoded])
        return {
            "v": _STATE_VERSION,
            "definition": self.definition.value,
            "resolution": self.resolution,
            "neighbor_bins": self.neighbor_bins,
            "track_packet_bins": self.track_packet_bins,
            "n_observed": self._n_observed,
            "buckets": buckets,
        }

    @classmethod
    def from_state(
        cls,
        state: Dict[str, object],
        dns: Optional[DnsTable] = None,
        obs: Optional[Observability] = None,
    ) -> "BucketPredictor":
        """Rebuild a predictor from :meth:`to_state` output.

        Accepts the current v2 schema and lifts v1 states compatibly:
        v1 always carried the per-packet history, which is preserved
        only when the lifted predictor tracks packet bins (v1 states
        load as non-tracking by default — the online-learner memory fix
        applies retroactively to old snapshots).

        ``dns`` and ``obs`` are process-local resources (the DNS table is
        rebuilt by the host, the observability handle belongs to the new
        process) and are therefore re-injected rather than serialised.
        """
        version = state.get("v")
        if version not in (1, _STATE_VERSION):
            raise ValueError(f"unsupported BucketPredictor state version: {version!r}")
        predictor = cls(
            definition=FlowDefinition(state["definition"]),
            dns=dns,
            resolution=float(state["resolution"]),
            neighbor_bins=int(state["neighbor_bins"]),
            track_packet_bins=bool(state.get("track_packet_bins", False)),
            obs=obs,
        )
        predictor._n_observed = int(state["n_observed"])
        for encoded_key, encoded in state["buckets"]:  # type: ignore[union-attr]
            bucket = _BucketState()
            last = encoded["last"]
            bucket.last_timestamp = None if last is None else float(last)
            bucket.iat_bins = {int(b): int(count) for b, count in encoded["bins"].items()}
            if predictor.track_packet_bins:
                bucket.packet_bins = [
                    (int(i), int(b)) for i, b in encoded.get("packets", [])
                ]
            predictor._buckets[decode_flow_key(encoded_key)] = bucket
        return predictor


def label_predictable(
    trace: Trace,
    definition: FlowDefinition = FlowDefinition.PORTLESS,
    dns: Optional[DnsTable] = None,
    resolution: float = DEFAULT_RESOLUTION,
    neighbor_bins: int = 1,
) -> List[bool]:
    """Offline, retroactive predictability labelling (paper §2.1).

    Returns one boolean per packet of ``trace`` (in timestamp order).
    A packet is predictable when the IAT bin linking it to the previous
    packet of its bucket occurs **at least twice** anywhere in the trace
    (counting ±``neighbor_bins`` as the same bin); both the earlier and
    later packets of a repeated IAT are marked, which realises the
    paper's "previous or future" retroactivity.  The first packet of a
    bucket is marked predictable when the bucket contains any repeated
    IAT involving its successor, i.e. when the flow itself is periodic
    from the start.

    Runs on the shared vectorized core of :mod:`repro.stream.binmatch`
    (one NumPy pass over the whole trace); pathological bin ranges fall
    back to the scalar reference implementation.
    """
    from ..stream.binmatch import (
        KeyInterner,
        chain_prev,
        codes_safe,
        neighbor_counts,
        pair_codes,
        quantize_iat_array,
    )

    dns = dns if dns is not None else trace.dns
    n = len(trace)
    if n == 0:
        return []

    interner = KeyInterner(definition, dns)
    intern = interner.intern
    kids = np.fromiter((intern(p) for p in trace), dtype=np.int64, count=n)
    timestamps = np.fromiter((p.timestamp for p in trace), dtype=np.float64, count=n)

    prev_index, prev_ts = chain_prev(kids, timestamps)
    has_prev = prev_index >= 0
    bins = quantize_iat_array(timestamps - prev_ts, resolution)
    if not codes_safe(kids[has_prev], bins[has_prev], neighbor_bins):
        return _label_predictable_scalar(trace, definition, dns, resolution, neighbor_bins)

    codes = pair_codes(kids[has_prev], bins[has_prev])
    uniq_codes, counts = np.unique(codes, return_counts=True)
    repeated = (
        neighbor_counts(uniq_codes, counts, kids[has_prev], bins[has_prev], neighbor_bins)
        >= 2
    )

    labels = np.zeros(n, dtype=bool)
    marked = np.nonzero(has_prev)[0][repeated]
    labels[marked] = True
    # The predecessor packet participates in the same repeated IAT pair.
    labels[prev_index[marked]] = True
    return labels.tolist()


def _label_predictable_scalar(
    trace: Trace,
    definition: FlowDefinition,
    dns: Optional[DnsTable],
    resolution: float,
    neighbor_bins: int,
) -> List[bool]:
    """Scalar reference for :func:`label_predictable` (and its fallback)."""
    labels = [False] * len(trace)

    # First pass: compute IAT bins per bucket, remembering each packet's
    # within-bucket predecessor (only repeated-bin packets need it).
    last_seen: Dict[Tuple[Hashable, ...], Tuple[int, float]] = {}
    packet_bin: Dict[int, Tuple[Tuple[Hashable, ...], int, int]] = {}
    bin_counts: Dict[Tuple[Hashable, ...], Dict[int, int]] = defaultdict(dict)

    for index, packet in enumerate(trace):
        key = flow_key(packet, definition, dns)
        previous = last_seen.get(key)
        if previous is not None:
            prev_index, prev_time = previous
            iat_bin = quantize_iat(packet.timestamp - prev_time, resolution)
            packet_bin[index] = (key, iat_bin, prev_index)
            counts = bin_counts[key]
            counts[iat_bin] = counts.get(iat_bin, 0) + 1
        last_seen[key] = (index, packet.timestamp)

    # Second pass: a bin is "repeated" when, considering neighbour bins,
    # it was computed at least twice in its bucket.
    for index, (key, iat_bin, prev_index) in packet_bin.items():
        counts = bin_counts[key]
        total = 0
        for delta in range(-neighbor_bins, neighbor_bins + 1):
            total += counts.get(iat_bin + delta, 0)
        if total >= 2:
            labels[index] = True
            labels[prev_index] = True

    return labels
