"""Property tests for the MetricsSnapshot merge algebra.

Fleet aggregation (`repro.fleet.aggregate`) folds per-home snapshots
with :meth:`MetricsSnapshot.merge` in spec order, and its determinism
contract rests on merge behaving like a well-defined shard union:
commutative and associative over shard-disjoint gauges, with the empty
snapshot as identity.  These tests exercise those laws over randomly
generated shard populations rather than hand-picked examples.

Generator notes (the laws are *conditional*, and the conditions mirror
how the fleet actually shards):

* gauges are last-writer-wins on conflict, so each generated shard
  carries shard-unique gauge labels — exactly what per-home workers
  produce — and a separate test documents the conflicting-label case;
* all values are integer-valued so float addition is exact and
  associativity can be asserted byte-for-byte;
* histogram boundaries are pinned per metric name, as the registry
  pins them in production.
"""

import random

import pytest

from repro.obs.registry import Histogram, MetricsRegistry, MetricsSnapshot

#: Counter families sampled by the generator (names mirror production).
COUNTERS = ("proxy_decisions_total", "proofs_verified_total", "alerts_total")
GAUGES = ("journal_epoch", "breaker_state")
#: Histogram boundaries pinned per metric name, as the registry does.
HISTOGRAMS = {
    "proof_ttv_ms": (1.0, 5.0, 25.0, 125.0),
    "queue_depth": (1.0, 2.0, 4.0, 8.0, 16.0),
}


def make_shard(rng: random.Random, shard_id: int) -> MetricsSnapshot:
    """One random shard snapshot with shard-unique gauge labels."""
    counters = {}
    for name in COUNTERS:
        if rng.random() < 0.8:
            counters[name] = {
                f"device=SP{k}": float(rng.randrange(0, 50))
                for k in rng.sample(range(5), rng.randrange(1, 4))
            }
    gauges = {
        name: {f"shard={shard_id}": float(rng.randrange(0, 9))}
        for name in GAUGES
        if rng.random() < 0.8
    }
    histograms = {}
    for name, boundaries in HISTOGRAMS.items():
        if rng.random() < 0.8:
            series = {}
            for label in rng.sample(["", "device=SP10", "device=WP3"], rng.randrange(1, 3)):
                histogram = Histogram(boundaries=boundaries)
                for _ in range(rng.randrange(1, 20)):
                    histogram.observe(float(rng.randrange(0, 30)))
                series[label] = histogram.to_dict()
            histograms[name] = series
    return MetricsSnapshot(counters=counters, gauges=gauges, histograms=histograms)


def make_shards(seed: int, n: int = 5):
    rng = random.Random(seed)
    return [make_shard(rng, shard_id) for shard_id in range(n)]


@pytest.mark.parametrize("seed", range(20))
class TestMergeLaws:
    def test_commutative(self, seed):
        a, b = make_shards(seed, n=2)
        assert a.merge(b).to_json() == b.merge(a).to_json()

    def test_associative(self, seed):
        a, b, c = make_shards(seed, n=3)
        assert a.merge(b).merge(c).to_json() == a.merge(b.merge(c)).to_json()

    def test_identity_with_empty(self, seed):
        (a,) = make_shards(seed, n=1)
        empty = MetricsSnapshot()
        assert empty.merge(a).to_json() == a.to_json()
        assert a.merge(empty).to_json() == a.to_json()
        assert empty.merge(empty).to_json() == MetricsSnapshot().to_json()

    def test_fold_order_independent(self, seed):
        """Any shard permutation folds to the same population snapshot."""
        shards = make_shards(seed, n=6)
        def fold(ordering):
            merged = MetricsSnapshot()
            for shard in ordering:
                merged = merged.merge(shard)
            return merged.to_json()

        reference = fold(shards)
        shuffled = list(shards)
        random.Random(seed + 1).shuffle(shuffled)
        assert fold(shuffled) == reference
        assert fold(list(reversed(shards))) == reference


class TestMergeSemantics:
    def test_merge_leaves_operands_unchanged(self):
        a, b = make_shards(3, n=2)
        before_a, before_b = a.to_json(), b.to_json()
        a.merge(b)
        assert a.to_json() == before_a and b.to_json() == before_b

    def test_counters_add(self):
        a = MetricsSnapshot(counters={"x_total": {"k=1": 2.0}})
        b = MetricsSnapshot(counters={"x_total": {"k=1": 3.0, "k=2": 1.0}})
        merged = a.merge(b)
        assert merged.counters["x_total"] == {"k=1": 5.0, "k=2": 1.0}

    def test_conflicting_gauge_labels_take_last_writer(self):
        """The documented non-commutative edge the fleet must avoid:
        two shards writing the *same* gauge series conflict, and the
        right-hand operand wins.  Workers therefore label gauges with
        shard-unique keys (or strip them) before aggregation."""
        a = MetricsSnapshot(gauges={"epoch": {"": 1.0}})
        b = MetricsSnapshot(gauges={"epoch": {"": 7.0}})
        assert a.merge(b).gauges["epoch"][""] == 7.0
        assert b.merge(a).gauges["epoch"][""] == 1.0

    def test_histogram_counts_and_sidecars_add(self):
        bounds = (1.0, 10.0)
        one, two = Histogram(boundaries=bounds), Histogram(boundaries=bounds)
        one.observe(0.5)
        two.observe(20.0)
        a = MetricsSnapshot(histograms={"h": {"": one.to_dict()}})
        b = MetricsSnapshot(histograms={"h": {"": two.to_dict()}})
        merged = a.merge(b).histogram("h")
        assert merged is not None
        assert merged.count == 2
        assert merged.sum == 20.5
        assert merged.min == 0.5 and merged.max == 20.0


class TestMergeEdgeCases:
    """Boundary conditions the fleet merge path must hold exactly."""

    def test_label_cardinality_cap_at_exact_boundary(self):
        """Filling the cap exactly creates no overflow series; the very
        next distinct label set folds into ``_overflow``."""
        registry = MetricsRegistry(max_label_sets=3)
        for k in range(3):
            registry.inc("c", key=str(k))
        assert registry.n_label_overflows == 0
        at_cap = registry.snapshot()
        assert len(at_cap.counters["c"]) == 3
        assert not any("_overflow" in key for key in at_cap.counters["c"])

        registry.inc("c", key="3")  # one past the cap
        assert registry.n_label_overflows == 1
        over = registry.snapshot()
        assert len(over.counters["c"]) == 4  # 3 real + the overflow bucket
        assert over.counters["c"]['_overflow=true'] == 1.0
        # Capped shards still merge like any other shard.
        merged = over.merge(over)
        assert merged.counters["c"]['_overflow=true'] == 2.0

    def test_histogram_merge_over_disjoint_label_sets(self):
        """Series under the same metric name but different labels pass
        through untouched — no cross-label mixing."""
        bounds = (1.0, 10.0)
        one, two = Histogram(boundaries=bounds), Histogram(boundaries=bounds)
        one.observe(0.5)
        one.observe(2.0)
        two.observe(20.0)
        a = MetricsSnapshot(histograms={"h": {"device=A": one.to_dict()}})
        b = MetricsSnapshot(histograms={"h": {"device=B": two.to_dict()}})
        merged = a.merge(b)
        assert set(merged.histograms["h"]) == {"device=A", "device=B"}
        left = merged.histogram("h", "device=A")
        right = merged.histogram("h", "device=B")
        assert left.count == 2 and left.sum == 2.5
        assert right.count == 1 and right.sum == 20.0

    def test_empty_shards_are_identity_anywhere_in_the_fold(self):
        """A fleet whose stream interleaves no-op shards aggregates to
        the same bytes as one without them."""
        shards = make_shards(11, n=4)
        def fold(sequence):
            merged = MetricsSnapshot()
            for shard in sequence:
                merged = merged.merge(shard)
            return merged.to_json()

        with_empties = [MetricsSnapshot()]
        for shard in shards:
            with_empties.extend([shard, MetricsSnapshot()])
        assert fold(with_empties) == fold(shards)


class TestPrometheusRendering:
    """The text exposition of merged population snapshots."""

    def _shard(self, inc, observations):
        registry = MetricsRegistry()
        registry.inc("packets_total", inc, action="allow")
        registry.set_gauge("breaker_state", inc, component="ml")
        for value in observations:
            registry.observe("lat_ms", value, boundaries=(1.0, 10.0))
        return registry.snapshot()

    def test_merged_population_renders_summed_series(self):
        merged = self._shard(3, [0.5]).merge(self._shard(4, [2.0, 20.0]))
        text = merged.render_prometheus()
        assert "# TYPE packets_total counter" in text
        assert 'packets_total{action="allow"} 7' in text
        assert "# TYPE breaker_state gauge" in text
        assert 'breaker_state{component="ml"} 4' in text  # last writer
        assert "# TYPE lat_ms histogram" in text
        # Cumulative buckets over the merged counts: 1 below 1.0, 2
        # at or below 10.0, all 3 below +Inf.
        assert 'lat_ms_bucket{le="1"} 1' in text
        assert 'lat_ms_bucket{le="10"} 2' in text
        assert 'lat_ms_bucket{le="+Inf"} 3' in text
        assert "lat_ms_sum 22.5" in text
        assert "lat_ms_count 3" in text

    def test_bucket_lines_keep_series_labels(self):
        registry = MetricsRegistry()
        registry.observe("lat_ms", 0.5, boundaries=(1.0,), device="SP2")
        text = registry.snapshot().render_prometheus()
        assert 'lat_ms_bucket{device="SP2",le="1"} 1' in text
        assert 'lat_ms_count{device="SP2"} 1' in text

    def test_empty_snapshot_renders_empty(self):
        assert MetricsSnapshot().render_prometheus().strip() == ""
