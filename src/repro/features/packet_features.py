"""66-feature extraction from unpredictable events (paper §4.1).

The paper selects 66 features over the first (up to) 5 packets of each
unpredictable event: per-packet direction, remote (destination) IP
octets, protocol, TCP flags, source and destination ports, TLS version,
packet length and inter-arrival times, plus aggregate statistics (means
of sizes and IATs, counts, duration).

The exact layout reproduced here (matching the names visible in the
paper's Table 4, e.g. ``pkt1-proto``, ``pkt3-tls``, ``pkt1-dst-ip1``):

* per packet ``i`` in 1..5 (11 features x 5 = 55):
  ``pkt{i}-direction``, ``pkt{i}-proto``, ``pkt{i}-tcp-flags``,
  ``pkt{i}-tls``, ``pkt{i}-len``, ``pkt{i}-src-port``,
  ``pkt{i}-dst-port``, ``pkt{i}-dst-ip1`` .. ``pkt{i}-dst-ip4``;
* inter-arrival times ``pkt{i}-iat`` for ``i`` in 2..5 (4 features);
* aggregates (7 features): ``n-packets``, ``total-bytes``, ``mean-len``,
  ``std-len``, ``mean-iat``, ``std-iat``, ``duration``.

Total: 55 + 4 + 7 = **66**.  Events shorter than 5 packets are
zero-padded, which BernoulliNB's default binarisation naturally treats
as "feature absent".
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..events.grouping import UnpredictableEvent
from ..net.packet import Direction, Packet

__all__ = [
    "FEATURE_NAMES",
    "N_FEATURES",
    "FIRST_N_PACKETS",
    "event_features",
    "events_to_matrix",
    "event_labels",
]

#: Number of leading packets examined per event (paper: N = 5).
FIRST_N_PACKETS = 5


def _build_feature_names(n: int = FIRST_N_PACKETS) -> List[str]:
    names: List[str] = []
    for i in range(1, n + 1):
        names.extend(
            [
                f"pkt{i}-direction",
                f"pkt{i}-proto",
                f"pkt{i}-tcp-flags",
                f"pkt{i}-tls",
                f"pkt{i}-len",
                f"pkt{i}-src-port",
                f"pkt{i}-dst-port",
                f"pkt{i}-dst-ip1",
                f"pkt{i}-dst-ip2",
                f"pkt{i}-dst-ip3",
                f"pkt{i}-dst-ip4",
            ]
        )
    names.extend(f"pkt{i}-iat" for i in range(2, n + 1))
    names.extend(
        ["n-packets", "total-bytes", "mean-len", "std-len", "mean-iat", "std-iat", "duration"]
    )
    return names


#: Canonical feature names, aligned with the columns of `event_features`.
FEATURE_NAMES: Tuple[str, ...] = tuple(_build_feature_names())

#: Feature vector length (66 in the paper's configuration).
N_FEATURES = len(FEATURE_NAMES)


def _ip_octets(ip: str) -> Tuple[float, float, float, float]:
    parts = ip.split(".")
    if len(parts) != 4:
        return (0.0, 0.0, 0.0, 0.0)
    try:
        return tuple(float(int(p)) for p in parts)  # type: ignore[return-value]
    except ValueError:
        return (0.0, 0.0, 0.0, 0.0)


def _packet_row(packet: Packet) -> List[float]:
    octets = _ip_octets(packet.remote_ip)
    return [
        1.0 if packet.direction is Direction.OUTBOUND else 0.0,
        1.0 if packet.protocol == "tcp" else 0.0,
        float(packet.tcp_flags),
        float(packet.tls_version),
        float(packet.size),
        float(packet.src_port),
        float(packet.dst_port),
        *octets,
    ]


def event_features(event: UnpredictableEvent, n: int = FIRST_N_PACKETS) -> np.ndarray:
    """Extract the 66-dimensional feature vector of one event.

    Only the first ``n`` packets contribute per-packet features; the
    aggregate statistics are likewise computed over those packets (the
    classifier must decide before the event completes — §3.3's command
    duration argument).
    """
    if len(event) == 0:
        raise ValueError("cannot featurise an empty event")
    head = event.first_n(n)
    row: List[float] = []
    for i in range(n):
        if i < len(head):
            row.extend(_packet_row(head[i]))
        else:
            row.extend([0.0] * 11)
    timestamps = np.array([p.timestamp for p in head])
    iats = np.diff(timestamps)
    for i in range(n - 1):
        row.append(float(iats[i]) if i < len(iats) else 0.0)
    sizes = np.array([float(p.size) for p in head])
    row.extend(
        [
            float(len(head)),
            float(sizes.sum()),
            float(sizes.mean()),
            float(sizes.std()),
            float(iats.mean()) if len(iats) else 0.0,
            float(iats.std()) if len(iats) else 0.0,
            float(timestamps[-1] - timestamps[0]),
        ]
    )
    return np.asarray(row, dtype=float)


def events_to_matrix(
    events: Sequence[UnpredictableEvent], n: int = FIRST_N_PACKETS
) -> np.ndarray:
    """Stack event feature vectors into a ``(n_events, 66)`` matrix."""
    if not events:
        return np.empty((0, N_FEATURES))
    return np.vstack([event_features(event, n) for event in events])


def event_sequences(
    events: Sequence[UnpredictableEvent], n: int = FIRST_N_PACKETS
) -> List[np.ndarray]:
    """Per-event packet-feature *sequences* for temporal models (§7).

    Each event maps to a ``(t_i, 12)`` array: the 11 per-packet features
    of :func:`event_features` plus the inter-arrival time from the
    previous packet (0 for the first), for up to ``n`` leading packets.
    Consumed by :class:`repro.ml.SimpleRNNClassifier`.
    """
    sequences: List[np.ndarray] = []
    for event in events:
        head = event.first_n(n)
        rows = []
        previous_time = None
        for packet in head:
            iat = 0.0 if previous_time is None else packet.timestamp - previous_time
            previous_time = packet.timestamp
            rows.append(_packet_row(packet) + [iat])
        sequences.append(np.asarray(rows, dtype=float))
    return sequences


def event_labels(events: Sequence[UnpredictableEvent], binary: bool = False) -> np.ndarray:
    """Ground-truth labels for events.

    With ``binary=False`` (default) returns the three-way label the §4
    classifier learns: ``"control"`` / ``"automated"`` / ``"manual"``
    (attack events count as manual — they imitate manual commands).
    With ``binary=True`` returns ``"manual"`` / ``"non_manual"``.
    """
    labels = []
    for event in events:
        cls = event.majority_class().value
        if cls == "attack":
            cls = "manual"
        if binary:
            cls = "manual" if cls == "manual" else "non_manual"
        labels.append(cls)
    return np.asarray(labels)
