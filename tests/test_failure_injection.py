"""Failure-injection tests: the system must degrade safely, not crash."""

import numpy as np
import pytest

from repro.core import (
    FiatConfig,
    FiatProxy,
    HumanValidationService,
    train_event_classifier,
)
from repro.crypto import ReplayCache, pair
from repro.net import Direction, Packet, Trace, TrafficClass
from repro.predictability import label_predictable
from repro.sensors import HumannessValidator
from repro.testbed import profile_for
from tests.conftest import make_packet


def _proxy(bootstrap_s=0.0, lockout_threshold=3):
    _, proxy_ks = pair("phone", "proxy")
    return FiatProxy(
        config=FiatConfig(bootstrap_s=bootstrap_s, lockout_threshold=lockout_threshold),
        dns=None,
        classifiers={"SP10": train_event_classifier(profile_for("SP10"))},
        validation=HumanValidationService(
            proxy_ks, validator=HumannessValidator(n_train_per_class=60, seed=0).fit()
        ),
        app_for_device={},
    )


class TestMalformedInput:
    def test_garbage_auth_message(self):
        proxy = _proxy()
        proxy.receive_auth(b"\x00\xffgarbage", now=0.0)
        proxy.receive_auth(b"", now=1.0)
        proxy.receive_auth(b'{"payload": "zz"}', now=2.0)
        assert proxy.validation.n_rejected_channel == 3

    def test_truncated_json_auth(self):
        proxy = _proxy()
        proxy.receive_auth(b'{"payload": "00", "signature"', now=0.0)
        assert proxy.validation.n_rejected_channel == 1

    def test_empty_trace_flush(self):
        proxy = _proxy()
        proxy.flush()  # must not raise
        assert proxy.decisions == []


class TestTimingAnomalies:
    def test_identical_timestamps(self):
        packets = [make_packet(timestamp=5.0) for _ in range(10)]
        labels = label_predictable(Trace(packets))
        assert len(labels) == 10  # zero IATs handled (bin 0 repeats)

    def test_out_of_order_packets_to_proxy(self):
        """A slightly reordered feed must not crash the proxy."""
        proxy = _proxy()
        times = [10.0, 10.4, 10.2, 10.9, 10.7]
        for t in times:
            proxy.process(
                make_packet(timestamp=t, device="SP10", size=int(200 + t * 10))
            )
        proxy.flush()
        assert len(proxy.decisions) >= 1

    def test_event_spanning_bootstrap_boundary(self):
        proxy = _proxy(bootstrap_s=10.0)
        # packets at 9.9 (bootstrap) and 10.1 (enforcement)
        assert proxy.process(make_packet(timestamp=9.9, device="SP10", size=235))
        proxy.process(make_packet(timestamp=10.1, device="SP10", size=180))
        proxy.flush()
        # enforcement-side packet starts a fresh event; no crash, a decision exists
        assert len(proxy.decisions) == 1


class TestResourceExhaustion:
    def test_replay_cache_flood(self):
        cache = ReplayCache(window_seconds=1e9, max_entries=100)
        for i in range(10_000):
            cache.check_and_register(f"nonce-{i}", now=float(i))
        assert len(cache) <= 101

    def test_many_devices_many_events(self):
        proxy = _proxy()
        rng = np.random.default_rng(0)
        t = 0.0
        for i in range(300):
            device = f"ghost-{i % 20}"
            proxy.process(
                make_packet(
                    timestamp=t, device=device, size=int(rng.integers(100, 1400))
                )
            )
            t += 7.0
        proxy.flush()
        # unknown devices fail open but are all logged
        assert len(proxy.decisions) == 300


class TestAdversarialEdgeCases:
    def test_attacker_mimics_rule_size_still_needs_human(self):
        """Knowing the 235 B signature does not help without a proof."""
        proxy = _proxy()
        allowed = proxy.process(make_packet(timestamp=0.0, device="SP10", size=235))
        proxy.flush()
        assert not allowed

    def test_lockout_not_triggered_by_benign_traffic(self):
        proxy = _proxy()
        for i in range(10):
            proxy.process(
                make_packet(timestamp=float(i * 30), device="SP10", size=150 + i)
            )
        proxy.flush()
        assert not proxy.is_locked("SP10")

    def test_lockout_threshold_respected(self):
        proxy = _proxy(lockout_threshold=2)
        for i in range(2):
            proxy.process(make_packet(timestamp=float(i * 30), device="SP10", size=235))
        assert proxy.is_locked("SP10")

    def test_violations_outside_window_forgotten(self):
        proxy = _proxy(lockout_threshold=3)
        # three violations, but spread far beyond the lockout window
        for i in range(3):
            proxy.process(
                make_packet(timestamp=float(i * 1000), device="SP10", size=235)
            )
        assert not proxy.is_locked("SP10")

    def test_zero_size_packets(self):
        proxy = _proxy()
        proxy.process(make_packet(timestamp=0.0, device="SP10", size=0))
        proxy.flush()
        assert len(proxy.decisions) == 1
