"""FIAT's server-side IoT proxy (paper §5.4, Figure 4).

The proxy sits on-path for all home IoT traffic (ARP spoofing + NFQUEUE
in the paper's prototype; here it is fed packets in timestamp order) and
runs the access-control pipeline of Figure 4:

1. **Bootstrap** (first 20 minutes): all traffic is allowed while the
   bucket heuristic learns recurring flows; at the end the recurring
   buckets are frozen into an allow-rule table.
2. **Rule match**: a packet hitting a rule is *predictable* — allowed.
3. **Event grouping**: rule misses join the device's current
   unpredictable event (5-second gap rule).
4. **Manual-event classification**: when the decision prefix is
   complete (first packet for rule devices, first N=5 packets for
   BernoulliNB devices) the event is classified.  Non-manual events are
   allowed in full.
5. **Humanness check**: manual events are allowed only when a fresh
   verified-human interaction with the device's companion app exists;
   otherwise the remaining event packets are dropped, the user is
   notified, and repeated violations within a short window disconnect
   the device (brute-force friction).

Every unpredictable event produces an :class:`EventDecision` record —
the proxy keeps logs of all unpredictable events and validations, which
§7 argues an attacker cannot scrub without breaking the TEE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..events.grouping import UnpredictableEvent
from ..net.dns import DnsTable
from ..net.packet import Packet, TrafficClass
from ..net.trace import Trace
from ..predictability.buckets import BucketPredictor
from .classifier import EventClassifier
from .config import FiatConfig
from .interactions import DeviceInteractionGraph
from .rules import RuleTable
from .validation import HumanValidationService

__all__ = ["EventDecision", "Alert", "FiatProxy"]


@dataclass
class EventDecision:
    """Outcome of one unpredictable event at the proxy."""

    device: str
    start: float
    n_packets: int
    predicted_manual: bool
    human_backed: Optional[bool]  # None when the check was not needed
    action: str  # "allow" | "drop"
    truth: str  # ground-truth class (evaluation only; unused by logic)
    event_id: Optional[str] = None

    @property
    def blocked(self) -> bool:
        """Whether the event's tail was dropped."""
        return self.action == "drop"


@dataclass
class Alert:
    """A user-facing notification of a potential security breach."""

    device: str
    timestamp: float
    reason: str


@dataclass
class _OpenEvent:
    packets: List[Packet] = field(default_factory=list)
    decided: bool = False
    allow: bool = True
    predicted_manual: bool = False
    human_backed: Optional[bool] = None

    @property
    def last_time(self) -> float:
        return self.packets[-1].timestamp if self.packets else 0.0


class FiatProxy:
    """The in-home FIAT proxy: learn, then authorize or drop."""

    def __init__(
        self,
        config: FiatConfig,
        dns: Optional[DnsTable],
        classifiers: Dict[str, EventClassifier],
        validation: HumanValidationService,
        app_for_device: Dict[str, str],
        start_time: float = 0.0,
        interactions: Optional["DeviceInteractionGraph"] = None,
        device_ips: Optional[Dict[str, str]] = None,
    ) -> None:
        self.config = config
        self.classifiers = classifiers
        self.validation = validation
        self.app_for_device = app_for_device
        #: §7 "Complex Scenarios": DAG of allowed device-to-device control
        self.interactions = interactions
        self.device_ips = device_ips or {}
        self._bootstrap_end = start_time + config.bootstrap_s
        self._predictor = BucketPredictor(
            definition=config.flow_definition,
            dns=dns,
            resolution=config.iat_resolution,
        )
        self._rules: Optional[RuleTable] = None
        self._next_refresh: Optional[float] = None
        self._open: Dict[str, _OpenEvent] = {}
        self._violations: Dict[str, List[float]] = {}
        self._locked: Dict[str, float] = {}
        self.decisions: List[EventDecision] = []
        self.alerts: List[Alert] = []
        self.n_allowed = 0
        self.n_dropped = 0

    # -- auth channel -------------------------------------------------------------

    def receive_auth(self, wire: bytes, now: float) -> None:
        """Feed an authentication message from the FIAT app."""
        self.validation.ingest(wire, now)

    # -- lockout ------------------------------------------------------------------

    def is_locked(self, device: str) -> bool:
        """Whether the device is disconnected pending user action."""
        return device in self._locked

    def unlock(self, device: str) -> None:
        """User manually re-authorizes a disconnected device."""
        self._locked.pop(device, None)
        self._violations.pop(device, None)

    def _record_violation(self, device: str, now: float) -> None:
        history = self._violations.setdefault(device, [])
        history.append(now)
        cutoff = now - self.config.lockout_window_s
        history[:] = [t for t in history if t >= cutoff]
        if len(history) >= self.config.lockout_threshold:
            self._locked[device] = now
            self.alerts.append(
                Alert(device=device, timestamp=now, reason="brute-force lockout")
            )

    # -- event lifecycle ----------------------------------------------------------

    def _decision_prefix(self, device: str) -> int:
        classifier = self.classifiers.get(device)
        if classifier is not None and classifier.uses_rules:
            return 1
        return self.config.first_n_packets

    def _decide(self, device: str, event: _OpenEvent, now: float) -> None:
        classifier = self.classifiers.get(device)
        if classifier is None:
            # Unknown device: fail open on classification (the paper's
            # production vision downloads a model per identified device).
            event.decided = True
            event.allow = True
            event.predicted_manual = False
            return
        prefix = event.packets[: self._decision_prefix(device)]
        manual = classifier.is_manual(prefix)
        event.decided = True
        event.predicted_manual = manual
        if not manual:
            event.allow = True
            return
        # §7 extension: a manual-shaped command originating from another
        # in-home device is allowed when an interaction-DAG edge covers
        # the (controller, target) pair (e.g. Alexa -> smart light).
        if self.interactions is not None and any(
            self.interactions.allows_packet(p, self.device_ips) for p in prefix
        ):
            event.allow = True
            event.human_backed = None
            return
        app = self.app_for_device.get(device, "")
        human = self.validation.has_recent_human(app, now)
        event.human_backed = human
        event.allow = human
        if not human:
            self.alerts.append(
                Alert(
                    device=device,
                    timestamp=now,
                    reason="unverified manual traffic dropped",
                )
            )
            self._record_violation(device, now)

    def _close_event(self, device: str, event: _OpenEvent) -> None:
        if not event.packets:
            return
        if not event.decided:
            self._decide(device, event, event.last_time)
        truth = UnpredictableEvent(packets=event.packets).majority_class()
        truth_label = "manual" if truth in (TrafficClass.MANUAL, TrafficClass.ATTACK) else truth.value
        self.decisions.append(
            EventDecision(
                device=device,
                start=event.packets[0].timestamp,
                n_packets=len(event.packets),
                predicted_manual=event.predicted_manual,
                human_backed=event.human_backed,
                action="allow" if event.allow else "drop",
                truth=truth_label,
                event_id=event.packets[0].event_id,
            )
        )

    # -- main entry point ---------------------------------------------------------

    def process(self, packet: Packet) -> bool:
        """Process one packet; return ``True`` when it is forwarded."""
        now = packet.timestamp
        device = packet.device

        # Bootstrap: learn, allow everything.
        if now < self._bootstrap_end:
            self._predictor.observe(packet)
            self.n_allowed += 1
            return True
        if self._rules is None:
            self._rules = RuleTable.from_predictor(self._predictor)
            self._next_refresh = (
                now + self.config.rule_refresh_s
                if self.config.rule_refresh_s is not None
                else None
            )

        # Drift adaptation (§7): keep learning, refresh and age rules.
        if self.config.rule_refresh_s is not None:
            self._predictor.observe(packet)
            if self._next_refresh is not None and now >= self._next_refresh:
                self._rules.merge_from_predictor(
                    self._predictor, now, max_idle_s=self.config.rule_ttl_s
                )
                if self.config.rule_ttl_s is not None:
                    self._rules.expire_stale(now, self.config.rule_ttl_s)
                self._next_refresh = now + self.config.rule_refresh_s

        if self.is_locked(device):
            self.n_dropped += 1
            return False

        if self._rules.matches(packet):
            self.n_allowed += 1
            return True

        # Unpredictable: event grouping per device.
        event = self._open.get(device)
        if event is not None and now - event.last_time > self.config.event_gap_s:
            self._close_event(device, event)
            event = None
        if event is None:
            event = _OpenEvent()
            self._open[device] = event
        event.packets.append(packet)

        if not event.decided and len(event.packets) >= self._decision_prefix(device):
            # Decide exactly once the decision prefix is complete.  For
            # rule devices this happens on the first packet, *before*
            # forwarding it (the proxy delays packets via NFQUEUE), so a
            # one-packet plug command can still be blocked.
            self._decide(device, event, now)

        if event.decided:
            allowed = event.allow
        else:
            allowed = True  # within the allowed first-N prefix
        if allowed:
            self.n_allowed += 1
        else:
            self.n_dropped += 1
        return allowed

    def run_trace(self, trace: Trace) -> None:
        """Convenience: process a whole trace in timestamp order."""
        for packet in trace:
            self.process(packet)
        self.flush()

    def flush(self) -> None:
        """Close all open events (end of capture)."""
        for device, event in list(self._open.items()):
            self._close_event(device, event)
        self._open.clear()

    # -- evaluation helpers -------------------------------------------------------

    @property
    def rules(self) -> Optional[RuleTable]:
        """The frozen rule table (``None`` while bootstrapping)."""
        return self._rules

    def decisions_for(self, device: str) -> List[EventDecision]:
        """Decision records of one device."""
        return [d for d in self.decisions if d.device == device]
