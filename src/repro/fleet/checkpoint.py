"""Durable fleet-run progress: a CRC-framed journal plus compacted snapshots.

A fleet run at population scale is hours of work; losing it to a kill
at home 900k of a million is the failure mode the ROADMAP's "fleet at a
million homes" item calls out.  This module makes a run's progress
durable with the same two primitives the crash-safe proxy uses
(:mod:`repro.recovery`):

* **Journal** — one :func:`repro.recovery.journal.frame_record` line
  per completed home: ``(idx, home_id, status, attempts, result
  digest, merged-so-far aggregate epoch)`` plus the full result body,
  appended *after* the result is folded into the running aggregate.
  Appends are flushed to the OS on every record, so a ``SIGKILL`` (the
  process dies, the kernel's page cache does not) never loses an acked
  home; ``fsync=True`` extends the guarantee to power cuts.
* **Snapshot** — every ``snapshot_every`` homes the running
  :class:`~repro.fleet.aggregate.FleetAggregator` state is compacted
  into an atomic checksummed snapshot
  (:func:`repro.recovery.snapshot.write_snapshot`), the journal
  rotates to a fresh segment, and epochs older than the fallback
  window are deleted — so both replay time *and* disk stay bounded no
  matter how long the run.

Resume (``FleetRunner(resume=True)``) loads the newest valid snapshot,
replays the journal records after it (CRC-bad frames and torn tails
end the readable prefix, exactly like proxy recovery; the tail is
truncated before new appends), and re-runs only the homes past the
reconstructed prefix.  Every snapshot and journal segment carries the
spec's SHA-256 digest: resuming against a *different* spec raises
:class:`CheckpointMismatch` instead of silently merging populations.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..recovery.journal import JournalWriter, read_journal
from ..recovery.snapshot import read_snapshot, write_snapshot

__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointMismatch",
    "FleetCheckpoint",
    "ResumeState",
    "load_latest_aggregate",
    "result_digest",
]

logger = logging.getLogger(__name__)

#: Version of the fleet checkpoint container.
CHECKPOINT_FORMAT = 1

#: Snapshot/journal epochs retained for corruption fallback (current
#: plus previous — the same window the proxy's RecoveryManager keeps).
KEEP_EPOCHS = 2


class CheckpointMismatch(RuntimeError):
    """A resume was attempted against a checkpoint of a different fleet."""


def result_digest(result_dict: Dict[str, object]) -> str:
    """Stable SHA-256 digest of one home result's canonical encoding."""
    body = json.dumps(result_dict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


@dataclass
class ResumeState:
    """What a loaded checkpoint knows: prefix, aggregate, journal tail."""

    #: every home with spec position < ``next_idx`` is already folded
    next_idx: int = 0
    #: aggregator state from the newest valid snapshot (``None`` = none)
    agg_state: Optional[Dict[str, object]] = None
    #: journal ``home`` records newer than the snapshot, in fold order
    records: List[Dict[str, object]] = field(default_factory=list)
    #: epoch whose snapshot seeded ``agg_state`` (0 = journal-only)
    snapshot_epoch: int = 0

    @property
    def empty(self) -> bool:
        """Whether there is nothing to resume from."""
        return self.agg_state is None and not self.records


def _snapshot_path(state_dir: str, epoch: int) -> str:
    return os.path.join(state_dir, f"fleet-snapshot-{epoch:08d}.json")


def _journal_path(state_dir: str, epoch: int) -> str:
    return os.path.join(state_dir, f"fleet-homes-{epoch:08d}.journal")


def _list_epochs(state_dir: str, prefix: str, suffix: str) -> Tuple[int, ...]:
    epochs = []
    for name in os.listdir(state_dir):
        if name.startswith(prefix) and name.endswith(suffix):
            stem = name[len(prefix) : len(name) - len(suffix)]
            if stem.isdigit():
                epochs.append(int(stem))
    return tuple(sorted(epochs))


def load_latest_aggregate(state_dir: str):
    """Read-only view of a fleet state dir's latest aggregate.

    Reconstructs the same prefix a resume would (newest readable
    snapshot plus the journal records after it) without requiring the
    spec, without truncating torn tails, and without taking the writer
    over — safe to call against a *running* fleet.  Used by
    ``fiat-repro obs-report <state-dir>`` to render the merged metrics
    of a checkpointed (possibly in-flight, possibly killed) run.

    Returns the reconstructed
    :class:`~repro.fleet.aggregate.FleetAggregator`.  Raises
    ``FileNotFoundError`` when the directory holds no checkpoint files.
    """
    from .aggregate import FleetAggregator
    from .worker import HomeResult

    snapshot_epochs = _list_epochs(state_dir, "fleet-snapshot-", ".json")
    journal_epochs = _list_epochs(state_dir, "fleet-homes-", ".journal")
    if not snapshot_epochs and not journal_epochs:
        raise FileNotFoundError(f"{state_dir}: no fleet checkpoint files")

    header: Optional[Dict[str, object]] = None
    agg_state: Optional[Dict[str, object]] = None
    snapshot_agg_epoch = -1
    snapshot_epoch = 0
    for epoch in reversed(snapshot_epochs):
        document = read_snapshot(_snapshot_path(state_dir, epoch))
        if document is None:  # corrupt: fall back, exactly like resume
            continue
        raw_header = document.get("header")
        header = raw_header if isinstance(raw_header, dict) else None
        agg_state = document["agg"]
        snapshot_agg_epoch = int(agg_state.get("epoch", 0))
        snapshot_epoch = epoch
        break

    records: List[Dict[str, object]] = []
    for epoch in journal_epochs:
        if epoch < snapshot_epoch:
            continue
        for record in read_journal(_journal_path(state_dir, epoch)).records:
            kind = record.get("kind")
            if kind == "header" and header is None:
                raw_header = record.get("header")
                header = raw_header if isinstance(raw_header, dict) else None
            if kind != "home":
                continue
            if int(record.get("agg_epoch", 0)) <= snapshot_agg_epoch:
                continue  # already folded into the snapshot
            if result_digest(record["result"]) != record.get("digest"):
                break  # fail-closed past a digest mismatch, like resume
            records.append(record)

    header = header or {}
    name = str(header.get("name", "fleet"))
    seed = int(header.get("seed", 0))
    if agg_state is not None:
        agg = FleetAggregator.from_state(agg_state, name, seed)
    else:
        agg = FleetAggregator(name, seed)
    for record in sorted(records, key=lambda r: int(r.get("agg_epoch", 0))):
        agg.add(int(record["idx"]), HomeResult.from_dict(record["result"]))
    return agg


class FleetCheckpoint:
    """Journal + snapshot lifecycle for one fleet run's state dir."""

    def __init__(
        self,
        state_dir: str,
        name: str,
        seed: int,
        spec_digest: str,
        fsync: bool = False,
    ) -> None:
        self.state_dir = state_dir
        self.fsync = fsync
        self.header: Dict[str, object] = {
            "format": CHECKPOINT_FORMAT,
            "name": name,
            "seed": int(seed),
            "spec_digest": spec_digest,
        }
        os.makedirs(state_dir, exist_ok=True)
        self._epoch = 0
        self._writer: Optional[JournalWriter] = None

    @property
    def epoch(self) -> int:
        """Current snapshot/journal epoch."""
        return self._epoch

    # -- lifecycle ---------------------------------------------------------------

    def start_fresh(self) -> None:
        """Begin a brand-new run: wipe any prior checkpoint files."""
        for epoch in self._snapshot_epochs():
            os.unlink(_snapshot_path(self.state_dir, epoch))
        for epoch in self._journal_epochs():
            os.unlink(_journal_path(self.state_dir, epoch))
        self._epoch = 0
        self._open_writer(truncate_to=None)

    def load(self) -> ResumeState:
        """Reconstruct the furthest trustworthy prefix of a prior run.

        Snapshot selection is fail-soft (a corrupt newest snapshot
        falls back to the previous epoch, like proxy recovery); header
        mismatch is fail-closed (:class:`CheckpointMismatch`) — a
        digest that differs means this state dir belongs to a
        different spec, and "resume" would silently corrupt the
        population.  Journal tails are truncated to their valid prefix
        before the writer reopens for append.
        """
        state = ResumeState()
        snapshot_agg_epoch = -1
        for epoch in reversed(self._snapshot_epochs()):
            document = read_snapshot(_snapshot_path(self.state_dir, epoch))
            if document is None:  # corrupt/truncated: fall back one epoch
                logger.warning("fleet snapshot epoch %d unreadable; falling back", epoch)
                continue
            self._check_header(document.get("header"), f"snapshot epoch {epoch}")
            state.agg_state = document["agg"]
            state.next_idx = int(document["next_idx"])
            state.snapshot_epoch = epoch
            snapshot_agg_epoch = int(document["agg"].get("epoch", 0))
            break
        else:
            if self._snapshot_epochs():
                # Snapshots were written but every retained epoch is
                # unreadable: the folded prefix cannot be reconstructed
                # (journal segments before the window are compacted
                # away).  Resuming would silently drop homes — refuse.
                raise CheckpointMismatch(
                    f"{self.state_dir}: every retained fleet snapshot is "
                    "corrupt; the run cannot be resumed — start fresh "
                    "without --resume"
                )

        newest_journal = state.snapshot_epoch
        for epoch in self._journal_epochs():
            if epoch < state.snapshot_epoch:
                continue
            newest_journal = max(newest_journal, epoch)
            path = _journal_path(self.state_dir, epoch)
            read = read_journal(path)
            if read.torn:
                logger.warning(
                    "fleet journal epoch %d torn (%s); keeping %d valid bytes",
                    epoch, read.torn_reason, read.valid_bytes,
                )
            for record in read.records:
                kind = record.get("kind")
                if kind == "header":
                    self._check_header(record.get("header"), f"journal epoch {epoch}")
                    continue
                if kind != "home":
                    continue
                if int(record.get("agg_epoch", 0)) <= snapshot_agg_epoch:
                    continue  # already folded into the snapshot
                if result_digest(record["result"]) != record.get("digest"):
                    # CRC passed but the body does not match its own
                    # digest: treat like corruption — trust nothing
                    # past this record (fail-closed).
                    logger.warning(
                        "fleet journal epoch %d: result digest mismatch at idx %s; "
                        "discarding the rest of the segment",
                        epoch, record.get("idx"),
                    )
                    break
                state.records.append(record)

        if state.records:
            state.next_idx = max(
                state.next_idx, max(int(r["idx"]) for r in state.records) + 1
            )
        self._epoch = newest_journal
        # Reopen the newest segment for append, torn tail cut off.
        newest_path = _journal_path(self.state_dir, self._epoch)
        if os.path.exists(newest_path):
            read = read_journal(newest_path)
            self._open_writer(truncate_to=read.valid_bytes)
        else:
            self._open_writer(truncate_to=None)
        return state

    # -- appends -----------------------------------------------------------------

    def record_home(
        self,
        idx: int,
        result_dict: Dict[str, object],
        agg_epoch: int,
    ) -> None:
        """Journal one completed home (call *after* folding it)."""
        if self._writer is None:
            raise ValueError("checkpoint is closed (or was never started)")
        self._writer.append(
            {
                "kind": "home",
                "idx": int(idx),
                "home_id": str(result_dict.get("home_id", "")),
                "status": str(result_dict.get("status", "")),
                "attempts": int(result_dict.get("attempts", 1)),
                "digest": result_digest(result_dict),
                "agg_epoch": int(agg_epoch),
                "result": result_dict,
            }
        )

    def compact(self, next_idx: int, agg_state: Dict[str, object]) -> None:
        """Snapshot the running aggregate and rotate the journal.

        Write snapshot ``e+1`` atomically, open journal ``e+1``, then
        delete epochs older than the fallback window — replay cost and
        disk usage stay bounded by ``snapshot_every`` homes regardless
        of run length.
        """
        self._epoch += 1
        write_snapshot(
            _snapshot_path(self.state_dir, self._epoch),
            {"header": self.header, "next_idx": int(next_idx), "agg": agg_state},
        )
        self._open_writer(truncate_to=None)
        # Keep the newest KEEP_EPOCHS snapshots and the journal segments
        # that replay on top of them; journal e-1's records are already
        # inside snapshot e, so everything below the window can go.
        keep_from = self._epoch - (KEEP_EPOCHS - 1)
        for epoch in self._snapshot_epochs():
            if epoch < keep_from:
                os.unlink(_snapshot_path(self.state_dir, epoch))
        for epoch in self._journal_epochs():
            if epoch < keep_from:
                os.unlink(_journal_path(self.state_dir, epoch))

    def close(self) -> None:
        """Flush and close the journal writer (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def __enter__(self) -> "FleetCheckpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals ---------------------------------------------------------------

    def _snapshot_epochs(self) -> Tuple[int, ...]:
        return _list_epochs(self.state_dir, "fleet-snapshot-", ".json")

    def _journal_epochs(self) -> Tuple[int, ...]:
        return _list_epochs(self.state_dir, "fleet-homes-", ".journal")

    def _open_writer(self, truncate_to: Optional[int]) -> None:
        if self._writer is not None:
            self._writer.close()
        path = _journal_path(self.state_dir, self._epoch)
        fresh = not os.path.exists(path) or truncate_to == 0
        self._writer = JournalWriter(path, fsync=self.fsync, truncate_to=truncate_to)
        if fresh or self._writer.size_bytes == 0:
            # Every segment self-identifies: resume validates the header
            # even when no snapshot was ever written.
            self._writer.append({"kind": "header", "header": self.header})

    def _check_header(self, header: Optional[Dict[str, object]], where: str) -> None:
        if not isinstance(header, dict):
            raise CheckpointMismatch(f"{where}: checkpoint header missing")
        for key in ("format", "name", "seed", "spec_digest"):
            if header.get(key) != self.header[key]:
                raise CheckpointMismatch(
                    f"{where}: checkpoint {key} {header.get(key)!r} does not match "
                    f"this run's {self.header[key]!r} — refusing to resume a "
                    f"different fleet (use a fresh --state-dir)"
                )
