"""Text dashboard rendering for saved snapshots and audit streams.

Backs the ``fiat-repro obs-report`` subcommand: given a metrics
snapshot (and optionally a JSONL audit stream) it renders the operator
view — top counters, latency percentiles per hot path, circuit-breaker
states, drop/rejection reasons — and can reconstruct the full event
chain of one trace ID.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .exporter import events_for_trace
from .registry import Histogram, MetricsSnapshot

__all__ = ["render_report", "render_trace"]

#: Gauge values of ``breaker_state`` back to human-readable states.
_BREAKER_STATES = {0.0: "closed", 1.0: "half-open", 2.0: "open"}


def _rows(title: str, header: Sequence[str], rows: List[Sequence[object]]) -> List[str]:
    lines = [f"-- {title} " + "-" * max(0, 58 - len(title))]
    if not rows:
        lines.append("  (none)")
        return lines
    widths = [
        max(len(str(h)), max(len(str(r[i])) for r in rows))
        for i, h in enumerate(header)
    ]
    lines.append("  " + "  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  " + "  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return lines


def _series_name(name: str, labels: str) -> str:
    return f"{name}{{{labels}}}" if labels else name


def render_report(
    snapshot: MetricsSnapshot,
    audit: Optional[Iterable[Dict[str, object]]] = None,
    top: int = 12,
) -> str:
    """Render the operator dashboard for one metrics snapshot."""
    lines: List[str] = ["=== FIAT observability report ==="]

    counter_rows: List[Tuple[str, float]] = []
    for name, series in snapshot.counters.items():
        for labels, value in series.items():
            counter_rows.append((_series_name(name, labels), value))
    counter_rows.sort(key=lambda kv: (-kv[1], kv[0]))
    lines.extend(
        _rows(
            f"top counters ({min(top, len(counter_rows))} of {len(counter_rows)})",
            ("counter", "value"),
            [(n, f"{v:g}") for n, v in counter_rows[:top]],
        )
    )

    latency_rows: List[Sequence[object]] = []
    for name in sorted(snapshot.histograms):
        for labels in sorted(snapshot.histograms[name]):
            histogram = snapshot.histogram(name, labels)
            if histogram is None or histogram.count == 0:
                continue
            latency_rows.append(
                (
                    _series_name(name, labels),
                    histogram.count,
                    f"{histogram.percentile(0.50):.4g}",
                    f"{histogram.percentile(0.95):.4g}",
                    f"{histogram.percentile(0.99):.4g}",
                    f"{histogram.max:.4g}",
                )
            )
    lines.extend(
        _rows("latency histograms (ms)", ("series", "n", "p50", "p95", "p99", "max"), latency_rows)
    )

    breaker_rows: List[Sequence[object]] = []
    for labels, value in sorted(snapshot.gauges.get("breaker_state", {}).items()):
        component = dict(
            pair.split("=", 1) for pair in labels.split(",") if "=" in pair
        ).get("component", labels)
        state = _BREAKER_STATES.get(value, f"? ({value:g})")
        opens = snapshot.counters.get("breaker_transitions_total", {}).get(
            f"component={component},transition=open", 0
        )
        breaker_rows.append((component, state, f"{opens:g}"))
    lines.extend(_rows("circuit breakers", ("component", "state", "opens"), breaker_rows))

    drop_rows: List[Sequence[object]] = []
    for name in ("proxy_drops_total", "auth_rejections_total"):
        for labels, value in sorted(snapshot.counters.get(name, {}).items()):
            drop_rows.append((_series_name(name, labels), f"{value:g}"))
    lines.extend(_rows("drop / rejection reasons", ("series", "count"), drop_rows))

    if audit is not None:
        records = list(audit)
        kinds: Dict[str, int] = {}
        traces = set()
        for record in records:
            kinds[str(record.get("kind"))] = kinds.get(str(record.get("kind")), 0) + 1
            if record.get("trace"):
                traces.add(record["trace"])
        lines.extend(
            _rows(
                f"audit stream ({len(records)} records, {len(traces)} traces)",
                ("kind", "count"),
                sorted(kinds.items()),
            )
        )
    return "\n".join(lines) + "\n"


def render_trace(records: Iterable[Dict[str, object]], trace_id: str) -> str:
    """Render the ordered event chain of one trace ID."""
    chain = events_for_trace(records, trace_id)
    if not chain:
        return f"trace {trace_id}: no matching audit records\n"
    lines = [f"=== trace {trace_id} ({len(chain)} records) ==="]
    for record in chain:
        t = record.get("t")
        stamp = f"t={float(t):10.3f}" if isinstance(t, (int, float)) else " " * 12
        extras = {
            k: v
            for k, v in sorted(record.items())
            if k not in ("kind", "t", "seq", "trace")
        }
        detail = " ".join(f"{k}={v}" for k, v in extras.items())
        lines.append(f"  {stamp}  {str(record.get('kind')):24s} {detail}".rstrip())
    return "\n".join(lines) + "\n"
