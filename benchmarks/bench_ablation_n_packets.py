"""Ablation: how many packets does the classifier need? (§3.3, §5.4)

The paper fixes N = 5 packets as the classifier input, arguing the
decision must land before a command completes (device-specific minimum
1-41 packets).  This bench sweeps N from 1 to 10 and shows the accuracy
knee: most of the signal is already in the first few packets, and N = 5
sits on the plateau — validating the deployed choice.
"""

import numpy as np

from repro import ml
from repro.features import event_labels, events_to_matrix

from benchmarks._helpers import print_table


def test_ablation_first_n_packets(benchmark, labeled_event_sets):
    events = labeled_event_sets[("EchoDot4", "US")]
    y = event_labels(events)

    def accuracy_for(n):
        X = ml.StandardScaler().fit_transform(events_to_matrix(events, n))
        return ml.cross_validate(ml.BernoulliNB(), X, y, n_splits=5, seed=0)["mean"]

    benchmark.pedantic(lambda: accuracy_for(5), rounds=1, iterations=1)

    sweep = {n: accuracy_for(n) for n in (1, 2, 3, 4, 5, 7, 10)}
    print_table(
        "Ablation — classifier input size N (paper deploys N = 5)",
        ("first N packets", "balanced accuracy"),
        [(n, f"{score:.3f}") for n, score in sweep.items()],
    )

    # Monotone-ish improvement that saturates around the deployed N = 5.
    assert sweep[5] > sweep[1]
    assert sweep[5] > 0.8
    assert abs(sweep[10] - sweep[5]) < 0.08  # plateau: little gained past 5
