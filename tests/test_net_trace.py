"""Unit tests for the Trace container."""

from repro.net import Trace, TrafficClass
from tests.conftest import make_packet


class TestOrderingAndBasics:
    def test_packets_sorted_on_construction(self):
        trace = Trace([make_packet(timestamp=5.0), make_packet(timestamp=1.0)])
        assert [p.timestamp for p in trace] == [1.0, 5.0]

    def test_len_iter_getitem(self):
        trace = Trace([make_packet(timestamp=float(i)) for i in range(3)])
        assert len(trace) == 3
        assert trace[1].timestamp == 1.0
        assert sum(1 for _ in trace) == 3

    def test_empty_trace(self):
        trace = Trace([])
        assert len(trace) == 0
        assert trace.start == 0.0
        assert trace.duration == 0.0

    def test_duration(self):
        trace = Trace([make_packet(timestamp=2.0), make_packet(timestamp=12.0)])
        assert trace.duration == 10.0


class TestTransformations:
    def test_for_device(self):
        trace = Trace(
            [make_packet(device="a"), make_packet(device="b"), make_packet(device="a")]
        )
        assert len(trace.for_device("a")) == 2
        assert trace.devices() == ("a", "b")

    def test_for_class(self):
        trace = Trace(
            [
                make_packet(traffic_class=TrafficClass.MANUAL),
                make_packet(traffic_class=TrafficClass.CONTROL),
            ]
        )
        assert len(trace.for_class(TrafficClass.MANUAL)) == 1

    def test_between_half_open(self):
        trace = Trace([make_packet(timestamp=float(t)) for t in range(5)])
        window = trace.between(1.0, 3.0)
        assert [p.timestamp for p in window] == [1.0, 2.0]

    def test_merge_interleaves(self):
        a = Trace([make_packet(timestamp=0.0), make_packet(timestamp=2.0)])
        b = Trace([make_packet(timestamp=1.0)])
        merged = a.merge(b)
        assert [p.timestamp for p in merged] == [0.0, 1.0, 2.0]


class TestStatsAndSerialisation:
    def test_stats(self):
        trace = Trace(
            [
                make_packet(size=100, traffic_class=TrafficClass.CONTROL),
                make_packet(size=200, traffic_class=TrafficClass.MANUAL),
            ]
        )
        stats = trace.stats()
        assert stats.n_packets == 2
        assert stats.n_bytes == 300
        assert stats.class_counts == {"control": 1, "manual": 1}

    def test_jsonl_roundtrip(self, tmp_path):
        trace = Trace(
            [make_packet(timestamp=float(i), size=100 + i, event_id=f"e{i}") for i in range(4)],
            name="unit",
        )
        path = str(tmp_path / "trace.jsonl")
        trace.to_jsonl(path)
        loaded = Trace.from_jsonl(path)
        assert loaded.name == "unit"
        assert loaded.packets == trace.packets
