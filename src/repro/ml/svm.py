"""Linear support vector classifier trained with Pegasos-style SGD.

One-vs-rest linear SVMs with hinge loss and L2 regularisation stand in
for the paper's Support Vector Classifier (Table 2, balanced accuracy
0.713).  Pegasos (primal SGD with step size ``1 / (lambda * t)``) gives
deterministic, dependency-free training.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from .base import Classifier, check_X, check_Xy

__all__ = ["LinearSVC"]


class LinearSVC(Classifier):
    """One-vs-rest linear SVM (hinge loss, L2 penalty, Pegasos SGD).

    Parameters
    ----------
    C:
        Inverse regularisation strength (sklearn convention); the Pegasos
        ``lambda`` is ``1 / (C * n_samples)``.
    n_epochs:
        Full passes over the training data.
    seed:
        Seed for sample shuffling.
    """

    def __init__(self, C: float = 1.0, n_epochs: int = 30, seed: Optional[int] = 0) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        if n_epochs < 1:
            raise ValueError("n_epochs must be >= 1")
        self.C = C
        self.n_epochs = n_epochs
        self.seed = seed
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[np.ndarray] = None

    def _fit_binary(
        self, X: np.ndarray, sign: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n, d = X.shape
        lam = 1.0 / (self.C * n)
        w = np.zeros(d + 1)  # last entry is the (unregularised) bias
        t = 0
        for _ in range(self.n_epochs):
            order = rng.permutation(n)
            for i in order:
                t += 1
                eta = 1.0 / (lam * t)
                margin = sign[i] * (X[i] @ w[:-1] + w[-1])
                w[:-1] *= 1.0 - eta * lam
                if margin < 1.0:
                    w[:-1] += eta * sign[i] * X[i]
                    w[-1] += eta * sign[i] * 0.1  # damped bias update
        return w

    def fit(self, X: Any, y: Any) -> "LinearSVC":
        """Train one binary SVM per class (one-vs-rest)."""
        X, y = check_Xy(X, y)
        indices = self._store_classes(y)
        rng = np.random.default_rng(self.seed)
        n_classes = len(self.classes_)
        if n_classes == 1:
            self.coef_ = np.zeros((1, X.shape[1]))
            self.intercept_ = np.zeros(1)
            return self
        weights = []
        for k in range(n_classes):
            sign = np.where(indices == k, 1.0, -1.0)
            weights.append(self._fit_binary(X, sign, rng))
        stacked = np.vstack(weights)
        self.coef_ = stacked[:, :-1]
        self.intercept_ = stacked[:, -1]
        return self

    def decision_function(self, X: Any) -> np.ndarray:
        """Per-class margins ``X @ w_k + b_k``."""
        if self.coef_ is None:
            raise RuntimeError("classifier must be fitted before predict")
        X = check_X(X)
        return X @ self.coef_.T + self.intercept_

    def predict(self, X: Any) -> np.ndarray:
        """Class with the largest margin."""
        scores = self.decision_function(X)
        if scores.shape[1] == 1:
            return np.repeat(self.classes_[0], scores.shape[0])
        return self.classes_[np.argmax(scores, axis=1)]

    def predict_proba(self, X: Any) -> np.ndarray:
        """Soft-max over margins (uncalibrated convenience scores)."""
        scores = self.decision_function(X)
        scores -= scores.max(axis=1, keepdims=True)
        expd = np.exp(scores)
        return expd / expd.sum(axis=1, keepdims=True)
