"""Extension bench (§7 production vision): passive device identification.

A production FIAT downloads per-device-model classifiers "as FIAT
identifies a new device".  This bench trains the flow-fingerprint
identifier on simulated captures and measures identification accuracy
on a fresh household — the related work this substitutes (Meidan et
al.) reports ~99 % across 9 devices.
"""

from repro.core import DeviceIdentifier
from repro.testbed import TESTBED, Household, HouseholdConfig

from benchmarks._helpers import print_table


def test_extension_device_identification(benchmark):
    identifier = DeviceIdentifier.fit_from_testbed(n_windows=3, window_s=900.0, seed=5)

    config = HouseholdConfig(duration_s=900.0, seed=777, manual_interval_s=(1e9, 2e9))
    result = Household(list(TESTBED), config).simulate()
    result.trace.dns = result.cloud.dns

    predictions = benchmark.pedantic(
        lambda: identifier.identify_household(result.trace), rounds=1, iterations=1
    )
    truth = {name: profile.device_class for name, profile in TESTBED.items()}

    rows = [
        (device, truth[device], predicted, "ok" if predicted == truth[device] else "MISS")
        for device, predicted in sorted(predictions.items())
    ]
    accuracy = sum(predictions[d] == truth[d] for d in predictions) / len(predictions)
    print_table(
        f"Extension — passive device identification (accuracy {accuracy:.2f}; "
        "related work ~0.99 across 9 devices)",
        ("device", "true class", "predicted", ""),
        rows,
    )
    assert accuracy >= 0.8
