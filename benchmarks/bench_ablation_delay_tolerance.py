"""§6 tolerance experiment: how slow can FIAT be before breaking devices?

The paper injects synthetic latency into the humanness validation and
finds every testbed device tolerates up to two seconds of extra delay,
because the endpoints' TCP absorbs it via timeouts and retransmission.
This bench sweeps added delay, combines it with the measured validation
latency distributions, and reports the fraction of commands that would
be impaired per scenario.
"""

import numpy as np

from repro.core import (
    LAN_SCENARIO,
    MOBILE_SCENARIO,
    TCP_TOLERANCE_S,
    command_impaired,
    validation_breakdown,
)
from repro.quic import Transport

from benchmarks._helpers import print_table


def test_ablation_delay_tolerance(benchmark):
    rng = np.random.default_rng(0)

    def impaired_fraction(scenario, added_delay_s, n=60):
        impaired = 0
        for _ in range(n):
            components = validation_breakdown(scenario, Transport.QUIC_0RTT, rng)
            total_extra = components["time_to_validation"] / 1000.0 + added_delay_s
            impaired += command_impaired(total_extra)
        return impaired / n

    benchmark.pedantic(lambda: impaired_fraction(LAN_SCENARIO, 1.0), rounds=1, iterations=1)

    rows = []
    results = {}
    for delay in (0.0, 0.5, 1.0, 1.5, 1.8, 2.5, 3.0):
        lan = impaired_fraction(LAN_SCENARIO, delay)
        mobile = impaired_fraction(MOBILE_SCENARIO, delay)
        results[delay] = (lan, mobile)
        rows.append((f"{delay:.1f}s", f"{lan:.2f}", f"{mobile:.2f}"))
    print_table(
        "Ablation — added validation delay vs impaired commands "
        f"(paper: all devices tolerate {TCP_TOLERANCE_S:.0f} s extra delay)",
        ("added delay", "impaired (LAN)", "impaired (mobile)"),
        rows,
    )

    # Below ~1.5 s everything still works; past the TCP tolerance
    # commands start failing.
    assert results[0.0] == (0.0, 0.0)
    assert results[1.0][0] == 0.0
    assert results[3.0][0] == 1.0
    assert results[3.0][1] == 1.0
