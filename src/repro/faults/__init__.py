"""Fault injection for FIAT resilience experiments.

A deterministic, seeded subsystem for measuring FIAT under failure:
:class:`FaultPlan` schedules channel faults (proof loss, duplication,
delay/reordering, corruption, clock skew) and component outages
(classifier exceptions, validation-service downtime, sensor dropout);
:class:`FaultyLink` applies the channel faults to the QUIC auth channel;
:class:`CircuitBreaker` is the recovery mechanism the proxy wraps around
flaky components; the ``Flaky*`` injectors make healthy components fail
on schedule.  Identical plans reproduce identical delivery schedules and
proxy decision logs.
"""

from .breaker import BreakerState, CircuitBreaker
from .injectors import ComponentOutage, FlakyClassifier, FlakyValidationService
from .link import Delivery, FaultyLink
from .plan import CrashWindow, FaultPlan, MachineFault, OutageWindow

__all__ = [
    "FaultPlan",
    "OutageWindow",
    "CrashWindow",
    "MachineFault",
    "FaultyLink",
    "Delivery",
    "CircuitBreaker",
    "BreakerState",
    "ComponentOutage",
    "FlakyClassifier",
    "FlakyValidationService",
]
