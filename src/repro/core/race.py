"""Event-driven simulation of the proof-vs-command race (§6).

Table 7 compares component latencies; this module closes the loop with a
discrete-event simulation of what actually happens at the proxy when a
user issues a command:

1. at ``t=0`` the user touches the companion app;
2. the FIAT app detects the app, reads its sensor buffer, signs and
   ships the proof (client components + transport latency);
3. in parallel, the command travels app -> vendor cloud -> device and
   its first packet reaches the proxy (``time_to_first_packet``);
4. the proxy *holds* manual-event packets that arrive before the proof
   (NFQUEUE delays forwarding) and releases them once the humanness
   validation succeeds — or drops them after a timeout.

The simulation reports the *added latency* FIAT imposes on the command:
zero whenever the proof wins the race (the paper's finding), and the
hold time otherwise.  ``extra_validation_delay_s`` reproduces the §6
tolerance experiment end-to-end: commands break when the hold exceeds
the TCP retransmission budget.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..quic.transport import Transport
from .latency import (
    DeviceOperation,
    Scenario,
    TCP_TOLERANCE_S,
    time_to_first_packet,
    validation_breakdown,
)

__all__ = ["RaceOutcome", "simulate_race", "race_statistics"]


@dataclass(frozen=True)
class RaceOutcome:
    """Result of one simulated command under FIAT."""

    device: str
    operation: str
    #: ms from touch until the command's first packet reaches the proxy
    command_arrival_ms: float
    #: ms from touch until the proof is validated at the proxy
    proof_ready_ms: float
    #: ms the proxy held the first packet (0 when the proof won)
    hold_ms: float
    #: whether the command completed (hold within the TCP budget)
    completed: bool

    @property
    def proof_won(self) -> bool:
        """Whether validation finished before the command arrived."""
        return self.proof_ready_ms <= self.command_arrival_ms


def simulate_race(
    operation: DeviceOperation,
    scenario: Scenario,
    transport: Transport = Transport.QUIC_0RTT,
    extra_validation_delay_s: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> RaceOutcome:
    """Run one proof-vs-command race through a tiny event queue."""
    rng = rng if rng is not None else np.random.default_rng()

    # Build the event timeline (times in ms from the touch).
    components = validation_breakdown(scenario, transport, rng)
    proof_ready = components["time_to_validation"] + extra_validation_delay_s * 1000.0
    command_arrival = time_to_first_packet(operation, scenario, rng)

    events: List[Tuple[float, str]] = []
    heapq.heappush(events, (proof_ready, "proof-validated"))
    heapq.heappush(events, (command_arrival, "first-packet"))

    held_since: Optional[float] = None
    proof_done = False
    hold_ms = 0.0
    while events:
        now, kind = heapq.heappop(events)
        if kind == "proof-validated":
            proof_done = True
            if held_since is not None:
                hold_ms = now - held_since
                held_since = None
        elif kind == "first-packet":
            if not proof_done:
                held_since = now  # NFQUEUE holds the packet
    if held_since is not None:  # proof never arrived (not modelled here)
        hold_ms = float("inf")

    return RaceOutcome(
        device=operation.device,
        operation=operation.operation,
        command_arrival_ms=command_arrival,
        proof_ready_ms=proof_ready,
        hold_ms=hold_ms,
        completed=hold_ms / 1000.0 <= TCP_TOLERANCE_S,
    )


def race_statistics(
    operation: DeviceOperation,
    scenario: Scenario,
    n: int = 100,
    transport: Transport = Transport.QUIC_0RTT,
    extra_validation_delay_s: float = 0.0,
    seed: Optional[int] = 0,
) -> Dict[str, float]:
    """Aggregate many races: win rate, mean hold, completion rate."""
    rng = np.random.default_rng(seed)
    outcomes = [
        simulate_race(operation, scenario, transport, extra_validation_delay_s, rng)
        for _ in range(n)
    ]
    return {
        "proof_win_rate": float(np.mean([o.proof_won for o in outcomes])),
        "mean_hold_ms": float(np.mean([o.hold_ms for o in outcomes])),
        "p99_hold_ms": float(np.percentile([o.hold_ms for o in outcomes], 99)),
        "completion_rate": float(np.mean([o.completed for o in outcomes])),
        "mean_command_ms": float(np.mean([o.command_arrival_ms for o in outcomes])),
        "mean_proof_ms": float(np.mean([o.proof_ready_ms for o in outcomes])),
    }
