"""Figure-data exporters: the series behind every paper figure, as CSV.

The offline environment has no plotting stack, so the reproduction
exposes each figure's underlying data as plain series that any tool
(gnuplot, matplotlib, a spreadsheet) can render:

* :func:`fig1a_flow_series` — per-flow packet timelines of a device
  (the scatter rows of Fig 1a);
* :func:`fig1b_cdf_series` — the predictability CDF of a corpus under a
  flow definition (one (x, y) series per curve of Fig 1b);
* :func:`fig1c_interval_cdf` — the max-interval CDF (Fig 1c);
* :func:`fig2_bars` — per-device, per-class predictability bars (Fig 2);
* :func:`write_csv` — dump any of the above to disk.
"""

from __future__ import annotations

import csv
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from .net.dns import DnsTable
from .net.flows import FlowDefinition, flow_key, flow_pretty
from .net.packet import TrafficClass
from .net.trace import Trace
from .predictability.analyzer import analyze_trace, cdf, max_predictable_intervals
from .predictability.buckets import label_predictable

__all__ = [
    "fig1a_flow_series",
    "fig1b_cdf_series",
    "fig1c_interval_cdf",
    "fig2_bars",
    "write_csv",
]


def fig1a_flow_series(
    trace: Trace,
    definition: FlowDefinition = FlowDefinition.PORTLESS,
    min_packets: int = 5,
) -> List[Dict[str, object]]:
    """Per-flow timelines: Fig 1a's one-row-per-flow scatter data.

    Returns one record per flow with at least ``min_packets`` packets:
    ``{"flow": label, "timestamps": [...], "predictable_share": float}``,
    sorted by descending packet count.
    """
    labels = label_predictable(trace, definition)
    per_flow: Dict[Tuple[Hashable, ...], List[Tuple[float, bool]]] = {}
    for packet, predictable in zip(trace, labels):
        key = flow_key(packet, definition, trace.dns)
        per_flow.setdefault(key, []).append((packet.timestamp, predictable))
    series = []
    for key, entries in per_flow.items():
        if len(entries) < min_packets:
            continue
        series.append(
            {
                "flow": flow_pretty(key, definition),
                "timestamps": [t for t, _ in entries],
                "predictable_share": sum(p for _, p in entries) / len(entries),
            }
        )
    series.sort(key=lambda record: -len(record["timestamps"]))
    return series


def fig1b_cdf_series(
    trace: Trace,
    definition: FlowDefinition = FlowDefinition.PORTLESS,
) -> Tuple[np.ndarray, np.ndarray]:
    """One CDF curve of Fig 1b: per-device predictable fractions."""
    report = analyze_trace(trace, definition)
    return cdf(report.fractions())


def fig1c_interval_cdf(
    trace: Trace,
    definition: FlowDefinition = FlowDefinition.PORTLESS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fig 1c: CDF of max intervals between predictable packets per flow."""
    intervals = max_predictable_intervals(trace, definition)
    values = [v for v in intervals.values() if v > 0]
    return cdf(values)


def fig2_bars(
    trace: Trace,
    definition: FlowDefinition = FlowDefinition.PORTLESS,
) -> List[Dict[str, Optional[float]]]:
    """Fig 2: per-device control/automated/manual predictability bars."""
    report = analyze_trace(trace, definition)
    bars = []
    for device in sorted(report.devices):
        entry = report.devices[device]
        bars.append(
            {
                "device": device,
                "control": entry.class_fraction(TrafficClass.CONTROL),
                "automated": entry.class_fraction(TrafficClass.AUTOMATED),
                "manual": entry.class_fraction(TrafficClass.MANUAL),
                "overall": entry.fraction,
            }
        )
    return bars


def write_csv(path: str, header: Sequence[str], rows: Sequence[Sequence[object]]) -> int:
    """Write rows to a CSV file; returns the number of data rows."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(header))
        count = 0
        for row in rows:
            writer.writerow(list(row))
            count += 1
    return count
