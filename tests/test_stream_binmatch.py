"""Unit tests for the vectorized bin-matching core (repro.stream.binmatch)."""

import numpy as np
import pytest

from repro.net import DnsTable, FlowDefinition, Trace
from repro.net.flows import flow_key
from repro.predictability import label_predictable, quantize_iat
from repro.predictability.buckets import _label_predictable_scalar
from repro.stream.binmatch import (
    PAIR_SHIFT,
    KeyInterner,
    chain_prev,
    codes_safe,
    first_last_per_kid,
    last_index_per_kid,
    neighbor_any,
    neighbor_counts,
    pair_codes,
    quantize_iat_array,
)
from tests.conftest import make_packet


def _random_trace(rng, n=400, n_flows=12, jitter=0.5):
    """Timestamp-ordered trace mixing periodic and jittered flows."""
    packets = []
    t = 0.0
    for _ in range(n):
        t += float(rng.exponential(2.0))
        flow = int(rng.integers(n_flows))
        packets.append(
            make_packet(
                timestamp=t + float(rng.uniform(-jitter, jitter)),
                size=100 + flow,
                dst_ip=f"172.1.2.{flow}",
                device=f"dev{flow % 3}",
            )
        )
    packets.sort(key=lambda p: p.timestamp)
    return Trace(packets)


class TestQuantizeArray:
    def test_bit_equal_to_scalar(self, rng):
        iats = np.concatenate(
            [
                rng.uniform(-2.0, 50.0, size=500),
                np.array([0.0, -0.0, 0.124, 0.125, 0.25, 0.375, 1e-9, 1e6]),
            ]
        )
        for resolution in (0.25, 0.5, 1.0, 0.01):
            vec = quantize_iat_array(iats, resolution)
            ref = [quantize_iat(float(v), resolution) for v in iats]
            assert vec.tolist() == ref, resolution

    def test_bin_edge_pins(self):
        # Rounds to nearest: 0.124/0.25 + 0.5 < 1 stays in bin 0,
        # 0.125 lands exactly on the bin-1 edge.
        assert quantize_iat_array(np.array([0.124, 0.125]), 0.25).tolist() == [0, 1]

    def test_nan_clamps_to_zero(self):
        assert quantize_iat_array(np.array([np.nan]), 0.25).tolist() == [0]


class TestChainPrev:
    def test_matches_scalar_chains(self, rng):
        kids = rng.integers(0, 7, size=200)
        ts = np.sort(rng.uniform(0, 100, size=200))
        prev_index, prev_ts = chain_prev(kids, ts)
        last_seen = {}
        for i, kid in enumerate(kids.tolist()):
            expect = last_seen.get(kid, -1)
            assert prev_index[i] == expect
            if expect >= 0:
                assert prev_ts[i] == ts[expect]
            else:
                assert np.isnan(prev_ts[i])
            last_seen[kid] = i

    def test_empty(self):
        prev_index, prev_ts = chain_prev(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        )
        assert len(prev_index) == 0 and len(prev_ts) == 0


class TestOccurrenceHelpers:
    def test_first_last_per_kid(self, rng):
        kids = rng.integers(0, 9, size=300)
        uniq, first, last = first_last_per_kid(kids)
        ref_first, ref_last = {}, {}
        for i, kid in enumerate(kids.tolist()):
            ref_first.setdefault(kid, i)
            ref_last[kid] = i
        assert uniq.tolist() == sorted(ref_first)
        assert [ref_first[k] for k in uniq.tolist()] == first.tolist()
        assert [ref_last[k] for k in uniq.tolist()] == last.tolist()

    def test_last_index_per_kid_agrees(self, rng):
        kids = rng.integers(0, 5, size=100)
        uniq_a, last_a = last_index_per_kid(kids)
        uniq_b, _, last_b = first_last_per_kid(kids)
        assert uniq_a.tolist() == uniq_b.tolist()
        assert last_a.tolist() == last_b.tolist()


class TestNeighborLookups:
    def test_neighbor_any_brute_force(self, rng):
        kids = rng.integers(0, 4, size=150)
        bins = rng.integers(0, 30, size=150)
        rule_kids = rng.integers(0, 4, size=40)
        rule_bins = rng.integers(0, 30, size=40)
        codes = np.unique(pair_codes(rule_kids, rule_bins))
        rule_set = set(zip(rule_kids.tolist(), rule_bins.tolist()))
        for nb in (0, 1, 2):
            got = neighbor_any(codes, kids, bins, nb)
            want = [
                any((k, b + d) in rule_set for d in range(-nb, nb + 1))
                for k, b in zip(kids.tolist(), bins.tolist())
            ]
            assert got.tolist() == want, nb

    def test_neighbor_counts_brute_force(self, rng):
        kids = rng.integers(0, 3, size=120)
        bins = rng.integers(0, 12, size=120)
        codes = pair_codes(kids, bins)
        uniq, counts = np.unique(codes, return_counts=True)
        from collections import Counter

        tally = Counter(codes.tolist())
        for nb in (0, 1):
            got = neighbor_counts(uniq, counts, kids, bins, nb)
            want = [
                sum(tally[k * PAIR_SHIFT + b + d] for d in range(-nb, nb + 1))
                for k, b in zip(kids.tolist(), bins.tolist())
            ]
            assert got.tolist() == want, nb


class TestCodesSafe:
    def test_overflow_bin_rejected(self):
        kids = np.array([0], dtype=np.int64)
        assert codes_safe(kids, np.array([PAIR_SHIFT - 1]), 1) is False
        assert codes_safe(kids, np.array([PAIR_SHIFT - 2]), 1) is True
        assert codes_safe(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 1)


class TestKeyInterner:
    def test_ids_in_first_occurrence_order(self):
        interner = KeyInterner(FlowDefinition.PORTLESS, None)
        a = make_packet(dst_ip="172.1.2.3")
        b = make_packet(dst_ip="172.9.9.9")
        assert interner.intern(a) == 0
        assert interner.intern(b) == 1
        assert interner.intern(a) == 0
        assert interner.keys[0] == flow_key(a, FlowDefinition.PORTLESS, None)

    def test_dns_invalidation_keeps_ids(self):
        dns = DnsTable()
        interner = KeyInterner(FlowDefinition.PORTLESS, dns)
        a = make_packet(dst_ip="172.1.2.3")
        kid = interner.intern(a)
        dns.add_record("172.1.2.3", "cloud.example.com")
        interner.check_dns()
        assert interner.memo == {}
        # The remap yields a *different* flow key -> a new id; the old
        # id keeps pointing at the old key.
        kid2 = interner.intern(a)
        assert kid2 != kid
        assert interner.keys[kid] != interner.keys[kid2]


class TestVectorizedLabelling:
    @pytest.mark.parametrize("definition", [FlowDefinition.PORTLESS, FlowDefinition.CLASSIC])
    def test_matches_scalar_on_random_traces(self, rng, definition):
        for seed in range(3):
            trace = _random_trace(np.random.default_rng(seed))
            vec = label_predictable(trace, definition=definition)
            ref = _label_predictable_scalar(trace, definition, None, 0.25, 1)
            assert vec == ref, (definition, seed)

    def test_matches_scalar_with_dns(self, rng):
        dns = DnsTable()
        dns.add_record("172.1.2.3", "cloud.example.com")
        trace = _random_trace(np.random.default_rng(7), n_flows=6)
        vec = label_predictable(trace, dns=dns)
        ref = _label_predictable_scalar(trace, FlowDefinition.PORTLESS, dns, 0.25, 1)
        assert vec == ref
