"""Performance bench: streaming engine vs scalar proxy path.

Runs the identical household packet stream through the scalar
per-packet proxy and through the windowed streaming engine
(``repro.stream``), checking the two contracts at once: the decision
log stays **byte-identical**, and the streaming path clears the >= 2x
throughput target the engine exists for (vectorized rule matching +
bulk bootstrap learning; a 4096-packet window amortises the NumPy
dispatch).  Rounds are interleaved so CPU frequency scaling cannot
skew the ratio.

Results are also written as a machine-readable ``BENCH_streaming.json``
(directory from ``FIAT_BENCH_OUT``) and feed the committed trajectory
(``tools/bench_track.py``).
"""

import gc
from time import perf_counter

from repro.core import FiatConfig, FiatProxy, HumanValidationService, train_event_classifier
from repro.crypto import pair
from repro.obs import write_bench_snapshot
from repro.sensors import HumannessValidator
from repro.stream import StreamingEngine
from repro.testbed import APP_PACKAGES, profile_for

from benchmarks._helpers import bench_out_path

#: Streaming window used for the headline (amortisation sweet spot).
WINDOW = 4096
ROUNDS = 5


def _build_proxy(result, streaming):
    _, proxy_ks = pair("phone", "proxy")
    classifiers = {}
    for name in result.trace.devices():
        profile = profile_for(name)
        if profile.uses_simple_rules:
            classifiers[name] = train_event_classifier(profile)
    proxy = FiatProxy(
        config=FiatConfig(bootstrap_s=1200.0, streaming=streaming, stream_window=WINDOW),
        dns=result.cloud.dns,
        classifiers=classifiers,
        validation=HumanValidationService(
            proxy_ks,
            validator=HumannessValidator(n_train_per_class=60, seed=0).fit(),
        ),
        app_for_device=dict(APP_PACKAGES),
    )
    if streaming:
        proxy.attach_engine(StreamingEngine(proxy, window=WINDOW))
    return proxy


def _timed_run(result, packets, streaming):
    proxy = _build_proxy(result, streaming)
    gc.collect()
    gc.disable()
    t0 = perf_counter()
    if streaming:
        proxy._engine.feed_many(packets)
    else:
        process = proxy.process
        for packet in packets:
            process(packet)
    proxy.flush()
    elapsed = perf_counter() - t0
    gc.enable()
    return elapsed, proxy


def test_streaming_throughput_and_equivalence(testbed_household):
    result = testbed_household
    packets = list(result.trace)[:20000]

    # Warm both paths (imports, memo caches) outside the timed rounds.
    _timed_run(result, packets[:2000], False)
    _timed_run(result, packets[:2000], True)

    scalar_s = stream_s = float("inf")
    for _ in range(ROUNDS):
        elapsed, scalar_proxy = _timed_run(result, packets, False)
        scalar_s = min(scalar_s, elapsed)
        elapsed, stream_proxy = _timed_run(result, packets, True)
        stream_s = min(stream_s, elapsed)

    assert stream_proxy.decision_log() == scalar_proxy.decision_log()
    assert (stream_proxy.n_allowed, stream_proxy.n_dropped) == (
        scalar_proxy.n_allowed,
        scalar_proxy.n_dropped,
    )

    n = len(packets)
    scalar_rate = n / scalar_s
    stream_rate = n / stream_s
    speedup = stream_rate / scalar_rate
    print(
        f"\nscalar {scalar_rate:,.0f} pkt/s, streaming {stream_rate:,.0f} pkt/s "
        f"(speedup {speedup:.2f}x, window {WINDOW})"
    )

    headline = {
        "batch_packets_per_s": round(scalar_rate),
        "streaming_packets_per_s": round(stream_rate),
        "speedup_x": round(speedup, 3),
        "window": WINDOW,
        "n_packets": n,
        "n_decisions": len(stream_proxy.decisions),
    }
    write_bench_snapshot(
        bench_out_path("BENCH_streaming.json"), "streaming", headline
    )
    # The tentpole target: the vectorized path must at least double
    # throughput on the realistic household mix.
    assert speedup >= 2.0
