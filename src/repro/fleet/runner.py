"""Durable fleet execution: streaming, checkpointed, serial or process-pool.

:class:`FleetRunner` walks a :class:`~repro.fleet.spec.SpecStream` (or a
materialised :class:`~repro.fleet.spec.FleetSpec`) and produces one
:class:`~repro.fleet.aggregate.FleetReport`.  Two backends share a
single code path per home (:func:`~repro.fleet.worker.run_home`):

``serial``
    In-process, one home after another — the reference execution.
``process``
    ``concurrent.futures.ProcessPoolExecutor`` with a bounded window of
    in-flight homes (at most ``2 * jobs``), so a million-home spec never
    materialises a million futures.

Determinism: homes are independent (shared-nothing, hash-derived
seeds), results are *collected strictly in spec order*, and aggregation
folds incrementally in that order — the report is byte-identical across
backends, any ``--jobs`` value, and (with ``state_dir``) across a
kill/resume boundary: a run ``SIGKILL``-ed at any home and resumed with
``resume=True`` produces the same bytes as an uninterrupted one.

Memory: the spec streams in, the aggregate folds incrementally
(reservoir percentiles, capped ok-home rows), and no O(homes) result
list ever exists — peak RSS is bounded in fleet size.

Failure policy — fail the home, never the fleet:

* A worker that raises (a poisoned or genuinely buggy home) is retried
  up to ``retries`` times with seeded exponential backoff; a home that
  exhausts the budget is marked ``failed`` and *quarantined* — listed
  in the report and reattemptable with ``resume=True,
  retry_quarantined=True`` without re-running the healthy homes.
* A worker *process death* (power cut, OOM kill — surfaces as
  ``BrokenProcessPool``) kills every in-flight future, and the pool
  cannot name the culprit.  The runner rebuilds the pool and reruns the
  home being collected *in isolation* (distinct from the retry/backoff
  policy): an innocent bystander passes its isolated rerun; a crasher
  breaks the fresh pool with only itself in flight and is failed after
  that second break, never taking a neighbour down with it.
* A per-home timeout *rebuilds the pool* (a running future cannot be
  cancelled, so the stuck worker would otherwise occupy a slot for the
  rest of the run), kills the abandoned workers, re-pipelines the
  pending window, and counts against the same retry budget.  The
  serial backend cannot preempt a running home, so it *rejects*
  ``timeout_s`` outright instead of silently ignoring it; ``auto``
  with a timeout therefore resolves to the process backend.
* ``SIGINT``/``SIGTERM`` stop the run cleanly after the home currently
  being collected: a final checkpoint is compacted and
  :class:`FleetInterrupted` carries the partial report (explicit
  coverage counts) so non-strict callers can still use it.
"""

from __future__ import annotations

import logging
import os
import random
import signal
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Deque, Dict, Iterator, Optional, Set, Tuple

from ..util import spawn_seed
from .aggregate import FleetAggregator, FleetReport
from .checkpoint import FleetCheckpoint
from .spec import FleetSpec, HomeSpec, SpecStream
from .telemetry import TelemetryWriter, telemetry_dir_for
from .worker import HomeResult, run_home, run_home_payload, run_home_traced

__all__ = ["FleetRunner", "FleetInterrupted", "BACKENDS", "KILL_AFTER_ENV"]

logger = logging.getLogger(__name__)

#: Supported execution backends (``auto`` resolves by ``jobs``/timeout).
BACKENDS = ("auto", "serial", "process")

#: Test/CI hook: when set to N, the runner SIGKILLs its own process the
#: moment N homes have been folded this run — a deterministic stand-in
#: for "the operator's box died mid-fleet" in resume smoke tests.
KILL_AFTER_ENV = "FIAT_FLEET_KILL_AFTER"

#: Signals that trigger a clean stop-and-checkpoint.
_STOP_SIGNALS = (signal.SIGINT, signal.SIGTERM)


class FleetInterrupted(RuntimeError):
    """A stop signal ended the run after a clean final checkpoint.

    Carries the partial :class:`FleetReport` (``coverage["partial"]``
    set, explicit completed/planned counts) so non-strict callers can
    still consume what finished; the run is resumable from the state
    dir it checkpointed into.
    """

    def __init__(self, report: FleetReport) -> None:
        coverage = report.coverage
        super().__init__(
            f"fleet run interrupted after {coverage.get('completed', 0)}/"
            f"{coverage.get('planned', report.n_homes)} homes"
        )
        self.report = report


class FleetRunner:
    """Run every home of a fleet and aggregate the population report."""

    def __init__(
        self,
        spec: "FleetSpec | SpecStream",
        jobs: int = 1,
        backend: str = "auto",
        timeout_s: Optional[float] = None,
        state_root: Optional[str] = None,
        state_dir: Optional[str] = None,
        resume: bool = False,
        retry_quarantined: bool = False,
        retries: int = 0,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        snapshot_every: int = 32,
        fsync: bool = False,
        telemetry: bool = True,
        telemetry_dir: Optional[str] = None,
        profile_slowest: bool = False,
        on_result: Optional[Callable[[int, HomeResult], None]] = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
        if backend == "serial" and timeout_s is not None:
            raise ValueError(
                "the serial backend cannot enforce timeout_s (a home runs "
                "in-process and cannot be preempted) — use backend='process' "
                "or 'auto', or drop the timeout"
            )
        if (resume or retry_quarantined) and not state_dir:
            raise ValueError("resume/retry_quarantined require a state_dir")
        self.source: SpecStream = spec.stream() if isinstance(spec, FleetSpec) else spec
        self.jobs = jobs
        if backend == "auto":
            backend = "process" if (jobs > 1 or timeout_s is not None) else "serial"
        self.backend = backend
        self.timeout_s = timeout_s
        self.state_root = state_root
        self.state_dir = state_dir
        self.resume = resume
        self.retry_quarantined = retry_quarantined
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.snapshot_every = snapshot_every
        self.fsync = fsync
        # Telemetry is out-of-band by contract (reports byte-identical
        # with it on or off) and lives in the state dir — no state dir,
        # no channel to tail, so it quietly stays off.  An explicit
        # ``telemetry_dir`` overrides that default so state-dir-less
        # runs (e.g. distributed-fleet machines) can still emit frames.
        if telemetry_dir is not None:
            self.telemetry_dir: Optional[str] = telemetry_dir if telemetry else None
        else:
            self.telemetry_dir = (
                telemetry_dir_for(state_dir) if (state_dir and telemetry) else None
            )
        self.profile_slowest = profile_slowest
        self.on_result = on_result
        self._stop_requested = False
        self._next_idx = 0
        self._seen = 0
        self._folded_this_run = 0
        self._kill_after = 0
        self._telemetry: Optional[TelemetryWriter] = None
        self._run_started = 0.0
        self._retries_total = 0
        self._slowest: Optional[Tuple[float, HomeSpec]] = None

    # -- public API --------------------------------------------------------------

    def mute_telemetry(self) -> None:
        """Stop emitting telemetry frames, permanently, mid-run.

        Models a network partition for distributed-fleet chaos tests:
        the runner keeps working (report bytes are unaffected by
        contract) but no further frames reach the channel, so a watcher
        keyed on frame freshness sees the machine go dark.  Safe to
        call before :meth:`run` or from an :attr:`on_result` hook.
        """
        writer, self._telemetry = self._telemetry, None
        self.telemetry_dir = None
        if writer is not None:
            writer.close()

    def run(self) -> FleetReport:
        """Execute the fleet and return the aggregated population report.

        Raises :class:`FleetInterrupted` (carrying the partial report)
        when a stop signal arrives mid-run; with a ``state_dir`` the
        final checkpoint is compacted first, so ``resume=True`` picks
        up exactly where the signal landed.
        """
        agg = FleetAggregator(self.source.name, self.source.seed)
        checkpoint: Optional[FleetCheckpoint] = None
        rerun: Set[int] = set()
        self._stop_requested = False
        self._next_idx = 0
        self._seen = 0
        self._folded_this_run = 0
        self._retries_total = 0
        self._slowest = None
        self._kill_after = int(os.environ.get(KILL_AFTER_ENV, "0") or 0)

        if self.state_dir:
            checkpoint = FleetCheckpoint(
                self.state_dir,
                name=self.source.name,
                seed=self.source.seed,
                spec_digest=self.source.digest,
                fsync=self.fsync,
            )
            if self.resume:
                state = checkpoint.load()
                if state.agg_state is not None:
                    agg = FleetAggregator.from_state(
                        state.agg_state, self.source.name, self.source.seed
                    )
                for record in state.records:
                    agg.add(int(record["idx"]), HomeResult.from_dict(record["result"]))
                self._next_idx = state.next_idx
                if state.next_idx:
                    logger.info(
                        "resuming fleet %r: %d homes already folded",
                        self.source.name, agg.completed,
                    )
                if self.retry_quarantined:
                    rerun = {idx for idx, _ in agg.quarantined}
                    if rerun:
                        logger.info("re-attempting %d quarantined homes", len(rerun))
            else:
                checkpoint.start_fresh()

        if self.telemetry_dir:
            self._telemetry = TelemetryWriter(self.telemetry_dir)
            self._telemetry.emit(
                "run-start",
                fleet=self.source.name,
                planned=self.source.n_homes,
                jobs=self.jobs,
                backend=self.backend,
                resumed=agg.completed,
            )
        self._run_started = time.perf_counter()

        previous_handlers = self._install_stop_handlers()
        finished = False
        try:
            work = self._work(self._next_idx, rerun)
            if self.backend == "serial":
                self._run_serial(work, agg, checkpoint)
            else:
                self._run_process(work, agg, checkpoint)
            finished = True
        finally:
            self._restore_stop_handlers(previous_handlers)
            if checkpoint is not None:
                # Final (or interrupt) compaction: resume never replays
                # a single home that was already collected.
                checkpoint.compact(self._next_idx, agg.to_state())
                checkpoint.close()
            if self._telemetry is not None:
                # The interrupt contract: a signal-stopped run still
                # flushes a final frame, so --watch shows the partial
                # coverage instead of appearing hung.  Only a hard kill
                # leaves no final frame (and the monitor reports stale).
                self._telemetry.emit(
                    "final",
                    status=(
                        "interrupted"
                        if self._stop_requested
                        else ("done" if finished else "aborted")
                    ),
                    completed=agg.completed,
                    planned=self.source.n_homes,
                    elapsed_s=time.perf_counter() - self._run_started,
                )
                self._telemetry.close()
                self._telemetry = None

        planned = self.source.n_homes if self.source.n_homes is not None else self._seen
        report = agg.report(n_planned=planned, partial=self._stop_requested)
        if self._stop_requested:
            raise FleetInterrupted(report)
        if self.profile_slowest and self._slowest is not None:
            self._profile_home(self._slowest[1])
        return report

    def _profile_home(self, home: HomeSpec) -> None:
        """Re-run the slowest ok home under cProfile (attribution data).

        Runs after the report is finalised, in-process, with the exact
        same spec — the rerun's result is discarded, so profiling can
        never perturb the report bytes.  Writes ``profile-<home>.prof``
        (loadable with ``pstats``/snakeviz) plus a text summary next to
        the state dir's other artifacts.
        """
        import cProfile
        import io as _io
        import pstats

        out_dir = self.state_dir or "."
        base = os.path.join(out_dir, f"profile-{home.home_id}")
        profiler = cProfile.Profile()
        logger.info("profiling slowest home %s", home.home_id)
        try:
            profiler.enable()
            try:
                run_home(home, state_root=self.state_root)
            finally:
                profiler.disable()
        except Exception as error:  # advisory artifact — never fail the run
            logger.warning("profiling home %s failed: %s", home.home_id, error)
            return
        profiler.dump_stats(base + ".prof")
        buffer = _io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer).sort_stats("cumulative")
        stats.print_stats(25)
        with open(base + ".txt", "w", encoding="utf-8") as handle:
            handle.write(f"slowest home: {home.home_id}\n")
            handle.write(buffer.getvalue())

    # -- stop signals ------------------------------------------------------------

    def _handle_stop(self, signum, frame) -> None:
        if self._stop_requested:  # second signal: the user means *now*
            raise KeyboardInterrupt
        self._stop_requested = True
        logger.warning(
            "stop signal %d: finishing the in-flight home, then checkpointing",
            signum,
        )

    def _install_stop_handlers(self):
        if threading.current_thread() is not threading.main_thread():
            return {}
        previous = {}
        for sig in _STOP_SIGNALS:
            try:
                previous[sig] = signal.signal(sig, self._handle_stop)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                pass
        return previous

    @staticmethod
    def _restore_stop_handlers(previous) -> None:
        for sig, handler in previous.items():
            signal.signal(sig, handler)

    # -- shared plumbing ---------------------------------------------------------

    def _work(self, next_idx: int, rerun: Set[int]) -> Iterator[Tuple[int, HomeSpec]]:
        """Yield ``(idx, home)`` for every home this run must execute.

        Walks the whole stream in spec order, skipping the checkpointed
        prefix except for quarantined indices being re-attempted —
        yielded indices are therefore strictly increasing, which keeps
        the contiguous-prefix invariant the checkpoint relies on.
        """
        for idx, home in enumerate(self.source.iter_homes()):
            self._seen = idx + 1
            if idx >= next_idx or idx in rerun:
                yield idx, home

    @staticmethod
    def _failure(home: HomeSpec, error: BaseException, attempts: int) -> HomeResult:
        return HomeResult(
            home_id=home.home_id,
            status="failed",
            error=f"{type(error).__name__}: {error}",
            attempts=attempts,
        )

    def _backoff_sleep(self, home_id: str, attempt: int) -> None:
        """Seeded exponential backoff before retry ``attempt + 1``."""
        jitter = random.Random(
            spawn_seed(self.source.seed, "backoff", home_id, attempt)
        ).random()
        delay = min(self.backoff_max_s, self.backoff_base_s * (2 ** (attempt - 1)))
        time.sleep(delay * (0.5 + jitter))

    def _fold(
        self,
        agg: FleetAggregator,
        checkpoint: Optional[FleetCheckpoint],
        idx: int,
        result: HomeResult,
        home: Optional[HomeSpec] = None,
    ) -> None:
        # The hook fires before the fold and checkpoint write so an
        # external results log (distributed-fleet machines) always
        # covers at least as much as any internal state does.
        if self.on_result is not None:
            self.on_result(idx, result)
        agg.add(idx, result)
        self._next_idx = max(self._next_idx, idx + 1)
        if checkpoint is not None:
            checkpoint.record_home(idx, result.to_dict(), agg.epoch)
            if agg.epoch % self.snapshot_every == 0:
                checkpoint.compact(self._next_idx, agg.to_state())
        self._folded_this_run += 1
        self._retries_total += max(0, result.attempts - 1)
        total_s = float(result.timings.get("total", 0.0))
        if home is not None and result.ok and total_s > 0.0:
            if self._slowest is None or total_s > self._slowest[0]:
                self._slowest = (total_s, home)
        if self._telemetry is not None:
            elapsed = time.perf_counter() - self._run_started
            self._telemetry.emit(
                "progress",
                completed=agg.completed,
                ok=agg.n_ok,
                failed=agg.n_failed,
                retries=self._retries_total,
                quarantined=len(agg.quarantined),
                elapsed_s=elapsed,
                homes_per_sec=(
                    self._folded_this_run / elapsed if elapsed > 0 else 0.0
                ),
            )
        if self._kill_after and self._folded_this_run >= self._kill_after:
            # Deterministic crash injection for resume smoke tests: die
            # the hard way, exactly like a powered-off operator box.
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover

    # -- serial backend ----------------------------------------------------------

    def _run_serial(
        self,
        work: Iterator[Tuple[int, HomeSpec]],
        agg: FleetAggregator,
        checkpoint: Optional[FleetCheckpoint],
    ) -> None:
        for idx, home in work:
            if self._stop_requested:
                return
            self._fold(agg, checkpoint, idx, self._run_one_serial(home), home=home)

    def _run_one_serial(self, home: HomeSpec) -> HomeResult:
        for attempt in range(1, self.retries + 2):
            try:
                result = run_home_traced(
                    home,
                    state_root=self.state_root,
                    telemetry_dir=self.telemetry_dir,
                )
                result.attempts = attempt
                return result
            except Exception as error:  # fail the home, not the fleet
                logger.warning(
                    "home %s failed (attempt %d/%d): %s",
                    home.home_id, attempt, self.retries + 1, error,
                )
                if attempt > self.retries:
                    return self._failure(home, error, attempt)
                self._backoff_sleep(home.home_id, attempt)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- process backend ---------------------------------------------------------

    def _payload(self, home: HomeSpec) -> Dict[str, object]:
        return {
            "home": home.to_dict(),
            "state_root": self.state_root,
            "telemetry_dir": self.telemetry_dir,
        }

    @staticmethod
    def _kill_pool(executor: ProcessPoolExecutor) -> None:
        """Abandon a pool without letting stuck workers outlive the run."""
        # Grab the worker handles before shutdown (it may null the map).
        processes = list((getattr(executor, "_processes", None) or {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.kill()
            except (OSError, ValueError):  # pragma: no cover - already gone
                pass
        # Workers are dead, so this returns promptly: joining the
        # management thread deregisters the executor's atexit wakeup
        # (otherwise interpreter shutdown trips on its closed pipe).
        executor.shutdown(wait=True)

    def _run_process(
        self,
        work: Iterator[Tuple[int, HomeSpec]],
        agg: FleetAggregator,
        checkpoint: Optional[FleetCheckpoint],
    ) -> None:
        window = 2 * self.jobs
        executor = ProcessPoolExecutor(max_workers=self.jobs)
        pending: Deque[Tuple[int, HomeSpec]] = deque()
        futures: Dict[int, object] = {}
        exhausted = False
        clean = False
        try:
            while True:
                # Keep the in-flight window full ahead of the collector.
                while not exhausted and len(pending) < window and not self._stop_requested:
                    try:
                        idx, home = next(work)
                    except StopIteration:
                        exhausted = True
                        break
                    pending.append((idx, home))
                    futures[idx] = executor.submit(run_home_payload, self._payload(home))
                if not pending:
                    break
                idx, home = pending.popleft()

                attempts = 0
                raised = 0
                timeouts = 0
                pool_breaks = 0
                result: Optional[HomeResult] = None
                while result is None:
                    if idx not in futures:  # resubmitted after a rebuild/retry
                        futures[idx] = executor.submit(
                            run_home_payload, self._payload(home)
                        )
                    attempts += 1
                    try:
                        payload = futures[idx].result(timeout=self.timeout_s)  # type: ignore[union-attr]
                        result = HomeResult.from_dict(payload)  # type: ignore[arg-type]
                        result.attempts = attempts
                    except BrokenProcessPool as error:
                        # A worker process died, killing every in-flight
                        # future — the pool cannot say whose.  Rebuild
                        # and rerun home idx *alone*: a crasher breaks
                        # the fresh pool by itself (conclusive after its
                        # isolated rerun); a bystander passes and the
                        # window re-pipelines below.
                        pool_breaks += 1
                        logger.warning(
                            "process pool broke while collecting %s (attempt %d): %s",
                            home.home_id, attempts, error,
                        )
                        self._kill_pool(executor)
                        executor = ProcessPoolExecutor(max_workers=self.jobs)
                        futures.clear()
                        if pool_breaks >= 2:  # retried in isolation — fail it
                            result = self._failure(home, error, attempts)
                    except FutureTimeoutError:
                        # A running future cannot be cancelled: without a
                        # rebuild the stuck worker would keep its pool
                        # slot for the rest of the run (and a second
                        # timeout would serialize everything behind it).
                        timeouts += 1
                        logger.warning(
                            "home %s timed out (attempt %d)", home.home_id, attempts
                        )
                        self._kill_pool(executor)
                        executor = ProcessPoolExecutor(max_workers=self.jobs)
                        futures.clear()
                        if timeouts > self.retries:
                            result = self._failure(
                                home,
                                TimeoutError(f"no result within {self.timeout_s}s"),
                                attempts,
                            )
                        else:
                            self._backoff_sleep(home.home_id, attempts)
                    except Exception as error:  # raised inside the worker
                        raised += 1
                        futures.pop(idx, None)
                        logger.warning(
                            "home %s failed (attempt %d): %s",
                            home.home_id, attempts, error,
                        )
                        if raised > self.retries:
                            result = self._failure(home, error, attempts)
                        else:
                            self._backoff_sleep(home.home_id, attempts)
                futures.pop(idx, None)

                # Re-pipeline everything a rebuild dropped, *after* the
                # current home resolved (pool-break isolation holds while
                # it is in flight; pending homes must not serialize).
                for pending_idx, pending_home in pending:
                    if pending_idx not in futures:
                        futures[pending_idx] = executor.submit(
                            run_home_payload, self._payload(pending_home)
                        )

                self._fold(agg, checkpoint, idx, result, home=home)
                if self._stop_requested:
                    return
            clean = True
        finally:
            if clean:
                # Normal completion: every future was collected, the
                # pool is idle — a graceful shutdown keeps interpreter
                # exit quiet.
                executor.shutdown(wait=True, cancel_futures=True)
            else:
                # Stop signal or error with homes possibly still (or
                # forever — a hung worker) in flight: never leave a
                # stuck worker behind.
                self._kill_pool(executor)
