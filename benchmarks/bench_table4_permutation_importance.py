"""Table 4: permutation feature importance, WyzeCam-DE with BernoulliNB.

The paper shuffles each of the 66 features 50 times and measures the
drop in manual-class F1.  Findings reproduced here: the transport
protocol, packet direction and TLS features top the ranking (with small
absolute importances — no single feature dominates, max 0.0737), while
the destination-IP octets have exactly zero importance, which is what
makes the classifier transferable across locations (§4.3).
"""

import numpy as np

from repro import ml
from repro.features import FEATURE_NAMES, event_labels, events_to_matrix

from benchmarks._helpers import print_table


def test_table4_permutation_importance(benchmark, labeled_event_sets):
    events = labeled_event_sets[("WyzeCam", "DE")]
    scaler = ml.StandardScaler()
    X = scaler.fit_transform(events_to_matrix(events))
    y = event_labels(events)
    model = ml.BernoulliNB().fit(X, y)

    result = benchmark.pedantic(
        lambda: ml.permutation_importance(
            model, X, y, scoring=ml.manual_f1_scorer("manual"), n_repeats=50, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    ranked = ml.rank_features(result["importances_mean"], FEATURE_NAMES)

    top = ranked[:8]
    ip_rows = [(name, value) for name, value in ranked if "dst-ip" in name][:5]
    print_table(
        "Table 4 — permutation importance, WyzeCam-DE + BernoulliNB "
        "(paper top: pkt1-proto 0.0737, pkt1-direction, pkt3-tls; dst-ip = 0)",
        ("feature", "importance"),
        [(name, f"{value:.4f}") for name, value in top]
        + [("...", "...")]
        + [(name, f"{value:.4f}") for name, value in ip_rows],
    )

    importance = dict(ranked)
    # Destination-IP octets carry (essentially) no information.
    ip_importances = [v for name, v in importance.items() if "dst-ip" in name]
    assert max(abs(v) for v in ip_importances) < 0.02

    # Protocol / direction / TLS features appear in the top ranks, and
    # no single feature dominates (paper max: 0.0737).
    top_names = [name for name, _ in ranked[:12]]
    assert any("proto" in n or "direction" in n or "tls" in n for n in top_names)
