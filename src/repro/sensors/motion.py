"""Synthetic accelerometer / gyroscope traces (paper §5.3-5.4 substrate).

The real FIAT app samples the phone's motion sensors at 250 Hz while an
IoT companion app is in the foreground.  A human physically touching the
display produces force impulses — sharp, correlated bursts across the
accelerometer and gyroscope — superimposed on hand tremor and gravity.
An attacker that injects commands remotely (compromised account) or
simulates touches in software (user-space spyware; the threat model rules
out OS-level sensor forgery) leaves the sensors flat: gravity plus
electronic noise only.

:func:`synthesize_window` generates both kinds of windows with controlled
ambiguity: ``intensity`` scales the human motion, and low intensities
yield the borderline samples responsible for the validator's imperfect
recall (0.934 human / 0.982 non-human in Table 6).
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

__all__ = ["MotionKind", "SAMPLE_RATE_HZ", "GRAVITY", "synthesize_window"]

#: Sampling rate used by FIAT's app (250 samples / second).
SAMPLE_RATE_HZ = 250

#: Standard gravity, m/s^2 (baseline on the accelerometer z axis).
GRAVITY = 9.81


class MotionKind(enum.Enum):
    """Ground-truth of a sensor window."""

    #: A human is holding the phone and touching the display.
    HUMAN = "human"
    #: The phone is untouched (remote attacker / simulated input).
    NON_HUMAN = "non_human"


def _tremor(n: int, rng: np.random.Generator, amplitude: float) -> np.ndarray:
    """Low-frequency hand tremor: smoothed Gaussian noise (random walk-ish)."""
    raw = rng.normal(0.0, amplitude, size=n)
    width = min(25, n)
    kernel = np.ones(width) / width
    smoothed = np.convolve(raw, kernel, mode="same")
    return smoothed[:n]


def _touch_impulses(
    n: int, rng: np.random.Generator, n_touches: int, intensity: float
) -> np.ndarray:
    """Sparse exponential-decay impulses modelling display touches."""
    signal = np.zeros(n)
    if n_touches <= 0:
        return signal
    positions = rng.integers(0, max(1, n - 40), size=n_touches)
    for pos in positions:
        width = int(rng.integers(10, 40))
        peak = intensity * rng.uniform(0.6, 1.4)
        decay = np.exp(-np.arange(width) / (width / 4.0))
        end = min(n, pos + width)
        signal[pos:end] += peak * decay[: end - pos]
    return signal


def synthesize_window(
    kind: MotionKind,
    duration_s: float = 1.0,
    rate_hz: int = SAMPLE_RATE_HZ,
    intensity: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Generate one sensor window of shape ``(duration*rate, 6)``.

    Columns: accelerometer x/y/z then gyroscope x/y/z.

    Parameters
    ----------
    kind:
        :class:`MotionKind.HUMAN` adds tremor plus touch impulses (their
        magnitude scaled by ``intensity``); ``NON_HUMAN`` produces only
        gravity and electronic sensor noise.
    intensity:
        Human-motion scale.  Values well below 1 create the gentle,
        hard-to-detect interactions that bound validator recall.
    """
    rng = rng if rng is not None else np.random.default_rng()
    n = max(8, int(round(duration_s * rate_hz)))
    window = np.empty((n, 6))

    # Electronic sensor noise is always present.
    noise_acc = rng.normal(0.0, 0.02, size=(n, 3))
    noise_gyro = rng.normal(0.0, 0.005, size=(n, 3))

    window[:, 0:3] = noise_acc
    window[:, 2] += GRAVITY  # gravity on accelerometer z
    window[:, 3:6] = noise_gyro

    if kind is MotionKind.HUMAN:
        n_touches = int(rng.integers(1, 5))
        for axis in range(3):
            window[:, axis] += _tremor(n, rng, 0.05 * intensity)
            window[:, axis] += _touch_impulses(n, rng, n_touches, 0.8 * intensity) * rng.uniform(
                0.3, 1.0
            )
        for axis in range(3, 6):
            window[:, axis] += _tremor(n, rng, 0.02 * intensity)
            window[:, axis] += _touch_impulses(n, rng, n_touches, 0.25 * intensity) * rng.uniform(
                0.3, 1.0
            )
    return window
