"""Unit tests for transport latency models and the auth channel."""

import numpy as np
import pytest

from repro.crypto import pair
from repro.quic import (
    LAN_PATH,
    MOBILE_PATH,
    AuthChannel,
    AuthMessage,
    ChannelReceiver,
    NetworkPath,
    Transport,
    connection_latency,
)


class TestLatencyModel:
    def test_zero_rtt_fastest(self, rng):
        samples = {
            transport: np.mean(
                [connection_latency(transport, LAN_PATH, rng) for _ in range(200)]
            )
            for transport in Transport
        }
        assert samples[Transport.QUIC_0RTT] < samples[Transport.QUIC_1RTT]
        assert samples[Transport.QUIC_1RTT] < samples[Transport.TCP_TLS]

    def test_mobile_slower_than_lan(self, rng):
        lan = np.mean([connection_latency(Transport.QUIC_0RTT, LAN_PATH, rng) for _ in range(100)])
        mob = np.mean(
            [connection_latency(Transport.QUIC_0RTT, MOBILE_PATH, rng) for _ in range(100)]
        )
        assert mob > 3 * lan

    def test_lan_zero_rtt_paper_band(self, rng):
        # Table 7: QUIC 0-RTT on LAN is ~21-23 ms.
        mean = np.mean([connection_latency(Transport.QUIC_0RTT, LAN_PATH, rng) for _ in range(300)])
        assert 10.0 < mean < 40.0

    def test_path_sampling_positive(self, rng):
        path = NetworkPath("x", base_rtt_ms=50.0, jitter_sigma=0.5)
        assert all(path.sample_rtt(rng) > 0 for _ in range(100))


def _channel_pair(transport=Transport.QUIC_0RTT):
    phone_ks, proxy_ks = pair("phone", "proxy")
    channel = AuthChannel(
        keystore=phone_ks,
        key_alias="fiat-pairing",
        device_id="phone-1",
        path=LAN_PATH,
        transport=transport,
        rng=np.random.default_rng(0),
    )
    receiver = ChannelReceiver(proxy_ks)
    return channel, receiver


class TestAuthChannel:
    def test_roundtrip(self):
        channel, receiver = _channel_pair()
        result = channel.send("com.nest.android", [0.1, 0.2], now=100.0)
        message = receiver.receive(result.wire, now=100.2)
        assert message is not None
        assert message.app_package == "com.nest.android"
        assert message.sensor_features == (0.1, 0.2)

    def test_replay_rejected(self):
        channel, receiver = _channel_pair()
        result = channel.send("app", [1.0], now=100.0)
        assert receiver.receive(result.wire, now=100.1) is not None
        assert receiver.receive(result.wire, now=100.2) is None
        assert "replay" in receiver.rejections

    def test_stale_message_rejected(self):
        channel, receiver = _channel_pair()
        result = channel.send("app", [1.0], now=100.0)
        assert receiver.receive(result.wire, now=500.0) is None
        assert "stale" in receiver.rejections

    def test_future_message_rejected(self):
        channel, receiver = _channel_pair()
        result = channel.send("app", [1.0], now=200.0)
        assert receiver.receive(result.wire, now=100.0) is None

    def test_unauthorized_device_rejected(self):
        _, receiver = _channel_pair()
        rogue_channel, _ = _channel_pair()  # different pairing
        result = rogue_channel.send("app", [1.0], now=100.0)
        assert receiver.receive(result.wire, now=100.1) is None
        assert "bad-signature" in receiver.rejections

    def test_malformed_wire_rejected(self):
        _, receiver = _channel_pair()
        assert receiver.receive(b"garbage", now=0.0) is None
        assert "malformed" in receiver.rejections

    def test_message_payload_roundtrip(self):
        message = AuthMessage(
            app_package="a", device_id="d", sensor_features=(1.0, 2.0), sent_at=5.0, nonce="n"
        )
        assert AuthMessage.from_payload(message.to_payload()) == message

    def test_latency_attached(self):
        channel, _ = _channel_pair()
        result = channel.send("app", [1.0], now=0.0)
        assert result.latency_ms > 0.0
