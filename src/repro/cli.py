"""Command-line interface for the FIAT reproduction.

Installed as ``fiat-repro``; also runnable as ``python -m repro.cli``.

Subcommands
-----------
``simulate``
    Simulate a household and write the labelled capture (JSONL or pcap).
``analyze``
    Predictability analysis of a capture (per device, per class,
    Classic vs PortLess) — the §2/§3 measurement.
``events``
    Group a capture's unpredictable traffic into events and summarise
    them (§3.2).
``evaluate``
    Run the Table-6 accuracy experiment for a set of devices; with
    ``--metrics-out``/``--audit-out`` it runs fully instrumented and
    writes the registry snapshot / JSONL audit stream; with
    ``--state-dir`` the proxy's security state is write-ahead journaled
    and snapshotted there (crash-safe deployment mode).
``chaos``
    Sweep randomized proxy crash/restart points and assert the recovery
    invariants: decision-log equality modulo downtime, no replayed proof
    accepted post-restart, deterministic recovery, torn-journal-tail
    tolerance.
``fleet``
    Run a sharded multi-home fleet simulation (serial or process-pool
    backend) and write the deterministic population report; the report
    bytes are identical for any ``--jobs`` value.  ``--watch`` renders
    a live telemetry dashboard to stderr while the run executes.
``fleet-top``
    Tail the telemetry channel of a (running, finished, or killed)
    fleet state dir: progress, rate, ETA, per-phase latency digests,
    slowest-shard attribution.
``obs-report``
    Render the observability dashboard from a metrics snapshot — or
    from a fleet checkpoint state dir (latest compacted aggregate) —
    or follow one trace ID through an audit stream.
``bench-report``
    Render the committed perf trajectory (``benchmarks/baselines/
    history.jsonl``) as a trend table; ``--check`` gates on regression.
``export-profile``
    Learn allow rules from a capture's bootstrap window and export a
    MUD-style profile for one device.

Global ``-v/--verbose`` (repeatable) and ``-q/--quiet`` flags control
stdlib logging for every subcommand.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def _configure_logging(verbosity: int, quiet: bool) -> None:
    """Map -v/-q to stdlib logging levels (library default: silent)."""
    if quiet:
        level = logging.ERROR
    elif verbosity >= 2:
        level = logging.DEBUG
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    # force=True: the CLI owns process-wide logging, and basicConfig is
    # otherwise a no-op when a host (e.g. a test runner) already
    # installed handlers on the root logger.
    logging.basicConfig(
        level=level,
        format="%(levelname)s %(name)s: %(message)s",
        stream=sys.stderr,
        force=True,
    )


def _load_trace(path: str):
    from .net import Trace
    from .net.pcap import read_pcap

    if path.endswith(".pcap"):
        return read_pcap(path)
    return Trace.from_jsonl(path)


def cmd_simulate(args: argparse.Namespace) -> int:
    from .net.pcap import write_pcap
    from .testbed import TESTBED, Household, HouseholdConfig

    devices = args.devices or list(TESTBED)
    config = HouseholdConfig(duration_s=args.duration, seed=args.seed)
    result = Household(devices, config).simulate()
    if args.output.endswith(".pcap"):
        write_pcap(result.trace, args.output)
    else:
        result.trace.to_jsonl(args.output)
    stats = result.trace.stats()
    print(
        f"wrote {stats.n_packets} packets ({stats.n_bytes} B) from "
        f"{len(stats.devices)} devices over {stats.duration:.0f}s to {args.output}"
    )
    print(f"class mix: {stats.class_counts}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from .net import FlowDefinition
    from .predictability import analyze_trace

    trace = _load_trace(args.trace)
    for name in args.definitions:
        definition = FlowDefinition(name)
        report = analyze_trace(trace, definition)
        print(f"\n[{definition.value}]")
        print(f"{'device':24s} {'packets':>8s} {'predictable':>12s}")
        for device, entry in sorted(report.devices.items()):
            print(f"{device:24s} {entry.n_packets:8d} {entry.fraction:12.3f}")
            for cls, (total, predictable) in sorted(entry.per_class.items()):
                if total:
                    print(f"  {cls:22s} {total:8d} {predictable / total:12.3f}")
    return 0


def cmd_events(args: argparse.Namespace) -> int:
    from .events import group_events
    from .net import FlowDefinition
    from .predictability import label_predictable

    trace = _load_trace(args.trace)
    mask = label_predictable(trace, FlowDefinition(args.definition))
    events = group_events(trace, mask, gap=args.gap)
    print(f"{len(events)} unpredictable events "
          f"({sum(not m for m in mask)} unpredictable packets of {len(trace)})")
    print(f"{'device':24s} {'start':>10s} {'packets':>8s} {'bytes':>8s} {'class':>10s}")
    for event in events[: args.limit]:
        print(
            f"{event.device:24s} {event.start:10.1f} {len(event):8d} "
            f"{event.total_bytes:8d} {event.majority_class().value:>10s}"
        )
    if len(events) > args.limit:
        print(f"... {len(events) - args.limit} more (raise --limit)")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    from .core import FiatConfig, FiatSystem
    from .obs import JsonlAuditSink, Observability, save_snapshot

    obs = None
    audit_sink = None
    if args.metrics_out or args.audit_out:
        audit_sink = JsonlAuditSink(args.audit_out) if args.audit_out else None
        obs = Observability(audit=audit_sink, trace_seed=args.seed)
    system = FiatSystem(
        args.devices,
        config=FiatConfig(bootstrap_s=0.0, obs=obs),
        seed=args.seed,
        n_training_events=args.training_events,
    )
    if args.state_dir:
        system.enable_recovery(args.state_dir)
    results = system.run_accuracy(
        n_manual=args.manual, n_non_manual=args.non_manual, n_attacks=args.attacks
    )
    if args.metrics_out:
        save_snapshot(system.metrics_snapshot(), args.metrics_out)
        print(f"metrics snapshot written to {args.metrics_out}")
    if audit_sink is not None:
        audit_sink.close()
        print(f"audit stream ({audit_sink.n_emitted} records) written to {args.audit_out}")
    print(f"{'device':12s} {'manual P/R':>12s} {'FP legit':>9s} {'FN attacks':>11s}")
    for device, row in results.items():
        fp = row.fp_manual_blocked + row.fp_non_manual_blocked
        print(
            f"{device:12s} {row.manual_precision:5.2f}/{row.manual_recall:4.2f}"
            f" {100 * fp:8.1f}% {100 * row.false_negative:10.1f}%"
        )
    human = system.human_validation_rates()
    print(
        f"humanness: P/R {human['human_precision']:.2f}/{human['human_recall']:.2f} human, "
        f"{human['non_human_precision']:.2f}/{human['non_human_recall']:.2f} non-human"
    )
    if system.recovery is not None:
        # Capture before close(): journal_size_bytes reads 0 once the
        # writer is gone.
        epoch = system.recovery.epoch
        journal_bytes = system.recovery.journal_size_bytes
        system.recovery.close()
        print(
            f"recovery state journaled to {args.state_dir} "
            f"(epoch {epoch}, {journal_bytes} B journal)"
        )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from .core import FiatConfig, FiatSystem

    config = FiatConfig(
        bootstrap_s=args.bootstrap,
        snapshot_interval_s=args.snapshot_interval,
        # A crash adds at most one stray blocked event between unlocks;
        # a tight threshold would let that tip one run into lockout and
        # diverge the logs far past the outage (see chaos_sweep docs).
        lockout_threshold=10,
    )
    system = FiatSystem(args.devices, config=config, seed=args.seed)
    report = system.chaos_sweep(
        n_trials=args.trials,
        seed=args.seed,
        duration_s=args.duration,
        corrupt_fraction=args.corrupt_fraction,
        determinism_every=args.determinism_every,
        state_root=args.state_root,
    )
    probes = {}
    for trial in report.trials:
        probes[trial.replay_probe] = probes.get(trial.replay_probe, 0) + 1
    print(
        f"chaos sweep: {report.n_ok}/{report.n_trials} trials ok "
        f"({report.n_corrupted_tail} with corrupted journal tail, "
        f"{report.n_torn_tails_seen} torn tails tolerated)"
    )
    print(f"replay probes post-restart: {probes}")
    checked = [t for t in report.trials if t.determinism_checked]
    print(
        f"determinism double-runs: {len(checked)} "
        f"({'all byte-identical' if all(t.deterministic for t in checked) else 'DIVERGENT'})"
    )
    for trial in report.failures():
        print(
            f"FAIL trial {trial.index}: crash at t={trial.crash.at:.1f} "
            f"(+{trial.crash.downtime_s:.1f}s down, "
            f"{trial.crash.corrupt_tail_bytes} B corrupted) — {trial.failure}",
            file=sys.stderr,
        )
        if trial.state_dir:
            print(f"  artifacts kept in {trial.state_dir}", file=sys.stderr)
    return 0 if report.ok else 1


def cmd_fleet(args: argparse.Namespace) -> int:
    from .fleet import (
        CheckpointMismatch,
        FleetInterrupted,
        FleetRunner,
        generate_fleet,
        open_spec,
        write_spec_jsonl,
    )

    if args.spec:
        source = open_spec(args.spec)
    else:
        spec = generate_fleet(
            args.homes,
            seed=args.seed,
            name=args.name,
            device_pool=tuple(args.devices) if args.devices else None,
            n_manual=args.manual,
            n_non_manual=args.non_manual,
            n_attacks=args.attacks,
            n_training_events=args.training_events,
            fault_fraction=args.fault_fraction,
        )
        if args.spec_out:
            if args.spec_out.endswith(".jsonl"):
                write_spec_jsonl(
                    args.spec_out, iter(spec.homes),
                    name=spec.name, seed=spec.seed, n_homes=len(spec),
                )
            else:
                spec.dump(args.spec_out)
            print(f"fleet spec ({len(spec)} homes) written to {args.spec_out}")
        source = spec.stream()
    if args.watch and not args.state_dir:
        print(
            "fleet: --watch requires --state-dir (telemetry frames live there)",
            file=sys.stderr,
        )
        return 2
    if args.machines > 1 or args.machine_faults:
        return _run_fleet_distrib(args, source)
    try:
        runner = FleetRunner(
            source,
            jobs=args.jobs,
            backend=args.backend,
            timeout_s=args.timeout,
            state_root=args.state_root,
            state_dir=args.state_dir,
            resume=args.resume,
            retry_quarantined=args.retry_quarantined,
            retries=args.retries,
            backoff_base_s=args.backoff,
            snapshot_every=args.snapshot_every,
            telemetry=args.telemetry,
            profile_slowest=args.profile_slowest,
        )
    except ValueError as error:
        print(f"fleet: {error}", file=sys.stderr)
        return 2

    watch_stop = None
    if args.watch:
        import threading

        from .fleet import FleetMonitor

        monitor = FleetMonitor(args.state_dir)
        watch_stop = threading.Event()

        def _watch() -> None:
            while not watch_stop.wait(args.watch_interval):
                print(monitor.render(), file=sys.stderr)

        threading.Thread(target=_watch, name="fleet-watch", daemon=True).start()

    def _end_watch() -> None:
        if watch_stop is not None:
            watch_stop.set()
            # One last render so the final (done/interrupted) frame is
            # always shown, however short the run was.
            print(FleetMonitor(args.state_dir).render(), file=sys.stderr)

    def _emit(report) -> None:
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(report.to_json() + "\n")
        print(report.render(top=args.top))
        if args.out:
            print(f"population report written to {args.out}")

    try:
        report = runner.run()
    except CheckpointMismatch as error:
        _end_watch()
        print(f"fleet: {error}", file=sys.stderr)
        return 2
    except FleetInterrupted as stop:
        _end_watch()
        # Graceful degradation: the partial report (explicit coverage
        # counts) is still emitted; the run is resumable.
        _emit(stop.report)
        coverage = stop.report.coverage
        hint = (
            f" — resume with --state-dir {args.state_dir} --resume"
            if args.state_dir
            else " (no --state-dir: progress was not checkpointed)"
        )
        print(
            f"interrupted after {coverage.get('completed', 0)}/"
            f"{coverage.get('planned', stop.report.n_homes)} homes{hint}",
            file=sys.stderr,
        )
        return 3
    _end_watch()
    _emit(report)
    if not report.ok:
        print(
            f"{report.n_failed} of {report.n_homes} homes failed"
            + (" (strict mode: failing)" if args.strict else ""),
            file=sys.stderr,
        )
    return 1 if (args.strict and not report.ok) else 0


def _emit_fleet_report(args: argparse.Namespace, report) -> None:
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json() + "\n")
    print(report.render(top=args.top))
    if args.out:
        print(f"population report written to {args.out}")


def _run_fleet_distrib(args: argparse.Namespace, source) -> int:
    """The ``fleet --machines N`` path: the distributed coordinator."""
    from .fleet import CheckpointMismatch, DistribCoordinator, DistribError
    from .fleet.distrib import parse_machine_fault

    if not args.state_dir:
        print(
            "fleet: --machines needs --state-dir (the coordinator ledger, "
            "range dirs and machine telemetry live there)",
            file=sys.stderr,
        )
        return 2
    for flag, reason in (
        (args.watch, "--watch (use fleet-top against the same --state-dir)"),
        (args.profile_slowest, "--profile-slowest"),
        (args.retry_quarantined, "--retry-quarantined"),
        (args.timeout, "--timeout"),
    ):
        if flag:
            print(
                f"fleet: {reason} is not supported with --machines", file=sys.stderr
            )
            return 2
    try:
        faults = [parse_machine_fault(text) for text in args.machine_faults]
        coordinator = DistribCoordinator(
            source,
            state_dir=args.state_dir,
            machines=args.machines,
            jobs=args.jobs,
            backend=args.backend,
            resume=args.resume,
            retries=args.retries,
            backoff_base_s=args.backoff,
            lease_timeout_s=args.lease_timeout,
            heartbeat_interval_s=args.heartbeat_interval,
            max_leases_per_range=args.max_leases,
            machine_faults=faults,
            state_root=args.state_root,
        )
    except ValueError as error:
        print(f"fleet: {error}", file=sys.stderr)
        return 2
    try:
        report = coordinator.run()
    except CheckpointMismatch as error:
        print(f"fleet: {error}", file=sys.stderr)
        return 2
    except DistribError as error:
        print(f"fleet: {error}", file=sys.stderr)
        return 2
    _emit_fleet_report(args, report)
    stats = coordinator.stats
    print(
        f"distributed over {stats['ranges']} range(s): "
        f"{stats['leases_granted']} lease(s) granted, "
        f"{stats['re_leases']} re-lease(s), "
        f"{stats['rejected_submissions']} submission(s) rejected",
        file=sys.stderr,
    )
    if not report.ok:
        print(
            f"{report.n_failed} of {report.n_homes} homes failed"
            + (" (strict mode: failing)" if args.strict else ""),
            file=sys.stderr,
        )
    return 1 if (args.strict and not report.ok) else 0


def cmd_fleet_merge(args: argparse.Namespace) -> int:
    from .fleet import SubmissionMismatch, merge_range_dirs

    try:
        report = merge_range_dirs(args.dirs)
    except SubmissionMismatch as error:
        print(f"fleet-merge: {error}", file=sys.stderr)
        return 2
    _emit_fleet_report(args, report)
    return 1 if (args.strict and not report.ok) else 0


def cmd_obs_report(args: argparse.Namespace) -> int:
    import os

    from .obs import load_snapshot, read_audit, render_report, render_trace

    audit = read_audit(args.audit) if args.audit else None
    if args.trace_id:
        if audit is None:
            print("--trace-id requires --audit", file=sys.stderr)
            return 1
        print(render_trace(audit, args.trace_id))
        return 0
    if not args.snapshot:
        print("a metrics snapshot path is required (or use --trace-id)", file=sys.stderr)
        return 1
    if os.path.isdir(args.snapshot):
        # A fleet checkpoint state dir: render the latest compacted
        # aggregate (works mid-run and after a kill — read-only).
        from .fleet import load_latest_aggregate

        try:
            agg = load_latest_aggregate(args.snapshot)
        except FileNotFoundError as error:
            print(f"obs-report: {error}", file=sys.stderr)
            return 1
        print(
            f"fleet state dir {args.snapshot}: {agg.completed} homes folded "
            f"({agg.n_ok} ok, {agg.n_failed} failed, "
            f"{len(agg.quarantined)} quarantined)"
        )
        print(render_report(agg.merged, audit=audit, top=args.top))
        return 0
    snapshot = load_snapshot(args.snapshot)
    print(render_report(snapshot, audit=audit, top=args.top))
    return 0


def cmd_fleet_top(args: argparse.Namespace) -> int:
    import os as _os
    import time as _time

    from .fleet import FleetMonitor, MultiFleetMonitor, machine_telemetry_dirs
    from .fleet.distrib import LEDGER_NAME

    if _os.path.exists(_os.path.join(args.state_dir, LEDGER_NAME)):
        # A distributed run: aggregate every machine's telemetry dir.  The
        # dir set is re-resolved each poll so re-leases (new epochs) and
        # fresh ranges appear without restarting the dashboard.
        monitor = MultiFleetMonitor(
            lambda: machine_telemetry_dirs(args.state_dir),
            stale_after_s=args.stale_after,
        )
    else:
        monitor = FleetMonitor(args.state_dir, stale_after_s=args.stale_after)
    while True:
        snapshot = monitor.poll()
        print(monitor.render(snapshot))
        if not args.follow or snapshot.status in ("done", "interrupted"):
            return 0
        _time.sleep(args.interval)


def cmd_bench_report(args: argparse.Namespace) -> int:
    from .obs.trajectory import (
        DEFAULT_HISTORY_PATH,
        check_regression,
        load_history,
        render_trend,
    )

    entries = load_history(args.history or DEFAULT_HISTORY_PATH)
    print(render_trend(entries, last=args.last))
    if args.check:
        check = check_regression(entries)
        print(check.describe())
        return 0 if check.ok else 1
    return 0


def cmd_export_profile(args: argparse.Namespace) -> int:
    from .core.mud import export_profile
    from .core.rules import RuleTable
    from .net import FlowDefinition
    from .predictability import BucketPredictor

    trace = _load_trace(args.trace)
    device_trace = trace.for_device(args.device) if args.device else trace
    if len(device_trace) == 0:
        print(f"no packets for device {args.device!r}", file=sys.stderr)
        return 1
    predictor = BucketPredictor(FlowDefinition(args.definition), dns=trace.dns)
    bootstrap_end = device_trace.start + args.bootstrap
    predictor.learn_trace(p for p in device_trace if p.timestamp < bootstrap_end)
    table = RuleTable.from_predictor(predictor)
    document = export_profile(
        args.device or "all-devices", table, metadata={"source": args.trace}
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(f"wrote {len(table)} rules to {args.output}")
    else:
        print(document)
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    from .core import train_event_classifier
    from .ml.persistence import save_model
    from .testbed import generate_labeled_events, profile_for

    profile = profile_for(args.device)
    if profile.uses_simple_rules:
        print(
            f"{args.device} uses the simple first-packet-size rule "
            f"({profile.simple_rule_size} B); no model to train.",
            file=sys.stderr,
        )
        return 1
    events = generate_labeled_events(
        profile,
        n_manual=args.manual,
        n_automated=args.non_manual,
        n_control=args.non_manual,
        seed=args.seed,
    )
    classifier = train_event_classifier(profile, events)
    document = save_model(
        classifier.model,
        classifier.scaler,
        metadata={"device": args.device, "first_n": classifier.first_n},
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(document)
    print(f"trained on {len(events)} events; model written to {args.output}")
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    from .scenarios import EXAMPLE_SCENARIO, run_scenario

    if args.example:
        document = EXAMPLE_SCENARIO
    else:
        with open(args.scenario, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    report = run_scenario(document)
    print(report.to_json())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="fiat-repro",
        description="FIAT (CoNEXT '22) reproduction toolkit",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log progress detail (-v info, -vv debug)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="only log errors"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="simulate a household capture")
    simulate.add_argument("--devices", nargs="*", help="device names (default: all 10)")
    simulate.add_argument("--duration", type=float, default=3600.0, help="seconds")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--output", required=True, help=".jsonl or .pcap path")
    simulate.set_defaults(func=cmd_simulate)

    analyze = sub.add_parser("analyze", help="predictability analysis of a capture")
    analyze.add_argument("trace", help=".jsonl or .pcap capture")
    analyze.add_argument(
        "--definitions", nargs="*", default=["portless", "classic"],
        choices=["portless", "classic"],
    )
    analyze.set_defaults(func=cmd_analyze)

    events = sub.add_parser("events", help="group unpredictable events")
    events.add_argument("trace")
    events.add_argument("--definition", default="portless", choices=["portless", "classic"])
    events.add_argument("--gap", type=float, default=5.0)
    events.add_argument("--limit", type=int, default=20)
    events.set_defaults(func=cmd_events)

    evaluate = sub.add_parser("evaluate", help="run the Table-6 accuracy experiment")
    evaluate.add_argument("--devices", nargs="+", required=True)
    evaluate.add_argument("--manual", type=int, default=20)
    evaluate.add_argument("--non-manual", dest="non_manual", type=int, default=40)
    evaluate.add_argument("--attacks", type=int, default=20)
    evaluate.add_argument("--training-events", dest="training_events", type=int, default=160)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument(
        "--metrics-out", dest="metrics_out",
        help="run instrumented; write the metrics snapshot JSON here",
    )
    evaluate.add_argument(
        "--audit-out", dest="audit_out",
        help="run instrumented; write the JSONL audit stream here",
    )
    evaluate.add_argument(
        "--state-dir", dest="state_dir",
        help="journal + snapshot the proxy's security state here (crash-safe mode)",
    )
    evaluate.set_defaults(func=cmd_evaluate)

    chaos = sub.add_parser(
        "chaos", help="sweep random proxy crashes and assert recovery invariants"
    )
    chaos.add_argument("--devices", nargs="+", default=["SP10", "WP3"])
    chaos.add_argument("--trials", type=int, default=50)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--duration", type=float, default=240.0, help="workload seconds")
    chaos.add_argument("--bootstrap", type=float, default=60.0, help="bootstrap seconds")
    chaos.add_argument(
        "--snapshot-interval", dest="snapshot_interval", type=float, default=20.0,
        help="simulated seconds between state snapshots",
    )
    chaos.add_argument(
        "--corrupt-fraction", dest="corrupt_fraction", type=float, default=0.3,
        help="fraction of trials that corrupt the journal tail before restart",
    )
    chaos.add_argument(
        "--determinism-every", dest="determinism_every", type=int, default=10,
        help="re-run every Nth trial twice and require byte-identical logs (0 = off)",
    )
    chaos.add_argument(
        "--state-root", dest="state_root",
        help="keep per-trial state dirs here (default: temp dir, removed when green)",
    )
    chaos.set_defaults(func=cmd_chaos)

    fleet = sub.add_parser(
        "fleet", help="run a sharded multi-home fleet simulation"
    )
    fleet.add_argument(
        "--spec",
        help="fleet spec file (overrides the generator flags); .jsonl specs "
        "are streamed at bounded memory",
    )
    fleet.add_argument("--homes", type=int, default=4, help="homes to generate")
    fleet.add_argument("--jobs", type=int, default=1, help="worker processes")
    fleet.add_argument(
        "--backend", choices=["auto", "serial", "process"], default="auto",
        help="execution backend (auto: serial when --jobs 1)",
    )
    fleet.add_argument("--seed", type=int, default=0, help="fleet-level seed")
    fleet.add_argument("--name", default="fleet", help="fleet name in the report")
    fleet.add_argument(
        "--devices", nargs="*",
        help="device pool for generated homes (default: rule devices)",
    )
    fleet.add_argument("--manual", type=int, default=6, help="base manual events/home")
    fleet.add_argument(
        "--non-manual", dest="non_manual", type=int, default=12,
        help="base non-manual events/home",
    )
    fleet.add_argument("--attacks", type=int, default=6, help="base attacks/home")
    fleet.add_argument(
        "--training-events", dest="training_events", type=int, default=120,
    )
    fleet.add_argument(
        "--fault-fraction", dest="fault_fraction", type=float, default=0.0,
        help="fraction of generated homes with a lossy-network fault plan",
    )
    fleet.add_argument(
        "--timeout", type=float, help="per-home liveness deadline, seconds"
    )
    fleet.add_argument(
        "--state-root", dest="state_root",
        help="journal recovery state of homes marked 'recover' under this dir",
    )
    fleet.add_argument(
        "--state-dir", dest="state_dir",
        help="checkpoint fleet-run progress here (journal + compacted "
        "snapshots); enables --resume",
    )
    fleet.add_argument(
        "--resume", action="store_true",
        help="resume a checkpointed run from --state-dir, skipping "
        "completed homes (byte-identical final report)",
    )
    fleet.add_argument(
        "--retry-quarantined", dest="retry_quarantined", action="store_true",
        help="with --resume: re-attempt homes that exhausted their retry "
        "budget instead of skipping them",
    )
    fleet.add_argument(
        "--retries", type=int, default=0,
        help="per-home retries with seeded exponential backoff before a "
        "home is quarantined (default: 0)",
    )
    fleet.add_argument(
        "--backoff", dest="backoff", type=float, default=0.05,
        help="retry backoff base, seconds (doubles per attempt, jittered)",
    )
    fleet.add_argument(
        "--snapshot-every", dest="snapshot_every", type=int, default=32,
        help="compact a checkpoint snapshot every N homes (default: 32)",
    )
    fleet.add_argument("--out", help="write the aggregate JSON report here")
    fleet.add_argument(
        "--spec-out", dest="spec_out",
        help="also write the (generated) spec here (.jsonl streams)",
    )
    fleet.add_argument("--top", type=int, default=8, help="per-home rows to print")
    fleet.add_argument(
        "--strict", action="store_true",
        help="exit nonzero when any home fails (default: fail the home, not the fleet)",
    )
    fleet.add_argument(
        "--watch", action="store_true",
        help="render a live telemetry dashboard to stderr while the run "
        "executes (requires --state-dir)",
    )
    fleet.add_argument(
        "--watch-interval", dest="watch_interval", type=float, default=2.0,
        help="seconds between --watch refreshes (default: 2)",
    )
    fleet.add_argument(
        "--no-telemetry", dest="telemetry", action="store_false",
        help="skip writing telemetry frames under --state-dir (the "
        "report is byte-identical either way)",
    )
    fleet.add_argument(
        "--profile-slowest", dest="profile_slowest", action="store_true",
        help="after a clean run, re-run the slowest home under cProfile and "
        "write profile-<home>.prof/.txt into --state-dir",
    )
    fleet.add_argument(
        "--machines", type=int, default=1,
        help="run the fleet on N simulated machines (subprocesses) under the "
        "distributed coordinator; needs --state-dir (default: 1 = in-process)",
    )
    fleet.add_argument(
        "--lease-timeout", dest="lease_timeout", type=float, default=15.0,
        help="seconds without machine heartbeat frames before its range "
        "lease is revoked and reassigned (default: 15)",
    )
    fleet.add_argument(
        "--heartbeat-interval", dest="heartbeat_interval", type=float,
        default=0.5,
        help="seconds between machine heartbeat frames (default: 0.5)",
    )
    fleet.add_argument(
        "--max-leases", dest="max_leases", type=int, default=6,
        help="fail the run if any one range needs more than this many "
        "leases (default: 6)",
    )
    fleet.add_argument(
        "--machine-fault", dest="machine_faults", action="append", default=[],
        metavar="KIND:RANGE[:AFTER[:DURATION[:EPOCH]]]",
        help="inject a machine-level fault (kill|stall|drop) into the range's "
        "machine after it completes AFTER homes in lease epoch EPOCH; "
        "repeatable (chaos testing; the report bytes must not change)",
    )
    fleet.set_defaults(func=cmd_fleet)

    fleet_merge = sub.add_parser(
        "fleet-merge",
        help="exact-merge completed range dirs from a distributed fleet "
        "into one population report",
    )
    fleet_merge.add_argument(
        "dirs", nargs="+",
        help="coordinator state dirs and/or individual range-NNNN dirs; "
        "together they must tile the full spec",
    )
    fleet_merge.add_argument(
        "--out", help="write the merged population report JSON here"
    )
    fleet_merge.add_argument(
        "--top", type=int, default=5,
        help="rows per section in the rendered report (default: 5)",
    )
    fleet_merge.add_argument(
        "--strict", action="store_true",
        help="exit non-zero if any merged home failed",
    )
    fleet_merge.set_defaults(func=cmd_fleet_merge)

    fleet_top = sub.add_parser(
        "fleet-top", help="live dashboard for a fleet state dir's telemetry"
    )
    fleet_top.add_argument(
        "--state-dir", dest="state_dir", required=True,
        help="the fleet run's --state-dir (telemetry frames live under it)",
    )
    fleet_top.add_argument(
        "--follow", action="store_true",
        help="keep refreshing until the run reports done/interrupted "
        "(default: render once and exit)",
    )
    fleet_top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between --follow refreshes (default: 2)",
    )
    fleet_top.add_argument(
        "--stale-after", dest="stale_after", type=float, default=30.0,
        help="seconds without frames before a running fleet is reported "
        "stale (default: 30)",
    )
    fleet_top.set_defaults(func=cmd_fleet_top)

    obs_report = sub.add_parser(
        "obs-report", help="render the observability dashboard / follow a trace"
    )
    obs_report.add_argument(
        "snapshot", nargs="?",
        help="metrics snapshot JSON (from evaluate --metrics-out) or a "
        "fleet --state-dir (renders the latest compacted aggregate)",
    )
    obs_report.add_argument("--audit", help="JSONL audit stream to summarise/query")
    obs_report.add_argument(
        "--trace-id", dest="trace_id",
        help="print the full chain of one trace ID from --audit",
    )
    obs_report.add_argument(
        "--top", type=int, default=12, help="rows per dashboard section"
    )
    obs_report.set_defaults(func=cmd_obs_report)

    bench_report = sub.add_parser(
        "bench-report", help="render the committed perf trajectory trend"
    )
    bench_report.add_argument(
        "--history", default=None,
        help="trajectory history JSONL (default: benchmarks/baselines/history.jsonl)",
    )
    bench_report.add_argument(
        "--last", type=int, default=12, help="sparkline window (default: 12 runs)"
    )
    bench_report.add_argument(
        "--check", action="store_true",
        help="also run the regression gate; exit 1 on any tracked metric "
        "outside its tolerance",
    )
    bench_report.set_defaults(func=cmd_bench_report)

    train = sub.add_parser("train", help="train + save a device's event classifier")
    train.add_argument("--device", required=True)
    train.add_argument("--manual", type=int, default=60)
    train.add_argument("--non-manual", dest="non_manual", type=int, default=120)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--output", required=True, help="model JSON path")
    train.set_defaults(func=cmd_train)

    scenario = sub.add_parser("scenario", help="run a declarative JSON scenario")
    scenario.add_argument("scenario", nargs="?", help="path to a scenario JSON file")
    scenario.add_argument(
        "--example", action="store_true", help="run the built-in example scenario"
    )
    scenario.set_defaults(func=cmd_scenario)

    export = sub.add_parser("export-profile", help="export learned rules as MUD JSON")
    export.add_argument("trace")
    export.add_argument("--device", help="restrict to one device")
    export.add_argument("--definition", default="portless", choices=["portless", "classic"])
    export.add_argument("--bootstrap", type=float, default=1200.0)
    export.add_argument("--output", help="file path (default: stdout)")
    export.set_defaults(func=cmd_export_profile)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.verbose, args.quiet)
    try:
        return int(args.func(args))
    except BrokenPipeError:
        # `fiat-repro fleet-top | head` and friends: the consumer
        # closed the pipe, which is not an error.  Detach stdout so the
        # interpreter's shutdown flush cannot raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
