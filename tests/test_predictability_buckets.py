"""Unit tests for the §2.1 bucket predictability heuristic."""

import pytest

from repro.net import DnsTable, FlowDefinition, Trace
from repro.predictability import BucketPredictor, label_predictable, quantize_iat
from tests.conftest import make_packet


class TestQuantize:
    def test_zero_and_negative_clamp(self):
        assert quantize_iat(0.0) == 0
        assert quantize_iat(-3.0) == 0

    def test_rounding_to_nearest_bin(self):
        assert quantize_iat(0.25, resolution=0.25) == 1
        assert quantize_iat(0.37, resolution=0.25) == 1
        assert quantize_iat(0.38, resolution=0.25) == 2

    def test_resolution_scales(self):
        assert quantize_iat(10.0, resolution=1.0) == 10
        assert quantize_iat(10.0, resolution=0.5) == 20


class TestOfflineLabelling:
    def test_periodic_flow_fully_predictable(self, periodic_trace):
        labels = label_predictable(periodic_trace)
        assert all(labels)

    def test_random_sizes_unpredictable(self, rng):
        packets = [
            make_packet(timestamp=float(t), size=int(rng.integers(100, 2000)))
            for t in range(0, 100, 10)
        ]
        labels = label_predictable(Trace(packets))
        # Distinct sizes -> distinct buckets -> no repeated IATs.
        assert not any(labels)

    def test_irregular_intervals_unpredictable(self):
        times = [0.0, 3.0, 10.0, 30.0, 70.0, 150.0]
        packets = [make_packet(timestamp=t) for t in times]
        labels = label_predictable(Trace(packets))
        assert not any(labels)

    def test_retroactive_marking(self):
        # One irregular packet, then a regular run: the first pair of the
        # repeated IAT must be marked too ("previous or future").
        times = [0.0, 7.3, 17.3, 27.3, 37.3]
        labels = label_predictable(Trace([make_packet(timestamp=t) for t in times]))
        assert labels == [False, True, True, True, True]

    def test_mask_length_matches(self, periodic_trace):
        assert len(label_predictable(periodic_trace)) == len(periodic_trace)

    def test_portless_merges_port_churn(self):
        # Same flow re-opened from a new source port every two packets:
        # each Classic bucket sees a single IAT (never repeated) while
        # the PortLess bucket sees the full periodic run.
        packets = [
            make_packet(timestamp=float(t), src_port=40000 + 7 * (t // 20))
            for t in range(0, 100, 10)
        ]
        trace = Trace(packets)
        portless = label_predictable(trace, FlowDefinition.PORTLESS)
        classic = label_predictable(trace, FlowDefinition.CLASSIC)
        assert all(portless)
        assert not any(classic)

    def test_domain_rotation_only_portless_predicts(self):
        # Load-balanced service: the flow hops between pool IPs of one
        # domain such that no per-IP bucket ever repeats an IAT.
        ips = ["a", "a", "b", "a", "c", "b", "d", "c", "d", "d"]
        pool = {name: f"172.0.0.{i + 1}" for i, name in enumerate("abcd")}
        dns = DnsTable([(ip, "api.x.com") for ip in pool.values()])
        packets = [
            make_packet(timestamp=float(t * 10), dst_ip=pool[ips[t]])
            for t in range(len(ips))
        ]
        trace = Trace(packets, dns=dns)
        assert all(label_predictable(trace, FlowDefinition.PORTLESS))
        assert not any(label_predictable(trace, FlowDefinition.CLASSIC))


class TestOnlinePredictor:
    def test_first_packets_not_predictable(self):
        predictor = BucketPredictor()
        assert predictor.observe(make_packet(timestamp=0.0)) is False
        assert predictor.observe(make_packet(timestamp=10.0)) is False

    def test_third_matching_packet_predictable(self):
        predictor = BucketPredictor()
        predictor.observe(make_packet(timestamp=0.0))
        predictor.observe(make_packet(timestamp=10.0))
        assert predictor.observe(make_packet(timestamp=20.0)) is True

    def test_learn_trace_builds_rules(self, periodic_trace):
        predictor = BucketPredictor()
        predictor.learn_trace(periodic_trace)
        recurring = predictor.recurring_buckets()
        assert len(recurring) == 1
        key, bins = recurring[0]
        assert quantize_iat(10.0) in bins

    def test_neighbor_bin_tolerance(self):
        predictor = BucketPredictor(resolution=0.25, neighbor_bins=1)
        predictor.observe(make_packet(timestamp=0.0))
        predictor.observe(make_packet(timestamp=10.0))
        # 10.2 s IAT falls into the adjacent bin: still a match.
        assert predictor.observe(make_packet(timestamp=20.2)) is True

    def test_no_neighbor_tolerance_strict(self):
        predictor = BucketPredictor(resolution=0.25, neighbor_bins=0)
        predictor.observe(make_packet(timestamp=0.0))
        predictor.observe(make_packet(timestamp=10.0))
        assert predictor.observe(make_packet(timestamp=20.2)) is False

    def test_n_buckets(self):
        predictor = BucketPredictor()
        predictor.observe(make_packet(size=100))
        predictor.observe(make_packet(size=200))
        assert predictor.n_buckets == 2

    def test_learned_bins_unknown_bucket_empty(self):
        predictor = BucketPredictor()
        assert predictor.learned_bins(("nope",)) == set()


class TestMaskMismatch:
    def test_group_events_rejects_bad_mask(self, periodic_trace):
        from repro.events import group_events

        with pytest.raises(ValueError, match="mask length"):
            group_events(periodic_trace, [True])
