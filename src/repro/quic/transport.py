"""Transport latency models: TCP, QUIC 1-RTT and QUIC 0-RTT (paper §5.3, §6).

FIAT ships its humanness proof over QUIC because 0-RTT (or 1-RTT) saves
the round trips a TCP+TLS connection spends on handshakes, and because
QUIC encrypts transport metadata.  Table 7 measures the resulting
connection-establishment latencies on LAN and mobile paths.  This module
models those paths:

* a :class:`NetworkPath` samples RTTs from a log-normal distribution
  around a configurable base RTT (LAN ~20 ms; mobile is both slower and
  far more variable);
* :func:`connection_latency` converts handshake round-trip counts plus
  per-transport processing overheads into a delivery latency for the
  first application byte.

Handshake cost model (RFC 9000/8446): TCP+TLS 1.3 spends 1 RTT on the
TCP handshake and 1 RTT on TLS before early application data; QUIC 1-RTT
spends a single combined round trip; QUIC 0-RTT carries application data
in the first flight, costing only a one-way trip.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["Transport", "NetworkPath", "LAN_PATH", "MOBILE_PATH", "connection_latency"]


class Transport(enum.Enum):
    """Transport used for the FIAT authentication channel."""

    TCP_TLS = "tcp+tls1.3"
    QUIC_1RTT = "quic-1rtt"
    QUIC_0RTT = "quic-0rtt"


#: Round trips spent in handshakes before the first application byte
#: can *leave* the client (0-RTT sends data immediately).
_HANDSHAKE_RTTS = {
    Transport.TCP_TLS: 2.0,
    Transport.QUIC_1RTT: 1.0,
    Transport.QUIC_0RTT: 0.0,
}

#: Endpoint processing overhead in milliseconds (crypto setup, socket
#: bring-up).  The paper observes QUIC 0-RTT also *executes* faster than
#: 1-RTT on both Android and the Raspberry Pi.
_PROCESSING_MS = {
    Transport.TCP_TLS: 18.0,
    Transport.QUIC_1RTT: 15.0,
    Transport.QUIC_0RTT: 12.0,
}


@dataclass(frozen=True)
class NetworkPath:
    """A network path with a log-normal RTT distribution.

    Parameters
    ----------
    name:
        Label for reports ("lan", "mobile").
    base_rtt_ms:
        Median round-trip time in milliseconds.
    jitter_sigma:
        Log-normal sigma; mobile paths use a large sigma to reproduce
        the wide LAN/mobile spread of Table 7.
    """

    name: str
    base_rtt_ms: float
    jitter_sigma: float = 0.1

    def sample_rtt(self, rng: Optional[np.random.Generator] = None) -> float:
        """Draw one RTT in milliseconds."""
        rng = rng if rng is not None else np.random.default_rng()
        return float(self.base_rtt_ms * rng.lognormal(mean=0.0, sigma=self.jitter_sigma))


#: Home-LAN path: phone and proxy on the same WiFi (~18 ms median RTT).
LAN_PATH = NetworkPath(name="lan", base_rtt_ms=18.0, jitter_sigma=0.12)

#: Mobile path: phone on LTE within home proximity (~200 ms median RTT,
#: heavy-tailed — Table 7 records QUIC 1-RTT between 233 and 1044 ms).
MOBILE_PATH = NetworkPath(name="mobile", base_rtt_ms=200.0, jitter_sigma=0.55)


def connection_latency(
    transport: Transport,
    path: NetworkPath,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Milliseconds from "send" to first application byte delivered.

    Handshake round trips each pay a full sampled RTT; the payload then
    pays a one-way trip (half an RTT), plus the endpoint processing
    overhead of the transport.
    """
    rng = rng if rng is not None else np.random.default_rng()
    rtts = _HANDSHAKE_RTTS[transport]
    total = 0.0
    for _ in range(int(rtts)):
        total += path.sample_rtt(rng)
    total += 0.5 * path.sample_rtt(rng)  # one-way payload delivery
    total += _PROCESSING_MS[transport]
    return total
